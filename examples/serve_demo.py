"""Serving demo: many users, one batched HiMA engine — then a cluster.

Opens a handful of DNC sessions that arrive at different times, streams
their inputs through the micro-batching :class:`repro.serve.SessionServer`,
and prints the scheduler's metrics — then shows that every session's
outputs are numerically identical to running that session alone through
the unbatched engine.  The final section scales the same serving surface
horizontally: a :class:`repro.serve.ShardedServer` routes Zipf-skewed
tenant traffic across four engine shards with tenant-keyed consistent
hashing, and hot-spot rebalancing migrates sessions off the overloaded
shard mid-stream via the byte-level checkpoint path — without perturbing
a single trajectory.

Run:  python examples/serve_demo.py
"""

import numpy as np

from repro.core import HiMAConfig, TiledEngine
from repro.serve import (
    ConsistentHashPlacement,
    HotSpotRebalance,
    SessionServer,
    ShardedServer,
    generate_scripts,
    generate_zipf_scripts,
    run_open_loop,
    tenant_of,
)

config = HiMAConfig(
    memory_size=64, word_size=16, num_reads=2, num_tiles=4, hidden_size=32,
    two_stage_sort=False,
)

# ---------------------------------------------------------------------------
# 1. A server over one shared engine; traffic bounded for long-running use.
# ---------------------------------------------------------------------------
print("=== 1. Micro-batching session server ===")
engine = TiledEngine(config, rng=0, traffic_max_events=4096)
server = SessionServer(
    engine,
    max_batch=8,          # up to 8 sessions share one engine step
    max_wait_ticks=2,     # latency bound: no request waits longer to batch
    session_capacity=16,  # per-session state is O(N^2); bound it
    session_ttl_ticks=50, # idle sessions are evicted
)

scripts = generate_scripts(
    input_size=engine.reference.config.input_size,
    num_sessions=10, mean_session_len=8.0, mean_interarrival_ticks=1.0,
    rng=42,
)
for s in scripts[:4]:
    print(f"  {s.session_id:10s} arrives tick {s.arrival_tick:2d}, "
          f"{s.length} steps ({s.kind})")
print(f"  ... {len(scripts)} sessions total")

results = run_open_loop(server, scripts)

# ---------------------------------------------------------------------------
# 2. Scheduler metrics: latency in ticks, batch occupancy, admissions.
# ---------------------------------------------------------------------------
print("\n=== 2. Server metrics ===")
snap = server.metrics.snapshot()
print(f"requests completed: {snap['requests_completed']} "
      f"in {snap['ticks']} scheduler ticks")
print(f"latency p50/p95:    {snap['p50_wait_ticks']}/{snap['p95_wait_ticks']} ticks")
print(f"mean batch size:    {snap['mean_batch_occupancy']:.2f} "
      f"(histogram {snap['occupancy_histogram']})")
print(f"admission rejects:  {snap['admission_rejects']}, "
      f"evictions: {snap['evictions_ttl']} ttl + {snap['evictions_lru']} lru")
print(f"traffic log: {len(engine.traffic.events)} retained events, "
      f"{engine.traffic.total_words():,} total words (exact under compaction)")

# ---------------------------------------------------------------------------
# 3. Correctness: served == each session stepped alone, unbatched.
# ---------------------------------------------------------------------------
print("\n=== 3. Served outputs vs solo unbatched runs ===")
worst = 0.0
for script in scripts:
    served = np.stack([r.y for r in results[script.session_id]])
    solo = engine.run(script.inputs)
    worst = max(worst, float(np.max(np.abs(served - solo))))
print(f"max abs diff across all sessions: {worst:.2e} (bound 1e-10)")

# ---------------------------------------------------------------------------
# 4. Sharded serving: a 4-shard cluster under Zipf-skewed tenant load.
#    Tenant-keyed consistent hashing piles the head tenants onto a few
#    shards; HotSpotRebalance migrates sessions off the hot shard through
#    the checkpoint path (one slot read + one slot write) mid-stream.
# ---------------------------------------------------------------------------
print("\n=== 4. Sharded cluster: skewed tenants, hot-spot rebalancing ===")
cluster = ShardedServer(
    [TiledEngine(config, rng=0, traffic_max_events=4096) for _ in range(4)],
    max_batch=8,
    max_wait_ticks=2,
    session_capacity=12,   # per shard
    placement=ConsistentHashPlacement(key_of=tenant_of),
    rebalance=HotSpotRebalance(max_spread=2, max_moves=2),
)
zipf_scripts = generate_zipf_scripts(
    input_size=engine.reference.config.input_size,
    num_sessions=24, num_tenants=6, zipf_exponent=1.4,
    mean_session_len=6.0, mean_interarrival_ticks=0.5, rng=7,
)
tenants = sorted({tenant_of(s.session_id) for s in zipf_scripts})
print(f"{len(zipf_scripts)} sessions across tenants {', '.join(tenants)}")

zipf_results = run_open_loop(cluster, zipf_scripts)
snap = cluster.snapshot()
print(f"cluster served {snap['requests_completed']} requests on "
      f"{snap['shards']} shards in {snap['cluster_ticks']} cluster ticks")
print(f"sessions migrated off hot shards: {snap['sessions_migrated']}")
print("per-shard completions:",
      [s["requests_completed"] for s in snap["per_shard"]])

worst = 0.0
solo_engine = TiledEngine(config, rng=0)
for script in zipf_scripts:
    served = np.stack([r.y for r in zipf_results[script.session_id]])
    solo = solo_engine.run(script.inputs)
    worst = max(worst, float(np.max(np.abs(served - solo))))
print(f"max abs diff vs solo runs, migrations included: {worst:.2e} "
      f"(bound 1e-10)")
cluster.close()
