"""Serving demo: many users, one batched HiMA engine — then clusters.

Opens a handful of DNC sessions that arrive at different times, streams
their inputs through the micro-batching :class:`repro.serve.SessionServer`,
and prints the scheduler's metrics — then shows that every session's
outputs are numerically identical to running that session alone through
the unbatched engine.  The later sections scale the same serving surface
horizontally: a :class:`repro.serve.ShardedServer` routes Zipf-skewed
tenant traffic across four engine shards with tenant-keyed consistent
hashing (hot-spot rebalancing migrates sessions off the overloaded shard
mid-stream via the byte-level checkpoint path), and a
:class:`repro.serve.ProcCluster` hosts each shard in its own worker
*process* — surviving a SIGKILLed worker mid-stream through
checkpoint/replay recovery without perturbing a single trajectory.
The final section traces a request end to end across the process
cluster and prints the span tree plus the per-phase engine profile.

Every server object is a context manager; ``with`` blocks below are the
recommended usage — worker threads and child processes are released even
when the serving code raises.

Run:  python examples/serve_demo.py
"""

import numpy as np

from repro.core import HiMAConfig, TiledEngine
from repro.serve import (
    ConsistentHashPlacement,
    HotSpotRebalance,
    ProcCluster,
    SessionServer,
    ShardedServer,
    generate_scripts,
    generate_zipf_scripts,
    run_open_loop,
    tenant_of,
)

config = HiMAConfig(
    memory_size=64, word_size=16, num_reads=2, num_tiles=4, hidden_size=32,
    two_stage_sort=False,
)

# ---------------------------------------------------------------------------
# 1. A server over one shared engine; traffic bounded for long-running use.
# ---------------------------------------------------------------------------
print("=== 1. Micro-batching session server ===")
engine = TiledEngine(config, rng=0, traffic_max_events=4096)
with SessionServer(
    engine,
    max_batch=8,          # up to 8 sessions share one engine step
    max_wait_ticks=2,     # latency bound: no request waits longer to batch
    session_capacity=16,  # per-session state is O(N^2); bound it
    session_ttl_ticks=50, # idle sessions are evicted
) as server:
    scripts = generate_scripts(
        input_size=engine.reference.config.input_size,
        num_sessions=10, mean_session_len=8.0, mean_interarrival_ticks=1.0,
        rng=42,
    )
    for s in scripts[:4]:
        print(f"  {s.session_id:10s} arrives tick {s.arrival_tick:2d}, "
              f"{s.length} steps ({s.kind})")
    print(f"  ... {len(scripts)} sessions total")

    results = run_open_loop(server, scripts)

    # -----------------------------------------------------------------------
    # 2. Scheduler metrics: latency in ticks, batch occupancy, admissions.
    # -----------------------------------------------------------------------
    print("\n=== 2. Server metrics ===")
    snap = server.metrics.snapshot()
    print(f"requests completed: {snap['requests_completed']} "
          f"in {snap['ticks']} scheduler ticks")
    print(f"latency p50/p95:    {snap['p50_wait_ticks']}"
          f"/{snap['p95_wait_ticks']} ticks")
    print(f"mean batch size:    {snap['mean_batch_occupancy']:.2f} "
          f"(histogram {snap['occupancy_histogram']})")
    print(f"admission rejects:  {snap['admission_rejects']}, "
          f"evictions: {snap['evictions_ttl']} ttl + {snap['evictions_lru']} lru")
    print(f"traffic log: {len(engine.traffic.events)} retained events, "
          f"{engine.traffic.total_words():,} total words (exact under compaction)")

# ---------------------------------------------------------------------------
# 3. Correctness: served == each session stepped alone, unbatched.
# ---------------------------------------------------------------------------
print("\n=== 3. Served outputs vs solo unbatched runs ===")
worst = 0.0
for script in scripts:
    served = np.stack([r.y for r in results[script.session_id]])
    solo = engine.run(script.inputs)
    worst = max(worst, float(np.max(np.abs(served - solo))))
print(f"max abs diff across all sessions: {worst:.2e} (bound 1e-10)")

# ---------------------------------------------------------------------------
# 4. Sharded serving: a 4-shard cluster under Zipf-skewed tenant load.
#    Tenant-keyed consistent hashing piles the head tenants onto a few
#    shards; HotSpotRebalance migrates sessions off the hot shard through
#    the checkpoint path (one slot read + one slot write) mid-stream.
# ---------------------------------------------------------------------------
print("\n=== 4. Sharded cluster: skewed tenants, hot-spot rebalancing ===")
zipf_scripts = generate_zipf_scripts(
    input_size=engine.reference.config.input_size,
    num_sessions=24, num_tenants=6, zipf_exponent=1.4,
    mean_session_len=6.0, mean_interarrival_ticks=0.5, rng=7,
)
tenants = sorted({tenant_of(s.session_id) for s in zipf_scripts})
print(f"{len(zipf_scripts)} sessions across tenants {', '.join(tenants)}")

with ShardedServer(
    [TiledEngine(config, rng=0, traffic_max_events=4096) for _ in range(4)],
    max_batch=8,
    max_wait_ticks=2,
    session_capacity=12,   # per shard
    placement=ConsistentHashPlacement(key_of=tenant_of),
    rebalance=HotSpotRebalance(max_spread=2, max_moves=2),
) as cluster:
    zipf_results = run_open_loop(cluster, zipf_scripts)
    snap = cluster.snapshot()
print(f"cluster served {snap['requests_completed']} requests on "
      f"{snap['shards']} shards in {snap['cluster_ticks']} cluster ticks")
print(f"sessions migrated off hot shards: {snap['sessions_migrated']}")
print("per-shard completions:",
      [s["requests_completed"] for s in snap["per_shard"]])

worst = 0.0
solo_engine = TiledEngine(config, rng=0)
for script in zipf_scripts:
    served = np.stack([r.y for r in zipf_results[script.session_id]])
    solo = solo_engine.run(script.inputs)
    worst = max(worst, float(np.max(np.abs(served - solo))))
print(f"max abs diff vs solo runs, migrations included: {worst:.2e} "
      f"(bound 1e-10)")

# ---------------------------------------------------------------------------
# 5. Process cluster: worker processes, one SIGKILLed mid-stream.
#    Each shard lives in its own child process behind framed RPC; the
#    parent checkpoints session state, so killing a worker -9 loses
#    nothing — its sessions are restored onto a fresh process and their
#    trajectories continue exactly where the checkpoint left them.
# ---------------------------------------------------------------------------
print("\n=== 5. Process cluster: crash mid-stream, recover, verify ===")
with ProcCluster(
    config,
    seed=0,
    num_workers=2,
    max_batch=8,
    max_wait_ticks=2,
    session_capacity=24,
    checkpoint_interval=4,
) as proc_cluster:
    proc_results = {s.session_id: [] for s in zipf_scripts}
    for script in zipf_scripts:
        proc_cluster.open_session(script.session_id)
        proc_results[script.session_id] = [
            proc_cluster.submit(script.session_id, x) for x in script.inputs
        ]
    for tick in range(1, 200):
        proc_cluster.run_tick()
        if tick == 3:  # SIGKILL a worker with traffic in flight
            proc_cluster.kill_worker(0)
        if proc_cluster.queue_depth == 0:
            break
    print(f"worker restarts: {proc_cluster.worker_restarts}, "
          f"sessions recovered: {proc_cluster.supervisor.sessions_recovered}, "
          f"checkpoints taken: {proc_cluster.supervisor.checkpoints_taken}")
print("worker processes reaped:",
      all(not w.process.is_alive() for w in proc_cluster.workers))

worst = 0.0
solo_engine = TiledEngine(config, rng=0)
for script in zipf_scripts:
    served = np.stack([r.y for r in proc_results[script.session_id]])
    solo = solo_engine.run(script.inputs)
    worst = max(worst, float(np.max(np.abs(served - solo))))
print(f"max abs diff vs solo runs, kill included: {worst:.2e} (bound 1e-10)")

# ---------------------------------------------------------------------------
# 6. Large-N sparse serving: memory_size=1024 with top-K access.
#    Dense content addressing and linkage updates are O(N^2) per step —
#    unservable in the thousands of slots.  The sparse access policy
#    (access_policy="sparse", access_top_k=K) truncates addressing to
#    the K best slots and updates only the written linkage rows, so the
#    same serving stack handles N=1024+ (>= 5x dense at N=2048; see
#    BENCH_sparse_access.json for the measured speedups and the
#    accuracy deltas vs dense float64).
# ---------------------------------------------------------------------------
print("\n=== 6. Large-N sparse serving: N=1024, top-K access ===")
from repro.serve import large_n_sparse_config  # noqa: E402

sparse_config = large_n_sparse_config(memory_size=1024, access_top_k=64)
print(f"memory_size={sparse_config.memory_size}, "
      f"access_policy={sparse_config.access_policy!r}, "
      f"top_k={sparse_config.access_top_k}")
sparse_engine = TiledEngine(sparse_config, rng=0, traffic_max_events=4096)
sparse_scripts = generate_zipf_scripts(
    input_size=sparse_engine.reference.config.input_size,
    num_sessions=8, num_tenants=4, mean_session_len=4.0,
    mean_interarrival_ticks=0.5, rng=11,
)
with SessionServer(
    sparse_engine,
    max_batch=8,
    max_wait_ticks=2,
    session_capacity=8,
) as sparse_server:
    sparse_results = run_open_loop(sparse_server, sparse_scripts)
    snap = sparse_server.metrics.snapshot()
print(f"served {snap['requests_completed']} requests at N=1024 in "
      f"{snap['ticks']} ticks (mean batch {snap['mean_batch_occupancy']:.2f})")

worst = 0.0
solo_sparse = TiledEngine(sparse_config, rng=0)
for script in sparse_scripts:
    served = np.stack([r.y for r in sparse_results[script.session_id]])
    solo = solo_sparse.run(script.inputs)
    worst = max(worst, float(np.max(np.abs(served - solo))))
print(f"max abs diff vs solo sparse runs: {worst:.2e} (bound 1e-10)")

# ---------------------------------------------------------------------------
# 7. Observability: trace one request across processes, profile phases.
#    A Tracer attached to the cluster collects one span tree per traced
#    request — frontend/router spans in this process, shard/engine spans
#    in the worker processes (the trace context rides the RPC frame
#    header; workers drain their spans into tick replies).  profile=True
#    attaches per-phase engine timers, and the flight recorder keeps
#    each worker's last-K ticks for post-mortems.  All of it is pure
#    timing and counting: traced trajectories are bitwise the untraced
#    ones (priced < 3% throughput in benchmarks/bench_obs_smoke.py).
# ---------------------------------------------------------------------------
print("\n=== 7. Observability: cross-process span tree, phase profile ===")
from repro.obs import Tracer, render_span_tree  # noqa: E402

tracer = Tracer()
with ProcCluster(
    config,
    seed=0,
    num_workers=2,
    max_batch=8,
    max_wait_ticks=2,
    tracer=tracer,
    profile=True,
    flight_recorder=16,
) as obs_cluster:
    sid = obs_cluster.open_session("t00-traced-0")
    traced = [obs_cluster.submit(sid, x) for x in zipf_scripts[0].inputs[:3]]
    while not all(r.done for r in traced):
        obs_cluster.run_tick()
    phase_profile = obs_cluster.cluster_profile()

print("span tree (one traced request's serving ticks):")
print(render_span_tree(tracer.records()))
total = sum(entry["seconds"] for entry in phase_profile.values()) or 1.0
print("\nper-phase engine breakdown (merged across workers):")
for phase, entry in sorted(
    phase_profile.items(), key=lambda kv: -kv[1]["seconds"]
):
    print(f"  {phase:22s} {entry['seconds'] * 1e3:8.3f} ms "
          f"({100.0 * entry['seconds'] / total:5.1f}%)  "
          f"calls={entry['count']}")
