"""Design-space exploration: tile count, partition, and feature ablation.

Sweeps the HiMA configuration space with the cycle/area/power models:

1. linkage-partition choice vs forward-backward traffic (Eq. 3),
2. tile-count scaling for DNC and DNC-D (speed / area / power),
3. one-feature-at-a-time ablation of the full HiMA-DNC design.

Run:  python examples/design_space.py
"""

from repro.core import HiMAConfig, HiMAPerformanceModel
from repro.core.partition import factor_pairs, forward_backward_traffic
from repro.hw.area_model import AreaModel
from repro.hw.power_model import PowerModel
from repro.utils.formatting import format_table


def partition_sweep():
    print("1. Linkage partition sweep (Eq. 3, Nt = 16):\n")
    rows = []
    for nt_h, nt_w in factor_pairs(16):
        traffic = forward_backward_traffic(16, nt_h, nt_w)
        rows.append([f"{nt_h} x {nt_w}", f"{traffic:.2f}"])
    print(format_table(["grid (Nt_h x Nt_w)", "relative traffic"], rows))
    print("\n-> the near-square 4x4 grid minimizes traffic (paper Sec. 4.2)\n")


def tile_scaling():
    print("2. Tile-count scaling (memory grows with tiles, 64 rows/PT):\n")
    power_model = PowerModel()
    rows = []
    for distributed in (False, True):
        label = "DNC-D" if distributed else "DNC"
        for nt in (4, 8, 16, 32):
            cfg = HiMAConfig(memory_size=64 * nt, num_tiles=nt,
                             distributed=distributed)
            perf = HiMAPerformanceModel(cfg)
            area = AreaModel(cfg.memory_size, cfg.word_size, cfg.num_reads,
                             nt, distributed=distributed).breakdown()
            watts = power_model.estimate(perf.activity()).total
            rows.append([
                label, nt, 64 * nt,
                f"{perf.inference_time_us():.2f}",
                f"{area.total:.1f}", f"{watts:.2f}",
            ])
    print(format_table(
        ["model", "Nt", "N", "us/test", "area mm^2", "power W"], rows
    ))
    print("\n-> DNC power grows super-linearly with tiles; DNC-D stays "
          "near-linear (paper Fig. 12(a))\n")


def feature_ablation():
    print("3. One-feature-at-a-time ablation of HiMA-DNC (Nt = 16):\n")
    full = HiMAConfig.hima_dnc()
    variants = {
        "full HiMA-DNC": full,
        "- two-stage sort": full.with_features(two_stage_sort=False),
        "- HiMA-NoC (H-tree)": full.with_features(noc="htree"),
        "- submatrix partition": full.with_features(submatrix_partition=False),
        "+ DNC-D": full.with_features(distributed=True),
        "+ DNC-D + skim 20%": full.with_features(distributed=True,
                                                 skim_fraction=0.2),
    }
    base_time = HiMAPerformanceModel(full).inference_time_s()
    rows = []
    for name, cfg in variants.items():
        perf = HiMAPerformanceModel(cfg)
        rows.append([
            name, f"{perf.inference_time_us():.2f}",
            f"{base_time / perf.inference_time_s():.2f}x",
        ])
    print(format_table(["variant", "us/test", "vs full HiMA-DNC"], rows))
    print("\n-> removing any architectural feature slows the design down; "
          "the DNC-D model is the largest single lever (paper Fig. 11(a))")


if __name__ == "__main__":
    partition_sweep()
    tile_scaling()
    feature_ablation()
