"""Train a DNC on the copy task, then distribute it as DNC-D.

The copy task is the classic MANN probe: memorize a bit sequence, then
reproduce it.  This exercises content-based writes, the allocation
weighting, and temporal linkage reads — exactly the kernels HiMA
accelerates.  After training the monolithic DNC we build a DNC-D
(distributed) model from its weights, fine-tune the per-tile heads, and
compare accuracy — a miniature of the paper's Figure 10 methodology.

Run:  python examples/train_copy_task.py            (~1 minute)
"""

import numpy as np

from repro.autodiff import Tensor, no_grad
from repro.dnc import DNC, DNCConfig, DNCD, DNCDConfig
from repro.nn import Adam, clip_grad_norm
from repro.nn.losses import sigmoid_binary_cross_entropy
from repro.tasks import CopyTask

TRAIN_STEPS = 500
FINETUNE_STEPS = 150


def train(model, task, steps, lr=1e-2, log_every=100, label="model"):
    optimizer = Adam(model.parameters(), lr=lr)
    for step in range(1, steps + 1):
        sample = task.sample()
        optimizer.zero_grad()
        outputs, _ = model(Tensor(sample.inputs))
        recall = np.flatnonzero(sample.mask)
        loss = sigmoid_binary_cross_entropy(
            outputs[recall], sample.targets[recall]
        )
        loss.backward()
        clip_grad_norm(model.parameters(), 10.0)
        optimizer.step()
        if step % log_every == 0:
            print(f"  [{label}] step {step:4d}  loss {loss.item():.4f}")


def accuracy(model, task, episodes=30):
    correct = total = 0
    with no_grad():
        for _ in range(episodes):
            sample = task.sample()
            outputs, _ = model(Tensor(sample.inputs))
            recall = sample.mask == 1
            predictions = (outputs.data[recall] > 0).astype(float)
            correct += np.sum(predictions == sample.targets[recall])
            total += predictions.size
    return correct / total


def main():
    task = CopyTask(num_bits=4, min_length=2, max_length=4, rng=0)

    print(f"Training DNC on the copy task ({TRAIN_STEPS} steps)...")
    dnc = DNC(
        DNCConfig(input_size=task.input_size, output_size=task.output_size,
                  memory_size=16, word_size=8, num_reads=1, hidden_size=48),
        rng=0,
    )
    train(dnc, task, TRAIN_STEPS, label="DNC")
    dnc_acc = accuracy(dnc, task)
    print(f"DNC bit accuracy: {dnc_acc:.1%}\n")

    for num_tiles in (2, 4):
        print(f"Distributing as DNC-D with Nt={num_tiles} "
              f"(fine-tune {FINETUNE_STEPS} steps)...")
        dncd = DNCD(
            DNCDConfig(input_size=task.input_size,
                       output_size=task.output_size,
                       memory_size=16, word_size=8, num_reads=1,
                       hidden_size=48, num_tiles=num_tiles),
            rng=0,
        )
        dncd.init_from_dnc(dnc)
        train(dncd, task, FINETUNE_STEPS, lr=3e-3, log_every=75,
              label=f"DNC-D Nt={num_tiles}")
        dncd_acc = accuracy(dncd, task)
        delta = 100 * (dnc_acc - dncd_acc)
        print(f"DNC-D Nt={num_tiles} bit accuracy: {dncd_acc:.1%} "
              f"({delta:+.1f}pp vs DNC)\n")

    print("Paper shape (Fig. 10): distribution costs some accuracy, and the "
          "cost grows with the tile count.")


if __name__ == "__main__":
    main()
