"""Explore NoC topologies under HiMA's four traffic modes (Section 4.1).

The paper matches each DNC traffic shape to its natural topology:
CT broadcast/collect -> star, accumulation -> ring, transpose -> diagonal,
mat-vec/outer product -> full mesh.  This example runs each pattern on
every topology with the cycle-level simulator, showing why a *multi-mode*
NoC beats any fixed one — and why the H-tree saturates.

Run:  python examples/noc_explorer.py
"""

from repro.noc import NoCSimulator, build_topology, hop_statistics, traffic
from repro.utils.formatting import format_table

TOPOLOGIES = ("htree", "bintree", "mesh", "star", "ring", "hima")
NUM_PTS = 16
MESSAGE_SIZE = 8

PATTERNS = {
    "broadcast (star mode)": lambda t: traffic.broadcast(t, MESSAGE_SIZE),
    "gather (star mode)": lambda t: traffic.gather(t, MESSAGE_SIZE),
    "ring accumulate (ring mode)": lambda t: traffic.ring_accumulate(
        t, MESSAGE_SIZE
    ),
    "transpose (diagonal mode)": lambda t: traffic.transpose_exchange(
        t, MESSAGE_SIZE
    ),
    "all-to-all (full mode)": lambda t: traffic.all_to_all(t, MESSAGE_SIZE),
}


def main():
    print(f"Hop statistics ({NUM_PTS} PTs):\n")
    hop_rows = []
    for name in TOPOLOGIES:
        stats = hop_statistics(build_topology(name, NUM_PTS))
        hop_rows.append([
            name, stats.worst_case, f"{stats.average:.2f}",
            stats.ct_worst_case,
        ])
    print(format_table(
        ["topology", "worst PT-PT", "avg PT-PT", "worst CT-PT"], hop_rows
    ))
    print("\npaper: H-tree worst case 8 hops; HiMA-NoC (5x5) 4 hops\n")

    rows = []
    for pattern_name, make in PATTERNS.items():
        row = [pattern_name]
        latencies = {}
        for topo_name in TOPOLOGIES:
            topo = build_topology(topo_name, NUM_PTS)
            sim = NoCSimulator(topo)
            latencies[topo_name] = sim.run(make(topo)).makespan
        best = min(latencies.values())
        for topo_name in TOPOLOGIES:
            value = latencies[topo_name]
            marker = " *" if value == best else ""
            row.append(f"{value}{marker}")
        rows.append(row)

    print(format_table(
        ["pattern"] + list(TOPOLOGIES), rows,
        title=f"Makespan (cycles) per traffic pattern, {NUM_PTS} PTs, "
              f"{MESSAGE_SIZE}-flit messages (* = best)",
    ))
    print(
        "\nNo fixed topology wins everywhere — the multi-mode HiMA-NoC is "
        "competitive on every pattern, which is the Section 4.1 argument."
    )


if __name__ == "__main__":
    main()
