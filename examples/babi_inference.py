"""Profile DNC inference on the synthetic bAbI workload (mini Figure 4).

Runs the instrumented reference DNC on QA episodes from all 20 synthetic
task families and prints the kernel runtime breakdown next to the paper's
published CPU/GPU numbers, plus a per-kernel detail table (a live
regeneration of Table 1's access columns).

Run:  python examples/babi_inference.py
"""

import numpy as np

from repro.dnc.instrumentation import KERNEL_CATEGORIES, KernelCategory
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig
from repro.eval.fig4 import PAPER_CPU_PERCENT, PAPER_GPU_PERCENT
from repro.tasks.babi import BabiTaskSuite, TASK_NAMES, encode_example
from repro.utils.formatting import format_table

MEMORY_SIZE = 1024  # the paper's profiling configuration
WORD_SIZE = 64
HIDDEN_SIZE = 256
EPISODES = 5


def main():
    suite = BabiTaskSuite(rng=0)
    vocab = suite.vocabulary()
    model = NumpyDNC(
        NumpyDNCConfig(input_size=len(vocab), output_size=len(vocab),
                       memory_size=MEMORY_SIZE, word_size=WORD_SIZE,
                       num_reads=4, hidden_size=HIDDEN_SIZE),
        rng=0,
    )

    print(f"Profiling {EPISODES} episodes on a {MEMORY_SIZE}x{WORD_SIZE} "
          f"memory, LSTM {HIDDEN_SIZE} (paper configuration)...\n")
    steps = 0
    for episode in range(EPISODES):
        task_id = episode % 20 + 1
        example = suite.generate(task_id, 1)[0]
        inputs, _ = encode_example(example, vocab)
        model.run(inputs)
        steps += len(example.tokens)
        print(f"  episode {episode + 1}: task {task_id:2d} "
              f"({TASK_NAMES[task_id - 1]}), {len(example.tokens)} tokens")

    recorder = model.recorder
    seconds = recorder.total("seconds")
    print(f"\n{steps} timesteps in {seconds:.2f} s "
          f"({1e3 * seconds / EPISODES:.1f} ms/episode)\n")

    fractions = recorder.category_fractions("seconds")
    rows = [
        [cat.value, f"{100 * fractions[cat]:.1f}%",
         f"{PAPER_CPU_PERCENT[cat]:.0f}%", f"{PAPER_GPU_PERCENT[cat]:.0f}%"]
        for cat in KernelCategory
    ]
    print(format_table(
        ["category", "measured CPU", "paper CPU", "paper GPU"], rows,
        title="Kernel runtime breakdown (Figure 4)",
    ))

    memory_share = 100 * (1 - fractions[KernelCategory.NN_LSTM])
    print(f"\nMemory unit share: {memory_share:.1f}% "
          "(paper: >95% — the motivation for a memory access engine)\n")

    detail = [
        [name, KERNEL_CATEGORIES[name].value, stats.calls,
         f"{stats.ops:,}", f"{stats.ext_mem_accesses:,}",
         f"{stats.state_mem_accesses:,}", f"{stats.seconds * 1e3:.1f}"]
        for name, stats in sorted(
            recorder.stats.items(), key=lambda kv: -kv[1].seconds
        )
    ]
    print(format_table(
        ["kernel", "category", "calls", "ops", "ext access", "state access",
         "ms"],
        detail,
        title="Per-kernel detail (Table 1 access columns, measured live)",
    ))


if __name__ == "__main__":
    main()
