"""Quickstart: the three layers of the library in ~60 lines.

1. Run a functional DNC (the model HiMA accelerates) and inspect its
   memory state.
2. Execute the same model through HiMA's tiled engine and look at the
   inter-tile traffic it generates.
3. Evaluate the cycle-level performance model for the paper's three
   prototypes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.autodiff import Tensor
from repro.core import HiMAConfig, HiMAPerformanceModel, TiledEngine
from repro.dnc import DNC, DNCConfig
from repro.hw.power_model import PowerModel
from repro.hw.area_model import AreaModel

# ---------------------------------------------------------------------------
# 1. A functional DNC: soft write + soft read with history-based addressing.
# ---------------------------------------------------------------------------
print("=== 1. Functional DNC ===")
dnc = DNC(
    DNCConfig(input_size=8, output_size=8, memory_size=16, word_size=8,
              num_reads=2, hidden_size=32),
    rng=0,
)
inputs = Tensor(np.random.default_rng(0).standard_normal((5, 8)))
outputs, state = dnc(inputs)
memory = state.memory
print(f"outputs: {outputs.shape}, memory: {memory.memory.shape}")
print(f"usage in [0,1]: [{memory.usage.data.min():.3f}, "
      f"{memory.usage.data.max():.3f}]")
print(f"write weighting sums to {memory.write_weights.data.sum():.3f} "
      "(soft write)")
print(f"linkage diagonal is zero: {np.allclose(np.diag(memory.linkage.data), 0)}")

# ---------------------------------------------------------------------------
# 2. The tiled engine: the same math, sharded across HiMA's PTs.
# ---------------------------------------------------------------------------
print("\n=== 2. Tiled execution with traffic accounting ===")
config = HiMAConfig(memory_size=64, word_size=16, num_reads=2, num_tiles=4,
                    hidden_size=32)
engine = TiledEngine(config, rng=0)
error = engine.verify_against_reference(steps=3)
print(f"sharded vs monolithic max error: {error:.2e} (exact)")
for kernel, words in sorted(engine.traffic.words_by_kernel().items()):
    print(f"  {kernel:22s} {words:6d} words")
print(f"inter-PT words: {engine.traffic.inter_pt_words()}")

dncd_engine = TiledEngine(config.with_features(distributed=True), rng=0)
dncd_engine.verify_against_reference(steps=3)
print(f"DNC-D inter-PT words: {dncd_engine.traffic.inter_pt_words()} "
      "(Section 5.1: all memory ops are local)")

# ---------------------------------------------------------------------------
# 3. The performance/area/power models at paper scale.
# ---------------------------------------------------------------------------
print("\n=== 3. HiMA prototypes (N x W = 1024 x 64, Nt = 16) ===")
power_model = PowerModel()
for name, cfg in [
    ("HiMA-baseline", HiMAConfig.baseline()),
    ("HiMA-DNC", HiMAConfig.hima_dnc()),
    ("HiMA-DNC-D", HiMAConfig.hima_dncd(skim_fraction=0.2)),
]:
    perf = HiMAPerformanceModel(cfg)
    area = AreaModel(
        cfg.memory_size, cfg.word_size, cfg.num_reads, cfg.num_tiles,
        distributed=cfg.distributed, two_stage_sort=cfg.two_stage_sort,
        multimode_noc=(cfg.noc == "hima"),
    ).breakdown()
    watts = power_model.estimate(perf.activity()).total
    print(f"  {name:14s} {perf.inference_time_us():8.2f} us/test   "
          f"{area.total:6.1f} mm^2   {watts:5.2f} W")
print("\n(paper: HiMA-DNC 11.8 us, 80.69 mm^2, 16.96 W; "
      "HiMA-DNC-D 1.95 us, 67.71 mm^2, 10.28 W)")
