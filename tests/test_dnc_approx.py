"""Usage skimming and softmax approximation (paper Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dnc.approx import SoftmaxApproximator, skim_usage, skimmed_sort_order
from repro.errors import ConfigError


class TestSkimmedSortOrder:
    def test_zero_skim_is_exact_argsort(self, rng):
        usage = rng.random(32)
        order = skimmed_sort_order(usage, 0.0)
        assert np.array_equal(order, np.argsort(usage, kind="stable"))

    def test_order_is_a_permutation(self, rng):
        usage = rng.random(40)
        order = skimmed_sort_order(usage, 0.3)
        assert sorted(order.tolist()) == list(range(40))

    def test_pool_contains_k_smallest(self, rng):
        usage = rng.random(20)
        order = skimmed_sort_order(usage, 0.25)
        k = 5
        pool = set(order[:k].tolist())
        true_smallest = set(np.argsort(usage)[:k].tolist())
        assert pool == true_smallest

    def test_pool_in_index_order_not_usage_order(self):
        usage = np.array([0.05, 0.9, 0.01, 0.8, 0.03, 0.7, 0.95, 0.85])
        order = skimmed_sort_order(usage, 0.5)  # k = 4 smallest: 0, 2, 4, 5
        assert order[:4].tolist() == sorted(order[:4].tolist())

    def test_rest_sorted_by_usage(self, rng):
        usage = rng.random(24)
        order = skimmed_sort_order(usage, 0.25)
        rest = usage[order[6:]]
        assert np.all(np.diff(rest) >= 0)

    def test_batched(self, rng):
        usage = rng.random((3, 16))
        order = skimmed_sort_order(usage, 0.25)
        assert order.shape == (3, 16)
        for row in range(3):
            assert sorted(order[row].tolist()) == list(range(16))

    def test_batched_rows_match_independent_calls(self, rng):
        # The vectorized path must be bitwise the per-row formulation.
        usage = rng.random((6, 40))
        for fraction in (0.0, 0.1, 0.3, 0.5, 0.9):
            batched = skimmed_sort_order(usage, fraction)
            for row in range(usage.shape[0]):
                assert np.array_equal(
                    batched[row], skimmed_sort_order(usage[row], fraction)
                ), f"fraction={fraction}, row={row}"

    def test_higher_leading_dims(self, rng):
        usage = rng.random((2, 3, 20))
        order = skimmed_sort_order(usage, 0.4)
        assert order.shape == usage.shape
        flat_o, flat_u = order.reshape(-1, 20), usage.reshape(-1, 20)
        for row in range(flat_o.shape[0]):
            assert np.array_equal(
                flat_o[row], skimmed_sort_order(flat_u[row], 0.4)
            )

    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            skimmed_sort_order(np.ones(4), 1.5)

    def test_skim_usage_reports_sorted_length(self, rng):
        # Regression for the off-by-one: the sorted remainder after
        # skimming K entries is N - K, not N - (K - 1).
        usage = rng.random(100)
        order, effective = skim_usage(usage, 0.2)
        assert effective == 80  # N - K = 100 - 20
        assert sorted(order.tolist()) == list(range(100))
        _, full = skim_usage(usage, 0.0)
        assert full == 100

    def test_skim_usage_degenerate_pool_not_skimmed(self, rng):
        # K <= 1 disables skimming (the order is a full argsort), so the
        # reported sorted count must be the full N in that regime too.
        usage = rng.random(10)
        for fraction in (0.0, 0.05, 0.1):  # K = 0, 0, 1
            order, effective = skim_usage(usage, fraction)
            assert effective == 10
            assert np.array_equal(order, np.argsort(usage, kind="stable"))
        _, effective = skim_usage(usage, 0.2)  # K = 2: first real skim
        assert effective == 8

    def test_skim_usage_count_matches_config_effective_sort_length(self, rng):
        from repro.core.config import HiMAConfig

        for fraction in (0.0, 0.1, 0.25, 0.5):
            config = HiMAConfig(
                memory_size=64, word_size=16, num_tiles=4, hidden_size=32,
                skim_fraction=fraction,
            )
            _, effective = skim_usage(rng.random(64), fraction)
            assert effective == config.effective_sort_length


class TestSoftmaxApproximator:
    def test_exp_error_bound(self):
        assert SoftmaxApproximator().max_exp_error() < 0.02

    def test_more_segments_reduce_error(self):
        coarse = SoftmaxApproximator(num_segments=4)
        fine = SoftmaxApproximator(num_segments=64)
        assert fine.max_exp_error() < coarse.max_exp_error()

    def test_exp_exact_at_segment_edges(self):
        approx = SoftmaxApproximator(num_segments=8, input_range=8.0)
        edges = np.linspace(-8.0, 0.0, 9)[1:]  # interior + zero edges
        assert np.allclose(approx.exp(edges), np.exp(edges), atol=1e-12)

    def test_underflow_flushes_to_zero(self):
        approx = SoftmaxApproximator(input_range=8.0)
        assert approx.exp(np.array([-100.0]))[0] == 0.0

    def test_softmax_close_to_exact(self, rng):
        approx = SoftmaxApproximator(num_segments=16)
        scores = rng.standard_normal((5, 12)) * 3.0
        exact = np.exp(scores - scores.max(-1, keepdims=True))
        exact /= exact.sum(-1, keepdims=True)
        ours = approx.softmax(scores, axis=-1)
        assert np.max(np.abs(ours - exact)) < 0.02

    def test_softmax_is_distribution(self, rng):
        approx = SoftmaxApproximator()
        out = approx.softmax(rng.standard_normal((4, 9)), axis=-1)
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert np.all(out >= 0)

    def test_softmax_extreme_spread_falls_back_gracefully(self):
        approx = SoftmaxApproximator(input_range=8.0)
        out = approx.softmax(np.array([0.0, -100.0, -200.0]))
        assert out[0] == pytest.approx(1.0)
        assert np.allclose(out[1:], 0.0)

    def test_lut_cost(self):
        assert SoftmaxApproximator(num_segments=16).lut_cost_words() == 32

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            SoftmaxApproximator(num_segments=0)
        with pytest.raises(ConfigError):
            SoftmaxApproximator(input_range=-1.0)

    def test_cost_is_one_multiply_one_add(self):
        # Structural property: the approximation is affine per segment,
        # so applying it to a segment interior equals slope*x + intercept.
        approx = SoftmaxApproximator(num_segments=4, input_range=4.0)
        x = -1.5  # inside segment [-2, -1)
        segment = int((x + 4.0) / 4.0 * 4)
        expected = approx._slopes[segment] * x + approx._intercepts[segment]
        assert approx.exp(np.array([x]))[0] == pytest.approx(expected)


@given(
    st.integers(8, 64),
    st.floats(0.0, 0.9),
)
@settings(max_examples=25, deadline=None)
def test_skim_order_permutation_property(n, fraction):
    rng = np.random.default_rng(n)
    usage = rng.random(n)
    order = skimmed_sort_order(usage, fraction)
    assert sorted(order.tolist()) == list(range(n))


@given(
    st.integers(1, 6),
    st.integers(4, 48),
    st.floats(0.0, 1.0),
    st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_skim_order_batched_permutation_property(batch, n, fraction, seed):
    """Every row of a batched skimmed order is a valid permutation whose
    skimmed pool holds K smallest entries in index order and whose
    remainder ascends in usage."""
    rng = np.random.default_rng(seed)
    usage = rng.random((batch, n))
    order = skimmed_sort_order(usage, fraction)
    assert order.shape == usage.shape
    k = int(np.floor(fraction * n))
    k = k if k > 1 else 0
    for row in range(batch):
        assert sorted(order[row].tolist()) == list(range(n))
        pool = order[row, :k]
        assert np.all(np.diff(pool) > 0)  # index order
        rest_usage = usage[row, order[row, k:]]
        assert np.all(np.diff(rest_usage) >= 0)  # sorted ascending


@given(st.integers(2, 32))
@settings(max_examples=25, deadline=None)
def test_approx_softmax_distribution_property(n):
    rng = np.random.default_rng(n)
    approx = SoftmaxApproximator()
    out = approx.softmax(rng.standard_normal(n) * 5.0)
    assert out.sum() == pytest.approx(1.0)
