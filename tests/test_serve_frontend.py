"""Asyncio front door, admission spill, and queue-depth rebalancing.

:class:`AsyncFrontend` must give awaitable per-request semantics over
every topology (:class:`SessionServer`, :class:`ShardedServer`,
:class:`ProcCluster`) with the same numerics as solo stepping, raise
:class:`CapacityError` (not hang) on refusals, and never strand an
awaiter at shutdown.  The satellite policies ride along: admission
spill on the threaded cluster and :class:`QueueDepthRebalance` planning.
"""

import asyncio

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.errors import CapacityError, ConfigError, ServeError
from repro.serve import (
    AsyncFrontend,
    ProcCluster,
    QueueDepthRebalance,
    SessionServer,
    ShardedServer,
)

SEED = 7


def serve_config(**features):
    base = dict(
        memory_size=32, word_size=8, num_reads=1, num_tiles=4,
        hidden_size=16, two_stage_sort=False,
    )
    base.update(features)
    return HiMAConfig(**base)


def make_engine(**features):
    return TiledEngine(serve_config(**features), rng=SEED)


def solo_trajectory(config, inputs):
    engine = TiledEngine(config, rng=SEED)
    return engine.run(np.asarray(inputs))


class _PinnedPlacement:
    """Always nominates shard 0 — forces spill/rebalance paths."""

    def place(self, session_id, shards):
        return 0


class _FakeShard:
    def __init__(self, queue_depth, load=1, capacity=8,
                 pending_counts=None, p95_wait=None):
        self.queue_depth = queue_depth
        self.load = load
        self.capacity = capacity
        self.pending_counts = dict(pending_counts or {})
        self.p95_wait = p95_wait


# ---------------------------------------------------------------------------
# QueueDepthRebalance planning
# ---------------------------------------------------------------------------


class TestQueueDepthRebalance:
    def test_validation(self):
        with pytest.raises(ConfigError):
            QueueDepthRebalance(max_spread=0)
        with pytest.raises(ConfigError):
            QueueDepthRebalance(max_p95_spread=0.0)
        with pytest.raises(ConfigError):
            QueueDepthRebalance(max_moves=0)

    def test_no_move_inside_spread(self):
        policy = QueueDepthRebalance(max_spread=8)
        shards = [
            _FakeShard(8, pending_counts={"a": 8}),
            _FakeShard(0),
        ]
        assert policy.plan(shards) == []

    def test_moves_busiest_session_to_shallowest_shard(self):
        policy = QueueDepthRebalance(max_spread=4)
        shards = [
            _FakeShard(9, pending_counts={"a": 6, "b": 3}),
            _FakeShard(1, pending_counts={"c": 1}),
            _FakeShard(2, pending_counts={"d": 2}),
        ]
        assert policy.plan(shards) == [("a", 0, 1)]

    def test_p95_trigger_fires_below_depth_spread(self):
        # Depth spread 3 <= max_spread, but the hot shard's wait p95 is
        # way above the cluster's best: still worth a move.
        policy = QueueDepthRebalance(max_spread=8, max_p95_spread=2.0)
        shards = [
            _FakeShard(4, pending_counts={"a": 4}, p95_wait=9.0),
            _FakeShard(1, pending_counts={"b": 1}, p95_wait=1.0),
        ]
        assert policy.plan(shards) == [("a", 0, 1)]

    def test_p95_trigger_needs_positive_depth_spread(self):
        policy = QueueDepthRebalance(max_spread=8, max_p95_spread=2.0)
        shards = [
            _FakeShard(2, pending_counts={"a": 2}, p95_wait=9.0),
            _FakeShard(2, pending_counts={"b": 2}, p95_wait=1.0),
        ]
        assert policy.plan(shards) == []

    def test_respects_destination_capacity(self):
        policy = QueueDepthRebalance(max_spread=2)
        shards = [
            _FakeShard(9, pending_counts={"a": 9}),
            _FakeShard(0, load=8, capacity=8),
        ]
        assert policy.plan(shards) == []

    def test_max_moves_plans_distinct_victims(self):
        # Shard 0 is deep enough to stay the hot shard even after the
        # first simulated move, so both victims come off it — and the
        # second move lands on the *new* shallowest shard.
        policy = QueueDepthRebalance(max_spread=2, max_moves=2)
        shards = [
            _FakeShard(20, pending_counts={"a": 7, "b": 5}),
            _FakeShard(0, pending_counts={}),
            _FakeShard(1, pending_counts={"c": 1}),
        ]
        assert policy.plan(shards) == [("a", 0, 1), ("b", 0, 2)]

    def test_ignores_shards_without_p95_signal(self):
        policy = QueueDepthRebalance(max_spread=8, max_p95_spread=2.0)
        shards = [
            _FakeShard(4, pending_counts={"a": 4}, p95_wait=None),
            _FakeShard(1, pending_counts={"b": 1}, p95_wait=1.0),
        ]
        assert policy.plan(shards) == []


class TestClusterRebalanceIntegration:
    def test_deep_queue_migrates_and_results_stay_correct(self):
        config = serve_config()
        engines = [TiledEngine(config, rng=SEED) for _ in range(2)]
        server = ShardedServer(
            engines, max_batch=4, max_wait_ticks=0, parallel=False,
            placement=_PinnedPlacement(),
            rebalance=QueueDepthRebalance(max_spread=2, max_p95_spread=None),
        )
        with server:
            hot = server.open_session("hot")
            cold = server.open_session("cold")
            assert server.shard_of(hot) == 0 and server.shard_of(cold) == 0
            xs = [np.full(8, 0.1 * (t + 1)) for t in range(8)]
            hot_requests = [server.submit(hot, x) for x in xs]
            cold_request = server.submit(cold, xs[0])
            server.run_tick()
            # The hot session owned nearly all the queued work: the
            # queue-depth policy must have moved it off shard 0.
            assert server.shard_of(hot) == 1
            assert server.snapshot()["sessions_migrated"] >= 1
            server.drain()
            solo = solo_trajectory(config, xs)
            for t, request in enumerate(hot_requests):
                assert request.error is None
                np.testing.assert_allclose(
                    request.y, solo[t], atol=1e-10, rtol=0.0
                )
            np.testing.assert_allclose(
                cold_request.y, solo[0], atol=1e-10, rtol=0.0
            )


# ---------------------------------------------------------------------------
# Admission spill (threaded cluster)
# ---------------------------------------------------------------------------


class TestShardedServerSpill:
    def _spill_server(self, admission_spill):
        engines = [TiledEngine(serve_config(), rng=SEED) for _ in range(2)]
        return ShardedServer(
            engines, max_batch=4, max_wait_ticks=1, session_capacity=1,
            parallel=False, placement=_PinnedPlacement(),
            admission_spill=admission_spill,
        )

    def test_spill_retries_next_best_shard(self):
        with self._spill_server(True) as server:
            assert server.open_session("a") == "a"
            # A queued request pins "a" (in-process submits enqueue
            # immediately, unlike the proc cluster's buffered submits).
            server.submit("a", np.zeros(8))
            assert server.open_session("b") == "b"
            assert server.shard_of("b") == 1
            assert server.cluster_metrics().admission_spills == 1
            server.submit("b", np.zeros(8))
            assert server.open_session("c") is None
            server.drain()

    def test_spill_disabled_keeps_placed_shard_refusal(self):
        with self._spill_server(False) as server:
            assert server.open_session("a") == "a"
            server.submit("a", np.zeros(8))
            assert server.open_session("b") is None
            assert server.cluster_metrics().admission_spills == 0
            server.drain()


# ---------------------------------------------------------------------------
# AsyncFrontend
# ---------------------------------------------------------------------------


class _StubServer:
    """Never completes anything — for shutdown/error-path tests."""

    def __init__(self, tick_error=None):
        self.tick_error = tick_error
        self.closed = False

    def open_session(self, session_id=None):
        return session_id or "stub"

    def close_session(self, session_id):
        pass

    def submit(self, session_id, x):
        from repro.serve.batcher import StepRequest
        return StepRequest(
            session_id=session_id, x=np.asarray(x), submitted_tick=0, seq=0
        )

    def run_tick(self):
        if self.tick_error is not None:
            raise self.tick_error

    def close(self):
        self.closed = True


class TestAsyncFrontend:
    def test_submit_resolves_to_solo_outputs(self):
        config = serve_config()
        xs = [np.full(8, 0.1 * (t + 1)) for t in range(5)]
        solo = solo_trajectory(config, xs)

        async def scenario():
            server = SessionServer(
                TiledEngine(config, rng=SEED), max_batch=4, max_wait_ticks=1
            )
            async with AsyncFrontend(server) as frontend:
                sid = await frontend.open()
                return [await frontend.submit(sid, x) for x in xs]

        ys = asyncio.run(scenario())
        for t, y in enumerate(ys):
            np.testing.assert_allclose(y, solo[t], atol=1e-10, rtol=0.0)

    def test_concurrent_sessions_interleave_correctly(self):
        config = serve_config()
        rng = np.random.default_rng(0)
        inputs = {
            f"s{i}": [rng.standard_normal(8) for _ in range(4)]
            for i in range(6)
        }
        solo = {
            sid: solo_trajectory(config, np.asarray(xs))
            for sid, xs in inputs.items()
        }

        async def run_session(frontend, sid):
            assert await frontend.open(sid) == sid
            return [await frontend.submit(sid, x) for x in inputs[sid]]

        async def scenario():
            engines = [TiledEngine(config, rng=SEED) for _ in range(2)]
            server = ShardedServer(
                engines, max_batch=4, max_wait_ticks=1, parallel=False
            )
            async with AsyncFrontend(server) as frontend:
                results = await asyncio.gather(
                    *(run_session(frontend, sid) for sid in inputs)
                )
                assert frontend.pending == 0
                return dict(zip(inputs, results))

        served = asyncio.run(scenario())
        for sid, ys in served.items():
            for t, y in enumerate(ys):
                np.testing.assert_allclose(
                    y, solo[sid][t], atol=1e-10, rtol=0.0
                )

    def test_refused_open_raises_capacity_error(self):
        async def scenario():
            server = SessionServer(
                make_engine(), max_batch=4, max_wait_ticks=1,
                session_capacity=1,
            )
            async with AsyncFrontend(server) as frontend:
                sid = await frontend.open("a")
                # Direct (sync) submit: queued but never awaited, so the
                # driver stays parked and "a" stays pinned in the store.
                server.submit(sid, np.zeros(8))
                with pytest.raises(CapacityError):
                    await frontend.open("b")

        asyncio.run(scenario())

    def test_queue_full_submit_raises_capacity_error(self):
        async def scenario():
            server = SessionServer(
                make_engine(), max_batch=4, max_wait_ticks=1,
                queue_capacity=1,
            )
            async with AsyncFrontend(server) as frontend:
                sid = await frontend.open()
                server.submit(sid, np.zeros(8))  # fills the only slot
                with pytest.raises(CapacityError):
                    await frontend.submit(sid, np.zeros(8))

        asyncio.run(scenario())

    def test_aclose_fails_leftover_awaiters(self):
        async def scenario():
            frontend = AsyncFrontend(_StubServer())
            frontend.start()
            task = asyncio.ensure_future(frontend.submit("s", np.zeros(2)))
            while frontend.pending == 0:
                await asyncio.sleep(0.005)
            await frontend.aclose()
            with pytest.raises(ServeError, match="closed"):
                await task
            assert frontend.server.closed
            with pytest.raises(ServeError):
                await frontend.submit("s", np.zeros(2))

        asyncio.run(scenario())

    def test_tick_failure_fails_awaiters_not_hangs(self):
        async def scenario():
            server = _StubServer(tick_error=RuntimeError("engine on fire"))
            frontend = AsyncFrontend(server)
            try:
                frontend.start()
                with pytest.raises(ServeError, match="tick failed"):
                    await frontend.submit("s", np.zeros(2))
            finally:
                await frontend.aclose()

        asyncio.run(scenario())

    def test_frontend_over_proc_cluster(self):
        config = serve_config()
        xs = [np.full(8, 0.05 * (t + 1)) for t in range(4)]
        solo = solo_trajectory(config, xs)

        async def scenario():
            cluster = ProcCluster(
                config, seed=SEED, num_workers=2, max_batch=4,
                max_wait_ticks=0, checkpoint_interval=2,
            )
            procs = [worker.process for worker in cluster.workers]
            async with AsyncFrontend(cluster) as frontend:
                sid = await frontend.open()
                ys = [await frontend.submit(sid, x) for x in xs]
            return ys, procs

        ys, procs = asyncio.run(scenario())
        for t, y in enumerate(ys):
            np.testing.assert_allclose(y, solo[t], atol=1e-10, rtol=0.0)
        # Leaving the async with block reaped the worker processes.
        assert all(not p.is_alive() for p in procs)
