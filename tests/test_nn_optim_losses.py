"""Optimizers and losses."""

import numpy as np
import pytest

from repro.autodiff import Tensor, ops
from repro.errors import ConfigError
from repro.nn import Adam, RMSProp, SGD, clip_grad_norm
from repro.nn.losses import (
    mse_loss,
    sigmoid_binary_cross_entropy,
    softmax_cross_entropy,
)
from repro.nn.module import Parameter


def quadratic_loss(param):
    return ops.sum(ops.mul(param, param))


@pytest.mark.parametrize("make_optimizer", [
    lambda p: SGD(p, lr=0.1),
    lambda p: SGD(p, lr=0.05, momentum=0.9),
    lambda p: Adam(p, lr=0.1),
    lambda p: RMSProp(p, lr=0.05),
])
def test_optimizers_minimize_quadratic(make_optimizer):
    param = Parameter(np.array([3.0, -2.0, 1.0]))
    optimizer = make_optimizer([param])
    initial = float(quadratic_loss(param).data)
    for _ in range(60):
        optimizer.zero_grad()
        loss = quadratic_loss(param)
        loss.backward()
        optimizer.step()
    assert float(quadratic_loss(param).data) < 0.05 * initial


def test_optimizer_skips_params_without_grads():
    used = Parameter(np.array([1.0]))
    unused = Parameter(np.array([5.0]))
    optimizer = Adam([used, unused], lr=0.1)
    quadratic_loss(used).backward()
    optimizer.step()
    assert unused.data[0] == 5.0


def test_invalid_lr_rejected():
    with pytest.raises(ConfigError):
        SGD([Parameter(np.ones(1))], lr=0.0)


class TestClipGradNorm:
    def test_scales_down_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.01)
        clip_grad_norm([p], max_norm=1.0)
        assert np.all(p.grad == 0.01)

    def test_ignores_none_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0


class TestLosses:
    def test_mse_basic(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        assert np.allclose(pred.grad, [1.0, 2.0])

    def test_softmax_ce_matches_manual(self, rng):
        logits = Tensor(rng.standard_normal(5), requires_grad=True)
        target = np.zeros(5)
        target[2] = 1.0
        loss = softmax_cross_entropy(logits, target)
        probs = np.exp(logits.data) / np.exp(logits.data).sum()
        assert loss.item() == pytest.approx(-np.log(probs[2]))

    def test_softmax_ce_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([100.0, 0.0, 0.0]))
        target = np.array([1.0, 0.0, 0.0])
        assert softmax_cross_entropy(logits, target).item() < 1e-6

    def test_bce_matches_manual(self, rng):
        logits = Tensor(rng.standard_normal(6), requires_grad=True)
        targets = (rng.random(6) > 0.5).astype(float)
        loss = sigmoid_binary_cross_entropy(logits, targets)
        p = 1.0 / (1.0 + np.exp(-logits.data))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(manual, rel=1e-6)

    def test_bce_stable_at_extreme_logits(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        targets = np.array([1.0, 0.0])
        loss = sigmoid_binary_cross_entropy(logits, targets)
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_loss_gradients_finite(self, rng):
        logits = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        target = np.eye(5)[rng.integers(0, 5, size=4)]
        softmax_cross_entropy(logits, target).backward()
        assert np.all(np.isfinite(logits.grad))
