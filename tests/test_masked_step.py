"""Masked in-place engine step: the state arena's compute primitive.

``TiledEngine.step(x, state, active=idx)`` must advance exactly the
selected batch slots, bitwise-match the gather/step/scatter reference it
replaces (dispatch order preserved), and leave every inactive slot
untouched — for both engine modes and both dtype policies.
"""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine, gather_states, scatter_states
from repro.dnc.numpy_ref import NumpyDNCState
from repro.errors import ConfigError


def make_engine(**features):
    base = dict(
        memory_size=32, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, two_stage_sort=False,
    )
    base.update(features)
    return TiledEngine(HiMAConfig(**base), rng=0)


def warmed_state(engine, rng, batch):
    """A batched state advanced a few steps so every field is non-trivial."""
    state = engine.initial_state(batch_size=batch)
    for _ in range(2):
        x = rng.standard_normal((batch, 16)).astype(engine.config.np_dtype)
        _, state = engine.step(x, state)
    return state


def copy_state(state):
    return NumpyDNCState(**{
        name: getattr(state, name).copy() for name in NumpyDNCState.FIELDS
    })


def fields_equal(a, b):
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in NumpyDNCState.FIELDS
    )


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("distributed", [False, True], ids=["dnc", "dncd"])
def test_masked_step_matches_gather_scatter(dtype, distributed, rng):
    engine = make_engine(dtype=dtype, distributed=distributed)
    b = 6
    arena = warmed_state(engine, rng, b)
    snapshot = copy_state(arena)
    sessions = scatter_states(copy_state(arena))
    x = rng.standard_normal((b, 16)).astype(dtype)

    idx = np.array([4, 1, 3])  # dispatch order, deliberately not sorted
    y, out = engine.step(x, arena, active=idx)
    assert out is arena  # in place: the same state object

    # Reference: gather the same rows in the same order, step, scatter.
    ref_batched = gather_states([sessions[i] for i in idx])
    y_ref, new_ref = engine.step(x[idx], ref_batched)
    ref_rows = scatter_states(new_ref)
    for k, i in enumerate(idx):
        assert np.array_equal(y[i], y_ref[k])
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(
                getattr(arena, name)[i], getattr(ref_rows[k], name)
            ), (name, i)
    # Inactive slots: bitwise untouched, y rows zero.
    for i in (0, 2, 5):
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(
                getattr(arena, name)[i], getattr(snapshot, name)[i]
            ), (name, i)
        assert np.all(y[i] == 0.0)


@pytest.mark.parametrize("distributed", [False, True], ids=["dnc", "dncd"])
def test_dense_fast_path_is_zero_copy_and_matches_plain_step(distributed, rng):
    engine = make_engine(distributed=distributed)
    b = 4
    arena = warmed_state(engine, rng, b)
    reference = copy_state(arena)
    x = rng.standard_normal((b, 16))

    y, out = engine.step(x, arena, active=np.arange(b))
    assert out is arena
    assert engine.last_state_bytes_copied == 0

    y_ref, new_ref = engine.step(x, reference)
    assert np.array_equal(y, y_ref)
    assert fields_equal(arena, new_ref)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_permuted_full_dispatch_is_dense_and_matches_gather_scatter(dtype, rng):
    """Full occupancy in *any* dispatch order takes the zero-copy dense
    path, and per-row kernels make the batch order irrelevant — the
    results stay bitwise those of the dispatch-ordered gather/scatter
    reference (the property the serving layer's churn equivalence needs
    after slot reuse permutes dispatch order)."""
    engine = make_engine(dtype=dtype)
    b = 5
    arena = warmed_state(engine, rng, b)
    sessions = scatter_states(copy_state(arena))
    x = rng.standard_normal((b, 16)).astype(dtype)
    idx = np.array([3, 0, 4, 2, 1])
    y, _ = engine.step(x, arena, active=idx)
    assert engine.last_state_bytes_copied == 0  # dense path despite order
    ref_batched = gather_states([sessions[i] for i in idx])
    y_ref, new_ref = engine.step(x[idx], ref_batched)
    ref_rows = scatter_states(new_ref)
    for k, i in enumerate(idx):
        assert np.array_equal(y[i], y_ref[k])
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(
                getattr(arena, name)[i], getattr(ref_rows[k], name)
            ), (name, i)


class TestDensePartialOccupancyPath:
    """Partial occupancy above ``masked_dense_min_occupancy``: the step
    runs over the whole resident batch with the O(N^2) write phase
    skipping inactive slots in place.  The path must be numerically
    interchangeable with the compact gather path, keep inactive slots
    bitwise untouched, and slash the per-tick state movement."""

    @pytest.mark.parametrize(
        "dtype,tol", [("float64", 1e-10), ("float32", 1e-4)]
    )
    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "unfused"])
    def test_dense_partial_matches_compact_path(self, dtype, tol, fused, rng):
        dense = make_engine(
            dtype=dtype, fused_write_linkage=fused,
            masked_dense_min_occupancy=0.0,
        )
        compact = make_engine(
            dtype=dtype, fused_write_linkage=fused,
            masked_dense_min_occupancy=1.0,
        )
        b = 6
        arena_dense = warmed_state(dense, rng, b)
        arena_compact = copy_state(arena_dense)
        worst = 0.0
        for t in range(6):
            x = rng.standard_normal((b, 16)).astype(dtype)
            idx = np.asarray(rng.permutation(b)[: 1 + t % 5])
            yd, _ = dense.step(x, arena_dense, active=idx)
            yc, _ = compact.step(x, arena_compact, active=idx)
            worst = max(worst, float(np.max(np.abs(yd - yc))))
            for name in NumpyDNCState.FIELDS:
                worst = max(worst, float(np.max(np.abs(
                    getattr(arena_dense, name) - getattr(arena_compact, name)
                ))))
        # Interchangeable paths.  float64 holds the serving bar; float32
        # is bounded by the engine's documented batched-vs-unbatched
        # story — full-capacity vs dispatch-sized gemms (m=1 especially)
        # can hit different BLAS kernels that round differently.
        assert worst <= tol

    def test_inactive_slots_bitwise_untouched_and_y_zero(self, rng):
        engine = make_engine(masked_dense_min_occupancy=0.0)
        b = 5
        arena = warmed_state(engine, rng, b)
        snapshot = copy_state(arena)
        idx = np.array([4, 1, 2])
        y, out = engine.step(rng.standard_normal((b, 16)), arena, active=idx)
        assert out is arena
        for i in (0, 3):
            for name in NumpyDNCState.FIELDS:
                assert np.array_equal(
                    getattr(arena, name)[i], getattr(snapshot, name)[i]
                ), (name, i)
            assert np.all(y[i] == 0.0)

    def test_dense_partial_copies_only_small_fields(self, rng):
        """With the fused in-place write phase the N^2 fields never
        move: the copy counter records one write per active row of the
        remaining fields — under half the compact path's two full-row
        copies."""
        engine = make_engine(masked_dense_min_occupancy=0.0)
        b = 5
        arena = warmed_state(engine, rng, b)
        idx = np.array([2, 0])
        engine.step(rng.standard_normal((b, 16)), arena, active=idx)
        big3 = (
            arena.memory[0].nbytes
            + arena.linkage[0].nbytes
            + arena.precedence[0].nbytes
        )
        assert engine.last_state_bytes_copied == idx.size * (
            arena.row_nbytes - big3
        )
        assert engine.last_state_bytes_copied < 2 * idx.size * arena.row_nbytes

    def test_threshold_selects_the_path(self, rng):
        """The occupancy fraction against ``masked_dense_min_occupancy``
        decides gather vs dense — visible through the copy counter."""
        b, k = 6, 3  # occupancy 0.5
        idx = np.array([4, 0, 2])
        below = make_engine(masked_dense_min_occupancy=0.75)
        arena = warmed_state(below, rng, b)
        below.step(rng.standard_normal((b, 16)), arena, active=idx)
        assert below.last_state_bytes_copied == 2 * k * arena.row_nbytes
        above = make_engine(masked_dense_min_occupancy=0.5)
        arena = warmed_state(above, rng, b)
        above.step(rng.standard_normal((b, 16)), arena, active=idx)
        assert above.last_state_bytes_copied < 2 * k * arena.row_nbytes

    def test_distributed_engine_keeps_compact_path(self, rng):
        """DNC-D's stacked kernels view-shard the state arrays, so the
        dense in-place write phase never applies to it."""
        engine = make_engine(distributed=True, masked_dense_min_occupancy=0.0)
        b = 4
        arena = warmed_state(engine, rng, b)
        idx = np.array([1, 3, 0])
        engine.step(rng.standard_normal((b, 16)), arena, active=idx)
        assert engine.last_state_bytes_copied == 2 * idx.size * arena.row_nbytes

    def test_dense_partial_traffic_scales_by_active_count(self, rng):
        solo = make_engine()
        solo.traffic.clear()
        solo.step(rng.standard_normal(16), solo.initial_state())
        solo_words = solo.traffic.total_words()

        engine = make_engine(masked_dense_min_occupancy=0.0)
        arena = engine.initial_state(batch_size=5)
        engine.traffic.clear()
        engine.step(
            rng.standard_normal((5, 16)), arena, active=np.array([0, 2, 4])
        )
        assert engine.traffic.total_words() == 3 * solo_words


def test_partial_mask_reports_copy_bytes(rng):
    engine = make_engine()
    b = 5
    arena = warmed_state(engine, rng, b)
    idx = np.array([2, 0])
    engine.step(rng.standard_normal((b, 16)), arena, active=idx)
    assert engine.last_state_bytes_copied == 2 * idx.size * arena.row_nbytes
    # Unmasked steps reset the counter (documented contract).
    engine.step(rng.standard_normal(16), engine.initial_state())
    assert engine.last_state_bytes_copied == 0


def test_boolean_mask_equivalent_to_indices(rng):
    engine = make_engine()
    b = 4
    arena_a = warmed_state(engine, rng, b)
    arena_b = copy_state(arena_a)
    x = np.asarray(rng.standard_normal((b, 16)))
    mask = np.array([True, False, True, False])
    ya, _ = engine.step(x, arena_a, active=mask)
    yb, _ = engine.step(x, arena_b, active=np.flatnonzero(mask))
    assert np.array_equal(ya, yb)
    assert fields_equal(arena_a, arena_b)


def test_empty_active_is_a_no_op(rng):
    engine = make_engine()
    arena = warmed_state(engine, rng, 3)
    snapshot = copy_state(arena)
    y, out = engine.step(
        np.zeros((3, 16)), arena, active=np.array([], dtype=int)
    )
    assert out is arena
    assert np.all(y == 0.0)
    assert fields_equal(arena, snapshot)


def test_masked_traffic_scales_by_active_count(rng):
    solo = make_engine()
    solo.traffic.clear()
    solo.step(rng.standard_normal(16), solo.initial_state())
    solo_words = solo.traffic.total_words()

    engine = make_engine()
    arena = engine.initial_state(batch_size=5)
    engine.traffic.clear()
    engine.step(
        rng.standard_normal((5, 16)), arena, active=np.array([0, 2, 4])
    )
    assert engine.traffic.total_words() == 3 * solo_words


class TestValidation:
    def setup_method(self):
        self.engine = make_engine()
        self.arena = self.engine.initial_state(batch_size=4)
        self.x = np.zeros((4, 16))

    def test_unbatched_state_rejected(self):
        with pytest.raises(ConfigError):
            self.engine.step(
                np.zeros(16), self.engine.initial_state(), active=np.array([0])
            )

    def test_wrong_x_shape_rejected(self):
        with pytest.raises(ConfigError):
            self.engine.step(
                np.zeros((3, 16)), self.arena, active=np.array([0])
            )

    def test_out_of_range_slot_rejected(self):
        with pytest.raises(ConfigError):
            self.engine.step(self.x, self.arena, active=np.array([0, 4]))
        with pytest.raises(ConfigError):
            self.engine.step(self.x, self.arena, active=np.array([-1]))

    def test_duplicate_slots_rejected(self):
        with pytest.raises(ConfigError):
            self.engine.step(self.x, self.arena, active=np.array([1, 1]))

    def test_wrong_length_boolean_mask_rejected(self):
        with pytest.raises(ConfigError):
            self.engine.step(
                self.x, self.arena, active=np.array([True, False])
            )
