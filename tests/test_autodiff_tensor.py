"""Tensor mechanics: tape construction, backward, no_grad, broadcasting."""

import numpy as np
import pytest

from repro.autodiff import Tensor, is_grad_enabled, no_grad, ops
from repro.autodiff.tensor import unbroadcast
from repro.errors import GradientError


class TestTensorBasics:
    def test_wraps_data_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_wrapping_tensor_unwraps_data(self):
        inner = Tensor([1.0, 2.0])
        outer = Tensor(inner)
        assert np.array_equal(outer.data, inner.data)

    def test_repr_mentions_grad_flag(self):
        t = Tensor([1.0], requires_grad=True, name="w")
        assert "requires_grad=True" in repr(t)
        assert "w" in repr(t)

    def test_item_and_len(self):
        assert Tensor(3.5).item() == 3.5
        assert len(Tensor([1, 2, 3])) == 3

    def test_detach_cuts_tape(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert b.parents == []
        assert not b.requires_grad


class TestBackward:
    def test_scalar_backward_default_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = ops.sum(a * a)
        loss.backward()
        assert np.allclose(a.grad, [2.0, 4.0])

    def test_nonscalar_backward_requires_grad_argument(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = a * 2.0
        with pytest.raises(GradientError):
            out.backward()

    def test_wrong_grad_shape_rejected(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = a * 2.0
        with pytest.raises(GradientError):
            out.backward(np.ones(4))

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor(np.ones(2), requires_grad=True)
        for _ in range(2):
            loss = ops.sum(a * 3.0)
            loss.backward()
        assert np.allclose(a.grad, [6.0, 6.0])

    def test_zero_grad_clears(self):
        a = Tensor(np.ones(2), requires_grad=True)
        ops.sum(a).backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # loss = a*a + a*a should give grad 4a, not 2a.
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * a
        loss = ops.sum(b + b)
        loss.backward()
        assert np.allclose(a.grad, [12.0])

    def test_shared_subexpression_deep_chain(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        x = a * a          # 4
        y = x * x          # 16, dy/da = 4a^3 = 32
        ops.sum(y).backward()
        assert np.allclose(a.grad, [32.0])


class TestNoGrad:
    def test_no_grad_builds_no_tape(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert out.parents == []

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sums_leading_dims(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(g, (2, 3)) == 4.0)

    def test_sums_size_one_dims(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        assert np.all(out == 2.0)

    def test_broadcast_add_gradients(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        ops.sum(a + b).backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.all(b.grad == 2.0)


class TestOperatorOverloads:
    def test_arithmetic_operators(self):
        a = Tensor([2.0])
        assert (a + 1).data[0] == 3.0
        assert (1 + a).data[0] == 3.0
        assert (a - 1).data[0] == 1.0
        assert (1 - a).data[0] == -1.0
        assert (a * 3).data[0] == 6.0
        assert (a / 2).data[0] == 1.0
        assert (4 / a).data[0] == 2.0
        assert (-a).data[0] == -2.0
        assert (a**2).data[0] == 4.0

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0], [2.0]])
        assert np.allclose((a @ b).data, [[1.0], [2.0]])

    def test_getitem_and_transpose(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(a[0].data, [0, 1, 2])
        assert a.T.shape == (3, 2)
        assert a.reshape(3, 2).shape == (3, 2)
        assert a.transpose(1, 0).shape == (3, 2)

    def test_sum_mean_methods(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.sum().item() == 15.0
        assert a.mean().item() == 2.5
        assert a.sum(axis=0).shape == (3,)
