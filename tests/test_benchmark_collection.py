"""Guard: `pytest benchmarks/` must collect the bench files.

The bench files are named ``bench_*.py``; pytest only collects them
because pyproject.toml widens ``python_files``.  This test fails loudly
if that configuration regresses (the symptom would be a silent
"no tests ran" from the benchmark harness).
"""

import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_bench_files_are_collected():
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--collect-only",
         "-q", "--no-header", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "bench_fig11_speed_area_power.py" in result.stdout
    assert "bench_table1_kernel_analysis.py" in result.stdout
    assert "bench_serve_load.py" in result.stdout
    assert "bench_shard_scaling.py" in result.stdout
    # All bench files collect tests. `-q --collect-only` emits one node id
    # per test on pytest >= 8 and `path: count` summary lines before that;
    # accept either format.
    collected = 0
    for line in result.stdout.splitlines():
        if not line.startswith("benchmarks/bench_"):
            continue
        if "::" in line:
            collected += 1
        elif ":" in line:
            collected += int(line.rsplit(":", 1)[1])
    assert collected >= 20


def test_committed_trajectory_artifacts_match_schema():
    """Every checked-in BENCH_*.json must satisfy the contract registered
    for it in repro.eval.bench_schema, so no perf trajectory (batched
    throughput or serve load) can silently drift."""
    from repro.eval.bench_schema import ARTIFACT_VALIDATORS, validate_artifact

    for name in ARTIFACT_VALIDATORS:
        artifact = REPO_ROOT / name
        assert artifact.exists(), f"{name} missing from repo root"
        problems = validate_artifact(name, json.loads(artifact.read_text()))
        assert problems == [], f"{name}:\n" + "\n".join(problems)


def test_result_dataclasses_share_schema_keys():
    """The artifact writers are generated from the schema key tuples —
    the writer and validator cannot disagree on the shape."""
    import dataclasses

    from repro.eval.bench_schema import (
        ENTRY_KEYS,
        SERVE_ENTRY_KEYS,
        SHARD_ENTRY_KEYS,
        SPARSE_ENTRY_KEYS,
    )
    from repro.eval.runners import BatchedThroughput, SparseAccessResult
    from repro.serve.loadgen import ServeLoadResult, ShardScalingResult

    assert set(ENTRY_KEYS) <= {
        f.name for f in dataclasses.fields(BatchedThroughput)
    }
    assert set(SERVE_ENTRY_KEYS) == {
        f.name for f in dataclasses.fields(ServeLoadResult)
    }
    assert set(SHARD_ENTRY_KEYS) == {
        f.name for f in dataclasses.fields(ShardScalingResult)
    }
    assert set(SPARSE_ENTRY_KEYS) == {
        f.name for f in dataclasses.fields(SparseAccessResult)
    }


def test_validator_cli_accepts_multiple_artifacts():
    """benchmarks/validate_bench_schema.py validates every named artifact
    and fails on an unregistered filename."""
    cli = REPO_ROOT / "benchmarks" / "validate_bench_schema.py"
    ok = subprocess.run(
        [sys.executable, str(cli),
         str(REPO_ROOT / "BENCH_batched_throughput.json"),
         str(REPO_ROOT / "BENCH_serve_load.json"),
         str(REPO_ROOT / "BENCH_shard_scaling.json")],
        capture_output=True, text=True, timeout=60,
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr
    bad = subprocess.run(
        [sys.executable, str(cli), str(REPO_ROOT / "ROADMAP.md")],
        capture_output=True, text=True, timeout=60,
    )
    assert bad.returncode == 1


def test_every_figure_has_a_bench_file():
    bench_dir = REPO_ROOT / "benchmarks"
    names = {p.name for p in bench_dir.glob("bench_*.py")}
    expected = {
        "bench_table1_kernel_analysis.py",
        "bench_fig4_runtime_breakdown.py",
        "bench_fig5_noc_scalability.py",
        "bench_fig6_partition_traffic.py",
        "bench_fig7_two_stage_sort.py",
        "bench_fig10_dncd_accuracy.py",
        "bench_fig11_speed_area_power.py",
        "bench_fig12_comparison.py",
    }
    assert expected <= names
