"""Guard: `pytest benchmarks/` must collect the bench files.

The bench files are named ``bench_*.py``; pytest only collects them
because pyproject.toml widens ``python_files``.  This test fails loudly
if that configuration regresses (the symptom would be a silent
"no tests ran" from the benchmark harness).
"""

import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_bench_files_are_collected():
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--collect-only",
         "-q", "--no-header", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "bench_fig11_speed_area_power.py" in result.stdout
    assert "bench_table1_kernel_analysis.py" in result.stdout
    # All bench files collect tests. `-q --collect-only` emits one node id
    # per test on pytest >= 8 and `path: count` summary lines before that;
    # accept either format.
    collected = 0
    for line in result.stdout.splitlines():
        if not line.startswith("benchmarks/bench_"):
            continue
        if "::" in line:
            collected += 1
        elif ":" in line:
            collected += int(line.rsplit(":", 1)[1])
    assert collected >= 20


def test_committed_trajectory_artifact_matches_schema():
    """The checked-in BENCH_batched_throughput.json must satisfy the
    contract in repro.eval.bench_schema (incl. dtype + sort-enabled
    variant entries) so the perf trajectory cannot silently drift."""
    from repro.eval.bench_schema import validate_trajectory

    artifact = REPO_ROOT / "BENCH_batched_throughput.json"
    assert artifact.exists(), "trajectory artifact missing from repo root"
    problems = validate_trajectory(json.loads(artifact.read_text()))
    assert problems == [], "\n".join(problems)


def test_every_figure_has_a_bench_file():
    bench_dir = REPO_ROOT / "benchmarks"
    names = {p.name for p in bench_dir.glob("bench_*.py")}
    expected = {
        "bench_table1_kernel_analysis.py",
        "bench_fig4_runtime_breakdown.py",
        "bench_fig5_noc_scalability.py",
        "bench_fig6_partition_traffic.py",
        "bench_fig7_two_stage_sort.py",
        "bench_fig10_dncd_accuracy.py",
        "bench_fig11_speed_area_power.py",
        "bench_fig12_comparison.py",
    }
    assert expected <= names
