"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.dnc.model import DNC, DNCConfig


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_dnc_config():
    """A DNC small enough for gradient checks and fast training."""
    return DNCConfig(
        input_size=5, output_size=3, memory_size=8, word_size=4,
        num_reads=2, hidden_size=12,
    )


@pytest.fixture
def small_dnc(small_dnc_config):
    return DNC(small_dnc_config, rng=0)


@pytest.fixture
def small_hima_config():
    """A HiMA config small enough for fast engine/perf tests."""
    return HiMAConfig(
        memory_size=64, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, sequence_length=4,
    )
