"""Sparse top-K access policy: exactness at K=N, serving, and traffic.

The acceptance bars for :mod:`repro.core.access`:

* at K = N the sparse policy's write phase is **bitwise** the fused
  dense kernel (the softmax support is every slot, so the kernel's
  skipped-stale-row approximation is vacuous), and whole trajectories
  match the dense policy to <= 1e-10;
* serving sparse sessions — arena churn, a sharded-cluster migration,
  a process-cluster kill/restore — matches solo sparse stepping to
  <= 1e-10, exactly the bar the dense serving stack already meets;
* checkpoint round trips of mid-trajectory sparse state are bitwise;
* :class:`~repro.core.engine.TrafficLog` words for the O(N^2)-shaped
  kernels scale with K, not N.
"""

import numpy as np
import pytest

import repro.core.kernels as K
from repro.core.access import DenseAccess, SparseAccess, make_access_policy
from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.dnc.numpy_ref import NumpyDNCState
from repro.errors import ConfigError
from repro.serve import SessionServer, ShardedServer
from repro.serve.proc import ProcCluster

SEED = 7


def sparse_config(**features):
    base = dict(
        memory_size=64, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, two_stage_sort=False,
        access_policy="sparse", access_top_k=16,
    )
    base.update(features)
    return HiMAConfig(**base)


def dense_config(**features):
    features.setdefault("access_policy", "dense")
    features.setdefault("access_top_k", 0)
    return sparse_config(**features)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_policy_factory(self):
        assert isinstance(make_access_policy(dense_config()), DenseAccess)
        assert isinstance(make_access_policy(sparse_config()), SparseAccess)

    def test_sparse_requires_top_k_in_range(self):
        with pytest.raises(ConfigError):
            sparse_config(access_top_k=0)
        with pytest.raises(ConfigError):
            sparse_config(access_top_k=65)
        with pytest.raises(ConfigError):
            sparse_config(access_top_k=-3)
        assert sparse_config(access_top_k=64).access_top_k == 64

    def test_dense_rejects_stray_top_k(self):
        with pytest.raises(ConfigError):
            dense_config(access_top_k=8)

    def test_sparse_excludes_distributed_and_skim(self):
        with pytest.raises(ConfigError):
            sparse_config(distributed=True)
        with pytest.raises(ConfigError):
            sparse_config(skim_fraction=0.25)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            sparse_config(access_policy="topk")


# ---------------------------------------------------------------------------
# The sparse write kernel
# ---------------------------------------------------------------------------


class TestSparseWriteKernel:
    def make_operands(self, rng, batch=3, n=32, w=8, support=None):
        mem = rng.standard_normal((batch, n, w))
        link = rng.random((batch, n, n)) * 0.05
        for b in range(batch):
            np.fill_diagonal(link[b], 0.0)
        prec = rng.random((batch, n))
        prec /= prec.sum(-1, keepdims=True)
        write_w = rng.random((batch, n))
        if support is not None:
            mask = np.zeros((batch, n), dtype=bool)
            for b in range(batch):
                mask[b, rng.choice(n, support, replace=False)] = True
            write_w *= mask
        write_w /= 2.0 * write_w.sum(-1, keepdims=True)
        erase = rng.random((batch, w))
        value = rng.standard_normal((batch, w))
        return mem, link, prec, write_w, erase, value

    def test_full_support_bitwise_matches_fused(self, rng):
        """Dense write weights (softmax support = N): bitwise identity."""
        ops = self.make_operands(rng)
        fused = K.fused_erase_write_linkage(*ops)
        sparse = K.sparse_erase_write_linkage(*ops)
        for f, s in zip(fused, sparse):
            assert np.array_equal(f, s)

    def test_inplace_matches_copy_path_bitwise(self, rng):
        ops = self.make_operands(rng, support=6)
        expect = K.sparse_erase_write_linkage(*ops)
        mem, link, prec = ops[0].copy(), ops[1].copy(), ops[2].copy()
        K.sparse_erase_write_linkage_inplace(mem, link, prec, *ops[3:])
        for e, got in zip(expect, (mem, link, prec)):
            assert np.array_equal(e, got)

    def test_unbatched_promotes_and_matches_batched(self, rng):
        ops = self.make_operands(rng, batch=1, support=6)
        batched = K.sparse_erase_write_linkage(*ops)
        flat = K.sparse_erase_write_linkage(*(op[0] for op in ops))
        for b, f in zip(batched, flat):
            assert np.array_equal(b[0], f)

    def test_rows_outside_support_untouched(self, rng):
        """The documented approximation: stale rows keep their links."""
        mem, link, prec, write_w, erase, value = self.make_operands(
            rng, support=5
        )
        new_mem, new_link, _ = K.sparse_erase_write_linkage(
            mem, link, prec, write_w, erase, value
        )
        for b in range(mem.shape[0]):
            cold = np.flatnonzero(write_w[b] == 0.0)
            hot = np.flatnonzero(write_w[b])
            assert np.array_equal(new_mem[b][cold], mem[b][cold])
            assert np.array_equal(new_link[b][cold], link[b][cold])
            assert not np.array_equal(new_link[b][hot], link[b][hot])

    def test_active_mask_leaves_inactive_slots_bitwise(self, rng):
        mem, link, prec, write_w, erase, value = self.make_operands(
            rng, support=6
        )
        keep = (mem.copy(), link.copy(), prec.copy())
        K.sparse_erase_write_linkage_inplace(
            mem, link, prec, write_w, erase, value, active=np.array([0, 2])
        )
        for got, old in zip((mem, link, prec), keep):
            assert np.array_equal(got[1], old[1])
            assert not np.array_equal(got[0], old[0])
            assert not np.array_equal(got[2], old[2])

    def test_active_rejected_without_batch_axis(self, rng):
        ops = [op[0] for op in self.make_operands(rng, batch=1)]
        with pytest.raises(ValueError):
            K.sparse_erase_write_linkage_inplace(
                *ops, active=np.array([0])
            )


# ---------------------------------------------------------------------------
# K = N exactness and trajectory behaviour
# ---------------------------------------------------------------------------


class TestSparseTrajectories:
    def test_k_equals_n_matches_dense_trajectory(self, rng):
        """Full-K sparse stepping reproduces the dense policy <= 1e-10."""
        dense = TiledEngine(dense_config(), rng=SEED)
        sparse = TiledEngine(sparse_config(access_top_k=64), rng=SEED)
        xs = rng.standard_normal((16, dense.reference.config.input_size))
        assert np.max(np.abs(dense.run(xs) - sparse.run(xs))) <= 1e-10

    def test_truncated_k_stays_finite_and_close(self, rng):
        """K << N is an approximation: finite outputs, bounded drift."""
        dense = TiledEngine(dense_config(), rng=SEED)
        sparse = TiledEngine(sparse_config(access_top_k=8), rng=SEED)
        xs = rng.standard_normal((16, dense.reference.config.input_size))
        delta = np.abs(dense.run(xs) - sparse.run(xs))
        assert np.all(np.isfinite(delta))
        assert np.max(delta) <= 0.5

    def test_masked_full_occupancy_matches_plain_batched_bitwise(self, rng):
        """Equal dispatch order (same batch shape): masked sparse steps
        are bitwise the plain batched step."""
        config = sparse_config()
        masked = TiledEngine(config, rng=SEED)
        plain = TiledEngine(config, rng=SEED)
        batch = 4
        xs = rng.standard_normal(
            (6, batch, masked.reference.config.input_size)
        )
        idx = np.arange(batch)
        ms = masked.initial_state(batch_size=batch)
        ps = plain.initial_state(batch_size=batch)
        for t in range(xs.shape[0]):
            ym, ms = masked.step(xs[t], ms, active=idx)
            yp, ps = plain.step(xs[t], ps)
            assert np.array_equal(ym, yp), t
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(getattr(ms, name), getattr(ps, name)), name

    def test_masked_vs_solo_within_serving_bar(self, rng):
        """Across batch shapes BLAS rounds differently (GEMM vs GEMV):
        the bar is the serving stack's <= 1e-10, not bitwise."""
        config = sparse_config()
        engine = TiledEngine(config, rng=SEED)
        solo = TiledEngine(config, rng=SEED)
        batch = 3
        xs = rng.standard_normal(
            (8, batch, engine.reference.config.input_size)
        )
        state = engine.initial_state(batch_size=batch)
        outs = []
        for t in range(xs.shape[0]):
            y, state = engine.step(xs[t], state, active=np.arange(batch))
            outs.append(y)
        served = np.stack(outs)
        for b in range(batch):
            assert np.max(np.abs(served[:, b] - solo.run(xs[:, b]))) <= 1e-10

    def test_partial_occupancy_leaves_inactive_slots_bitwise(self, rng):
        config = sparse_config()
        engine = TiledEngine(config, rng=SEED)
        state = engine.initial_state(batch_size=4)
        # Bounded-magnitude garbage: distinguishable from zeros without
        # sending the active slots' dynamics into overflow territory.
        for name in NumpyDNCState.FIELDS:
            getattr(state, name)[...] = rng.random(
                getattr(state, name).shape
            ) * 0.5
        frozen = {
            name: getattr(state, name)[1::2].copy()
            for name in NumpyDNCState.FIELDS
        }
        xs = rng.standard_normal((3, 4, engine.reference.config.input_size))
        for t in range(3):
            _, state = engine.step(xs[t], state, active=np.array([0, 2]))
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(getattr(state, name)[1::2], frozen[name])

    def test_checkpoint_roundtrip_mid_sparse_trajectory_bitwise(self, rng):
        config = sparse_config()
        engine = TiledEngine(config, rng=SEED)
        xs = rng.standard_normal((10, engine.reference.config.input_size))
        state = engine.initial_state()
        for t in range(5):
            _, state = engine.step(xs[t], state)
        restored = NumpyDNCState.from_bytes(state.to_bytes())
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(getattr(restored, name), getattr(state, name))
        for t in range(5, 10):
            y_a, state = engine.step(xs[t], state)
            y_b, restored = engine.step(xs[t], restored)
            assert np.array_equal(y_a, y_b), t


# ---------------------------------------------------------------------------
# Traffic accounting scales with K
# ---------------------------------------------------------------------------


class TestTrafficScaling:
    def words(self, config, steps=3):
        engine = TiledEngine(config, rng=SEED)
        gen = np.random.default_rng(SEED)
        xs = gen.standard_normal((steps, engine.reference.config.input_size))
        engine.run(xs)
        return engine.traffic.words_by_kernel()

    def test_linkage_and_fb_words_scale_with_k_not_n(self):
        n = 256
        dense = self.words(dense_config(memory_size=n, num_tiles=8))
        sparse = self.words(
            sparse_config(memory_size=n, num_tiles=8, access_top_k=16)
        )
        for kernel in ("linkage", "forward_backward", "usage_sort"):
            assert sparse[kernel] < dense[kernel] / 4, kernel
        # Constant-size rings/psums are policy-independent.
        assert sparse["precedence"] == dense["precedence"]
        assert sparse["memory_read"] == dense["memory_read"]

    def test_sparse_words_grow_with_k(self):
        small = self.words(sparse_config(memory_size=256, access_top_k=8))
        large = self.words(sparse_config(memory_size=256, access_top_k=64))
        assert large["linkage"] > small["linkage"]
        assert large["forward_backward"] > small["forward_backward"]


# ---------------------------------------------------------------------------
# Serving: arena churn, migration, kill/restore — all vs solo sparse
# ---------------------------------------------------------------------------


class TestSparseServing:
    def run_sparse_churn(self, config, tol):
        """Ragged join/leave/evict churn: arena path vs gather/scatter
        path vs solo sparse stepping, every pair within ``tol``."""
        from tests.test_serve_arena import make_schedule, run_churn

        rng = np.random.default_rng(41)
        schedule = make_schedule(rng, ticks=90)
        input_cache = {}

        def inputs_of(sid):
            if sid not in input_cache:
                gen = np.random.default_rng(hash(sid) % (2**32))
                input_cache[sid] = gen.standard_normal((30, 16))
            return input_cache[sid]

        outputs = {}
        for state_arena in (True, False):
            engine = TiledEngine(config, rng=SEED)
            server = SessionServer(
                engine, max_batch=4, max_wait_ticks=1,
                session_capacity=6, session_ttl_ticks=25,
                state_arena=state_arena,
            )
            outputs[state_arena] = run_churn(server, schedule, inputs_of)

        arena_out, gs_out = outputs[True], outputs[False]
        assert set(arena_out) == set(gs_out)
        solo = TiledEngine(config, rng=SEED)
        compared = 0
        for sid in arena_out:
            for ra, rg in zip(arena_out[sid], gs_out[sid]):
                if ra.error is not None:
                    continue
                assert np.all(np.isfinite(ra.y))
                assert np.max(np.abs(ra.y - rg.y)) <= tol, sid
            done = [r for r in arena_out[sid] if r.done and r.error is None]
            if not done:
                continue
            solo_out = solo.run(inputs_of(sid)[: len(done)])
            served = np.stack([r.y for r in done])
            assert np.max(np.abs(served - solo_out)) <= tol, sid
            compared += len(done)
        assert compared > 50

    def test_arena_churn_full_k_matches_solo_tight(self):
        """At K = N the sparse policy is exact, so churn through the
        arena must hit the dense serving bar: <= 1e-10 against both the
        gather/scatter path and solo sparse stepping."""
        self.run_sparse_churn(sparse_config(access_top_k=64), tol=1e-10)

    def test_arena_churn_truncated_k_bounded_drift(self):
        """Truncated K churn: top-K selection is discontinuous, so the
        ~1e-16 batched-vs-unbatched BLAS rounding the dense churn test
        absorbs invisibly can flip a borderline slot in or out of the
        support mid-session, after which the paths step slightly
        different supports and drift (~1e-7 over 30-step sessions).
        That is intrinsic to the approximation, not an arena bug — a
        real aliasing/indexing bug shows up at O(0.1) — so the
        truncated run gets a drift bound three orders above the
        observed deviation and the exactness bar lives in the K = N
        variant above."""
        self.run_sparse_churn(sparse_config(access_top_k=16), tol=1e-3)

    def test_sharded_migration_matches_solo_sparse(self, rng):
        """One mid-stream checkpoint migration of a sparse session."""
        config = sparse_config()
        engines = [TiledEngine(config, rng=SEED) for _ in range(2)]
        cluster = ShardedServer(
            engines, max_batch=4, max_wait_ticks=1, session_capacity=8
        )
        inputs = {f"s{i}": rng.standard_normal((6, 16)) for i in range(4)}
        requests = {}
        for sid, xs in inputs.items():
            assert cluster.open_session(sid) == sid
            requests[sid] = [cluster.submit(sid, x) for x in xs]
        cluster.run_tick()
        victim = "s0"
        src = cluster.shard_of(victim)
        cluster.migrate_session(victim, 1 - src)
        assert cluster.migrations == 1
        cluster.drain()
        cluster.close()
        solo = TiledEngine(config, rng=SEED)
        for sid, xs in inputs.items():
            assert all(r.done and r.error is None for r in requests[sid]), sid
            served = np.stack([r.y for r in requests[sid]])
            assert np.max(np.abs(served - solo.run(xs))) <= 1e-10, sid

    def test_proc_cluster_kill_restore_matches_solo_sparse(self):
        """SIGKILL a worker mid-stream under the sparse policy: the
        checkpoint/replay recovery must keep the trajectory <= 1e-10."""
        config = sparse_config(
            memory_size=32, word_size=8, num_reads=1, hidden_size=16,
            access_top_k=8,
        )
        gen = np.random.default_rng(SEED)
        xs = gen.standard_normal((8, 8))
        with ProcCluster(
            config, seed=SEED, num_workers=1, max_batch=4,
            max_wait_ticks=1, session_capacity=8, checkpoint_interval=3,
            rpc_timeout=30.0,
        ) as cluster:
            sid = cluster.open_session("s")
            requests = [cluster.submit(sid, x) for x in xs[:4]]
            cluster.run_tick()
            cluster.kill_worker(0)
            requests += [cluster.submit(sid, x) for x in xs[4:]]
            cluster.drain()
            assert cluster.worker_restarts == 1
            solo = TiledEngine(config, rng=SEED)
            served = np.stack([r.y for r in requests])
            assert all(r.done and r.error is None for r in requests)
            assert np.max(np.abs(served - solo.run(xs))) <= 1e-10

    def test_memory_sweep_and_large_n_config(self):
        """The loadgen sweep knob serves a Zipf mix at each N <= 1e-10."""
        from repro.serve.loadgen import (
            large_n_sparse_config,
            measure_serve_memory_sweep,
        )

        config = large_n_sparse_config(memory_size=1024, access_top_k=64)
        assert config.access_policy == "sparse"
        assert config.memory_size == 1024
        assert large_n_sparse_config(access_top_k=0).access_policy == "dense"

        sweep = measure_serve_memory_sweep(
            memory_sizes=(64, 128), access_top_k=16,
            num_sessions=4, repeats=1, mean_session_len=3.0,
        )
        assert set(sweep) == {64, 128}
        for n, result in sweep.items():
            assert result.memory_size == n
            assert result.microbatch_max_abs_diff <= 1e-10
            assert result.requests_per_sec > 0


# ---------------------------------------------------------------------------
# DNC-D de-aliased workspace (stacked-tile stage-and-overwrite)
# ---------------------------------------------------------------------------


class TestDistributedWorkspaceDealias:
    def make(self, fused=True):
        return TiledEngine(
            dense_config(distributed=True, fused_write_linkage=fused),
            rng=SEED,
        )

    def test_masked_full_occupancy_matches_plain_batched_bitwise(self, rng):
        """The workspace-backed DNC-D masked path (staged shard inputs,
        scatter into a resident buffer) is bitwise the plain step."""
        masked, plain = self.make(), self.make()
        batch = 4
        xs = rng.standard_normal(
            (6, batch, masked.reference.config.input_size)
        )
        idx = np.arange(batch)
        ms = masked.initial_state(batch_size=batch)
        ps = plain.initial_state(batch_size=batch)
        for t in range(xs.shape[0]):
            ym, ms = masked.step(xs[t], ms, active=idx)
            yp, ps = plain.step(xs[t], ps)
            assert np.array_equal(ym, yp), t
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(getattr(ms, name), getattr(ps, name)), name

    def test_masked_fused_matches_unfused_bitwise(self, rng):
        """Fused kernels are bitwise the three-pass path (repo-wide
        precedent); that must survive the DNC-D workspace routing."""
        fused, unfused = self.make(fused=True), self.make(fused=False)
        batch = 3
        xs = rng.standard_normal(
            (5, batch, fused.reference.config.input_size)
        )
        idx = np.arange(batch)
        fs = fused.initial_state(batch_size=batch)
        us = unfused.initial_state(batch_size=batch)
        for t in range(xs.shape[0]):
            yf, fs = fused.step(xs[t], fs, active=idx)
            yu, us = unfused.step(xs[t], us, active=idx)
            assert np.array_equal(yf, yu), t
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(getattr(fs, name), getattr(us, name)), name

    def test_repeated_masked_steps_do_not_alias_workspace(self, rng):
        """Back-to-back masked DNC-D steps reuse the staging buffers;
        outputs must depend only on inputs, never on buffer history."""
        engine = self.make()
        batch = 2
        xs = rng.standard_normal(
            (4, batch, engine.reference.config.input_size)
        )
        idx = np.arange(batch)
        state = engine.initial_state(batch_size=batch)
        outs = []
        for t in range(xs.shape[0]):
            y, state = engine.step(xs[t], state, active=idx)
            outs.append(y.copy())
        replay = TiledEngine(
            dense_config(distributed=True, fused_write_linkage=True),
            rng=SEED,
        )
        rs = replay.initial_state(batch_size=batch)
        for t in range(xs.shape[0]):
            y, rs = replay.step(xs[t], rs, active=idx)
            assert np.array_equal(y, outs[t]), t
