"""Observability: tracer/profiler/recorder units and the serving trees.

The obs package contract, end to end:

* :class:`~repro.obs.trace.Tracer` — bounded span ring, context
  propagation, drain/adopt (the cross-process hand-off), JSONL export
  plus its validator;
* :class:`~repro.obs.profiler.PhaseTimer` — per-phase engine
  attribution, merge/delta/state algebra, and the >= 90% attribution
  bar at N=256 (engine phases must account for the step, or the
  breakdown is decoration);
* :class:`~repro.obs.recorder.FlightRecorder` — last-K tick rings and
  the worker post-mortem path through
  :meth:`~repro.serve.supervisor.CheckpointSupervisor.on_worker_death`;
* the integration trees: a traced request through
  :class:`~repro.serve.frontend.AsyncFrontend` over a
  :class:`~repro.serve.proc.ProcCluster` must yield one connected span
  tree spanning at least two processes, exported as schema-valid JSONL.

Tracing must never perturb numerics — traced runs are checked against
solo stepping at the usual 1e-10 bar.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.backend import available_backends, make_backend
from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.obs import (
    PHASES,
    SPAN_KEYS,
    FlightRecorder,
    PhaseTimer,
    Tracer,
    engine_phases,
    render_span_tree,
    validate_metrics_json,
    validate_trace_jsonl,
)
from repro.serve import (
    AsyncFrontend,
    ProcCluster,
    SessionServer,
    ShardedServer,
)

SEED = 7


def serve_config(**features):
    base = dict(
        memory_size=32, word_size=8, num_reads=1, num_tiles=4,
        hidden_size=16, two_stage_sort=False,
    )
    base.update(features)
    return HiMAConfig(**base)


def solo_trajectory(config, inputs):
    engine = TiledEngine(config, rng=SEED)
    return engine.run(np.asarray(inputs))


# ---------------------------------------------------------------------------
# Tracer units
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_lifecycle_and_context_propagation(self):
        tracer = Tracer()
        root = tracer.start("frontend.submit", attrs={"session": "s0"})
        child = tracer.start("router.submit", parent=root.context)
        grandchild = tracer.start("shard.submit", parent=child)
        tracer.end(grandchild)
        tracer.end(child, accepted=True)
        tracer.end(root)
        records = tracer.records()
        assert [r["name"] for r in records] == [
            "shard.submit", "router.submit", "frontend.submit",
        ]
        by_name = {r["name"]: r for r in records}
        assert by_name["router.submit"]["parent_id"] == root.span_id
        assert by_name["shard.submit"]["parent_id"] == child.span_id
        # One trace id threads the whole tree; the root has no parent.
        assert len({r["trace_id"] for r in records}) == 1
        assert by_name["frontend.submit"]["parent_id"] is None
        assert by_name["router.submit"]["attrs"] == {"accepted": True}
        for record in records:
            assert set(record) == set(SPAN_KEYS)
            assert record["t_end"] >= record["t_start"]

    def test_ring_bound_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.end(tracer.start(f"op{i}"))
        assert len(tracer.records()) == 4
        assert [r["name"] for r in tracer.records()] == [
            "op6", "op7", "op8", "op9",
        ]
        assert tracer.dropped == 6
        assert tracer.started == tracer.finished == 10
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_emit_commits_pretimed_interval(self):
        tracer = Tracer()
        parent = tracer.start("engine.step")
        tracer.emit("engine.phase:read", parent, 1.0, 1.5)
        tracer.end(parent)
        phase = tracer.records()[0]
        assert phase["t_start"] == 1.0 and phase["t_end"] == 1.5
        assert phase["parent_id"] == parent.span_id

    def test_drain_adopt_moves_records(self):
        worker, parent = Tracer(), Tracer()
        worker.end(worker.start("shard.tick"))
        drained = worker.drain()
        assert worker.records() == []
        assert parent.adopt(drained) == 1
        assert parent.records()[0]["name"] == "shard.tick"

    def test_export_jsonl_roundtrip_validates(self, tmp_path):
        tracer = Tracer()
        root = tracer.start("a")
        tracer.end(tracer.start("b", parent=root))
        tracer.end(root)
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        assert validate_trace_jsonl(path) == []
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2

    def test_validator_flags_malformed_records(self):
        good = {
            "trace_id": 1, "span_id": 2, "parent_id": None, "name": "ok",
            "t_start": 0.0, "t_end": 1.0, "pid": 1, "attrs": {},
        }
        bad_time = dict(good, span_id=3, t_start=2.0, t_end=1.0)
        missing = {k: v for k, v in good.items() if k != "name"}
        cross_trace = dict(good, span_id=4, parent_id=2, trace_id=9)
        lines = [json.dumps(r) for r in (good, bad_time, missing, cross_trace)]
        problems = validate_trace_jsonl(lines + ["{not json"])
        text = "\n".join(problems)
        assert "t_end < t_start" in text
        assert "missing key 'name'" in text
        assert "different trace" in text
        assert "invalid JSON" in text

    def test_render_span_tree_indents_children(self):
        tracer = Tracer()
        root = tracer.start("frontend.submit")
        child = tracer.start("router.submit", parent=root)
        tracer.end(child)
        tracer.end(root)
        tree = render_span_tree(tracer.records())
        lines = tree.splitlines()
        assert lines[0].startswith("trace ")
        assert any(line.startswith("  frontend.submit") for line in lines)
        assert any(line.startswith("    router.submit") for line in lines)


# ---------------------------------------------------------------------------
# PhaseTimer units
# ---------------------------------------------------------------------------


class TestPhaseTimer:
    def test_lap_accumulates_and_chains(self):
        timer = PhaseTimer()
        tp = timer.now()
        tp = timer.lap("controller", tp, nbytes=128)
        tp = timer.lap("read", tp)
        tp = timer.lap("controller", tp, nbytes=64)
        stats = timer.stats()
        assert stats["controller"]["count"] == 2
        assert stats["controller"]["bytes"] == 192
        assert stats["read"]["count"] == 1
        assert timer.total_seconds() == pytest.approx(
            sum(e["seconds"] for e in stats.values())
        )

    def test_merge_delta_state_algebra(self):
        a, b = PhaseTimer(), PhaseTimer()
        tp = a.now()
        tp = a.lap("read", tp, nbytes=10)
        tp = b.now()
        tp = b.lap("read", tp, nbytes=5)
        tp = b.lap("output", tp)
        before = a.stats()
        a.merge(b.stats())
        after = a.stats()
        assert after["read"]["count"] == 2
        assert after["read"]["bytes"] == 15
        diff = PhaseTimer.delta(before, after)
        assert diff["read"]["count"] == 1 and diff["read"]["bytes"] == 5
        assert diff["output"]["count"] == 1
        # State round-trip is exact.
        assert PhaseTimer.from_state(after).stats() == after
        # Merging nothing is a no-op; delta against None is the stats.
        a.merge(None)
        assert a.stats() == after
        assert PhaseTimer.delta(None, after) == after

    @pytest.mark.parametrize("backend", available_backends())
    def test_engine_phase_attribution_at_n256(self, backend):
        """Profiled phases account for >= 90% of step wall time at N=256.

        The bar that makes the per-phase breakdown trustworthy: at
        serving scale the engine step *is* its phases, so the sum of
        attributed phase seconds must essentially equal the measured
        step time — under every registered backend, including the ones
        whose fused read kernel reports as ``read_phase``.  (Failing
        this means a meaningful slice of the step runs outside any
        phase bracket.)
        """
        import time

        config = serve_config(
            memory_size=256, word_size=16, num_tiles=8, hidden_size=32,
            backend=backend,
        )
        engine = TiledEngine(config, rng=SEED)
        inputs = np.sign(
            np.random.default_rng(3).standard_normal(
                (8, engine.reference.config.input_size)
            )
        )
        engine.run(inputs[:2])  # warm-up outside the measurement
        engine.profiler = PhaseTimer()
        start = time.perf_counter()
        engine.run(inputs)
        wall = time.perf_counter() - start
        attributed = engine.profiler.total_seconds()
        expected = engine_phases(engine.backend.read_phase_label)
        assert set(engine.profiler.stats()) <= set(expected)
        assert attributed >= 0.90 * wall
        engine.profiler = None


# ---------------------------------------------------------------------------
# FlightRecorder units
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_keeps_last_k_per_worker(self):
        recorder = FlightRecorder(last_k=3)
        for tick in range(6):
            recorder.record(0, tick, [{"name": f"t{tick}"}])
        recorder.record(2, 0, [], phase_stats={"read": {"count": 1}})
        dump = recorder.dump(0)
        assert [r["tick"] for r in dump] == [3, 4, 5]
        assert dump[-1]["spans"] == [{"name": "t5"}]
        assert recorder.workers() == [0, 2]
        assert recorder.dump(2)[0]["phase_stats"] == {"read": {"count": 1}}
        assert recorder.dump(7) == []
        recorder.clear(0)
        assert recorder.dump(0) == []
        with pytest.raises(ValueError):
            FlightRecorder(last_k=0)


# ---------------------------------------------------------------------------
# Serving integration: span trees across topologies
# ---------------------------------------------------------------------------


def _by_name(records):
    out = {}
    for record in records:
        out.setdefault(record["name"], []).append(record)
    return out


def _assert_connected(records):
    """Every non-root span's parent resolves inside the same trace."""
    by_span = {r["span_id"]: r for r in records}
    for record in records:
        parent = record["parent_id"]
        if parent is None:
            continue
        assert parent in by_span, record["name"]
        assert by_span[parent]["trace_id"] == record["trace_id"], record["name"]


class TestTracedServing:
    def test_session_server_tree_and_numerics(self):
        config = serve_config()
        xs = [np.full(8, 0.03 * (t + 1)) for t in range(4)]
        solo = solo_trajectory(config, xs)
        engine = TiledEngine(config, rng=SEED)
        server = SessionServer(
            engine, max_batch=4, max_wait_ticks=0,
            tracer=Tracer(), profiler=PhaseTimer(),
        )
        sid = server.open_session()
        requests = [server.submit(sid, x) for x in xs]
        while not all(r.done for r in requests):
            server.run_tick()
        for t, request in enumerate(requests):
            np.testing.assert_allclose(request.y, solo[t], atol=1e-10, rtol=0.0)
        records = server.tracer.records()
        names = _by_name(records)
        assert {"shard.submit", "shard.dispatch", "shard.tick", "engine.step"} <= set(names)
        # The emitted phase labels follow the engine's backend (the
        # fused-read backends report "read_phase" instead of "read").
        expected_phases = engine_phases(engine.backend.read_phase_label)
        assert {f"engine.phase:{p}" for p in expected_phases} <= set(names)
        _assert_connected(records)
        # Each dispatch covers its request's full queue->done interval,
        # parented on that request's submit span.
        submit_ids = {r["span_id"] for r in names["shard.submit"]}
        assert all(r["parent_id"] in submit_ids for r in names["shard.dispatch"])
        engine.profiler = None

    def test_sharded_server_cluster_tree(self):
        config = serve_config()
        engines = [TiledEngine(config, rng=SEED) for _ in range(2)]
        tracer = Tracer()
        with ShardedServer(
            engines, max_batch=4, max_wait_ticks=0, parallel=False,
            tracer=tracer, profile=True,
        ) as cluster:
            sids = [cluster.open_session() for _ in range(2)]
            for sid in sids:
                cluster.submit(sid, np.full(8, 0.05))
            while cluster.queue_depth:
                cluster.run_tick()
            profile = cluster.cluster_profile()
        records = tracer.records()
        names = _by_name(records)
        assert {"router.submit", "shard.submit", "cluster.tick", "shard.tick"} <= set(names)
        _assert_connected(records)
        # The cluster tick parents on the oldest traced pending request.
        submit_ids = {r["span_id"] for r in names["router.submit"]}
        assert all(r["parent_id"] in submit_ids for r in names["cluster.tick"])
        assert set(profile) <= set(PHASES)
        assert sum(entry["seconds"] for entry in profile.values()) > 0.0
        for engine in engines:
            engine.profiler = None

    def test_frontend_over_proc_cluster_cross_process_tree(self, tmp_path):
        """The acceptance tree: one traced request, >= 2 pids, valid JSONL."""
        config = serve_config()
        xs = [np.full(8, 0.05 * (t + 1)) for t in range(4)]
        solo = solo_trajectory(config, xs)
        tracer = Tracer()

        async def scenario():
            cluster = ProcCluster(
                config, seed=SEED, num_workers=2, max_batch=4,
                max_wait_ticks=0, tracer=tracer, profile=True,
            )
            async with AsyncFrontend(cluster, tracer=tracer) as frontend:
                sid = await frontend.open()
                ys = [await frontend.submit(sid, x) for x in xs]
                profile = cluster.cluster_profile()
            return ys, profile

        ys, profile = asyncio.run(scenario())
        for t, y in enumerate(ys):
            np.testing.assert_allclose(y, solo[t], atol=1e-10, rtol=0.0)

        records = tracer.records()
        names = _by_name(records)
        assert {
            "frontend.submit", "router.submit", "shard.submit",
            "shard.dispatch", "cluster.tick", "shard.tick", "engine.step",
        } <= set(names)
        # The tree crosses the process boundary: frontend/router spans
        # carry the parent pid, shard/engine spans the worker pids.
        parent_pids = {r["pid"] for r in names["frontend.submit"]}
        worker_pids = {r["pid"] for r in names["shard.tick"]}
        assert parent_pids.isdisjoint(worker_pids)
        assert len(parent_pids | worker_pids) >= 2
        # Worker-side submit spans parent on the frontend's trace.
        frontend_traces = {r["trace_id"] for r in names["frontend.submit"]}
        assert {r["trace_id"] for r in names["shard.submit"]} <= frontend_traces
        _assert_connected(records)
        expected_phases = engine_phases(make_backend(config).read_phase_label)
        assert {f"engine.phase:{p}" for p in expected_phases} <= set(names)
        assert sum(entry["seconds"] for entry in profile.values()) > 0.0

        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == len(records)
        problems = validate_trace_jsonl(path)
        assert problems == [], "\n".join(problems)
        tree = render_span_tree(records)
        assert "frontend.submit" in tree and "engine.step" in tree

    def test_proc_cluster_untraced_payloads_carry_no_spans(self):
        """With tracing off, tick replies stay span-free (no obs tax)."""
        config = serve_config()
        with ProcCluster(
            config, seed=SEED, num_workers=1, max_batch=4, max_wait_ticks=0,
        ) as cluster:
            sid = cluster.open_session()
            request = cluster.submit(sid, np.full(8, 0.05))
            while not request.done:
                cluster.run_tick()
            assert cluster.tracer is None
            assert cluster.flight is None
            assert cluster.cluster_profile() == {}


# ---------------------------------------------------------------------------
# Flight-recorder post-mortems under worker kills
# ---------------------------------------------------------------------------


class TestWorkerPostmortem:
    def test_kill_storm_dumps_dying_workers_last_ticks(self):
        """A SIGKILLed worker leaves its last-K tick spans with the
        supervisor, and its replacement starts with a clean ring."""
        config = serve_config()
        xs = [np.full(8, 0.04 * (t + 1)) for t in range(6)]
        solo = solo_trajectory(config, xs)
        last_k = 4
        with ProcCluster(
            config, seed=SEED, num_workers=2, max_batch=4, max_wait_ticks=0,
            checkpoint_interval=2, tracer=Tracer(), profile=True,
            flight_recorder=last_k,
        ) as cluster:
            sid = cluster.open_session()
            requests = [cluster.submit(sid, x) for x in xs[:4]]
            while not all(r.done for r in requests):
                cluster.run_tick()
            victim = cluster.shard_of(sid)
            cluster.kill_worker(victim)
            late = [cluster.submit(sid, x) for x in xs[4:]]
            while not all(r.done for r in late):
                cluster.run_tick()
            supervisor = cluster.supervisor
            # The post-mortem: the dead worker's ring, bounded at K,
            # with real tick spans (submit/tick/step) inside.
            assert supervisor.worker_postmortems >= 1
            assert victim in supervisor.postmortems
            dump = supervisor.postmortems[victim]
            assert 1 <= len(dump) <= last_k
            span_names = {
                r["name"] for entry in dump for r in entry["spans"]
            }
            assert "shard.tick" in span_names
            assert any(entry["phase_stats"] for entry in dump)
            # The replacement's ring restarted clean: post-kill records
            # only.
            fresh = cluster.flight.dump(victim)
            dumped_ticks = {entry["tick"] for entry in dump}
            assert all(
                entry["tick"] not in dumped_ticks for entry in fresh
            )
        # Recovery kept the trajectory exact through the kill.
        for t, request in enumerate(requests + late):
            np.testing.assert_allclose(request.y, solo[t], atol=1e-10, rtol=0.0)

    def test_registry_metrics_json_validator_flags_problems(self):
        assert validate_metrics_json({"metrics": []}) == []
        problems = validate_metrics_json({"metrics": [{"name": 3}]})
        assert problems
        assert validate_metrics_json([]) != []
