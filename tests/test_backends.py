"""Kernel-backend seam: registry, per-backend numerics, serving churn.

The acceptance bars for the pluggable backend layer:

* the ``reference`` backend is the pre-seam numpy path *verbatim* — its
  methods must be bitwise-identical to the inline expressions they
  replaced, on both the dense and sparse write phases;
* the ``tuned`` backend must stay within the engine's per-dtype
  ``VERIFY_TOLERANCES`` of the reference on randomized trajectories
  across every engine mode (dense, distributed, sparse, masked,
  unfused), and its fused kernels keep the memory/precedence fields
  bitwise on identical inputs (only the linkage's single-rounding BLAS
  rank-1 accumulation may differ, at ulp scale);
* the full serving stack — arena micro-batching, sharded migration,
  process-worker crash recovery — must hold its <= 1e-10
  served-vs-solo bar under a non-default backend;
* the ``torch`` backend is import-optional: the *name* always
  validates, construction without torch raises a :class:`ConfigError`
  pointing at the extra, and the torch tests below skip cleanly when
  torch is absent.
"""

import numpy as np
import pytest

from repro.core import kernels as SK
from repro.core.backend import (
    _REGISTRY,
    ReferenceBackend,
    TunedBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.dnc import numpy_ref as K
from repro.errors import ConfigError

TOLERANCES = TiledEngine.VERIFY_TOLERANCES

#: Large enough that the tuned backend's blocked write phase actually
#: engages (``memory_size >= TunedBackend.min_blocked_n``) while staying
#: fast as a unit test.
BLOCKED_CONFIG = dict(
    memory_size=128, word_size=16, num_reads=2, num_tiles=4,
    hidden_size=32, two_stage_sort=False,
)

#: Below the blocking threshold: the tuned write phase delegates to the
#: reference kernels here.
SMALL_CONFIG = dict(
    memory_size=32, word_size=16, num_reads=2, num_tiles=4,
    hidden_size=32, two_stage_sort=False,
)


def make_engine(backend, **features):
    base = dict(BLOCKED_CONFIG)
    base.update(features)
    return TiledEngine(HiMAConfig(**base, backend=backend), rng=0)


def trajectory_inputs(engine, steps=6, batch=4, seed=1):
    gen = np.random.default_rng(seed)
    return gen.standard_normal(
        (steps, batch, engine.reference.config.input_size)
    ).astype(engine.config.np_dtype)


# ---------------------------------------------------------------------------
# Registry and config validation
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_cpu_backends_always_available(self):
        names = available_backends()
        assert "reference" in names
        assert "tuned" in names
        assert names == tuple(sorted(names))

    def test_make_backend_returns_fresh_instances(self):
        """Backends hold scratch; engines must never share one."""
        config = HiMAConfig(**SMALL_CONFIG, backend="tuned")
        assert make_backend(config) is not make_backend(config)
        assert (
            TiledEngine(config, rng=0).backend
            is not TiledEngine(config, rng=0).backend
        )

    def test_engine_backend_matches_config(self):
        assert isinstance(make_engine("reference").backend, ReferenceBackend)
        assert isinstance(make_engine("tuned").backend, TunedBackend)

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            HiMAConfig(**SMALL_CONFIG, backend="cuda9000")

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ConfigError, match="dtype"):
            HiMAConfig(**SMALL_CONFIG, dtype="float8")

    @pytest.mark.parametrize("dtype", ["float16", "bfloat16"])
    def test_reduced_dtype_requires_torch_backend(self, dtype):
        with pytest.raises(ConfigError, match="torch"):
            HiMAConfig(**SMALL_CONFIG, dtype=dtype)

    def test_torch_name_validates_without_torch(self):
        """The *name* is always legal; construction needs the extra."""
        config = HiMAConfig(**SMALL_CONFIG, backend="torch")
        assert config.backend == "torch"

    def test_torch_engine_without_torch_points_at_extra(self):
        if "torch" in available_backends():
            pytest.skip("torch installed; covered by TestTorchBackend")
        with pytest.raises(ConfigError, match="repro-hima\\[torch\\]"):
            TiledEngine(HiMAConfig(**SMALL_CONFIG, backend="torch"), rng=0)

    def test_third_party_registration(self):
        register_backend("thirdparty", lambda config: ReferenceBackend())
        try:
            config = HiMAConfig(**SMALL_CONFIG, backend="thirdparty")
            engine = TiledEngine(config, rng=0)
            out = engine.run_batch(trajectory_inputs(engine, steps=2))
            assert np.isfinite(out).all()
        finally:
            _REGISTRY.pop("thirdparty", None)


# ---------------------------------------------------------------------------
# Reference backend == pre-seam arithmetic, bitwise
# ---------------------------------------------------------------------------


class TestReferenceBitwise:
    """Each method must reproduce the inline pre-seam expression exactly."""

    def setup_method(self):
        gen = np.random.default_rng(3)
        self.backend = ReferenceBackend()
        self.memory = gen.standard_normal((4, 64, 16))
        self.write_key = gen.standard_normal((4, 16))
        self.read_keys = gen.standard_normal((4, 2, 16))
        self.linkage = gen.standard_normal((4, 64, 64)) * 0.01
        self.precedence = gen.random((4, 64))
        self.write_w = gen.random((4, 64)) * 0.05
        self.erase = gen.random((4, 16))
        self.value = gen.standard_normal((4, 16))
        self.read_w = gen.random((4, 2, 64)) * 0.05
        self.content_r = gen.random((4, 2, 64)) * 0.05
        self.read_modes = gen.random((4, 2, 3))

    def test_write_scores_bitwise(self):
        key_unit = K.l2_normalize(self.write_key)
        expected = (K.l2_normalize(self.memory) @ key_unit[..., :, None])[..., 0]
        got = self.backend.write_scores(self.memory, self.write_key)
        assert np.array_equal(got, expected)

    def test_read_scores_bitwise(self):
        expected = K.l2_normalize(self.read_keys) @ np.swapaxes(
            K.l2_normalize(self.memory), -1, -2
        )
        got = self.backend.read_scores(self.memory, self.read_keys)
        assert np.array_equal(got, expected)

    def test_fused_dense_write_bitwise(self):
        expected = SK.fused_erase_write_linkage(
            self.memory, self.linkage, self.precedence,
            self.write_w, self.erase, self.value,
        )
        got = self.backend.fused_erase_write_linkage(
            self.memory, self.linkage, self.precedence,
            self.write_w, self.erase, self.value,
        )
        for e, g in zip(expected, got):
            assert np.array_equal(e, g)

    def test_sparse_write_bitwise(self):
        args = (
            self.memory.copy(), self.linkage.copy(), self.precedence.copy(),
            self.write_w, self.erase, self.value,
        )
        expected = SK.sparse_erase_write_linkage(
            self.memory, self.linkage, self.precedence,
            self.write_w, self.erase, self.value,
        )
        got = self.backend.sparse_erase_write_linkage(*args)
        for e, g in zip(expected, got):
            assert np.array_equal(e, g)

    def test_argsort_stable(self):
        values = np.array([[0.5, 0.5, 0.1], [0.2, 0.2, 0.9]])
        expected = np.argsort(values, axis=-1, kind="stable")
        assert np.array_equal(self.backend.argsort(values), expected)

    # -- read-phase kernels (the PR 10 seam extension) -----------------

    def test_forward_backward_bitwise(self):
        expected_f = self.read_w @ np.swapaxes(self.linkage, -1, -2)
        expected_b = self.read_w @ self.linkage
        fwd, bwd = self.backend.forward_backward(self.linkage, self.read_w)
        assert np.array_equal(fwd, expected_f)
        assert np.array_equal(bwd, expected_b)

    def test_read_weight_mix_bitwise(self):
        fwd, bwd = self.backend.forward_backward(self.linkage, self.read_w)
        expected = (
            self.read_modes[..., 0:1] * bwd
            + self.read_modes[..., 1:2] * self.content_r
            + self.read_modes[..., 2:3] * fwd
        )
        got = self.backend.read_weight_mix(
            self.content_r, fwd, bwd, self.read_modes
        )
        assert np.array_equal(got, expected)

    def test_read_vectors_bitwise(self):
        expected = self.read_w @ self.memory
        got = self.backend.read_vectors(self.memory, self.read_w)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("as_bool", [False, True])
    def test_masked_read_kernels_scatter_semantics(self, as_bool):
        """``active=`` computes the active slots bitwise and zeros the rest."""
        idx = np.array([0, 2])
        active = idx
        if as_bool:
            active = np.zeros(4, dtype=bool)
            active[idx] = True
        fwd, bwd = self.backend.forward_backward(
            self.linkage, self.read_w, active=active
        )
        full_f, full_b = self.backend.forward_backward(
            self.linkage, self.read_w
        )
        mixed = self.backend.read_weight_mix(
            self.content_r, full_f, full_b, self.read_modes, active=active
        )
        full_mix = self.backend.read_weight_mix(
            self.content_r, full_f, full_b, self.read_modes
        )
        reads = self.backend.read_vectors(
            self.memory, self.read_w, active=active
        )
        full_reads = self.backend.read_vectors(self.memory, self.read_w)
        inactive = np.array([1, 3])
        for masked, full in ((fwd, full_f), (bwd, full_b),
                             (mixed, full_mix), (reads, full_reads)):
            assert np.array_equal(masked[idx], full[idx])
            assert not masked[inactive].any()

    def test_masked_read_kernels_require_batch_axis(self):
        with pytest.raises(ValueError, match="batch axis"):
            self.backend.forward_backward(
                self.linkage[0], self.read_w[0], active=np.array([0])
            )

    def test_sparse_read_kernels_bitwise(self):
        """The K-support forms reproduce the pre-seam inline einsum."""
        from repro.core.access import _topk_largest

        top_k = 8
        idx = _topk_largest(self.read_w, top_k)
        vals = np.take_along_axis(self.read_w, idx, axis=-1)
        fidx = np.arange(4)[:, None, None]
        expected_b = np.einsum(
            "frk,frkn->frn", vals, self.linkage[fidx, idx, :]
        )
        link_t = np.swapaxes(self.linkage, -1, -2)
        expected_f = np.einsum("frk,frkn->frn", vals, link_t[fidx, idx, :])
        fwd, bwd = self.backend.sparse_forward_backward(
            self.linkage, vals, idx
        )
        assert np.array_equal(fwd, expected_f)
        assert np.array_equal(bwd, expected_b)
        expected_r = np.einsum(
            "frk,frkw->frw", vals, self.memory[fidx, idx, :]
        )
        got = self.backend.sparse_read_vectors(self.memory, vals, idx)
        assert np.array_equal(got, expected_r)


# ---------------------------------------------------------------------------
# Tuned backend numerics
# ---------------------------------------------------------------------------


class TestTunedNumerics:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize(
        "features",
        [
            {},
            {"distributed": True},
            {"access_policy": "sparse", "access_top_k": 12},
            {"fused_write_linkage": False},
            {"read_phase_fused": False},
            {"two_stage_sort": True},
        ],
        ids=[
            "dense", "distributed", "sparse", "unfused", "read_unfused",
            "two_stage",
        ],
    )
    def test_trajectory_within_tolerance(self, dtype, features):
        """Randomized trajectories across engine modes, both CPU dtypes."""
        tol = TOLERANCES[dtype]
        for seed in (1, 2):
            engines = {
                name: make_engine(name, dtype=dtype, **features)
                for name in ("reference", "tuned")
            }
            inputs = trajectory_inputs(engines["reference"], seed=seed)
            outs = {n: e.run_batch(inputs) for n, e in engines.items()}
            diff = float(np.max(np.abs(outs["reference"] - outs["tuned"])))
            assert diff <= tol, (features, seed, diff)

    def test_masked_stepping_within_tolerance(self):
        """Partial-occupancy masked steps (the serving arena's shape)."""
        outs = {}
        active = np.array([True, True, False, True, False, True])
        for name in ("reference", "tuned"):
            engine = make_engine(name)
            inputs = trajectory_inputs(engine, steps=5, batch=6)
            state = engine.initial_state(6)
            for t in range(5):
                out, state = engine.step(inputs[t], state, active=active)
            outs[name] = out[active]
        diff = float(np.max(np.abs(outs["reference"] - outs["tuned"])))
        assert diff <= TOLERANCES["float64"]

    def test_fused_kernel_memory_precedence_bitwise(self):
        """On identical inputs only the linkage may differ (ulp-scale
        single-rounding BLAS accumulation); memory and precedence see
        the reference ufunc sequence exactly."""
        gen = np.random.default_rng(5)
        n = TunedBackend.min_blocked_n * 2
        memory = gen.standard_normal((2, n, 16))
        linkage = gen.standard_normal((2, n, n)) * 0.01
        precedence = gen.random((2, n))
        write_w = gen.random((2, n)) * 0.02
        erase, value = gen.random((2, 16)), gen.standard_normal((2, 16))
        args = (memory, linkage, precedence, write_w, erase, value)
        ref = ReferenceBackend().fused_erase_write_linkage(*args)
        tuned = TunedBackend().fused_erase_write_linkage(*args)
        assert np.array_equal(ref[0], tuned[0])  # memory
        assert np.array_equal(ref[2], tuned[2])  # precedence
        link_diff = float(np.max(np.abs(ref[1] - tuned[1])))
        assert link_diff <= 1e-12

    def test_small_n_write_phase_delegates_bitwise(self):
        """Below ``min_blocked_n`` the whole fused write phase is the
        reference kernel, bit for bit."""
        gen = np.random.default_rng(6)
        n = TunedBackend.min_blocked_n // 2
        args = (
            gen.standard_normal((3, n, 8)),
            gen.standard_normal((3, n, n)) * 0.01,
            gen.random((3, n)),
            gen.random((3, n)) * 0.05,
            gen.random((3, 8)),
            gen.standard_normal((3, 8)),
        )
        ref = ReferenceBackend().fused_erase_write_linkage(*args)
        tuned = TunedBackend().fused_erase_write_linkage(*args)
        for e, g in zip(ref, tuned):
            assert np.array_equal(e, g)

    def test_batch_of_one_matches_unbatched(self):
        """The engine-wide batch-of-1 bitwise invariant holds under
        the tuned backend too."""
        engine = make_engine("tuned")
        inputs = trajectory_inputs(engine, steps=5, batch=3)
        batch1 = engine.run_batch(inputs[:, :1])
        single = engine.run(inputs[:, 0])
        assert np.array_equal(batch1[:, 0], single)

    # -- read-phase kernels --------------------------------------------

    def test_fused_forward_backward_within_tolerance(self):
        """The single-pass panel sweep vs the reference matmul pair.

        The forward rows are full-length dot products (same result, one
        GEMM call shape away); the backward's panel-blocked psum
        reorders the reduction, so the bar is the float64 verification
        tolerance, not bitwise.
        """
        gen = np.random.default_rng(7)
        n = TunedBackend.min_blocked_n * 2
        linkage = gen.standard_normal((3, n, n)) * 0.01
        read_w = gen.random((3, 2, n)) * 0.05
        ref_f, ref_b = ReferenceBackend().forward_backward(linkage, read_w)
        tuned = TunedBackend()
        assert tuned.read_fused
        fwd, bwd = tuned.forward_backward(linkage, read_w)
        assert float(np.max(np.abs(fwd - ref_f))) <= TOLERANCES["float64"]
        assert float(np.max(np.abs(bwd - ref_b))) <= TOLERANCES["float64"]

    def test_small_n_read_phase_delegates_bitwise(self):
        """Below ``min_blocked_n`` the fused sweep is the reference
        matmul pair, bit for bit."""
        gen = np.random.default_rng(8)
        n = TunedBackend.min_blocked_n // 2
        linkage = gen.standard_normal((3, n, n)) * 0.01
        read_w = gen.random((3, 2, n)) * 0.05
        ref = ReferenceBackend().forward_backward(linkage, read_w)
        got = TunedBackend().forward_backward(linkage, read_w)
        for e, g in zip(ref, got):
            assert np.array_equal(e, g)

    def test_masked_read_phase_matches_reference_rows(self):
        """``active=`` gathers the sub-batch through the fused kernel;
        per-row results stay within tolerance of the reference rows and
        inactive rows are exact zeros."""
        gen = np.random.default_rng(9)
        n = TunedBackend.min_blocked_n * 2
        linkage = gen.standard_normal((4, n, n)) * 0.01
        read_w = gen.random((4, 2, n)) * 0.05
        active = np.array([True, False, True, False])
        ref_f, ref_b = ReferenceBackend().forward_backward(linkage, read_w)
        fwd, bwd = TunedBackend().forward_backward(
            linkage, read_w, active=active
        )
        tol = TOLERANCES["float64"]
        assert float(np.max(np.abs(fwd[active] - ref_f[active]))) <= tol
        assert float(np.max(np.abs(bwd[active] - ref_b[active]))) <= tol
        assert not fwd[~active].any() and not bwd[~active].any()

    def test_read_weight_mix_bitwise(self):
        """The scratch-resident merge keeps the reference association
        exactly — bitwise, unlike the blocked forward/backward."""
        gen = np.random.default_rng(10)
        content = gen.random((4, 2, 64))
        fwd = gen.random((4, 2, 64))
        bwd = gen.random((4, 2, 64))
        modes = gen.random((4, 2, 3))
        ref = ReferenceBackend().read_weight_mix(content, fwd, bwd, modes)
        got = TunedBackend().read_weight_mix(content, fwd, bwd, modes)
        assert np.array_equal(got, ref)

    def test_read_unfused_flag_restores_reference_read_path(self):
        """``read_phase_fused=False`` must route the tuned backend's
        read phase through the inherited reference kernels bitwise, and
        report the classic label/passes for profiling."""
        config = HiMAConfig(**BLOCKED_CONFIG, backend="tuned",
                            read_phase_fused=False)
        backend = make_backend(config)
        assert not backend.read_fused
        assert backend.read_phase_label == "read"
        assert backend.read_linkage_passes == 2
        gen = np.random.default_rng(11)
        n = TunedBackend.min_blocked_n * 2
        linkage = gen.standard_normal((2, n, n)) * 0.01
        read_w = gen.random((2, 2, n)) * 0.05
        ref = ReferenceBackend().forward_backward(linkage, read_w)
        got = backend.forward_backward(linkage, read_w)
        for e, g in zip(ref, got):
            assert np.array_equal(e, g)

    def test_fused_read_reports_phase_label(self):
        backend = make_backend(HiMAConfig(**BLOCKED_CONFIG, backend="tuned"))
        assert backend.read_fused
        assert backend.read_phase_label == "read_phase"
        assert backend.read_linkage_passes == 1


# ---------------------------------------------------------------------------
# Serving stack under a non-default backend
# ---------------------------------------------------------------------------


class TestServeChurnTunedBackend:
    def test_arena_server_matches_solo(self):
        from repro.serve import SessionServer

        engine = make_engine("tuned", num_reads=1)
        solo = make_engine("tuned", num_reads=1)
        gen = np.random.default_rng(11)
        inputs = {
            f"s{i}": gen.standard_normal(
                (6, engine.reference.config.input_size)
            )
            for i in range(4)
        }
        requests = {}
        with SessionServer(
            engine, max_batch=4, max_wait_ticks=1,
            session_capacity=8, state_arena=True,
        ) as server:
            for sid in inputs:
                assert server.open_session(sid) == sid
                requests[sid] = [server.submit(sid, x) for x in inputs[sid]]
            server.drain()
        for sid, reqs in requests.items():
            assert all(r.done and r.error is None for r in reqs), sid
            served = np.stack([r.y for r in reqs])
            expected = solo.run(inputs[sid])
            assert np.max(np.abs(served - expected)) <= 1e-10, sid

    def test_sharded_migration_matches_solo(self):
        from repro.serve import ShardedServer

        engines = [make_engine("tuned", num_reads=1) for _ in range(2)]
        gen = np.random.default_rng(13)
        inputs = {
            f"s{i}": gen.standard_normal(
                (6, engines[0].reference.config.input_size)
            )
            for i in range(4)
        }
        cluster = ShardedServer(
            engines, max_batch=4, max_wait_ticks=1, session_capacity=8
        )
        requests = {}
        for sid, xs in inputs.items():
            assert cluster.open_session(sid) == sid
            requests[sid] = [cluster.submit(sid, x) for x in xs]
        cluster.run_tick()
        victim = "s0"
        src = cluster.shard_of(victim)
        cluster.migrate_session(victim, 1 - src)
        assert cluster.shard_of(victim) == 1 - src
        cluster.drain()
        cluster.close()
        solo = make_engine("tuned", num_reads=1)
        for sid, xs in inputs.items():
            assert all(r.done and r.error is None for r in requests[sid]), sid
            served = np.stack([r.y for r in requests[sid]])
            assert np.max(np.abs(served - solo.run(xs))) <= 1e-10, sid

    def test_proc_cluster_kill_and_restore_matches_solo(self):
        """Crash recovery replays checkpoints on worker processes that
        rebuilt their engines — config-carried backend selection must
        survive the round trip."""
        from repro.serve import ProcCluster

        config = HiMAConfig(
            memory_size=128, word_size=8, num_reads=1, num_tiles=4,
            hidden_size=16, two_stage_sort=False, backend="tuned",
        )
        xs = [np.full(8, 0.1 * (t + 1)) for t in range(6)]
        with ProcCluster(
            config, seed=7, num_workers=1, max_batch=4, max_wait_ticks=1,
            session_capacity=8, checkpoint_interval=3, rpc_timeout=30.0,
        ) as cluster:
            sid = cluster.open_session("s")
            requests = [cluster.submit(sid, x) for x in xs[:3]]
            cluster.run_tick()
            cluster.kill_worker(0)
            requests += [cluster.submit(sid, x) for x in xs[3:]]
            cluster.drain()
            assert cluster.worker_restarts == 1
            solo = TiledEngine(config, rng=7)
            state = solo.initial_state()
            for t, request in enumerate(requests):
                assert request.done and request.error is None
                y, state = solo.step(xs[t], state)
                np.testing.assert_allclose(request.y, y, atol=1e-10, rtol=0.0)

    def test_proc_cluster_churn_sparse_read_path_tuned(self):
        """Kill/restore churn with ``backend="tuned"`` *and* sparse
        access: the replayed worker engine must rebuild the tuned
        backend and run the sparse read kernels (top-K forward/backward
        and read gather through the seam) to the 1e-10 served-vs-solo
        bar."""
        from repro.serve import ProcCluster

        config = HiMAConfig(
            memory_size=128, word_size=8, num_reads=1, num_tiles=4,
            hidden_size=16, two_stage_sort=False, backend="tuned",
            access_policy="sparse", access_top_k=16,
        )
        xs = [np.full(8, 0.07 * (t + 1)) for t in range(6)]
        with ProcCluster(
            config, seed=9, num_workers=1, max_batch=4, max_wait_ticks=1,
            session_capacity=8, checkpoint_interval=3, rpc_timeout=30.0,
        ) as cluster:
            sid = cluster.open_session("s")
            requests = [cluster.submit(sid, x) for x in xs[:3]]
            cluster.run_tick()
            cluster.kill_worker(0)
            requests += [cluster.submit(sid, x) for x in xs[3:]]
            cluster.drain()
            assert cluster.worker_restarts == 1
            solo = TiledEngine(config, rng=9)
            state = solo.initial_state()
            for t, request in enumerate(requests):
                assert request.done and request.error is None
                y, state = solo.step(xs[t], state)
                np.testing.assert_allclose(request.y, y, atol=1e-10, rtol=0.0)


# ---------------------------------------------------------------------------
# Torch backend (skips cleanly when torch is absent)
# ---------------------------------------------------------------------------


class TestTorchBackend:
    @pytest.fixture(autouse=True)
    def _require_torch(self):
        pytest.importorskip("torch")

    def test_registered_when_importable(self):
        assert "torch" in available_backends()

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_trajectory_within_tolerance(self, dtype):
        engines = {
            name: make_engine(name, dtype=dtype)
            for name in ("reference", "torch")
        }
        inputs = trajectory_inputs(engines["reference"])
        outs = {n: e.run_batch(inputs) for n, e in engines.items()}
        diff = float(np.max(np.abs(outs["reference"] - outs["torch"])))
        assert diff <= TOLERANCES[dtype]

    @pytest.mark.parametrize("dtype", ["float16", "bfloat16"])
    def test_reduced_dtype_verifies(self, dtype):
        engine = make_engine("torch", dtype=dtype)
        error = engine.verify_against_reference(steps=3, batch_size=4)
        assert error <= TOLERANCES[dtype]
