"""Module / Linear / LSTM layer tests."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, ops
from repro.nn import LSTM, Linear, LSTMCell, Module, Parameter
from repro.nn import init


class TestModule:
    def test_parameter_registration(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.child = Linear(2, 2, rng=0)

        net = Net()
        names = [name for name, _ in net.named_parameters()]
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names
        assert net.num_parameters() == 3 + 4 + 2

    def test_state_dict_roundtrip(self):
        layer = Linear(3, 2, rng=0)
        state = layer.state_dict()
        other = Linear(3, 2, rng=99)
        other.load_state_dict(state)
        assert np.allclose(other.weight.data, layer.weight.data)
        assert np.allclose(other.bias.data, layer.bias.data)

    def test_load_state_dict_rejects_mismatch(self):
        layer = Linear(3, 2, rng=0)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((3, 2))})
        with pytest.raises(ValueError):
            layer.load_state_dict(
                {"weight": np.zeros((2, 2)), "bias": np.zeros(2)}
            )

    def test_zero_grad(self):
        layer = Linear(3, 2, rng=0)
        out = ops.sum(layer(Tensor(np.ones(3))))
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestInit:
    def test_xavier_bounds(self):
        w = init.xavier_uniform((100, 50), rng=0)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_orthogonal_is_orthogonal(self):
        w = init.orthogonal((16, 16), rng=0)
        assert np.allclose(w @ w.T, np.eye(16), atol=1e-8)

    def test_orthogonal_rectangular(self):
        w = init.orthogonal((8, 16), rng=0)
        assert np.allclose(w @ w.T, np.eye(8), atol=1e-8)


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        layer = Linear(4, 3, rng=0)
        x = rng.standard_normal((5, 4))
        out = layer(Tensor(x))
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias_option(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert layer(Tensor(np.zeros(4))).data == pytest.approx(np.zeros(3))

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng=0)
        x = Tensor(rng.standard_normal(3), requires_grad=True)

        def fn(x):
            return layer(x)

        check_gradients(fn, [x])
        loss = ops.sum(layer(x))
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestLSTM:
    def test_cell_shapes_unbatched_and_batched(self, rng):
        cell = LSTMCell(4, 6, rng=0)
        h, state = cell(Tensor(rng.standard_normal(4)), cell.initial_state())
        assert h.shape == (6,)
        h, state = cell(
            Tensor(rng.standard_normal((3, 4))), cell.initial_state(3)
        )
        assert h.shape == (3, 6)
        assert state.cell.shape == (3, 6)

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(4, 6, rng=0)
        assert np.all(cell.bias.data[6:12] == 1.0)

    def test_state_propagates_information(self, rng):
        cell = LSTMCell(2, 4, rng=0)
        x = Tensor(rng.standard_normal(2))
        _, s1 = cell(x, cell.initial_state())
        h2a, _ = cell(x, s1)
        h2b, _ = cell(x, cell.initial_state())
        assert not np.allclose(h2a.data, h2b.data)

    def test_sequence_wrapper(self, rng):
        lstm = LSTM(3, 5, rng=0)
        xs = Tensor(rng.standard_normal((7, 3)))
        out, state = lstm(xs)
        assert out.shape == (7, 5)
        assert state.hidden.shape == (5,)

    def test_gradients_flow_through_time(self, rng):
        lstm = LSTM(2, 3, rng=0)
        xs = Tensor(rng.standard_normal((4, 2)))
        out, _ = lstm(xs)
        ops.sum(out).backward()
        for param in lstm.parameters():
            assert param.grad is not None
            assert np.any(param.grad != 0)

    def test_state_detach(self, rng):
        cell = LSTMCell(2, 3, rng=0)
        _, state = cell(Tensor(rng.standard_normal(2)), cell.initial_state())
        detached = state.detach()
        assert detached.hidden.parents == []
        assert detached.cell.parents == []
