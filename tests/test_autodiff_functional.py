"""Composite functions: oneplus, normalization, content weighting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, functional, ops


def rand(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestOneplus:
    def test_range_is_at_least_one(self, rng):
        out = functional.oneplus(Tensor(rng.standard_normal(100)))
        assert np.all(out.data >= 1.0)

    def test_value_at_zero(self):
        out = functional.oneplus(Tensor([0.0]))
        assert out.data[0] == pytest.approx(1.0 + np.log(2.0))

    def test_gradient(self, rng):
        check_gradients(functional.oneplus, [rand(rng, 5)])


class TestNormalize:
    def test_unit_norm(self, rng):
        out = functional.normalize(Tensor(rng.standard_normal((4, 6))))
        norms = np.linalg.norm(out.data, axis=-1)
        assert np.allclose(norms, 1.0, atol=1e-4)

    def test_gradient(self, rng):
        check_gradients(functional.normalize, [rand(rng, 3, 4)])

    def test_zero_vector_does_not_nan(self):
        out = functional.normalize(Tensor(np.zeros((1, 4))))
        assert np.all(np.isfinite(out.data))


class TestCosineSimilarity:
    def test_range(self, rng):
        memory = Tensor(rng.standard_normal((10, 6)))
        key = Tensor(rng.standard_normal(6))
        sim = functional.cosine_similarity(memory, key)
        assert sim.shape == (10,)
        assert np.all(sim.data <= 1.0 + 1e-6)
        assert np.all(sim.data >= -1.0 - 1e-6)

    def test_identical_row_scores_highest(self, rng):
        memory = Tensor(rng.standard_normal((5, 6)))
        key = Tensor(memory.data[2].copy())
        sim = functional.cosine_similarity(memory, key)
        assert int(np.argmax(sim.data)) == 2

    def test_gradient(self, rng):
        check_gradients(
            functional.cosine_similarity, [rand(rng, 5, 4), rand(rng, 4)]
        )


class TestContentWeighting:
    def test_simplex_output(self, rng):
        memory = Tensor(rng.standard_normal((8, 4)))
        key = Tensor(rng.standard_normal(4))
        strength = Tensor(np.array(3.0))
        w = functional.content_weighting(memory, key, strength)
        assert w.data.sum() == pytest.approx(1.0)
        assert np.all(w.data >= 0)

    def test_high_strength_sharpens(self):
        # Orthogonal rows: the matching row wins decisively at high beta.
        memory = Tensor(np.eye(4))
        key = Tensor(np.eye(4)[3])
        soft = functional.content_weighting(memory, key, Tensor(np.array(1.0)))
        sharp = functional.content_weighting(memory, key, Tensor(np.array(50.0)))
        assert sharp.data[3] > soft.data[3]
        assert sharp.data[3] > 0.99

    def test_gradient(self, rng):
        check_gradients(
            functional.content_weighting,
            [rand(rng, 5, 4), rand(rng, 4),
             Tensor(np.array(2.0), requires_grad=True)],
        )


class TestBatchOuterOneHot:
    def test_batch_outer_matches_numpy(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((2, 4))
        out = functional.batch_outer(Tensor(a), Tensor(b))
        expected = np.einsum("bi,bj->bij", a, b)
        assert np.allclose(out.data, expected)

    def test_batch_outer_gradient(self, rng):
        check_gradients(functional.batch_outer, [rand(rng, 2, 3), rand(rng, 2, 4)])

    def test_one_hot(self):
        out = functional.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out.data, [[1, 0, 0], [0, 0, 1]])


@given(st.integers(2, 6), st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_weighted_softmax_simplex_property(n, w):
    rng = np.random.default_rng(n * 10 + w)
    scores = Tensor(rng.standard_normal(n))
    strength = Tensor(np.array(float(w)))
    out = functional.weighted_softmax(scores, strength)
    assert out.data.sum() == pytest.approx(1.0)
