"""Hardware sorter models: functional correctness + paper cycle targets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.hw.sorters import (
    CentralizedMergeSorter,
    DPBS,
    MDSASorter,
    ParallelMergeSorter,
    TwoStageSorter,
    bitonic_sort,
    bitonic_stage_count,
)


class TestBitonic:
    def test_stage_count_formula(self):
        assert bitonic_stage_count(2) == 1
        assert bitonic_stage_count(4) == 3
        assert bitonic_stage_count(8) == 6
        assert bitonic_stage_count(16) == 10

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            bitonic_stage_count(10)
        with pytest.raises(ConfigError):
            bitonic_sort(np.arange(10))

    def test_sorts_both_directions(self, rng):
        values = rng.random(32)
        assert np.array_equal(bitonic_sort(values), np.sort(values))
        assert np.array_equal(
            bitonic_sort(values, ascending=False), np.sort(values)[::-1]
        )

    def test_duplicates(self):
        values = np.array([3.0, 1.0, 3.0, 1.0])
        assert np.array_equal(bitonic_sort(values), [1.0, 1.0, 3.0, 3.0])


class TestDPBS:
    def test_paper_depth_16_input(self):
        assert DPBS(16).depth == 5  # the paper's D_DPBS

    def test_depth_8_input(self):
        assert DPBS(8).depth == 3

    def test_sort_and_modes(self, rng):
        dpbs = DPBS(8)
        values = rng.random(8)
        assert np.array_equal(dpbs.sort(values), np.sort(values))
        assert np.array_equal(
            dpbs.sort(values, ascending=False), np.sort(values)[::-1]
        )

    def test_rejects_wrong_width(self, rng):
        with pytest.raises(ConfigError):
            DPBS(8).sort(rng.random(4))

    def test_pipeline_cycles(self):
        dpbs = DPBS(16)
        assert dpbs.pipeline_cycles(1) == 6
        assert dpbs.pipeline_cycles(16) == 21
        with pytest.raises(ConfigError):
            dpbs.pipeline_cycles(0)


class TestMDSA:
    def test_paper_cycle_target_n256(self):
        # P = 16, D_DPBS = 5 -> 6 * 21 = 126 cycles (Section 4.3).
        assert MDSASorter(256).cycle_count() == 126

    def test_sorts_and_returns_permutation(self, rng):
        sorter = MDSASorter(256)
        values = rng.random(256)
        sorted_vals, order = sorter.sort(values)
        assert np.array_equal(sorted_vals, np.sort(values))
        assert np.array_equal(values[order], sorted_vals)

    def test_non_square_and_partial_lengths(self, rng):
        sorter = MDSASorter(100)
        values = rng.random(77)
        sorted_vals, order = sorter.sort(values)
        assert np.array_equal(sorted_vals, np.sort(values))
        assert sorted(order.tolist()) == list(range(77))

    def test_all_equal_preserves_index_order(self):
        sorter = MDSASorter(64)
        values = np.zeros(64)
        _, order = sorter.sort(values)
        assert np.array_equal(order, np.arange(64))

    def test_capacity_enforced(self, rng):
        with pytest.raises(ConfigError):
            MDSASorter(16).sort(rng.random(32))
        with pytest.raises(ConfigError):
            MDSASorter(0)

    def test_cycle_count_shrinks_with_length(self):
        sorter = MDSASorter(256)
        assert sorter.cycle_count(64) < sorter.cycle_count(256)
        assert sorter.cycle_count(1) == 0


class TestMergeSorters:
    def test_centralized_cycle_model(self):
        central = CentralizedMergeSorter()
        assert central.cycle_count(1024) == 10240  # paper Section 4.3
        assert central.cycle_count(1) == 0

    def test_centralized_pipelined_model(self):
        central = CentralizedMergeSorter()
        pipelined = central.pipelined_cycle_count(1024, num_streams=4)
        assert pipelined < central.cycle_count(1024)
        assert pipelined > 1024

    def test_centralized_sort_correct(self, rng):
        values = rng.random(100)
        sorted_vals, order = CentralizedMergeSorter().sort(values)
        assert np.array_equal(sorted_vals, np.sort(values))
        assert np.array_equal(values[order], sorted_vals)

    def test_pms_paper_depth(self):
        assert ParallelMergeSorter(4).depth == 7  # the paper's D_PMS

    def test_pms_merge_correct(self, rng):
        pms = ParallelMergeSorter(4)
        streams = [np.sort(rng.random(16)) for _ in range(4)]
        merged = pms.merge(streams)
        assert np.array_equal(merged, np.sort(np.concatenate(streams)))

    def test_pms_rejects_unsorted_stream(self, rng):
        pms = ParallelMergeSorter(2)
        with pytest.raises(ConfigError):
            pms.merge([np.array([3.0, 1.0]), np.array([1.0, 2.0])])

    def test_pms_rejects_wrong_stream_count(self, rng):
        with pytest.raises(ConfigError):
            ParallelMergeSorter(4).merge([np.sort(rng.random(4))] * 3)

    def test_pms_merge_with_sources_tracks_origin(self):
        pms = ParallelMergeSorter(2)
        values, sources = pms.merge_with_sources(
            [np.array([1.0, 4.0]), np.array([2.0, 3.0])]
        )
        assert np.array_equal(values, [1.0, 2.0, 3.0, 4.0])
        assert sources == [(0, 0), (1, 0), (1, 1), (0, 1)]

    def test_pms_cycle_model(self):
        pms = ParallelMergeSorter(4)
        assert pms.cycle_count(256) == 263  # paper: n + D_PMS
        assert pms.cycle_count(0) == 0


class TestTwoStageSorter:
    def test_paper_reference_389_cycles(self):
        sorter = TwoStageSorter(1024, 4)
        assert sorter.stage_cycles() == (126, 263)
        assert sorter.cycle_count() == 389  # the paper's worked example

    def test_sixteen_tiles_faster(self):
        assert TwoStageSorter(1024, 16).cycle_count() < 389

    def test_functional_sort(self, rng):
        sorter = TwoStageSorter(1024, 4)
        values = rng.random(1024)
        sorted_vals, order = sorter.sort(values)
        assert np.array_equal(sorted_vals, np.sort(values))
        assert np.array_equal(values[order], sorted_vals)

    def test_global_indices_cover_all_slots(self, rng):
        sorter = TwoStageSorter(64, 4)
        _, order = sorter.sort(rng.random(64))
        assert sorted(order.tolist()) == list(range(64))

    def test_ties_resolve_to_global_index_order(self):
        # Matches numpy's stable argsort so the engine agrees with the
        # monolithic reference even on all-equal usage (the first step).
        sorter = TwoStageSorter(32, 4)
        _, order = sorter.sort(np.zeros(32))
        assert np.array_equal(order, np.arange(32))

    def test_skimming_shortens_sort(self):
        sorter = TwoStageSorter(1024, 4)
        assert sorter.cycle_count(effective_length=512) < sorter.cycle_count()

    def test_divisibility_enforced(self):
        with pytest.raises(ConfigError):
            TwoStageSorter(100, 3)

    def test_wrong_input_shape(self, rng):
        with pytest.raises(ConfigError):
            TwoStageSorter(64, 4).sort(rng.random(32))


@given(st.integers(4, 256), st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_mdsa_sort_property(n, seed):
    values = np.random.default_rng(seed).random(n)
    sorted_vals, order = MDSASorter(n).sort(values)
    assert np.array_equal(sorted_vals, np.sort(values))
    assert sorted(order.tolist()) == list(range(n))


@given(st.sampled_from([16, 32, 64, 128]), st.sampled_from([2, 4, 8]),
       st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_two_stage_sort_property(n, nt, seed):
    values = np.random.default_rng(seed).random(n)
    sorted_vals, order = TwoStageSorter(n, nt).sort(values)
    assert np.array_equal(sorted_vals, np.sort(values))
    assert np.array_equal(values[order], sorted_vals)
