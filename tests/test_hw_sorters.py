"""Hardware sorter models: functional correctness + paper cycle targets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.hw.sorters import (
    CentralizedMergeSorter,
    DPBS,
    MDSASorter,
    ParallelMergeSorter,
    TwoStageSorter,
    bitonic_sort,
    bitonic_stage_count,
)


class TestBitonic:
    def test_stage_count_formula(self):
        assert bitonic_stage_count(2) == 1
        assert bitonic_stage_count(4) == 3
        assert bitonic_stage_count(8) == 6
        assert bitonic_stage_count(16) == 10

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            bitonic_stage_count(10)
        with pytest.raises(ConfigError):
            bitonic_sort(np.arange(10))

    def test_sorts_both_directions(self, rng):
        values = rng.random(32)
        assert np.array_equal(bitonic_sort(values), np.sort(values))
        assert np.array_equal(
            bitonic_sort(values, ascending=False), np.sort(values)[::-1]
        )

    def test_duplicates(self):
        values = np.array([3.0, 1.0, 3.0, 1.0])
        assert np.array_equal(bitonic_sort(values), [1.0, 1.0, 3.0, 3.0])


class TestDPBS:
    def test_paper_depth_16_input(self):
        assert DPBS(16).depth == 5  # the paper's D_DPBS

    def test_depth_8_input(self):
        assert DPBS(8).depth == 3

    def test_sort_and_modes(self, rng):
        dpbs = DPBS(8)
        values = rng.random(8)
        assert np.array_equal(dpbs.sort(values), np.sort(values))
        assert np.array_equal(
            dpbs.sort(values, ascending=False), np.sort(values)[::-1]
        )

    def test_rejects_wrong_width(self, rng):
        with pytest.raises(ConfigError):
            DPBS(8).sort(rng.random(4))

    def test_pipeline_cycles(self):
        dpbs = DPBS(16)
        assert dpbs.pipeline_cycles(1) == 6
        assert dpbs.pipeline_cycles(16) == 21
        with pytest.raises(ConfigError):
            dpbs.pipeline_cycles(0)


class TestMDSA:
    def test_paper_cycle_target_n256(self):
        # P = 16, D_DPBS = 5 -> 6 * 21 = 126 cycles (Section 4.3).
        assert MDSASorter(256).cycle_count() == 126

    def test_sorts_and_returns_permutation(self, rng):
        sorter = MDSASorter(256)
        values = rng.random(256)
        sorted_vals, order = sorter.sort(values)
        assert np.array_equal(sorted_vals, np.sort(values))
        assert np.array_equal(values[order], sorted_vals)

    def test_non_square_and_partial_lengths(self, rng):
        sorter = MDSASorter(100)
        values = rng.random(77)
        sorted_vals, order = sorter.sort(values)
        assert np.array_equal(sorted_vals, np.sort(values))
        assert sorted(order.tolist()) == list(range(77))

    def test_all_equal_preserves_index_order(self):
        sorter = MDSASorter(64)
        values = np.zeros(64)
        _, order = sorter.sort(values)
        assert np.array_equal(order, np.arange(64))

    def test_capacity_enforced(self, rng):
        with pytest.raises(ConfigError):
            MDSASorter(16).sort(rng.random(32))
        with pytest.raises(ConfigError):
            MDSASorter(0)

    def test_cycle_count_shrinks_with_length(self):
        sorter = MDSASorter(256)
        assert sorter.cycle_count(64) < sorter.cycle_count(256)
        assert sorter.cycle_count(1) == 0

    def test_sort_batch_matches_per_element(self, rng):
        sorter = MDSASorter(64)
        values = rng.random((5, 64))
        batch_vals, batch_orders = sorter.sort_batch(values)
        for row in range(5):
            seq_vals, seq_order = sorter.sort(values[row])
            assert np.array_equal(batch_vals[row], seq_vals)
            assert np.array_equal(batch_orders[row], seq_order)

    def test_sort_batch_all_equal_keeps_index_order(self):
        sorter = MDSASorter(16)
        _, orders = sorter.sort_batch(np.zeros((3, 16)))
        assert np.array_equal(orders, np.tile(np.arange(16), (3, 1)))

    def test_sort_batch_capacity_enforced(self, rng):
        with pytest.raises(ConfigError):
            MDSASorter(16).sort_batch(rng.random((2, 32)))


class TestMergeSorters:
    def test_centralized_cycle_model(self):
        central = CentralizedMergeSorter()
        assert central.cycle_count(1024) == 10240  # paper Section 4.3
        assert central.cycle_count(1) == 0

    def test_centralized_pipelined_model(self):
        central = CentralizedMergeSorter()
        pipelined = central.pipelined_cycle_count(1024, num_streams=4)
        assert pipelined < central.cycle_count(1024)
        assert pipelined > 1024

    def test_centralized_sort_correct(self, rng):
        values = rng.random(100)
        sorted_vals, order = CentralizedMergeSorter().sort(values)
        assert np.array_equal(sorted_vals, np.sort(values))
        assert np.array_equal(values[order], sorted_vals)

    def test_pms_paper_depth(self):
        assert ParallelMergeSorter(4).depth == 7  # the paper's D_PMS

    def test_pms_merge_correct(self, rng):
        pms = ParallelMergeSorter(4)
        streams = [np.sort(rng.random(16)) for _ in range(4)]
        merged = pms.merge(streams)
        assert np.array_equal(merged, np.sort(np.concatenate(streams)))

    def test_pms_rejects_unsorted_stream(self, rng):
        pms = ParallelMergeSorter(2)
        with pytest.raises(ConfigError):
            pms.merge([np.array([3.0, 1.0]), np.array([1.0, 2.0])])

    def test_pms_rejects_wrong_stream_count(self, rng):
        with pytest.raises(ConfigError):
            ParallelMergeSorter(4).merge([np.sort(rng.random(4))] * 3)

    def test_pms_merge_with_sources_tracks_origin(self):
        pms = ParallelMergeSorter(2)
        values, sources = pms.merge_with_sources(
            [np.array([1.0, 4.0]), np.array([2.0, 3.0])]
        )
        assert np.array_equal(values, [1.0, 2.0, 3.0, 4.0])
        assert sources == [(0, 0), (1, 0), (1, 1), (0, 1)]

    def test_pms_cycle_model(self):
        pms = ParallelMergeSorter(4)
        assert pms.cycle_count(256) == 263  # paper: n + D_PMS
        assert pms.cycle_count(0) == 0

    def test_pms_merge_batch_matches_sequential_merge(self, rng):
        pms = ParallelMergeSorter(4)
        streams = np.sort(rng.random((3, 4, 16)), axis=-1)
        merged, positions = pms.merge_batch(streams)
        assert merged.shape == positions.shape == (3, 64)
        for row in range(3):
            expected = pms.merge(list(streams[row]))
            assert np.array_equal(merged[row], expected)
            # positions index the flattened (stream, element) input
            assert np.array_equal(
                streams[row].reshape(-1)[positions[row]], merged[row]
            )

    def test_pms_merge_batch_tie_policy_matches_sources(self):
        pms = ParallelMergeSorter(2)
        streams = np.array([[[1.0, 2.0], [1.0, 3.0]]])
        merged, positions = pms.merge_batch(streams)
        _, sources = pms.merge_with_sources([streams[0, 0], streams[0, 1]])
        flat_sources = [s * 2 + e for s, e in sources]
        assert positions[0].tolist() == flat_sources
        assert merged[0].tolist() == [1.0, 1.0, 2.0, 3.0]

    def test_pms_merge_batch_rejects_bad_input(self, rng):
        pms = ParallelMergeSorter(4)
        with pytest.raises(ConfigError):
            pms.merge_batch(np.sort(rng.random((3, 3, 8)), axis=-1))
        with pytest.raises(ConfigError):
            pms.merge_batch(rng.random((2, 4, 8)) * -np.arange(8))  # unsorted


class TestTwoStageSorter:
    def test_paper_reference_389_cycles(self):
        sorter = TwoStageSorter(1024, 4)
        assert sorter.stage_cycles() == (126, 263)
        assert sorter.cycle_count() == 389  # the paper's worked example

    def test_sixteen_tiles_faster(self):
        assert TwoStageSorter(1024, 16).cycle_count() < 389

    def test_functional_sort(self, rng):
        sorter = TwoStageSorter(1024, 4)
        values = rng.random(1024)
        sorted_vals, order = sorter.sort(values)
        assert np.array_equal(sorted_vals, np.sort(values))
        assert np.array_equal(values[order], sorted_vals)

    def test_global_indices_cover_all_slots(self, rng):
        sorter = TwoStageSorter(64, 4)
        _, order = sorter.sort(rng.random(64))
        assert sorted(order.tolist()) == list(range(64))

    def test_ties_resolve_to_global_index_order(self):
        # Matches numpy's stable argsort so the engine agrees with the
        # monolithic reference even on all-equal usage (the first step).
        sorter = TwoStageSorter(32, 4)
        _, order = sorter.sort(np.zeros(32))
        assert np.array_equal(order, np.arange(32))

    def test_skimming_shortens_sort(self):
        sorter = TwoStageSorter(1024, 4)
        assert sorter.cycle_count(effective_length=512) < sorter.cycle_count()

    def test_cycle_count_validates_effective_length(self):
        sorter = TwoStageSorter(64, 4)
        assert sorter.cycle_count(effective_length=64) == sorter.cycle_count()
        # Fully skimmed (skim_fraction=1.0) is a valid, free sort.
        assert sorter.cycle_count(effective_length=0) == 0
        for bad in (-1, 65, 10_000):
            with pytest.raises(ConfigError):
                sorter.cycle_count(effective_length=bad)
        with pytest.raises(ConfigError):
            sorter.cycle_count(effective_length=32.5)

    def test_fully_skimmed_perf_model_is_free(self):
        # Regression: skim_fraction=1.0 gives effective_sort_length=0;
        # the perf model must price that as a free sort, not raise.
        from repro.core.config import HiMAConfig
        from repro.core.perf_model import HiMAPerformanceModel

        config = HiMAConfig(
            memory_size=64, word_size=16, num_reads=2, num_tiles=4,
            hidden_size=32, skim_fraction=1.0,
        )
        model = HiMAPerformanceModel(config)
        assert model._sort_cycles() == 0
        assert model.timestep_cycles() > 0  # the rest still costs cycles

    def test_divisibility_enforced(self):
        with pytest.raises(ConfigError):
            TwoStageSorter(100, 3)

    def test_wrong_input_shape(self, rng):
        with pytest.raises(ConfigError):
            TwoStageSorter(64, 4).sort(rng.random(32))
        with pytest.raises(ConfigError):
            TwoStageSorter(64, 4).sort(rng.random((3, 32)))
        with pytest.raises(ConfigError):
            TwoStageSorter(64, 4).sort(rng.random((2, 3, 64)))

    def test_batched_sort_matches_per_element_bitwise(self, rng):
        sorter = TwoStageSorter(128, 4)
        usage = rng.random((8, 128))
        values, orders = sorter.sort(usage)
        assert values.shape == orders.shape == (8, 128)
        for row in range(8):
            seq_values, seq_order = sorter.sort(usage[row])
            assert np.array_equal(values[row], seq_values)
            assert np.array_equal(orders[row], seq_order)

    def test_tied_values_sort_identically_on_every_path(self):
        # Regression: the shear-sort phases are not tie-stable on their
        # own, so MDSA canonicalizes ties to index order — the sequential
        # path, the batched path, and numpy's stable argsort must agree
        # bitwise on partially tied usage, not just distinct/all-equal.
        usage = np.array(
            [3.0, 2.0, 2.0, 1.0, 1.0, 0.0, 0.0, 0.0,
             0.0, 3.0, 2.0, 3.0, 2.0, 2.0, 3.0, 2.0]
        )
        sorter = TwoStageSorter(16, 4)
        _, seq_order = sorter.sort(usage)
        _, batch_order = sorter.sort(usage[None, :])
        reference = np.argsort(usage, kind="stable")
        assert np.array_equal(seq_order, reference)
        assert np.array_equal(batch_order[0], reference)
        rng = np.random.default_rng(7)
        for _ in range(20):
            tied = rng.integers(0, 4, size=16).astype(float)
            _, seq = sorter.sort(tied)
            _, batched = sorter.sort(tied[None, :])
            assert np.array_equal(seq, np.argsort(tied, kind="stable"))
            assert np.array_equal(batched[0], seq)

    def test_batched_sort_all_equal_matches_per_element(self):
        # Tie policy: both paths resolve all-equal usage to global index
        # order (the engine's first step hits exactly this state).
        sorter = TwoStageSorter(32, 4)
        values, orders = sorter.sort(np.zeros((3, 32)))
        for row in range(3):
            assert np.array_equal(orders[row], np.arange(32))
            assert np.array_equal(values[row], np.zeros(32))

    def test_batched_sort_batch_of_one(self, rng):
        sorter = TwoStageSorter(64, 4)
        usage = rng.random(64)
        seq_values, seq_order = sorter.sort(usage)
        values, orders = sorter.sort(usage[None, :])
        assert np.array_equal(values[0], seq_values)
        assert np.array_equal(orders[0], seq_order)


@given(st.integers(4, 256), st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_mdsa_sort_property(n, seed):
    values = np.random.default_rng(seed).random(n)
    sorted_vals, order = MDSASorter(n).sort(values)
    assert np.array_equal(sorted_vals, np.sort(values))
    assert sorted(order.tolist()) == list(range(n))


@given(st.sampled_from([16, 32, 64, 128]), st.sampled_from([2, 4, 8]),
       st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_two_stage_sort_property(n, nt, seed):
    values = np.random.default_rng(seed).random(n)
    sorted_vals, order = TwoStageSorter(n, nt).sort(values)
    assert np.array_equal(sorted_vals, np.sort(values))
    assert np.array_equal(values[order], sorted_vals)
