"""SessionStore eviction policy, MicroBatcher scheduling, metrics, loadgen."""

import numpy as np
import pytest

from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig
from repro.errors import CapacityError, ConfigError
from repro.serve import MicroBatcher, ServerMetrics, SessionStore
from repro.serve.loadgen import (
    WORKLOAD_KINDS,
    generate_scripts,
    generate_zipf_scripts,
    tenant_of,
)
from repro.serve.metrics import _percentile_from_histogram


@pytest.fixture
def state_factory():
    model = NumpyDNC(NumpyDNCConfig(
        input_size=5, output_size=3, memory_size=8, word_size=4,
        num_reads=2, hidden_size=12,
    ), rng=0)
    return model.initial_state


class TestSessionStore:
    def test_create_get_touch_remove(self, state_factory):
        store = SessionStore(state_factory, capacity=4)
        record = store.create("a", tick=0)
        assert record.state.batch_size is None
        assert "a" in store and len(store) == 1
        store.touch("a", tick=5)
        assert store.get("a").last_active_tick == 5
        store.remove("a")
        assert "a" not in store
        with pytest.raises(ConfigError):
            store.get("a")

    def test_duplicate_create_rejected(self, state_factory):
        store = SessionStore(state_factory, capacity=4)
        store.create("a", tick=0)
        with pytest.raises(ConfigError):
            store.create("a", tick=1)

    def test_ttl_eviction(self, state_factory):
        store = SessionStore(state_factory, capacity=4, ttl_ticks=3)
        store.create("a", tick=0)
        store.create("b", tick=0)
        store.touch("b", tick=4)
        assert store.evict_expired(tick=4) == ["a"]  # idle 4 > ttl 3
        assert "a" not in store and "b" in store

    def test_ttl_protects_pending_sessions(self, state_factory):
        store = SessionStore(state_factory, capacity=4, ttl_ticks=1)
        store.create("a", tick=0)
        assert store.evict_expired(tick=10, protect={"a"}) == []
        assert "a" in store

    def test_lru_eviction_on_full_create(self, state_factory):
        evicted = []
        store = SessionStore(
            state_factory, capacity=2,
            on_evict=lambda sid, reason: evicted.append((sid, reason)),
        )
        store.create("a", tick=0)
        store.create("b", tick=1)
        store.touch("a", tick=2)  # b is now least recently active
        store.create("c", tick=3)
        assert evicted == [("b", "lru")]
        assert store.ids() == ["a", "c"]

    def test_full_store_without_lru_raises(self, state_factory):
        store = SessionStore(state_factory, capacity=1, lru_evict=False)
        store.create("a", tick=0)
        with pytest.raises(CapacityError):
            store.create("b", tick=1)

    def test_protected_sessions_never_lru_victims(self, state_factory):
        store = SessionStore(state_factory, capacity=2)
        store.create("a", tick=0)
        store.create("b", tick=1)
        with pytest.raises(CapacityError):
            store.create("c", tick=2, protect={"a", "b"})

    def test_create_prefers_ttl_then_lru(self, state_factory):
        evicted = []
        store = SessionStore(
            state_factory, capacity=2, ttl_ticks=2,
            on_evict=lambda sid, reason: evicted.append((sid, reason)),
        )
        store.create("a", tick=0)
        store.create("b", tick=9)
        store.create("c", tick=10)  # a expired (idle 10 > 2) -> ttl, not lru
        assert evicted == [("a", "ttl")]

    def test_config_validation(self, state_factory):
        with pytest.raises(ConfigError):
            SessionStore(state_factory, capacity=0)
        with pytest.raises(ConfigError):
            SessionStore(state_factory, ttl_ticks=0)


class TestMicroBatcher:
    def test_waits_then_dispatches_at_latency_bound(self):
        batcher = MicroBatcher(max_batch=4, max_wait_ticks=2)
        batcher.submit("a", np.zeros(3), tick=0)
        assert batcher.next_batch(tick=0) == []
        assert batcher.next_batch(tick=1) == []
        batch = batcher.next_batch(tick=2)
        assert [r.session_id for r in batch] == ["a"]
        assert len(batcher) == 0

    def test_full_batch_dispatches_before_wait_bound(self):
        batcher = MicroBatcher(max_batch=2, max_wait_ticks=100)
        batcher.submit("a", np.zeros(3), tick=0)
        batcher.submit("b", np.zeros(3), tick=0)
        assert len(batcher.next_batch(tick=0)) == 2

    def test_one_request_per_session_per_batch(self):
        batcher = MicroBatcher(max_batch=4, max_wait_ticks=0)
        for tick in (0, 0, 0):
            batcher.submit("a", np.zeros(3), tick=tick)
        batcher.submit("b", np.zeros(3), tick=0)
        batch = batcher.next_batch(tick=0)
        assert sorted(r.session_id for r in batch) == ["a", "b"]
        assert len(batcher) == 2  # a's later steps stay queued, in order
        assert [r.session_id for r in batcher.next_batch(tick=1)] == ["a"]

    def test_oldest_requests_dispatch_first(self):
        batcher = MicroBatcher(max_batch=2, max_wait_ticks=0)
        batcher.submit("late", np.zeros(3), tick=5)
        batcher.submit("early", np.zeros(3), tick=1)
        batcher.submit("mid", np.zeros(3), tick=3)
        batch = batcher.next_batch(tick=5)
        assert [r.session_id for r in batch] == ["early", "mid"]

    def test_queue_capacity_backpressure(self):
        batcher = MicroBatcher(max_batch=2, queue_capacity=2)
        assert batcher.submit("a", np.zeros(3), tick=0) is not None
        assert batcher.submit("b", np.zeros(3), tick=0) is not None
        assert batcher.submit("c", np.zeros(3), tick=0) is None

    def test_drop_session_returns_queue(self):
        batcher = MicroBatcher(max_batch=2, queue_capacity=8)
        batcher.submit("a", np.zeros(3), tick=0)
        batcher.submit("a", np.zeros(3), tick=0)
        dropped = batcher.drop_session("a")
        assert len(dropped) == 2 and len(batcher) == 0
        assert batcher.drop_session("a") == []

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ConfigError):
            MicroBatcher(max_wait_ticks=-1)
        with pytest.raises(ConfigError):
            MicroBatcher(queue_capacity=0)

    def test_adopt_requeues_same_objects_in_order(self):
        """A migrated session's pending FIFO lands on the destination
        batcher as the same request objects, order preserved, submit
        ticks intact, re-stamped into the local sequence."""
        src = MicroBatcher(max_batch=4, max_wait_ticks=0)
        for tick in (0, 1, 2):
            src.submit("s", np.zeros(3), tick=tick)
        pending = src.drop_session("s")
        dst = MicroBatcher(max_batch=4, max_wait_ticks=0)
        dst.submit("other", np.zeros(3), tick=0)
        dst.adopt("s", pending)
        assert len(dst) == 4
        first = dst.next_batch(tick=5)
        assert {r.session_id for r in first} == {"other", "s"}
        adopted = next(r for r in first if r.session_id == "s")
        assert adopted is pending[0]  # identity, not a copy
        assert adopted.submitted_tick == 0
        # The remaining adopted requests drain in FIFO order.
        assert dst.next_batch(tick=6) == [pending[1]]
        assert dst.next_batch(tick=7) == [pending[2]]

    def test_adopt_empty_is_noop(self):
        batcher = MicroBatcher()
        batcher.adopt("s", [])
        assert len(batcher) == 0
        assert "s" not in batcher.pending_sessions()


class TestServerMetrics:
    def test_percentiles_exact_nearest_rank(self):
        hist = {1: 50, 2: 45, 10: 5}  # 100 samples
        assert _percentile_from_histogram(hist, 0.50) == 1.0
        assert _percentile_from_histogram(hist, 0.95) == 2.0
        assert _percentile_from_histogram(hist, 0.99) == 10.0
        assert _percentile_from_histogram({}, 0.5) is None

    def test_wait_and_occupancy_tracking(self):
        metrics = ServerMetrics()
        for wait in (0, 0, 1, 3):
            metrics.observe_wait(wait)
        metrics.observe_occupancy(0)
        metrics.observe_occupancy(4)
        metrics.observe_occupancy(4)
        p50, p95 = metrics.wait_percentiles()
        assert p50 == 0.0 and p95 == 3.0
        assert metrics.mean_occupancy() == 4.0
        assert metrics.mean_occupancy(include_idle=True) == pytest.approx(8 / 3)
        assert metrics.ticks == 3

    def test_snapshot_is_json_shaped(self):
        import json

        metrics = ServerMetrics()
        metrics.observe_wait(2)
        metrics.observe_occupancy(3)
        snap = metrics.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["p50_wait_ticks"] == 2.0
        assert snap["occupancy_histogram"] == {"3": 1}
        assert snap["migrations_in"] == 0 and snap["migrations_out"] == 0

    def test_merge_equals_recompute_from_events(self):
        """The cross-shard aggregation contract: merging per-shard
        metrics must equal one metrics object that observed every event
        itself — counters, histograms, and every derived statistic."""
        events = [
            (0, [(0, 3), (1, 2), (0, 0)], 128),   # (waits per tick,) ...
            (1, [(2, 4), (5, 4)], 256),
            (2, [(1, 1)], 0),
        ]
        parts = []
        reference = ServerMetrics()
        for shard, ticks, copied in events:
            part = ServerMetrics()
            for wait, occupancy in ticks:
                for sink in (part, reference):
                    sink.observe_wait(wait)
                    sink.observe_occupancy(occupancy)
                    sink.observe_slots(occupancy)
            part.observe_state_copy(copied)
            reference.observe_state_copy(copied)
            part.requests_completed = len(ticks)
            reference.requests_completed += len(ticks)
            part.migrations_in = shard  # arbitrary distinct counter values
            reference.migrations_in += shard
            parts.append(part)
        merged = ServerMetrics.merge(parts)
        assert merged.snapshot() == reference.snapshot()
        assert merged.wait_percentiles() == reference.wait_percentiles()
        assert merged.mean_occupancy() == reference.mean_occupancy()
        assert merged.state_bytes_per_tick() == reference.state_bytes_per_tick()

    def test_merge_of_nothing_is_fresh(self):
        assert ServerMetrics.merge([]).snapshot() == ServerMetrics().snapshot()

    def test_counters_tuple_is_complete(self):
        """Every plain integer counter must be listed in COUNTERS, or
        merge would silently drop it."""
        metrics = ServerMetrics()
        plain = {
            name for name, value in vars(metrics).items()
            if isinstance(value, int)
        }
        assert plain == set(ServerMetrics.COUNTERS)


class TestLoadGenerator:
    def test_same_seed_same_traffic(self):
        a = generate_scripts(input_size=8, num_sessions=6, rng=11)
        b = generate_scripts(input_size=8, num_sessions=6, rng=11)
        assert [s.session_id for s in a] == [s.session_id for s in b]
        assert [s.arrival_tick for s in a] == [s.arrival_tick for s in b]
        for x, y in zip(a, b):
            assert np.array_equal(x.inputs, y.inputs)

    def test_different_seed_different_traffic(self):
        a = generate_scripts(input_size=8, num_sessions=6, rng=11)
        b = generate_scripts(input_size=8, num_sessions=6, rng=12)
        assert any(
            not np.array_equal(x.inputs, y.inputs) for x, y in zip(a, b)
        )

    def test_mixed_workloads_and_shapes(self):
        scripts = generate_scripts(
            input_size=8, num_sessions=24, mean_session_len=6.0, rng=0
        )
        kinds = {s.kind for s in scripts}
        assert kinds == set(WORKLOAD_KINDS)
        assert all(s.inputs.shape == (s.length, 8) for s in scripts)
        assert all(s.length >= 2 for s in scripts)
        arrivals = [s.arrival_tick for s in scripts]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0  # arrivals actually spread out

    def test_simultaneous_arrivals_with_zero_interarrival(self):
        scripts = generate_scripts(
            input_size=8, num_sessions=5, mean_interarrival_ticks=0.0, rng=0
        )
        assert all(s.arrival_tick == 0 for s in scripts)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            generate_scripts(input_size=8, kinds=("nope",))


class TestZipfLoadGenerator:
    def test_same_seed_same_trace(self):
        """Identical seeds pin the identical trace: ids (tenants
        included), arrivals, lengths, and every input value."""
        a = generate_zipf_scripts(input_size=8, num_sessions=30, rng=21)
        b = generate_zipf_scripts(input_size=8, num_sessions=30, rng=21)
        assert [s.session_id for s in a] == [s.session_id for s in b]
        assert [s.arrival_tick for s in a] == [s.arrival_tick for s in b]
        for x, y in zip(a, b):
            assert np.array_equal(x.inputs, y.inputs)

    def test_different_seed_different_trace(self):
        a = generate_zipf_scripts(input_size=8, num_sessions=30, rng=21)
        b = generate_zipf_scripts(input_size=8, num_sessions=30, rng=22)
        assert [s.session_id for s in a] != [s.session_id for s in b]

    def test_tenants_are_zipf_skewed(self):
        scripts = generate_zipf_scripts(
            input_size=8, num_sessions=120, num_tenants=8,
            zipf_exponent=1.3, rng=4,
        )
        counts = {}
        for script in scripts:
            tenant = tenant_of(script.session_id)
            counts[tenant] = counts.get(tenant, 0) + 1
        # The head tenant dominates any uniform share.
        assert max(counts.values()) > 2 * (120 // 8)
        assert len(counts) > 1

    def test_session_ids_carry_tenant_routing_key(self):
        scripts = generate_zipf_scripts(input_size=8, num_sessions=10, rng=0)
        for script in scripts:
            assert tenant_of(script.session_id).startswith("t")
            assert script.kind in WORKLOAD_KINDS

    def test_validation(self):
        with pytest.raises(ConfigError):
            generate_zipf_scripts(input_size=8, num_tenants=0)
        with pytest.raises(ConfigError):
            generate_zipf_scripts(input_size=8, zipf_exponent=0.0)
        with pytest.raises(ConfigError):
            generate_zipf_scripts(input_size=8, kinds=("nope",))
