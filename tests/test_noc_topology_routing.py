"""NoC topologies and routing: structure, hop counts, determinism."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, RoutingError
from repro.noc import RoutingTable, build_topology, hop_statistics, worst_case_hops
from repro.noc.topology import TOPOLOGY_BUILDERS


ALL_TOPOLOGIES = sorted(TOPOLOGY_BUILDERS)


class TestTopologyStructure:
    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    @pytest.mark.parametrize("num_pts", [1, 4, 16, 64])
    def test_connected_with_expected_tiles(self, name, num_pts):
        topo = build_topology(name, num_pts)
        assert nx.is_connected(topo.graph)
        assert topo.num_pts == num_pts
        assert topo.ct_node not in topo.pt_nodes
        assert set(topo.pt_nodes) == set(range(num_pts))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigError):
            build_topology("torus", 16)

    def test_tree_requires_power_of_two(self):
        with pytest.raises(ConfigError):
            build_topology("htree", 12)

    def test_star_degree(self):
        topo = build_topology("star", 16)
        assert topo.degree(topo.ct_node) == 16
        assert all(topo.degree(pt) == 1 for pt in topo.pt_nodes)

    def test_ring_degrees(self):
        topo = build_topology("ring", 8)
        assert all(topo.graph.degree[n] == 2 for n in topo.graph.nodes)

    def test_hima_has_diagonals_mesh_does_not(self):
        hima = build_topology("hima", 16)
        mesh = build_topology("mesh", 16)
        assert hima.graph.number_of_edges() > mesh.graph.number_of_edges()

    def test_grid_positions_recorded(self):
        topo = build_topology("hima", 24)
        assert len(topo.positions) == 25
        rows = {r for r, _ in topo.positions.values()}
        cols = {c for _, c in topo.positions.values()}
        assert len(rows) == 5 and len(cols) == 5

    def test_ct_is_central_in_grid(self):
        topo = build_topology("hima", 24)
        assert topo.positions[topo.ct_node] == (2, 2)


class TestPaperHopCounts:
    def test_htree_16_worst_case_8_hops(self):
        assert worst_case_hops(build_topology("htree", 16)) == 8

    def test_hima_5x5_worst_case_4_hops(self):
        assert worst_case_hops(build_topology("hima", 24)) == 4

    def test_star_worst_case_2_hops(self):
        assert worst_case_hops(build_topology("star", 64)) == 2

    def test_hima_beats_mesh_and_htree(self):
        for n in (16, 64):
            hima = worst_case_hops(build_topology("hima", n))
            mesh = worst_case_hops(build_topology("mesh", n))
            htree = worst_case_hops(build_topology("htree", n))
            assert hima < mesh
            assert hima < htree

    def test_hop_statistics_fields(self):
        stats = hop_statistics(build_topology("htree", 16))
        assert stats.worst_case == 8
        assert stats.ct_worst_case == 4
        assert 0 < stats.average <= stats.worst_case
        assert "htree" in str(stats)


class TestRouting:
    def test_path_endpoints_and_edges(self):
        topo = build_topology("hima", 16)
        routing = RoutingTable(topo)
        path = routing.path(0, 15)
        assert path[0] == 0 and path[-1] == 15
        for u, v in zip(path[:-1], path[1:]):
            assert topo.graph.has_edge(u, v)

    def test_path_is_shortest(self):
        topo = build_topology("mesh", 16)
        routing = RoutingTable(topo)
        for src in topo.pt_nodes[:4]:
            for dst in topo.pt_nodes[-4:]:
                expected = nx.shortest_path_length(topo.graph, src, dst)
                assert routing.hops(src, dst) == expected

    def test_deterministic_across_instances(self):
        topo = build_topology("hima", 16)
        a = RoutingTable(topo)
        b = RoutingTable(topo)
        for dst in (3, 7, 11):
            assert a.path(0, dst) == b.path(0, dst)

    def test_zero_hops_to_self(self):
        topo = build_topology("star", 4)
        assert RoutingTable(topo).hops(2, 2) == 0

    def test_links_are_directed_pairs(self):
        topo = build_topology("ring", 6)
        routing = RoutingTable(topo)
        links = routing.links(0, 3)
        assert all(len(link) == 2 for link in links)
        assert len(links) == routing.hops(0, 3)

    def test_unreachable_raises(self):
        import networkx as nx
        from repro.noc.topology import Topology

        graph = nx.Graph()
        graph.add_node(0)
        graph.add_node(1)  # disconnected
        topo = Topology("broken", graph, [0], 1)
        with pytest.raises(RoutingError):
            RoutingTable(topo).path(0, 1)


@given(
    st.sampled_from(ALL_TOPOLOGIES),
    st.sampled_from([2, 4, 8, 16, 32]),
)
@settings(max_examples=30, deadline=None)
def test_routing_hops_symmetric_property(name, num_pts):
    """Shortest-path lengths are symmetric on undirected topologies."""
    topo = build_topology(name, num_pts)
    routing = RoutingTable(topo)
    rng = np.random.default_rng(num_pts)
    for _ in range(5):
        a, b = rng.integers(0, num_pts, size=2)
        assert routing.hops(int(a), int(b)) == routing.hops(int(b), int(a))
