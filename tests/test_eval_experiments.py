"""Experiment runners: structure, registry, and shape assertions."""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.eval import fig4, fig5, fig6, fig7, fig10, fig11, fig12, table1
from repro.eval.runners import EXPERIMENTS, ExperimentResult


SMALL = dict(memory_size=128, word_size=16, num_reads=2, hidden_size=32)


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "fig4", "fig5", "fig6c", "fig6d", "fig7", "fig10",
            "fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f",
            "fig12a", "fig12bcd",
        }
        assert expected <= set(EXPERIMENTS)

    def test_result_render(self):
        result = ExperimentResult(
            "x", "demo", ["a", "b"], [[1, 2]], notes=["hello"]
        )
        text = result.render()
        assert "demo" in text and "hello" in text


class TestTable1:
    def test_rows_and_measured_columns(self):
        result = table1.run(
            HiMAConfig(**SMALL, num_tiles=4), measure_steps=1
        )
        assert len(result.rows) == 13
        assert result.headers[0] == "type"


class TestFig4:
    def test_memory_unit_dominates(self):
        result = fig4.run(num_episodes=1, memory_size=256, word_size=32,
                          hidden_size=64)
        assert len(result.rows) == 5
        # The "memory unit >95%" claim, at reduced scale: still dominant.
        note = result.notes[1]
        share = float(note.split(":")[1].split("%")[0])
        assert share > 80.0

    def test_paper_reference_percentages_encoded(self):
        assert sum(fig4.PAPER_GPU_PERCENT.values()) == 100.0
        assert sum(fig4.PAPER_CPU_PERCENT.values()) == 100.0


class TestFig5:
    def test_hop_table(self):
        result = fig5.hop_table(16)
        htree_row = next(r for r in result.rows if r[0] == "htree")
        assert htree_row[2] == 8  # paper worst case

    def test_scalability_series_shapes(self):
        result = fig5.run(
            nocs=("htree", "hima"), pt_counts=(1, 4, 16), **SMALL
        ) if False else fig5.run(
            nocs=("htree", "hima"), pt_counts=(1, 4, 16),
            memory_size=128, word_size=16,
        )
        names = [row[0] for row in result.rows]
        assert "htree, DNC" in names
        assert "hima, DNC-D" in names and "ideal" in names
        for row in result.rows:
            assert len(row) == 4  # series + 3 points

    def test_dncd_scales_best_at_16_tiles(self):
        result = fig5.run(
            nocs=("htree", "hima"), pt_counts=(1, 16),
            memory_size=256, word_size=16,
        )
        by_name = {row[0]: row for row in result.rows}

        def last(name):
            return float(by_name[name][-1].rstrip("x"))

        assert last("hima, DNC-D") > last("hima, DNC") > last("htree, DNC")


class TestFig6:
    def test_memory_read_normalized_to_row_wise(self):
        result = fig6.run_memory_read(tile_counts=(16,))
        row = result.rows[0]
        assert row[1] == "1.00x"  # Nt_w = 1 reference
        # Column-wise tail is much worse.
        assert float(row[5].rstrip("x")) > 5.0

    def test_forward_backward_interior_optimum(self):
        result = fig6.run_forward_backward(tile_counts=(16,))
        row = result.rows[0]
        values = [float(c.rstrip("x")) for c in row[1:] if c != "-"]
        # Optimum (1.0) is strictly inside the sweep.
        assert values[0] > 1.0 and values[-1] > 1.0
        assert min(values) == 1.0
        assert "4x4" in result.notes[-1]


class TestFig7:
    def test_reference_row_present(self):
        result = fig7.run(lengths=(1024,), tile_counts=(4,), seed=1)
        row = result.rows[0]
        assert row[:5] == [1024, 4, 126, 263, 389]

    def test_two_stage_always_beats_naive(self):
        result = fig7.run(lengths=(256, 1024), tile_counts=(4, 16))
        for row in result.rows:
            assert row[4] < row[6]


class TestFig11:
    @pytest.fixture(scope="class")
    def overrides(self):
        return dict(memory_size=256, word_size=16, num_reads=2,
                    hidden_size=32)

    def test_speed_ladder_monotone(self, overrides):
        result = fig11.run_speed_ladder(**overrides)
        speedups = [float(r[2].rstrip("x")) for r in result.rows]
        assert speedups[0] == 1.0
        assert all(b >= a for a, b in zip(speedups, speedups[1:-1]))

    def test_power_ladder_rows(self, overrides):
        result = fig11.run_power_ladder(**overrides)
        assert len(result.rows) == 6
        watts = [float(r[1]) for r in result.rows]
        assert all(w > 0 for w in watts)

    def test_runtime_breakdown_sums_to_100(self, overrides):
        result = fig11.run_runtime_breakdown(**overrides)
        dnc_rows = [r for r in result.rows if r[0] == "HiMA-DNC"]
        total = sum(float(r[2].rstrip("%")) for r in dnc_rows)
        assert total == pytest.approx(100.0, abs=0.5)

    def test_area_table_full_scale_matches_paper(self):
        result = fig11.run_area_power_table()
        dnc_row = next(r for r in result.rows if r[0] == "dnc")
        model_total = float(dnc_row[4].split("/")[0])
        assert model_total == pytest.approx(80.69, rel=0.01)

    def test_kernel_power_rows(self, overrides):
        result = fig11.run_kernel_power(**overrides)
        assert len(result.rows) == 10

    def test_module_power_rows(self, overrides):
        result = fig11.run_module_power(**overrides)
        assert len(result.rows) == 10


class TestFig12:
    def test_scalability_dncd_closer_to_linear(self):
        result = fig12.run_scalability(tile_counts=(4, 16))
        dnc = [r for r in result.rows if r[0] == "HiMA-DNC"]
        dncd = [r for r in result.rows if r[0] == "HiMA-DNC-D"]
        dnc_scale = float(dnc[-1][5].rstrip("x"))
        dncd_scale = float(dncd[-1][5].rstrip("x"))
        ideal = float(dnc[-1][6].rstrip("x"))
        # DNC power grows super-linearly; DNC-D stays below/near linear.
        assert dnc_scale > ideal
        assert dncd_scale < dnc_scale

    def test_comparison_orderings(self):
        result = fig12.run_comparison(
            memory_size=256, word_size=16, num_reads=2, hidden_size=32
        )
        by_name = {row[0]: row for row in result.rows}

        def speed(name):
            return float(by_name[name][2].rstrip("x"))

        assert speed("HiMA-DNC-D") > speed("HiMA-DNC") > speed("MANNA")
        assert speed("HiMA-DNC") > speed("Farm")

    def test_paper_targets_encoded(self):
        assert fig12.PAPER_TARGETS["speedup_vs_gpu_dncd"] == 2646.0


class TestFig10Smoke:
    def test_tiny_settings_run_end_to_end(self):
        settings = fig10.Fig10Settings(
            task_ids=(1,), train_steps=4, finetune_steps=2, batch_size=2,
            train_examples=12, eval_examples=4, memory_size=8, word_size=4,
            num_reads=1, hidden_size=12, tile_counts=(2,),
            skim_rates=(0.0, 0.5), skim_tiles=2, seed=0,
        )
        result = fig10.run(settings)
        assert len(result.rows) == 2  # one task + mean row
        assert result.rows[0][0] == 1
        assert result.rows[-1][0] == "mean"
