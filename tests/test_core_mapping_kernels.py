"""Memory map placement and the Table 1 kernel registry."""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.kernels import KERNEL_REGISTRY, table1_rows
from repro.core.mapping import MemoryMap
from repro.dnc.instrumentation import KERNEL_CATEGORIES
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig
from repro.errors import ConfigError


class TestMemoryMap:
    @pytest.fixture
    def mmap(self, small_hima_config):
        return MemoryMap(small_hima_config)  # N=64, Nt=4 -> 2x2 linkage grid

    def test_external_rows_partition_everything(self, mmap):
        covered = []
        for t in range(4):
            rows = mmap.external_rows(t)
            covered.extend(range(rows.start, rows.stop))
        assert covered == list(range(64))

    def test_owner_of_row(self, mmap):
        assert mmap.owner_of_row(0) == 0
        assert mmap.owner_of_row(16) == 1
        assert mmap.owner_of_row(63) == 3
        with pytest.raises(ConfigError):
            mmap.owner_of_row(64)

    def test_linkage_blocks_tile_grid(self, mmap):
        assert (mmap.nt_h, mmap.nt_w) == (2, 2)
        seen = np.zeros((64, 64), dtype=int)
        for t in range(4):
            rows, cols = mmap.linkage_block(t)
            seen[rows, cols] += 1
        assert np.all(seen == 1)  # exact cover, no overlap

    def test_grid_index_round_trip(self, mmap):
        for t in range(4):
            bi, bj = mmap.linkage_grid_index(t)
            assert t == bi * mmap.nt_w + bj

    def test_row_segment_owners(self, mmap):
        owners = mmap.row_segment_owners(slice(0, 32))
        assert owners == (0, 1)
        assert mmap.row_segment_owners(slice(48, 64)) == (3,)

    def test_ct_node_id(self, mmap):
        assert mmap.ct_node == 4

    def test_tile_bounds(self, mmap):
        with pytest.raises(ConfigError):
            mmap.external_rows(4)


class TestKernelRegistry:
    def test_fourteen_kernels_minus_lstm(self):
        # Table 1 lists 13 memory-unit kernels; the controller is separate.
        assert len(KERNEL_REGISTRY) == 13
        assert "lstm" not in KERNEL_REGISTRY

    def test_every_kernel_has_category(self):
        for name in KERNEL_REGISTRY:
            assert name in KERNEL_CATEGORIES

    def test_access_vs_state_split(self):
        access = {n for n, s in KERNEL_REGISTRY.items() if s.kernel_type == "access"}
        assert access == {"normalize", "similarity", "memory_write", "memory_read"}
        state = {n for n, s in KERNEL_REGISTRY.items() if s.kernel_type == "state"}
        assert "usage_sort" in state and "linkage" in state

    def test_state_kernels_have_no_ext_access(self):
        cfg = HiMAConfig()
        for name, spec in KERNEL_REGISTRY.items():
            if spec.kernel_type == "state":
                assert spec.ext_mem_accesses(cfg) == 0, name

    def test_formulas_match_instrumented_reference(self):
        """Registry access formulas == instrumented per-step counts."""
        cfg = HiMAConfig(memory_size=32, word_size=8, num_reads=2,
                         num_tiles=4, hidden_size=16)
        ref = NumpyDNC(
            NumpyDNCConfig(input_size=8, output_size=8, memory_size=32,
                           word_size=8, num_reads=2, hidden_size=16),
            rng=0,
        )
        steps = 3
        ref.run(np.zeros((steps, 8)))
        for name in ("memory_write", "memory_read", "retention", "usage",
                     "linkage", "forward_backward", "precedence"):
            spec = KERNEL_REGISTRY[name]
            measured = ref.recorder.stats[name]
            assert measured.ext_mem_accesses == steps * spec.ext_mem_accesses(cfg), name
            assert measured.state_mem_accesses == steps * spec.state_mem_accesses(cfg), name

    def test_distributed_shrinks_linkage_kernels(self):
        dnc = HiMAConfig.hima_dnc()
        dncd = HiMAConfig.hima_dncd()
        for name in ("linkage", "forward_backward"):
            spec = KERNEL_REGISTRY[name]
            assert spec.ops(dncd) == spec.ops(dnc) // dnc.num_tiles
            assert spec.noc_words(dncd) == 0.0

    def test_skimming_reduces_sort_ops(self):
        exact = HiMAConfig()
        skim = HiMAConfig(skim_fraction=0.5)
        sort = KERNEL_REGISTRY["usage_sort"]
        assert sort.ops(skim) < sort.ops(exact)

    def test_table1_rows_render(self):
        rows = table1_rows(HiMAConfig())
        assert len(rows) == 13
        for row in rows:
            assert len(row) == 9

    def test_forward_backward_dominates_traffic(self):
        cfg = HiMAConfig()
        fb = KERNEL_REGISTRY["forward_backward"].noc_words(cfg)
        for name, spec in KERNEL_REGISTRY.items():
            if name != "forward_backward":
                assert spec.noc_words(cfg) <= fb
