"""gather_states / scatter_states and state (de)serialization.

Property-style coverage for the serving layer's packing and checkpoint
primitives: ``scatter_states(gather_states(states))`` must reproduce
the inputs *bitwise* (not merely within tolerance) for both dtype
policies and across memory sizes; gathering changing subsets of a
session population must never perturb non-members; and
``NumpyDNCState.from_bytes(state.to_bytes())`` — the cluster's
session-migration wire format — must round-trip bitwise and
dtype-preserving with a validated versioned header.
"""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine, gather_states, scatter_states
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig, NumpyDNCState
from repro.errors import ConfigError


def random_state(model: NumpyDNC, rng) -> NumpyDNCState:
    """An unbatched state with every field filled from ``rng``."""
    state = model.initial_state()
    for name in NumpyDNCState.FIELDS:
        array = getattr(state, name)
        array[...] = rng.standard_normal(array.shape).astype(array.dtype)
    return state


def states_equal_bitwise(a: NumpyDNCState, b: NumpyDNCState) -> bool:
    for name in NumpyDNCState.FIELDS:
        fa, fb = getattr(a, name), getattr(b, name)
        if fa.dtype != fb.dtype or fa.shape != fb.shape:
            return False
        if not np.array_equal(fa.view(np.uint8), fb.view(np.uint8)):
            return False
    return True


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("memory_size", [8, 32])
@pytest.mark.parametrize("k", [1, 2, 5])
def test_roundtrip_is_bitwise(dtype, memory_size, k, rng):
    model = NumpyDNC(NumpyDNCConfig(
        input_size=5, output_size=3, memory_size=memory_size, word_size=4,
        num_reads=2, hidden_size=12, dtype=dtype,
    ), rng=0)
    states = [random_state(model, rng) for _ in range(k)]
    originals = [
        NumpyDNCState(**{
            name: getattr(s, name).copy() for name in NumpyDNCState.FIELDS
        })
        for s in states
    ]
    recovered = scatter_states(gather_states(states))
    assert len(recovered) == k
    for orig, out in zip(originals, recovered):
        assert states_equal_bitwise(orig, out)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_gather_is_copy_not_view(dtype, rng):
    model = NumpyDNC(NumpyDNCConfig(
        input_size=5, output_size=3, memory_size=8, word_size=4,
        num_reads=2, hidden_size=12, dtype=dtype,
    ), rng=0)
    states = [random_state(model, rng) for _ in range(3)]
    batched = gather_states(states)
    before = states[1].memory.copy()
    batched.memory[1] += 1.0
    assert np.array_equal(states[1].memory, before)
    recovered = scatter_states(batched)
    batched_before = batched.usage[0].copy()
    recovered[0].usage[...] = -7.0
    assert np.array_equal(batched.usage[0], batched_before)
    assert not np.shares_memory(recovered[0].usage, batched.usage)


def test_ragged_membership_leaves_nonmembers_untouched(rng):
    """Stepping shifting subsets through the engine must never perturb the
    sessions that sat out, and members advance exactly as solo steps."""
    config = HiMAConfig(
        memory_size=32, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, two_stage_sort=False,
    )
    engine = TiledEngine(config, rng=0)
    states = [engine.initial_state() for _ in range(4)]
    memberships = [(0, 1, 2), (1, 3), (0, 2, 3), (2,)]
    for step, members in enumerate(memberships):
        xs = rng.standard_normal((len(members), 16))
        snapshot = {
            i: NumpyDNCState(**{
                name: getattr(states[i], name).copy()
                for name in NumpyDNCState.FIELDS
            })
            for i in range(4)
        }
        batched = gather_states([states[i] for i in members])
        _, new_batched = engine.step(xs, batched)
        for slot, i in enumerate(members):
            states[i] = scatter_states(new_batched)[slot]
        for i in range(4):
            if i not in members:
                assert states_equal_bitwise(states[i], snapshot[i]), (step, i)
        # Members match a solo unbatched step from the same snapshot.
        for slot, i in enumerate(members):
            y_solo, solo_state = engine.step(xs[slot], snapshot[i])
            for name in NumpyDNCState.FIELDS:
                diff = np.max(np.abs(
                    getattr(states[i], name) - getattr(solo_state, name)
                ))
                assert diff <= 1e-10, (step, i, name)


class TestStateBytesRoundTrip:
    """to_bytes/from_bytes: the checkpoint/migration primitive."""

    def make_model(self, dtype, memory_size=8):
        return NumpyDNC(NumpyDNCConfig(
            input_size=5, output_size=3, memory_size=memory_size,
            word_size=4, num_reads=2, hidden_size=12, dtype=dtype,
        ), rng=0)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("memory_size", [8, 32])
    def test_roundtrip_is_bitwise_and_dtype_preserving(
        self, dtype, memory_size, rng
    ):
        for _ in range(5):  # property-style: many random states
            state = random_state(self.make_model(dtype, memory_size), rng)
            recovered = NumpyDNCState.from_bytes(state.to_bytes())
            assert states_equal_bitwise(state, recovered)
            # The recovered arrays own their data (the payload may die).
            assert recovered.memory.base is None

    def test_batched_state_roundtrips(self, rng):
        model = self.make_model("float64")
        state = NumpyDNCState.stack(
            [random_state(model, rng) for _ in range(3)]
        )
        recovered = NumpyDNCState.from_bytes(state.to_bytes())
        assert recovered.batch_size == 3
        assert states_equal_bitwise(state, recovered)

    def test_header_is_versioned(self):
        payload = self.make_model("float64").initial_state().to_bytes()
        assert payload.startswith(NumpyDNCState.BYTES_MAGIC)

    def test_malformed_payloads_rejected(self, rng):
        state = random_state(self.make_model("float64"), rng)
        payload = state.to_bytes()
        with pytest.raises(ConfigError):
            NumpyDNCState.from_bytes(b"not a checkpoint")
        with pytest.raises(ConfigError):  # wrong version
            bad = bytearray(payload)
            bad[len(NumpyDNCState.BYTES_MAGIC)] = 99
            NumpyDNCState.from_bytes(bytes(bad))
        with pytest.raises(ConfigError):  # truncated body
            NumpyDNCState.from_bytes(payload[:-10])
        with pytest.raises(ConfigError):  # trailing garbage
            NumpyDNCState.from_bytes(payload + b"x")


class TestValidation:
    def setup_method(self):
        self.model = NumpyDNC(NumpyDNCConfig(
            input_size=5, output_size=3, memory_size=8, word_size=4,
            num_reads=2, hidden_size=12,
        ), rng=0)

    def test_empty_gather_rejected(self):
        with pytest.raises(ConfigError):
            gather_states([])

    def test_batched_input_rejected(self):
        with pytest.raises(ConfigError):
            gather_states([self.model.initial_state(batch_size=2)])

    def test_mismatched_shapes_rejected(self):
        other = NumpyDNC(NumpyDNCConfig(
            input_size=5, output_size=3, memory_size=16, word_size=4,
            num_reads=2, hidden_size=12,
        ), rng=0)
        with pytest.raises(ConfigError):
            gather_states([self.model.initial_state(), other.initial_state()])

    def test_mismatched_dtypes_rejected(self):
        f32 = NumpyDNC(NumpyDNCConfig(
            input_size=5, output_size=3, memory_size=8, word_size=4,
            num_reads=2, hidden_size=12, dtype="float32",
        ), rng=0)
        with pytest.raises(ConfigError):
            gather_states([self.model.initial_state(), f32.initial_state()])

    def test_scatter_of_unbatched_rejected(self):
        with pytest.raises(ConfigError):
            scatter_states(self.model.initial_state())
