"""Process-level serving: wire format, crash recovery, clean shutdown.

The acceptance bars for the worker-process cluster:

* a truncated/corrupted/oversized RPC frame raises a clean
  :class:`~repro.errors.FrameError` — never a hang, never garbage data;
* a SIGKILLed worker's sessions are restored on a replacement process
  with their continued trajectories **bitwise** identical to the
  never-killed run at equal dispatch order from the last checkpoint, and
  <= 1e-10 vs solo unbatched stepping end-to-end under multi-session
  churn with random kills;
* closing the cluster (context manager, success or failure) leaves no
  orphaned child processes.
"""

import socket

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.errors import CapacityError, ConfigError, FrameError, WorkerCrashed
from repro.serve import CheckpointSupervisor, ProcCluster
from repro.serve.loadgen import (
    SessionScript,
    generate_zipf_scripts,
    run_open_loop,
    run_rolling_restart,
)
from repro.serve.proc import MAX_FRAME_BYTES, read_frame, write_frame

SEED = 7


class _PinnedPlacement:
    """Always nominates worker 0 — forces the spill path in tests."""

    def place(self, session_id, shards):
        return 0


def proc_config(**features):
    base = dict(
        memory_size=32, word_size=8, num_reads=1, num_tiles=4,
        hidden_size=16, two_stage_sort=False,
    )
    base.update(features)
    return HiMAConfig(**base)


def make_cluster(num_workers=2, **kwargs):
    defaults = dict(
        max_batch=4, max_wait_ticks=1, session_capacity=8,
        checkpoint_interval=4, rpc_timeout=30.0,
    )
    defaults.update(kwargs)
    features = defaults.pop("features", {})
    return ProcCluster(
        proc_config(**features), seed=SEED, num_workers=num_workers,
        **defaults,
    )


def solo_trajectory(config, inputs):
    engine = TiledEngine(config, rng=SEED)
    state = engine.initial_state()
    ys = []
    for x in inputs:
        y, state = engine.step(x, state)
        ys.append(y)
    return ys


# ---------------------------------------------------------------------------
# Length-prefixed frame protocol
# ---------------------------------------------------------------------------


class TestFrameProtocol:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def _framed_bytes(self, message):
        a, b = self._pair()
        try:
            write_frame(a, message)
            chunks = []
            b.setblocking(False)
            while True:
                try:
                    chunk = b.recv(65536)
                except BlockingIOError:
                    break
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        finally:
            a.close()
            b.close()

    def test_roundtrip_preserves_message(self):
        a, b = self._pair()
        try:
            message = {"cmd": "tick", "x": np.arange(5.0), "n": 3}
            write_frame(a, message)
            got = read_frame(b)
            assert got["cmd"] == "tick" and got["n"] == 3
            np.testing.assert_array_equal(got["x"], np.arange(5.0))
        finally:
            a.close()
            b.close()

    def test_clean_close_raises_eoferror(self):
        a, b = self._pair()
        a.close()
        with pytest.raises(EOFError):
            read_frame(b)
        b.close()

    def test_bad_magic_raises_frame_error(self):
        a, b = self._pair()
        try:
            a.sendall(b"XX" + b"\x00" * 16)
            with pytest.raises(FrameError, match="magic"):
                read_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_length_rejected_before_allocation(self):
        a, b = self._pair()
        try:
            bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
            a.sendall(b"HP" + bogus + b"\x00" * 4)
            with pytest.raises(FrameError, match="bound"):
                read_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frames_raise_clean_errors(self):
        # Every proper prefix of a valid frame must fail loudly (EOF at
        # a frame boundary, FrameError mid-frame) — never hang or parse.
        frame = self._framed_bytes({"cmd": "ping", "payload": list(range(20))})
        assert len(frame) > 12
        cut_points = {1, 2, 5, 9, len(frame) // 2, len(frame) - 1}
        for cut in sorted(cut_points):
            a, b = self._pair()
            try:
                a.sendall(frame[:cut])
                a.close()
                with pytest.raises((FrameError, EOFError)):
                    read_frame(b)
            finally:
                b.close()

    def test_corrupted_payload_bytes_raise_frame_error(self):
        frame = bytearray(
            self._framed_bytes({"cmd": "ping", "blob": b"x" * 64})
        )
        rng = np.random.default_rng(0)
        for _ in range(16):
            corrupt = bytearray(frame)
            pos = int(rng.integers(10, len(frame)))  # past the magic
            corrupt[pos] ^= 0xFF
            a, b = self._pair()
            try:
                a.sendall(bytes(corrupt))
                a.close()
                with pytest.raises((FrameError, EOFError)):
                    read_frame(b)
            finally:
                b.close()

    def test_oversized_outgoing_payload_refused(self, monkeypatch):
        import repro.serve.proc as proc_mod

        monkeypatch.setattr(proc_mod, "MAX_FRAME_BYTES", 4096)
        a, b = self._pair()
        try:
            with pytest.raises(FrameError, match="bound"):
                write_frame(a, b"\x00" * 8192)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# Checkpoint supervisor
# ---------------------------------------------------------------------------


class TestCheckpointSupervisor:
    def test_log_and_prune_lifecycle(self):
        sup = CheckpointSupervisor()
        sup.on_open("s")
        for t in range(5):
            assert sup.on_submit("s", np.full(2, float(t))) == t
        assert sup.log_depth("s") == 5
        sup.on_checkpoint("s", b"ckpt", steps_completed=3)
        assert sup.log_depth("s") == 2
        payload, replay = sup.recovery_plan("s")
        assert payload == b"ckpt"
        assert [step for step, _ in replay] == [3, 4]
        assert sup.checkpoint_steps("s") == 3

    def test_recovery_without_checkpoint_replays_everything(self):
        sup = CheckpointSupervisor()
        sup.on_open("s")
        sup.on_submit("s", np.zeros(2))
        payload, replay = sup.recovery_plan("s")
        assert payload is None
        assert len(replay) == 1
        assert sup.sessions_recovered == 1

    def test_duplicate_and_unknown_sessions_error(self):
        sup = CheckpointSupervisor()
        sup.on_open("s")
        with pytest.raises(ConfigError):
            sup.on_open("s")
        with pytest.raises(ConfigError):
            sup.on_submit("ghost", np.zeros(2))
        with pytest.raises(ConfigError):
            sup.recovery_plan("ghost")
        sup.on_close("s")
        sup.on_close("s")  # idempotent

    def test_submit_copies_the_input_buffer(self):
        sup = CheckpointSupervisor()
        sup.on_open("s")
        x = np.ones(3)
        sup.on_submit("s", x)
        x[:] = -1.0
        _, replay = sup.recovery_plan("s")
        np.testing.assert_array_equal(replay[0][1], np.ones(3))


# ---------------------------------------------------------------------------
# ProcCluster basics
# ---------------------------------------------------------------------------


class TestProcClusterBasics:
    def test_served_matches_solo_multi_session(self):
        config = proc_config()
        rng = np.random.default_rng(0)
        inputs = {
            f"s{i}": [rng.standard_normal(8) for _ in range(6)]
            for i in range(5)
        }
        solo = {
            sid: solo_trajectory(config, xs) for sid, xs in inputs.items()
        }
        with make_cluster(num_workers=2) as cluster:
            requests = {sid: [] for sid in inputs}
            for sid in inputs:
                assert cluster.open_session(sid) == sid
            for t in range(6):
                for sid, xs in inputs.items():
                    requests[sid].append(cluster.submit(sid, xs[t]))
            cluster.drain()
            for sid in inputs:
                for t, request in enumerate(requests[sid]):
                    assert request.done and request.error is None
                    np.testing.assert_allclose(
                        request.y, solo[sid][t], atol=1e-10, rtol=0.0
                    )

    def test_run_tick_returns_completions_in_submit_order(self):
        with make_cluster(num_workers=2, max_wait_ticks=0) as cluster:
            sids = [cluster.open_session() for _ in range(4)]
            submitted = [cluster.submit(sid, np.zeros(8)) for sid in sids]
            completed = cluster.drain()
            assert [r.seq for r in completed] == sorted(
                r.seq for r in submitted
            )
            assert {id(r) for r in completed} == {id(r) for r in submitted}

    def test_close_session_fails_queued_requests(self):
        with make_cluster(num_workers=1) as cluster:
            sid = cluster.open_session()
            request = cluster.submit(sid, np.zeros(8))
            cluster.close_session(sid)
            cluster.run_tick()
            assert request.done and request.error is not None
            with pytest.raises(ConfigError):
                cluster.submit(sid, np.zeros(8))

    def test_parent_side_backpressure_refuses_synchronously(self):
        with make_cluster(num_workers=1, queue_capacity=2) as cluster:
            sid = cluster.open_session()
            assert cluster.submit(sid, np.zeros(8)) is not None
            assert cluster.submit(sid, np.zeros(8)) is not None
            assert cluster.submit(sid, np.zeros(8)) is None
            assert cluster.metrics.admission_rejects == 1

    def test_admission_spill_lands_on_second_worker(self):
        # Pin placement to worker 0 and protect its one slot with a
        # queued request: the next open must spill to worker 1 instead
        # of being refused (a protected session cannot be LRU-evicted).
        with make_cluster(
            num_workers=2, session_capacity=1, placement=_PinnedPlacement()
        ) as cluster:
            assert cluster.open_session("a") == "a"
            assert cluster.shard_of("a") == 0
            # Two queued steps + one tick: the second is still queued at
            # the worker afterwards, so "a" is pinned (cannot be evicted).
            cluster.submit("a", np.zeros(8))
            cluster.submit("a", np.zeros(8))
            cluster.run_tick()
            assert cluster.open_session("b") == "b"
            assert cluster.shard_of("b") == 1
            assert cluster.metrics.admission_spills == 1
            cluster.submit("b", np.zeros(8))
            cluster.submit("b", np.zeros(8))
            cluster.run_tick()
            # Both slots protected: a third open is refused cleanly.
            assert cluster.open_session("c") is None
            assert cluster.metrics.admission_rejects == 1
            cluster.drain()

    def test_spill_disabled_refuses_at_placed_worker(self):
        with make_cluster(
            num_workers=2, session_capacity=1, placement=_PinnedPlacement(),
            admission_spill=False,
        ) as cluster:
            assert cluster.open_session("a") == "a"
            cluster.submit("a", np.zeros(8))
            cluster.submit("a", np.zeros(8))
            cluster.run_tick()
            assert cluster.open_session("b") is None
            assert cluster.metrics.admission_spills == 0
            cluster.drain()

    def test_checkpoint_restore_roundtrip_across_cluster(self):
        config = proc_config()
        xs = [np.full(8, 0.1 * (t + 1)) for t in range(4)]
        with make_cluster(num_workers=2) as cluster:
            sid = cluster.open_session("s")
            for x in xs[:2]:
                cluster.submit(sid, x)
            cluster.drain()
            payload = cluster.checkpoint_session(sid)
            cluster.close_session(sid)
            restored = cluster.restore_session("s2", payload)
            rest = [cluster.submit(restored, x) for x in xs[2:]]
            cluster.drain()
            solo = solo_trajectory(config, xs)
            for t, request in enumerate(rest):
                np.testing.assert_allclose(
                    request.y, solo[2 + t], atol=1e-10, rtol=0.0
                )

    def test_snapshot_reports_topology_and_liveness(self):
        with make_cluster(num_workers=2) as cluster:
            sid = cluster.open_session()
            cluster.submit(sid, np.zeros(8))
            cluster.drain()
            snap = cluster.snapshot()
            assert snap["workers"] == 2
            assert snap["worker_restarts"] == 0
            assert snap["requests_completed"] == 1
            assert len(snap["per_worker"]) == 2
            assert all(w["alive"] for w in snap["per_worker"])

    def test_close_leaves_no_orphan_processes(self):
        cluster = make_cluster(num_workers=2)
        procs = [worker.process for worker in cluster.workers]
        assert all(p.is_alive() for p in procs)
        cluster.close()
        assert all(not p.is_alive() for p in procs)
        cluster.close()  # idempotent

    def test_context_manager_reaps_workers_on_failure(self):
        with pytest.raises(RuntimeError):
            with make_cluster(num_workers=2) as cluster:
                procs = [worker.process for worker in cluster.workers]
                raise RuntimeError("boom")
        assert all(not p.is_alive() for p in procs)

    def test_zipf_open_loop_drains_clean(self):
        config = proc_config()
        scripts = generate_zipf_scripts(8, num_sessions=12, rng=3)
        with make_cluster(
            num_workers=2, session_capacity=16, queue_capacity=256
        ) as cluster:
            results = run_open_loop(cluster, scripts)
            engine = TiledEngine(config, rng=SEED)
            for script in scripts:
                served = results[script.session_id]
                assert len(served) == script.length
                baseline = engine.run(script.inputs)
                for t, request in enumerate(served):
                    assert request.error is None
                    np.testing.assert_allclose(
                        request.y, baseline[t], atol=1e-10, rtol=0.0
                    )


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_sigkill_recovery_is_bitwise_at_equal_dispatch_order(self):
        # Single session, single worker: dispatch order is trivially the
        # submit order in both runs, so recovery must be bit-exact.
        xs = [np.full(8, 0.05 * (t + 1)) for t in range(10)]

        def run(kill: bool):
            with make_cluster(
                num_workers=1, checkpoint_interval=None
            ) as cluster:
                sid = cluster.open_session("s")
                requests = []
                for x in xs[:6]:
                    requests.append(cluster.submit(sid, x))
                cluster.drain()
                cluster.checkpoint_now()
                if kill:
                    cluster.kill_worker(0)
                for x in xs[6:]:
                    requests.append(cluster.submit(sid, x))
                cluster.drain()
                payload = cluster.checkpoint_session(sid)
                return [r.y for r in requests], payload, cluster.worker_restarts

        ys_plain, ckpt_plain, restarts_plain = run(kill=False)
        ys_killed, ckpt_killed, restarts_killed = run(kill=True)
        assert restarts_plain == 0 and restarts_killed == 1
        for y_plain, y_killed in zip(ys_plain, ys_killed):
            assert np.array_equal(y_plain, y_killed)
        assert ckpt_plain == ckpt_killed  # state bitwise through recovery

    def test_kill_with_requests_in_flight_completes_them(self):
        config = proc_config()
        xs = [np.full(8, 0.1 * (t + 1)) for t in range(8)]
        with make_cluster(num_workers=1, checkpoint_interval=3) as cluster:
            sid = cluster.open_session("s")
            requests = [cluster.submit(sid, x) for x in xs[:4]]
            cluster.run_tick()  # some complete, some still queued
            cluster.kill_worker(0)
            requests += [cluster.submit(sid, x) for x in xs[4:]]
            cluster.drain()
            solo = solo_trajectory(config, xs)
            assert cluster.worker_restarts == 1
            for t, request in enumerate(requests):
                assert request.done and request.error is None
                np.testing.assert_allclose(
                    request.y, solo[t], atol=1e-10, rtol=0.0
                )

    def test_recovery_without_any_checkpoint_replays_from_open(self):
        config = proc_config()
        xs = [np.full(8, 0.2), np.full(8, -0.1), np.full(8, 0.3)]
        with make_cluster(num_workers=1, checkpoint_interval=None) as cluster:
            sid = cluster.open_session("s")
            requests = [cluster.submit(sid, x) for x in xs[:2]]
            cluster.drain()
            cluster.kill_worker(0)
            requests.append(cluster.submit(sid, xs[2]))
            cluster.drain()
            solo = solo_trajectory(config, xs)
            for t, request in enumerate(requests):
                np.testing.assert_allclose(
                    request.y, solo[t], atol=1e-10, rtol=0.0
                )
            assert cluster.supervisor.sessions_recovered == 1

    def test_property_random_kills_under_churn_match_solo(self):
        # The churn property drill: multi-session traffic across two
        # workers with seeded random SIGKILLs mid-stream; every session's
        # full trajectory must stay within 1e-10 of solo stepping.
        config = proc_config()
        rng = np.random.default_rng(1234)
        sessions = {
            f"s{i}": [rng.standard_normal(8) for _ in range(10)]
            for i in range(6)
        }
        solo = {
            sid: solo_trajectory(config, xs) for sid, xs in sessions.items()
        }
        with make_cluster(
            num_workers=2, checkpoint_interval=3, session_capacity=8
        ) as cluster:
            requests = {sid: [] for sid in sessions}
            for sid in sessions:
                assert cluster.open_session(sid) == sid
            kill_ticks = {2, 5, 8}
            for t in range(10):
                for sid, xs in sessions.items():
                    request = cluster.submit(sid, xs[t])
                    assert request is not None
                    requests[sid].append(request)
                if t in kill_ticks:
                    cluster.kill_worker(int(rng.integers(0, 2)))
                cluster.run_tick()
            cluster.drain()
            assert cluster.worker_restarts == len(kill_ticks)
            worst = 0.0
            for sid in sessions:
                for t, request in enumerate(requests[sid]):
                    assert request.done and request.error is None, (
                        sid, t, request.error
                    )
                    worst = max(worst, float(np.max(np.abs(
                        request.y - solo[sid][t]
                    ))))
            assert worst <= 1e-10

    def test_rolling_restart_scenario_under_zipf_traffic(self):
        config = proc_config()
        scripts = generate_zipf_scripts(8, num_sessions=10, rng=5)
        with make_cluster(
            num_workers=2, session_capacity=16, queue_capacity=256,
            checkpoint_interval=4,
        ) as cluster:
            results, kills = run_rolling_restart(
                cluster, scripts, kill_every_ticks=4
            )
            assert kills >= 1
            # Detection is lazy (on the next RPC), and idle workers are
            # skipped entirely, so a kill landing on an idle worker at
            # the drain tail may never need a restart.
            assert 1 <= cluster.worker_restarts <= kills
            engine = TiledEngine(config, rng=SEED)
            for script in scripts:
                served = results[script.session_id]
                assert len(served) == script.length
                baseline = engine.run(script.inputs)
                for t, request in enumerate(served):
                    assert request.error is None, (script.session_id, t)
                    np.testing.assert_allclose(
                        request.y, baseline[t], atol=1e-10, rtol=0.0
                    )

    def test_garbage_on_the_wire_fails_clean_and_recovers(self):
        with make_cluster(num_workers=2) as cluster:
            sid = cluster.open_session("s")
            index = cluster.shard_of(sid)
            # Corrupt the stream from the parent side: the worker drops
            # the connection, and the next RPC must surface WorkerCrashed
            # (not hang), after which recovery restores the session.
            cluster.workers[index].sock.sendall(b"not a frame at all")
            with pytest.raises(WorkerCrashed):
                cluster.workers[index].call({"cmd": "ping"})
            cluster._recover_worker(index)
            request = cluster.submit(sid, np.zeros(8))
            cluster.drain()
            assert request.done and request.error is None

    def test_migration_between_workers_preserves_trajectory(self):
        config = proc_config()
        xs = [np.full(8, 0.1 * (t + 1)) for t in range(6)]
        with make_cluster(num_workers=2) as cluster:
            sid = cluster.open_session("s")
            requests = [cluster.submit(sid, x) for x in xs[:3]]
            cluster.drain()
            src = cluster.shard_of(sid)
            dst = 1 - src
            cluster.migrate_session(sid, dst)
            assert cluster.shard_of(sid) == dst
            assert cluster.migrations == 1
            requests += [cluster.submit(sid, x) for x in xs[3:]]
            cluster.drain()
            solo = solo_trajectory(config, xs)
            for t, request in enumerate(requests):
                np.testing.assert_allclose(
                    request.y, solo[t], atol=1e-10, rtol=0.0
                )

    def test_kill_then_migrate_then_kill_again(self):
        config = proc_config()
        xs = [np.full(8, 0.07 * (t + 1)) for t in range(8)]
        with make_cluster(num_workers=2, checkpoint_interval=2) as cluster:
            sid = cluster.open_session("s")
            requests = [cluster.submit(sid, x) for x in xs[:3]]
            cluster.drain()
            cluster.kill_worker(cluster.shard_of(sid))
            requests.append(cluster.submit(sid, xs[3]))
            cluster.drain()
            dst = 1 - cluster.shard_of(sid)
            cluster.migrate_session(sid, dst)
            requests += [cluster.submit(sid, x) for x in xs[4:]]
            cluster.kill_worker(dst)
            cluster.drain()
            solo = solo_trajectory(config, xs)
            assert cluster.worker_restarts == 2
            for t, request in enumerate(requests):
                assert request.done and request.error is None
                np.testing.assert_allclose(
                    request.y, solo[t], atol=1e-10, rtol=0.0
                )
