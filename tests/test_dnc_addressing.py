"""DNC addressing-kernel invariants and gradients.

Checks the mathematical invariants of the DNC (Graves et al. 2016):
weightings live on the simplex (or sub-simplex), usage stays in [0, 1],
the linkage keeps a zero diagonal with rows/columns summing below one —
plus gradient checks and exact agreement with the numpy mirrors.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, ops
from repro.dnc import addressing
from repro.dnc import numpy_ref as K

SETTINGS = dict(max_examples=15, deadline=None)


def simplex(rng, n):
    w = rng.random(n)
    return w / w.sum()


def sub_simplex(rng, n, scale=0.8):
    return simplex(rng, n) * scale


class TestContentWeights:
    def test_simplex_per_head(self, rng):
        memory = Tensor(rng.standard_normal((8, 4)))
        keys = Tensor(rng.standard_normal((3, 4)))
        strengths = Tensor(rng.random(3) + 1.0)
        w = addressing.content_weights(memory, keys, strengths)
        assert w.shape == (3, 8)
        assert np.allclose(w.data.sum(axis=-1), 1.0)
        assert np.all(w.data >= 0)

    def test_agrees_with_numpy_mirror(self, rng):
        memory = rng.standard_normal((8, 4))
        keys = rng.standard_normal((2, 4))
        strengths = rng.random(2) + 1.0
        ours = addressing.content_weights(
            Tensor(memory), Tensor(keys), Tensor(strengths)
        ).data
        scores = K.content_scores(memory, keys)
        reference = K.exact_softmax(strengths[:, None] * scores, axis=-1)
        assert np.allclose(ours, reference)

    def test_gradient(self, rng):
        memory = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        keys = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        strengths = Tensor(rng.random(2) + 1.0, requires_grad=True)
        check_gradients(addressing.content_weights, [memory, keys, strengths])


class TestRetentionUsage:
    def test_retention_range(self, rng):
        free = Tensor(rng.random(2))
        read_w = Tensor(np.stack([sub_simplex(rng, 6), sub_simplex(rng, 6)]))
        psi = addressing.retention_vector(free, read_w)
        assert psi.shape == (6,)
        assert np.all((psi.data >= 0) & (psi.data <= 1))

    def test_retention_identity_when_gates_closed(self, rng):
        free = Tensor(np.zeros(2))
        read_w = Tensor(np.stack([sub_simplex(rng, 6), sub_simplex(rng, 6)]))
        psi = addressing.retention_vector(free, read_w)
        assert np.allclose(psi.data, 1.0)

    def test_retention_agrees_with_numpy(self, rng):
        free = rng.random(3)
        read_w = np.stack([sub_simplex(rng, 5) for _ in range(3)])
        ours = addressing.retention_vector(Tensor(free), Tensor(read_w)).data
        assert np.allclose(ours, K.retention(free, read_w))

    def test_usage_stays_in_unit_interval(self, rng):
        usage = Tensor(rng.random(6))
        write_w = Tensor(sub_simplex(rng, 6))
        psi = Tensor(rng.random(6))
        u = addressing.usage_vector(usage, write_w, psi)
        assert np.all((u.data >= 0) & (u.data <= 1))

    def test_usage_increases_with_write(self, rng):
        usage = Tensor(np.full(6, 0.3))
        write_w = Tensor(np.eye(6)[0] * 0.9)
        psi = Tensor(np.ones(6))
        u = addressing.usage_vector(usage, write_w, psi)
        assert u.data[0] > 0.3
        assert np.allclose(u.data[1:], 0.3)

    def test_gradients(self, rng):
        free = Tensor(rng.random(2), requires_grad=True)
        read_w = Tensor(
            np.stack([sub_simplex(rng, 5), sub_simplex(rng, 5)]),
            requires_grad=True,
        )
        check_gradients(addressing.retention_vector, [free, read_w])


class TestAllocation:
    def test_simplex_bound(self, rng):
        usage = Tensor(rng.random(8))
        alloc = addressing.allocation_weights(usage)
        assert np.all(alloc.data >= 0)
        assert alloc.data.sum() <= 1.0 + 1e-9

    def test_prefers_least_used_slot(self, rng):
        usage_values = rng.random(8) * 0.5 + 0.4
        usage_values[5] = 0.01
        alloc = addressing.allocation_weights(Tensor(usage_values))
        assert int(np.argmax(alloc.data)) == 5

    def test_fully_used_memory_gets_no_allocation(self):
        alloc = addressing.allocation_weights(Tensor(np.ones(6)))
        assert np.all(alloc.data < 1e-4)

    def test_free_memory_allocates_first_slot(self):
        alloc = addressing.allocation_weights(Tensor(np.zeros(6)))
        assert alloc.data[0] == pytest.approx(1.0, abs=1e-4)

    def test_agrees_with_numpy_mirror(self, rng):
        usage = rng.random(10)
        ours = addressing.allocation_weights(Tensor(usage)).data
        order = np.argsort(usage, kind="stable")
        assert np.allclose(ours, K.allocation_from_order(usage, order))

    def test_custom_sort_order_hook(self, rng):
        usage = rng.random(6)
        order = np.argsort(usage, kind="stable")[::-1].copy()
        ours = addressing.allocation_weights(Tensor(usage), sort_order=order)
        assert np.allclose(ours.data, K.allocation_from_order(usage, order))

    def test_gradient(self, rng):
        # Well-separated usage values: finite differences must not flip
        # the sort order (the permutation is treated as a constant).
        values = np.linspace(0.1, 0.9, 6)
        rng.shuffle(values)
        usage = Tensor(values, requires_grad=True)
        check_gradients(addressing.allocation_weights, [usage], atol=1e-4)

    def test_batched(self, rng):
        usage = Tensor(rng.random((3, 6)))
        alloc = addressing.allocation_weights(usage)
        assert alloc.shape == (3, 6)
        assert np.all(alloc.data.sum(axis=-1) <= 1.0 + 1e-9)


class TestWriteAndMemory:
    def test_write_weights_convex_mix(self, rng):
        content = Tensor(simplex(rng, 6))
        alloc = Tensor(simplex(rng, 6))
        w = addressing.write_weights(
            content, alloc, Tensor(np.array(1.0)), Tensor(np.array(0.5))
        )
        assert w.data.sum() == pytest.approx(1.0)

    def test_write_gate_zero_means_no_write(self, rng):
        content = Tensor(simplex(rng, 6))
        alloc = Tensor(simplex(rng, 6))
        w = addressing.write_weights(
            content, alloc, Tensor(np.array(0.0)), Tensor(np.array(0.5))
        )
        assert np.allclose(w.data, 0.0)

    def test_erase_and_write_full_erase(self, rng):
        memory = Tensor(rng.standard_normal((4, 3)))
        write_w = Tensor(np.eye(4)[1])
        erase = Tensor(np.ones(3))
        value = Tensor(np.array([7.0, 8.0, 9.0]))
        new = addressing.erase_and_write(memory, write_w, erase, value)
        assert np.allclose(new.data[1], [7.0, 8.0, 9.0])
        assert np.allclose(new.data[0], memory.data[0])

    def test_erase_and_write_agrees_with_numpy(self, rng):
        memory = rng.standard_normal((5, 3))
        write_w = sub_simplex(rng, 5)
        erase = rng.random(3)
        value = rng.standard_normal(3)
        ours = addressing.erase_and_write(
            Tensor(memory), Tensor(write_w), Tensor(erase), Tensor(value)
        ).data
        assert np.allclose(ours, K.erase_write(memory, write_w, erase, value))

    def test_gradients(self, rng):
        memory = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        write_w = Tensor(sub_simplex(rng, 4), requires_grad=True)
        erase = Tensor(rng.random(3), requires_grad=True)
        value = Tensor(rng.standard_normal(3), requires_grad=True)
        check_gradients(
            addressing.erase_and_write, [memory, write_w, erase, value]
        )


class TestLinkage:
    def test_diagonal_always_zero(self, rng):
        linkage = Tensor(rng.random((6, 6)) * 0.1)
        write_w = Tensor(sub_simplex(rng, 6))
        precedence = Tensor(sub_simplex(rng, 6))
        new = addressing.linkage_update(linkage, write_w, precedence)
        assert np.allclose(np.diag(new.data), 0.0)

    def test_rows_and_columns_bounded(self, rng):
        linkage = Tensor(np.zeros((6, 6)))
        write_w = Tensor(sub_simplex(rng, 6))
        precedence = Tensor(sub_simplex(rng, 6))
        new = addressing.linkage_update(linkage, write_w, precedence)
        assert np.all(new.data.sum(axis=0) <= 1.0 + 1e-9)
        assert np.all(new.data.sum(axis=1) <= 1.0 + 1e-9)

    def test_tracks_write_order(self):
        # Write slot 0 then slot 1: linkage[1, 0] should become large.
        linkage = Tensor(np.zeros((3, 3)))
        p0 = Tensor(np.zeros(3))
        w0 = Tensor(np.eye(3)[0])
        linkage = addressing.linkage_update(linkage, w0, p0)
        p1 = addressing.precedence_update(p0, w0)
        w1 = Tensor(np.eye(3)[1])
        linkage = addressing.linkage_update(linkage, w1, p1)
        assert linkage.data[1, 0] == pytest.approx(1.0)

    def test_agrees_with_numpy(self, rng):
        linkage = rng.random((5, 5)) * 0.1
        np.fill_diagonal(linkage, 0.0)
        write_w = sub_simplex(rng, 5)
        precedence = sub_simplex(rng, 5)
        ours = addressing.linkage_update(
            Tensor(linkage), Tensor(write_w), Tensor(precedence)
        ).data
        assert np.allclose(
            ours, K.linkage_update(linkage, write_w, precedence)
        )

    def test_precedence_simplex_preserved(self, rng):
        precedence = Tensor(sub_simplex(rng, 6))
        write_w = Tensor(sub_simplex(rng, 6))
        new = addressing.precedence_update(precedence, write_w)
        assert new.data.sum() <= 1.0 + 1e-9
        assert np.all(new.data >= 0)

    def test_precedence_full_write_replaces(self, rng):
        precedence = Tensor(sub_simplex(rng, 6))
        write_w = Tensor(simplex(rng, 6))  # sums to exactly 1
        new = addressing.precedence_update(precedence, write_w)
        assert np.allclose(new.data, write_w.data)

    def test_gradients(self, rng):
        linkage = Tensor(rng.random((4, 4)) * 0.1, requires_grad=True)
        write_w = Tensor(sub_simplex(rng, 4), requires_grad=True)
        precedence = Tensor(sub_simplex(rng, 4), requires_grad=True)
        check_gradients(
            addressing.linkage_update, [linkage, write_w, precedence]
        )


class TestForwardBackwardRead:
    def test_shapes_and_agreement(self, rng):
        linkage = rng.random((6, 6)) * 0.1
        read_w = np.stack([sub_simplex(rng, 6) for _ in range(2)])
        fwd, bwd = addressing.forward_backward_weights(
            Tensor(linkage), Tensor(read_w)
        )
        ref_fwd, ref_bwd = K.forward_backward(linkage, read_w)
        assert np.allclose(fwd.data, ref_fwd)
        assert np.allclose(bwd.data, ref_bwd)

    def test_read_weights_convex(self, rng):
        content = Tensor(np.stack([simplex(rng, 6), simplex(rng, 6)]))
        fwd = Tensor(np.stack([sub_simplex(rng, 6), sub_simplex(rng, 6)]))
        bwd = Tensor(np.stack([sub_simplex(rng, 6), sub_simplex(rng, 6)]))
        modes = Tensor(np.stack([simplex(rng, 3), simplex(rng, 3)]))
        w = addressing.read_weights(content, fwd, bwd, modes)
        assert w.shape == (2, 6)
        assert np.all(w.data.sum(axis=-1) <= 1.0 + 1e-9)

    def test_pure_content_mode(self, rng):
        content = Tensor(np.stack([simplex(rng, 6)]))
        fwd = Tensor(np.stack([sub_simplex(rng, 6)]))
        bwd = Tensor(np.stack([sub_simplex(rng, 6)]))
        modes = Tensor(np.array([[0.0, 1.0, 0.0]]))
        w = addressing.read_weights(content, fwd, bwd, modes)
        assert np.allclose(w.data, content.data)

    def test_read_vectors_shape_and_value(self, rng):
        memory = rng.standard_normal((6, 4))
        read_w = np.stack([simplex(rng, 6) for _ in range(3)])
        out = addressing.read_vectors(Tensor(memory), Tensor(read_w))
        assert out.shape == (3, 4)
        assert np.allclose(out.data, read_w @ memory)

    def test_gradients(self, rng):
        linkage = Tensor(rng.random((4, 4)) * 0.2, requires_grad=True)
        read_w = Tensor(
            np.stack([sub_simplex(rng, 4)]), requires_grad=True
        )
        check_gradients(
            lambda l, w: ops.concat(
                list(addressing.forward_backward_weights(l, w)), axis=0
            ),
            [linkage, read_w],
        )


@given(st.integers(2, 10))
@settings(**SETTINGS)
def test_allocation_simplex_property(n):
    rng = np.random.default_rng(n)
    alloc = addressing.allocation_weights(Tensor(rng.random(n)))
    assert np.all(alloc.data >= -1e-12)
    assert alloc.data.sum() <= 1.0 + 1e-9


@given(st.integers(2, 8), st.integers(1, 3))
@settings(**SETTINGS)
def test_usage_bounded_property(n, r):
    rng = np.random.default_rng(n * 7 + r)
    usage = Tensor(rng.random(n))
    write_w = Tensor(sub_simplex(rng, n))
    free = Tensor(rng.random(r))
    read_w = Tensor(np.stack([sub_simplex(rng, n) for _ in range(r)]))
    psi = addressing.retention_vector(free, read_w)
    u = addressing.usage_vector(usage, write_w, psi)
    assert np.all((u.data >= -1e-12) & (u.data <= 1.0 + 1e-12))
