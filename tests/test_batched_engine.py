"""Batched execution: equivalence with the sequential paths + traffic scaling."""

import numpy as np
import pytest

from repro.core import kernels as SK
from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig, parse_interface
from repro.errors import ConfigError


REF_KWARGS = dict(
    input_size=5, output_size=3, memory_size=16, word_size=4,
    num_reads=2, hidden_size=12,
)


@pytest.fixture
def ref_config():
    return NumpyDNCConfig(**REF_KWARGS)


def engine_config(**features):
    return HiMAConfig(
        memory_size=64, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, **features,
    )


ENGINE_FEATURES = [
    pytest.param(dict(), id="dnc"),
    pytest.param(dict(two_stage_sort=False), id="dnc-argsort"),
    pytest.param(dict(skim_fraction=0.25), id="dnc-skim"),
    pytest.param(dict(submatrix_partition=False), id="dnc-rowwise"),
    pytest.param(dict(distributed=True), id="dncd"),
    pytest.param(dict(distributed=True, skim_fraction=0.25), id="dncd-skim"),
    pytest.param(dict(approx_softmax=True), id="dnc-approx"),
]


class TestReferenceBatching:
    def test_batch_of_one_matches_run(self, ref_config, rng):
        xs = rng.standard_normal((7, 1, 5))
        batched = NumpyDNC(ref_config, rng=0).run_batch(xs)
        single = NumpyDNC(ref_config, rng=0).run(xs[:, 0])
        assert batched.shape == (7, 1, 3)
        assert np.max(np.abs(batched[:, 0] - single)) <= 1e-10

    @pytest.mark.parametrize("batch", [2, 5])
    def test_each_element_matches_independent_run(self, ref_config, rng, batch):
        xs = rng.standard_normal((6, batch, 5))
        batched = NumpyDNC(ref_config, rng=0).run_batch(xs)
        for i in range(batch):
            independent = NumpyDNC(ref_config, rng=0).run(xs[:, i])
            assert np.max(np.abs(batched[:, i] - independent)) < 1e-9, i

    def test_skimming_batch_matches_independent_runs(self, rng):
        config = NumpyDNCConfig(skim_fraction=0.5, **REF_KWARGS)
        xs = rng.standard_normal((5, 3, 5))
        batched = NumpyDNC(config, rng=0).run_batch(xs)
        for i in range(3):
            independent = NumpyDNC(config, rng=0).run(xs[:, i])
            assert np.max(np.abs(batched[:, i] - independent)) < 1e-9

    def test_batched_state_shapes(self, ref_config):
        model = NumpyDNC(ref_config, rng=0)
        state = model.initial_state(batch_size=4)
        assert state.batch_size == 4
        assert state.memory.shape == (4, 16, 4)
        assert state.read_w.shape == (4, 2, 16)
        assert model.initial_state().batch_size is None

    def test_run_batch_rejects_wrong_rank(self, ref_config, rng):
        model = NumpyDNC(ref_config, rng=0)
        with pytest.raises(ConfigError):
            model.run_batch(rng.standard_normal((6, 5)))

    def test_parse_interface_batched_matches_rows(self, ref_config, rng):
        flat = rng.standard_normal((3, ref_config.interface_size))
        batched = parse_interface(flat, 4, 2)
        for i in range(3):
            row = parse_interface(flat[i], 4, 2)
            assert np.allclose(batched.read_keys[i], row.read_keys)
            assert np.allclose(batched.read_modes[i], row.read_modes)
            assert batched.write_strength[i, 0] == pytest.approx(row.write_strength)
            assert batched.write_gate[i, 0] == pytest.approx(row.write_gate)
            assert batched.allocation_gate[i, 0] == pytest.approx(
                row.allocation_gate
            )


class TestEngineBatching:
    @pytest.mark.parametrize("features", ENGINE_FEATURES)
    def test_batch_of_one_matches_run(self, features, rng):
        engine = TiledEngine(engine_config(**features), rng=0)
        xs = rng.standard_normal((5, 1, 16))
        batched = engine.run_batch(xs)
        single = engine.run(xs[:, 0])
        assert np.max(np.abs(batched[:, 0] - single)) <= 1e-10

    @pytest.mark.parametrize("features", ENGINE_FEATURES)
    def test_each_element_matches_independent_run(self, features, rng):
        engine = TiledEngine(engine_config(**features), rng=0)
        xs = rng.standard_normal((4, 3, 16))
        batched = engine.run_batch(xs)
        for i in range(3):
            independent = engine.run(xs[:, i])
            assert np.max(np.abs(batched[:, i] - independent)) < 1e-9, i

    @pytest.mark.parametrize("features", ENGINE_FEATURES[:2] + ENGINE_FEATURES[4:5])
    def test_verify_against_reference_batched(self, features):
        engine = TiledEngine(engine_config(**features), rng=0)
        assert engine.verify_against_reference(steps=3, batch_size=4) < 1e-10

    def test_batched_dnc_mode_matches_monolithic_reference(self, rng):
        """Batched engine vs batched reference: both vectorized paths agree."""
        engine = TiledEngine(engine_config(), rng=0)
        xs = rng.standard_normal((4, 3, 16))
        ours = engine.run_batch(xs)
        reference = engine.reference.run_batch(xs)
        assert np.max(np.abs(ours - reference)) < 1e-12

    def test_run_batch_rejects_wrong_rank(self, rng):
        engine = TiledEngine(engine_config(), rng=0)
        with pytest.raises(ConfigError):
            engine.run_batch(rng.standard_normal((5, 16)))

    def test_batched_state_shapes(self, rng):
        engine = TiledEngine(engine_config(), rng=0)
        state = engine.initial_state(batch_size=3)
        y, state = engine.step(rng.standard_normal((3, 16)), state)
        assert y.shape == (3, 16)
        assert state.memory.shape == (3, 64, 16)
        assert state.linkage.shape == (3, 64, 64)

    def test_batched_two_stage_sort_is_one_call_per_step(self, rng):
        """run_batch must hand the sorter whole (B, N) batches — never a
        Python loop over batch elements."""
        engine = TiledEngine(engine_config(two_stage_sort=True), rng=0)
        calls = []
        original = engine.sorter.sort

        def spy(usage):
            calls.append(np.asarray(usage).shape)
            return original(usage)

        engine.sorter.sort = spy
        engine.run_batch(rng.standard_normal((5, 8, 16)))
        assert calls == [(8, 64)] * 5


class TestRunnerTrafficHygiene:
    def test_measure_batched_throughput_clears_traffic(self, monkeypatch):
        """Warm-up, timing repeats, and the equivalence check must not
        leak events into the engine's TrafficLog."""
        import repro.core.engine as engine_mod
        from repro.eval.runners import measure_batched_throughput

        captured = {}
        real_engine = engine_mod.TiledEngine

        class CapturingEngine(real_engine):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                captured["engine"] = self

        monkeypatch.setattr(engine_mod, "TiledEngine", CapturingEngine)
        result = measure_batched_throughput(batch_size=2, seq_len=2, repeats=2)
        assert result.speedup_vs_seq > 0
        assert captured["engine"].traffic.events == []

    def test_traffic_docs_contract_run_accumulates(self, rng):
        """run/run_batch append cumulatively; clear() is the caller's job."""
        engine = TiledEngine(engine_config(), rng=0)
        engine.run(rng.standard_normal((2, 16)))
        first = len(engine.traffic.events)
        engine.run_batch(rng.standard_normal((2, 3, 16)))
        assert len(engine.traffic.events) == 2 * first
        engine.traffic.clear()
        assert engine.traffic.events == []


class TestBatchedTraffic:
    @pytest.mark.parametrize("features", [
        pytest.param(dict(), id="dnc"),
        pytest.param(dict(distributed=True), id="dncd"),
    ])
    @pytest.mark.parametrize("batch", [2, 4, 8])
    def test_total_words_scale_linearly(self, features, batch, rng):
        def words_and_events(B):
            engine = TiledEngine(engine_config(**features), rng=0)
            engine.traffic.clear()
            if B is None:
                engine.run(rng.standard_normal((3, 16)))
            else:
                engine.run_batch(rng.standard_normal((3, B, 16)))
            return engine.traffic.total_words(), len(engine.traffic.events)

        unbatched_words, unbatched_events = words_and_events(None)
        batched_words, batched_events = words_and_events(batch)
        # Words scale with B; the message pattern does not.
        assert batched_words == batch * unbatched_words
        assert batched_events == unbatched_events

    def test_dncd_batched_keeps_zero_inter_pt_traffic(self, rng):
        engine = TiledEngine(engine_config(distributed=True), rng=0)
        engine.run_batch(rng.standard_normal((3, 4, 16)))
        assert engine.traffic.inter_pt_words() == 0
        assert engine.traffic.total_words() > 0


class TestStackedShardKernels:
    def test_vector_shard_roundtrip(self, rng):
        x = rng.standard_normal((3, 32))
        shards = SK.shard_vector(x, 4)
        assert shards.shape == (3, 4, 8)
        assert np.array_equal(SK.unshard_vector(shards), x)
        assert np.array_equal(shards[:, 1], x[:, 8:16])

    def test_matrix_shard_roundtrip(self, rng):
        m = rng.standard_normal((2, 32, 5))
        shards = SK.shard_matrix(m, 4)
        assert shards.shape == (2, 4, 8, 5)
        assert np.array_equal(SK.unshard_matrix(shards), m)
        assert np.array_equal(shards[:, 2], m[:, 16:24])

    def test_heads_shard_roundtrip(self, rng):
        read_w = rng.standard_normal((2, 3, 32))
        shards = SK.shard_heads(read_w, 4)
        assert shards.shape == (2, 4, 3, 8)
        assert np.array_equal(SK.unshard_heads(shards), read_w)
        assert np.array_equal(shards[:, 1], read_w[:, :, 8:16])

    def test_block_diagonal_roundtrip(self, rng):
        linkage = rng.standard_normal((2, 16, 16))
        blocks = SK.block_diagonal(linkage, 4)
        assert blocks.shape == (2, 4, 4, 4)
        assert np.array_equal(blocks[:, 1], linkage[:, 4:8, 4:8])
        scattered = SK.scatter_block_diagonal(blocks)
        assert np.array_equal(scattered[:, 4:8, 4:8], linkage[:, 4:8, 4:8])
        assert np.all(scattered[:, 0:4, 4:8] == 0.0)

    def test_stacked_scores_match_loop(self, rng):
        mem = rng.standard_normal((2, 4, 8, 5))
        key = rng.standard_normal((2, 5))
        rkeys = rng.standard_normal((2, 3, 5))
        scores = SK.stacked_key_scores(mem, key)
        rscores = SK.stacked_read_scores(rkeys, mem)
        for b in range(2):
            for t in range(4):
                assert np.allclose(scores[b, t], mem[b, t] @ key[b])
                assert np.allclose(rscores[b, t], rkeys[b] @ mem[b, t].T)
