"""MemoryUnit, DNC, and DNC-D model tests."""

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad, ops
from repro.dnc import (
    DNC,
    DNCConfig,
    DNCD,
    DNCDConfig,
    AddressingOptions,
    MemoryUnit,
)
from repro.dnc.interface import InterfaceSpec
from repro.errors import ConfigError
from repro.nn.losses import mse_loss


def random_interface(unit, rng):
    spec = unit.interface_spec
    return spec.parse(Tensor(rng.standard_normal(spec.size)))


class TestMemoryUnit:
    def test_initial_state_shapes(self):
        unit = MemoryUnit(8, 4, num_reads=2)
        state = unit.initial_state()
        assert state.memory.shape == (8, 4)
        assert state.linkage.shape == (8, 8)
        assert state.read_weights.shape == (2, 8)
        batched = unit.initial_state(batch_size=3)
        assert batched.memory.shape == (3, 8, 4)

    def test_step_shapes_and_invariants(self, rng):
        unit = MemoryUnit(8, 4, num_reads=2)
        state = unit.initial_state()
        for _ in range(3):
            reads, state = unit.step(state, random_interface(unit, rng))
        assert reads.shape == (2, 4)
        assert np.all((state.usage.data >= 0) & (state.usage.data <= 1))
        assert state.write_weights.data.sum() <= 1.0 + 1e-9
        assert np.all(state.read_weights.data.sum(axis=-1) <= 1.0 + 1e-9)
        assert np.allclose(np.diag(state.linkage.data), 0.0)

    def test_batched_step(self, rng):
        unit = MemoryUnit(8, 4, num_reads=2)
        state = unit.initial_state(batch_size=3)
        spec = unit.interface_spec
        interface = spec.parse(Tensor(rng.standard_normal((3, spec.size))))
        reads, state = unit.step(state, interface)
        assert reads.shape == (3, 2, 4)
        assert state.memory.shape == (3, 8, 4)

    def test_write_actually_stores_content(self, rng):
        unit = MemoryUnit(8, 4, num_reads=1)
        state = unit.initial_state()
        _, state = unit.step(state, random_interface(unit, rng))
        assert np.any(state.memory.data != 0)

    def test_detach_cuts_tape(self, rng):
        unit = MemoryUnit(8, 4, num_reads=1)
        spec = unit.interface_spec
        flat = Tensor(rng.standard_normal(spec.size), requires_grad=True)
        _, state = unit.step(unit.initial_state(), spec.parse(flat))
        detached = state.detach()
        assert detached.memory.parents == []

    def test_skim_option_changes_allocation_order_only(self, rng):
        exact = MemoryUnit(16, 4, num_reads=1)
        skim = MemoryUnit(
            16, 4, num_reads=1, options=AddressingOptions(skim_fraction=0.5)
        )
        state_e, state_s = exact.initial_state(), skim.initial_state()
        spec = exact.interface_spec
        for step in range(4):
            flat = Tensor(rng.standard_normal(spec.size))
            _, state_e = exact.step(state_e, spec.parse(flat))
            _, state_s = skim.step(state_s, spec.parse(flat))
        # Same interface stream, different allocation approximation.
        assert state_e.memory.shape == state_s.memory.shape

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigError):
            AddressingOptions(skim_fraction=1.5)


class TestDNC:
    def test_forward_shapes(self, small_dnc, rng):
        xs = Tensor(rng.standard_normal((6, 5)))
        ys, state = small_dnc(xs)
        assert ys.shape == (6, 3)
        assert state.memory.memory.shape == (8, 4)

    def test_step_state_threading(self, small_dnc, rng):
        state = small_dnc.initial_state()
        y1, state = small_dnc.step(Tensor(rng.standard_normal(5)), state)
        y2, state = small_dnc.step(Tensor(rng.standard_normal(5)), state)
        assert y1.shape == (3,)
        assert not np.allclose(state.memory.memory.data, 0.0)

    def test_all_parameters_receive_gradients(self, small_dnc, rng):
        xs = Tensor(rng.standard_normal((5, 5)))
        ys, _ = small_dnc(xs)
        mse_loss(ys, np.zeros((5, 3))).backward()
        for name, param in small_dnc.named_parameters():
            assert param.grad is not None, name
            assert np.any(param.grad != 0), name

    def test_batched_forward(self, small_dnc, rng):
        xs = Tensor(rng.standard_normal((4, 3, 5)))  # (T, B, in)
        ys, state = small_dnc(xs)
        assert ys.shape == (4, 3, 3)
        assert state.memory.memory.shape == (3, 8, 4)

    def test_batched_matches_unbatched(self, small_dnc, rng):
        xs = rng.standard_normal((4, 5))
        ys_single, _ = small_dnc(Tensor(xs))
        batched = np.stack([xs, xs], axis=1)
        ys_batch, _ = small_dnc(Tensor(batched))
        assert np.allclose(ys_batch.data[:, 0], ys_single.data, atol=1e-10)
        assert np.allclose(ys_batch.data[:, 1], ys_single.data, atol=1e-10)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            DNCConfig(input_size=0, output_size=3)

    def test_interface_size_property(self, small_dnc_config):
        spec = InterfaceSpec(
            small_dnc_config.word_size, small_dnc_config.num_reads
        )
        assert small_dnc_config.interface_size == spec.size

    def test_state_detach_enables_tbptt(self, small_dnc, rng):
        state = small_dnc.initial_state()
        _, state = small_dnc.step(Tensor(rng.standard_normal(5)), state)
        state = state.detach()
        y, _ = small_dnc.step(Tensor(rng.standard_normal(5)), state)
        ops.sum(y).backward()  # must not traverse into the detached past


class TestDNCD:
    @pytest.fixture
    def dncd_config(self):
        return DNCDConfig(
            input_size=5, output_size=3, memory_size=16, word_size=4,
            num_reads=2, hidden_size=12, num_tiles=4,
        )

    def test_forward_shapes(self, dncd_config, rng):
        model = DNCD(dncd_config, rng=0)
        ys, state = model(Tensor(rng.standard_normal((5, 5))))
        assert ys.shape == (5, 3)
        assert len(state.tiles) == 4
        assert state.tiles[0].memory.shape == (4, 4)

    def test_local_memory_size(self, dncd_config):
        assert dncd_config.local_memory_size == 4

    def test_tile_divisibility_enforced(self):
        with pytest.raises(ConfigError):
            DNCDConfig(
                input_size=5, output_size=3, memory_size=10, num_tiles=4
            )

    def test_gradients_flow(self, dncd_config, rng):
        model = DNCD(dncd_config, rng=0)
        ys, _ = model(Tensor(rng.standard_normal((4, 5))))
        mse_loss(ys, np.zeros((4, 3))).backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert all(grads)

    def test_init_from_dnc_copies_controller(self, dncd_config, rng):
        dnc = DNC(dncd_config.to_dnc_config(), rng=1)
        model = DNCD(dncd_config, rng=0)
        model.init_from_dnc(dnc)
        assert np.allclose(
            model.controller.w_x.data, dnc.controller.w_x.data
        )
        spec = dncd_config.interface_size
        for t in range(4):
            assert np.allclose(
                model.interface_layer.weight.data[:, t * spec : (t + 1) * spec],
                dnc.interface_layer.weight.data,
            )

    def test_init_from_dnc_rejects_mismatch(self, dncd_config):
        wrong = DNC(
            DNCConfig(input_size=5, output_size=3, memory_size=16,
                      word_size=8, num_reads=2, hidden_size=12),
            rng=0,
        )
        model = DNCD(dncd_config, rng=0)
        with pytest.raises(ConfigError):
            model.init_from_dnc(wrong)

    def test_merge_weights_on_simplex(self, dncd_config, rng):
        model = DNCD(dncd_config, rng=0)
        state = model.initial_state()
        x = Tensor(rng.standard_normal(5))
        read_flat = ops.reshape(state.merged_reads, (8,))
        hidden, _ = model.controller(
            ops.concat([x, read_flat], axis=-1), state.controller
        )
        alphas = ops.softmax(model.merge_layer(hidden), axis=-1)
        assert alphas.data.sum() == pytest.approx(1.0)

    def test_no_grad_inference(self, dncd_config, rng):
        model = DNCD(dncd_config, rng=0)
        with no_grad():
            ys, _ = model(Tensor(rng.standard_normal((3, 5))))
        assert ys.parents == []
