"""Gradient checks for every primitive op (fixed cases + hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, ops

SETTINGS = dict(max_examples=20, deadline=None)


def t(array):
    return Tensor(np.asarray(array, dtype=np.float64), requires_grad=True)


def rand(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestElementwiseGradients:
    @pytest.mark.parametrize("fn", [
        ops.add, ops.sub, ops.mul,
    ])
    def test_binary_ops(self, fn, rng):
        check_gradients(fn, [rand(rng, 3, 4), rand(rng, 3, 4)])

    def test_binary_broadcasting(self, rng):
        check_gradients(ops.add, [rand(rng, 3, 4), rand(rng, 4)])
        check_gradients(ops.mul, [rand(rng, 2, 1, 4), rand(rng, 3, 4)])

    def test_div(self, rng):
        denom = Tensor(rng.random((3, 4)) + 0.5, requires_grad=True)
        check_gradients(ops.div, [rand(rng, 3, 4), denom])

    def test_unary_ops(self, rng):
        for fn in (ops.neg, ops.exp, ops.tanh, ops.sigmoid, ops.softplus):
            check_gradients(fn, [rand(rng, 5)])

    def test_log_sqrt_on_positive(self, rng):
        x = Tensor(rng.random(5) + 0.5, requires_grad=True)
        check_gradients(ops.log, [x])
        check_gradients(ops.sqrt, [x])

    def test_power(self, rng):
        x = Tensor(rng.random(5) + 0.5, requires_grad=True)
        check_gradients(lambda a: ops.power(a, 3.0), [x])

    def test_abs_away_from_zero(self):
        x = t([-2.0, -1.0, 1.0, 3.0])
        check_gradients(ops.abs, [x])

    def test_relu_away_from_zero(self):
        x = t([-2.0, -1.0, 1.0, 3.0])
        check_gradients(ops.relu, [x])

    def test_maximum(self):
        a = t([1.0, 5.0, -2.0])
        b = t([2.0, 1.0, -3.0])
        check_gradients(ops.maximum, [a, b])

    def test_maximum_tie_splits_gradient(self):
        a = t([1.0])
        b = t([1.0])
        out = ops.maximum(a, b)
        out.backward(np.ones(1))
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(0.5)

    def test_clip_gradient_masked(self):
        x = t([-2.0, 0.5, 2.0])
        out = ops.clip(x, -1.0, 1.0)
        out.backward(np.ones(3))
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])
        assert np.allclose(out.data, [-1.0, 0.5, 1.0])

    def test_sigmoid_extreme_values_stable(self):
        x = t([-1000.0, 1000.0])
        out = ops.sigmoid(x)
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(0.0)
        assert out.data[1] == pytest.approx(1.0)

    def test_softplus_extreme_values_stable(self):
        x = t([-1000.0, 1000.0])
        out = ops.softplus(x)
        assert np.all(np.isfinite(out.data))
        assert out.data[1] == pytest.approx(1000.0)


class TestMatmulGradients:
    def test_2d(self, rng):
        check_gradients(ops.matmul, [rand(rng, 3, 4), rand(rng, 4, 5)])

    def test_matrix_vector(self, rng):
        check_gradients(ops.matmul, [rand(rng, 3, 4), rand(rng, 4)])

    def test_vector_matrix(self, rng):
        check_gradients(ops.matmul, [rand(rng, 4), rand(rng, 4, 5)])

    def test_batched(self, rng):
        check_gradients(ops.matmul, [rand(rng, 2, 3, 4), rand(rng, 2, 4, 5)])

    def test_batched_against_unbatched_operand(self, rng):
        check_gradients(ops.matmul, [rand(rng, 2, 3, 4), rand(rng, 4, 5)])

    def test_batched_matrix_times_vector(self, rng):
        check_gradients(ops.matmul, [rand(rng, 2, 3, 4), rand(rng, 4)])

    def test_outer(self, rng):
        check_gradients(ops.outer, [rand(rng, 3), rand(rng, 4)])


class TestShapeOps:
    def test_transpose_default_and_axes(self, rng):
        check_gradients(lambda a: ops.transpose(a), [rand(rng, 3, 4)])
        check_gradients(
            lambda a: ops.transpose(a, (2, 0, 1)), [rand(rng, 2, 3, 4)]
        )

    def test_reshape(self, rng):
        check_gradients(lambda a: ops.reshape(a, (4, 3)), [rand(rng, 3, 4)])

    def test_concat(self, rng):
        check_gradients(
            lambda a, b: ops.concat([a, b], axis=1),
            [rand(rng, 2, 3), rand(rng, 2, 4)],
        )

    def test_stack(self, rng):
        check_gradients(
            lambda a, b: ops.stack([a, b], axis=0),
            [rand(rng, 2, 3), rand(rng, 2, 3)],
        )

    def test_getitem_slice(self, rng):
        check_gradients(lambda a: a[1:3], [rand(rng, 5, 2)])

    def test_getitem_fancy_index_accumulates(self):
        a = t([1.0, 2.0, 3.0])
        out = a[np.array([0, 0, 2])]
        out.backward(np.ones(3))
        assert np.allclose(a.grad, [2.0, 0.0, 1.0])


class TestReductions:
    def test_sum_all_and_axis(self, rng):
        check_gradients(lambda a: ops.sum(a), [rand(rng, 3, 4)])
        check_gradients(lambda a: ops.sum(a, axis=1), [rand(rng, 3, 4)])
        check_gradients(
            lambda a: ops.sum(a, axis=0, keepdims=True), [rand(rng, 3, 4)]
        )

    def test_mean(self, rng):
        check_gradients(lambda a: ops.mean(a), [rand(rng, 3, 4)])
        check_gradients(lambda a: ops.mean(a, axis=1), [rand(rng, 3, 4)])

    def test_cumsum(self, rng):
        check_gradients(lambda a: ops.cumsum(a, axis=-1), [rand(rng, 6)])
        check_gradients(lambda a: ops.cumsum(a, axis=0), [rand(rng, 3, 4)])


class TestCumprod:
    def test_inclusive_exclusive_values(self):
        x = t([2.0, 3.0, 4.0])
        assert np.allclose(ops.cumprod(x).data, [2.0, 6.0, 24.0])
        assert np.allclose(
            ops.cumprod(x, exclusive=True).data, [1.0, 2.0, 6.0]
        )

    def test_gradients_nonzero_input(self, rng):
        x = Tensor(rng.random(6) + 0.1, requires_grad=True)
        check_gradients(lambda a: ops.cumprod(a), [x])
        check_gradients(lambda a: ops.cumprod(a, exclusive=True), [x])

    def test_gradients_with_zero_entry(self):
        x = t([0.5, 0.0, 0.3, 0.7])
        check_gradients(lambda a: ops.cumprod(a), [x])
        check_gradients(lambda a: ops.cumprod(a, exclusive=True), [x])

    def test_gradients_2d_axis(self, rng):
        x = Tensor(rng.random((2, 5)) + 0.1, requires_grad=True)
        check_gradients(lambda a: ops.cumprod(a, axis=-1, exclusive=True), [x])


class TestGatherSoftmax:
    def test_take_along_axis_1d(self, rng):
        x = rand(rng, 6)
        idx = np.argsort(rng.random(6))
        check_gradients(lambda a: ops.take_along_axis(a, idx, axis=0), [x])

    def test_take_along_axis_2d(self, rng):
        x = rand(rng, 3, 5)
        idx = np.argsort(rng.random((3, 5)), axis=1)
        check_gradients(lambda a: ops.take_along_axis(a, idx, axis=1), [x])

    def test_take_along_axis_roundtrip(self, rng):
        x = rand(rng, 8)
        order = np.argsort(x.data)
        inverse = np.argsort(order)
        restored = ops.take_along_axis(
            ops.take_along_axis(x, order, 0), inverse, 0
        )
        assert np.allclose(restored.data, x.data)

    def test_softmax_rows_sum_to_one(self, rng):
        out = ops.softmax(rand(rng, 4, 6), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_gradient(self, rng):
        check_gradients(lambda a: ops.softmax(a, axis=-1), [rand(rng, 3, 5)])

    def test_softmax_stable_for_large_inputs(self):
        out = ops.softmax(t([1000.0, 1000.0, -1000.0]))
        assert np.allclose(out.data[:2], 0.5)

    def test_log_softmax_gradient(self, rng):
        check_gradients(lambda a: ops.log_softmax(a, axis=-1), [rand(rng, 3, 5)])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rand(rng, 7)
        assert np.allclose(
            ops.log_softmax(x).data, np.log(ops.softmax(x).data)
        )


@given(st.lists(st.floats(-3, 3), min_size=2, max_size=8))
@settings(**SETTINGS)
def test_softmax_property_simplex(values):
    out = ops.softmax(Tensor(np.array(values)))
    assert np.all(out.data >= 0)
    assert out.data.sum() == pytest.approx(1.0)


@given(st.lists(st.floats(0.05, 0.95), min_size=2, max_size=7))
@settings(**SETTINGS)
def test_cumprod_gradient_property(values):
    x = Tensor(np.array(values), requires_grad=True)
    check_gradients(lambda a: ops.cumprod(a, exclusive=True), [x], atol=1e-4)
