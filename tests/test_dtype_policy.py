"""Engine-wide dtype policy: float64 exactness, float32 plumbing + accuracy."""

import numpy as np
import pytest

from repro.core import kernels as SK
from repro.core.config import DTYPE_CHOICES, HiMAConfig
from repro.dnc.approx import SoftmaxApproximator
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig, allocation_from_order
from repro.core.engine import TiledEngine
from repro.errors import ConfigError


def engine_config(**features):
    return HiMAConfig(
        memory_size=64, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, **features,
    )


class TestConfigPlumbing:
    def test_default_is_float64(self):
        assert HiMAConfig().dtype == "float64"
        assert HiMAConfig().np_dtype == np.float64
        assert NumpyDNCConfig().np_dtype == np.float64

    def test_choices_validated(self):
        assert set(DTYPE_CHOICES) == {"float64", "float32"}
        with pytest.raises(ConfigError):
            HiMAConfig(dtype="float16")
        with pytest.raises(ConfigError):
            NumpyDNCConfig(dtype="int8").np_dtype

    def test_engine_threads_dtype_to_reference(self):
        engine = TiledEngine(engine_config(dtype="float32"), rng=0)
        assert engine.reference.config.dtype == "float32"
        assert engine.reference.w_x.dtype == np.float32


@pytest.mark.parametrize("dtype", DTYPE_CHOICES)
class TestStateAndOutputDtype:
    def test_state_and_outputs_use_policy_dtype(self, dtype, rng):
        engine = TiledEngine(engine_config(dtype=dtype), rng=0)
        expected = np.dtype(dtype)
        state = engine.initial_state(batch_size=3)
        for name in ("memory", "usage", "linkage", "read_w", "lstm_h"):
            assert getattr(state, name).dtype == expected, name
        y, state = engine.step(rng.standard_normal((3, 16)), state)
        assert y.dtype == expected
        # No silent upcast anywhere in the recurrent state after a step.
        for name in ("memory", "usage", "precedence", "linkage", "write_w",
                     "read_w", "read_vecs", "lstm_h", "lstm_c"):
            assert getattr(state, name).dtype == expected, name
        out = engine.run_batch(rng.standard_normal((2, 3, 16)))
        assert out.dtype == expected

    def test_distributed_stacked_path_keeps_dtype(self, dtype, rng):
        engine = TiledEngine(
            engine_config(dtype=dtype, distributed=True), rng=0
        )
        expected = np.dtype(dtype)
        state = engine.initial_state(batch_size=2)
        y, state = engine.step(rng.standard_normal((2, 16)), state)
        assert y.dtype == expected
        assert state.linkage.dtype == expected  # scatter_block_diagonal
        assert state.memory.dtype == expected

    def test_reference_model_run(self, dtype, rng):
        config = NumpyDNCConfig(
            input_size=5, output_size=3, memory_size=16, word_size=4,
            num_reads=2, hidden_size=12, dtype=dtype,
        )
        model = NumpyDNC(config, rng=0)
        out = model.run(rng.standard_normal((4, 5)))
        assert out.dtype == np.dtype(dtype)


class TestNumericalAccuracy:
    def test_float64_batch_of_one_stays_exact(self, rng):
        engine = TiledEngine(engine_config(), rng=0)
        xs = rng.standard_normal((5, 1, 16))
        batched = engine.run_batch(xs)
        single = engine.run(xs[:, 0])
        assert np.max(np.abs(batched[:, 0] - single)) <= 1e-10

    def test_float32_batch_of_one_vs_float64_reference(self, rng):
        """float32 batch-of-1 must track the float64 reference within the
        documented tolerance (VERIFY_TOLERANCES['float32'])."""
        f64 = TiledEngine(engine_config(), rng=0)
        f32 = TiledEngine(engine_config(dtype="float32"), rng=0)
        tol = TiledEngine.VERIFY_TOLERANCES["float32"]
        xs = rng.standard_normal((5, 1, 16))
        out64 = f64.run_batch(xs)
        out32 = f32.run_batch(xs.astype(np.float32))
        error = float(np.max(np.abs(out64 - out32.astype(np.float64))))
        assert 0 < error <= tol  # differs (really float32) but tracks

    @pytest.mark.parametrize("dtype", DTYPE_CHOICES)
    def test_verify_against_reference_uses_dtype_tolerance(self, dtype):
        engine = TiledEngine(engine_config(dtype=dtype), rng=0)
        error = engine.verify_against_reference(steps=3, batch_size=2)
        assert error <= TiledEngine.VERIFY_TOLERANCES[dtype]

    def test_float32_sorted_and_skimmed_paths(self, rng):
        for features in (dict(two_stage_sort=True), dict(skim_fraction=0.25)):
            engine = TiledEngine(
                engine_config(dtype="float32", **features), rng=0
            )
            error = engine.verify_against_reference(steps=3, batch_size=2)
            assert error <= TiledEngine.VERIFY_TOLERANCES["float32"]


class TestKernelDtypePreservation:
    def test_allocation_from_order_keeps_float32(self, rng):
        usage = rng.random((3, 16)).astype(np.float32)
        order = np.argsort(usage, axis=-1, kind="stable")
        alloc = allocation_from_order(usage, order)
        assert alloc.dtype == np.float32

    def test_scatter_block_diagonal_keeps_float32(self, rng):
        blocks = rng.standard_normal((2, 4, 4, 4)).astype(np.float32)
        assert SK.scatter_block_diagonal(blocks).dtype == np.float32

    def test_softmax_approximator_preserves_dtype(self, rng):
        approx = SoftmaxApproximator()
        scores32 = (rng.standard_normal((4, 9)) * 3).astype(np.float32)
        out32 = approx.softmax(scores32, axis=-1)
        assert out32.dtype == np.float32
        assert np.allclose(out32.sum(axis=-1), 1.0, atol=1e-5)
        out64 = approx.softmax(scores32.astype(np.float64), axis=-1)
        assert out64.dtype == np.float64
        assert np.max(np.abs(out64 - out32)) < 1e-5
