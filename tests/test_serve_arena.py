"""Resident state arena: slot pinning, churn equivalence, copy metrics.

The acceptance bar for the arena serving path: under hundreds of ticks
of ragged join/leave/evict churn it must be numerically identical
(<= 1e-10, for float64 *and* float32) to both the PR 3 gather/scatter
serving path and to each session stepping alone through the unbatched
engine — while copying session state only on join/leave instead of
twice per tick.
"""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.errors import CapacityError, ConfigError
from repro.serve import SessionServer, StateArena
from repro.dnc.numpy_ref import NumpyDNCState


def serve_config(**features):
    base = dict(
        memory_size=32, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, two_stage_sort=False,
    )
    base.update(features)
    return HiMAConfig(**base)


def make_engine(**features):
    return TiledEngine(serve_config(**features), rng=0)


# ---------------------------------------------------------------------------
# StateArena unit behaviour
# ---------------------------------------------------------------------------


class TestStateArena:
    def make(self, capacity=4):
        return StateArena(make_engine().initial_state, capacity=capacity)

    def test_bind_assigns_lowest_free_slot_and_zeroes_it(self):
        arena = self.make()
        arena.state.memory[...] = 7.0
        assert arena.bind("a") == 0
        assert arena.bind("b") == 1
        assert np.all(arena.state.memory[0] == 0.0)
        assert np.all(arena.state.memory[1] == 0.0)
        assert np.all(arena.state.memory[2] == 7.0)  # unbound rows untouched

    def test_released_slot_is_reused(self):
        arena = self.make(capacity=2)
        arena.bind("a")
        arena.bind("b")
        assert arena.release("a") == 0
        assert arena.bind("c") == 0
        assert arena.occupancy == 2

    def test_capacity_and_duplicates_enforced(self):
        arena = self.make(capacity=1)
        arena.bind("a")
        with pytest.raises(ConfigError):
            arena.bind("a")
        with pytest.raises(CapacityError):
            arena.bind("b")
        with pytest.raises(ConfigError):
            arena.release("missing")

    def test_read_write_slot_roundtrip_bitwise(self, rng):
        engine = make_engine()
        arena = StateArena(engine.initial_state, capacity=3)
        arena.bind("a")
        state = engine.initial_state()
        for name in NumpyDNCState.FIELDS:
            getattr(state, name)[...] = rng.standard_normal(
                getattr(state, name).shape
            )
        arena.write_slot("a", state)
        back = arena.read_slot("a")
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(getattr(back, name), getattr(state, name))
        # The copy owns its data.
        back.memory[...] = 0.0
        assert not np.all(arena.state.memory[arena.slot_of("a")] == 0.0)

    def test_write_slot_validates_shape_and_batchedness(self):
        engine = make_engine()
        arena = StateArena(engine.initial_state, capacity=2)
        arena.bind("a")
        with pytest.raises(ConfigError):
            arena.write_slot("a", engine.initial_state(batch_size=2))
        other = TiledEngine(serve_config(memory_size=64), rng=0)
        with pytest.raises(ConfigError):
            arena.write_slot("a", other.initial_state())

    def test_indices_preserve_given_order(self):
        arena = self.make()
        for sid in ("a", "b", "c"):
            arena.bind(sid)
        assert arena.indices(["c", "a", "b"]).tolist() == [2, 0, 1]


# ---------------------------------------------------------------------------
# Churn equivalence: arena path == gather/scatter path == solo stepping
# ---------------------------------------------------------------------------


def run_churn(server, schedule, inputs_of):
    """Apply a scripted open/submit/close schedule; returns outputs per id."""
    outputs = {}
    for tick_ops in schedule:
        for op, sid in tick_ops:
            if op == "open":
                assert server.open_session(sid) == sid
                outputs[sid] = []
            elif op == "close":
                if sid in server.store:
                    server.close_session(sid)
            else:  # submit the session's next scripted input
                if sid not in server.store:
                    continue  # TTL-evicted server-side; same on both paths
                request = server.submit(sid, inputs_of(sid)[len(outputs[sid])])
                assert request is not None
                outputs[sid].append(request)
        server.run_tick()
    server.drain()
    return outputs


def make_schedule(rng, ticks=120, max_live=5):
    """Deterministic ragged churn: opens, closes, and per-session submits."""
    schedule = []
    live = []
    counter = [0]
    submitted = {}
    for t in range(ticks):
        ops = []
        if (len(live) < max_live and rng.random() < 0.35) or not live:
            sid = f"s{counter[0]}"
            counter[0] += 1
            ops.append(("open", sid))
            live.append(sid)
            submitted[sid] = 0
        if len(live) > 1 and rng.random() < 0.12:
            victim = live.pop(int(rng.integers(0, len(live))))
            ops.append(("close", victim))
        for sid in list(live):
            if rng.random() < 0.7 and submitted[sid] < 30:
                ops.append(("submit", sid))
                submitted[sid] += 1
        schedule.append(ops)
    return schedule


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_churn_arena_matches_gather_scatter_and_solo(dtype):
    """Hundreds of ticks of ragged join/leave/evict: the arena path must
    match the PR 3 gather/scatter path and solo stepping to <= 1e-10."""
    rng = np.random.default_rng(99)
    schedule = make_schedule(rng, ticks=130)
    input_cache = {}

    def inputs_of(sid):
        if sid not in input_cache:
            gen = np.random.default_rng(hash(sid) % (2**32))
            input_cache[sid] = gen.standard_normal((30, 16))
        return input_cache[sid]

    servers = {}
    for state_arena in (True, False):
        engine = make_engine(dtype=dtype)
        server = SessionServer(
            engine, max_batch=4, max_wait_ticks=1,
            session_capacity=6, session_ttl_ticks=25,
            state_arena=state_arena,
        )
        servers[state_arena] = (engine, run_churn(server, schedule, inputs_of))

    (_, arena_out), (engine_gs, gs_out) = servers[True], servers[False]
    assert set(arena_out) == set(gs_out)
    compared_sessions = 0
    compared_requests = 0
    for sid in arena_out:
        for ra, rg in zip(arena_out[sid], gs_out[sid]):
            assert ra.done == rg.done
            assert (ra.error is None) == (rg.error is None)
            if ra.error is not None:
                continue
            assert np.max(np.abs(ra.y - rg.y)) <= 1e-10, sid
            compared_requests += 1
        # Solo check (float64; float32 batched-vs-unbatched BLAS kernels
        # round differently, which is the documented engine-wide story —
        # the arena-vs-fallback identity above is the dtype-independent
        # bar): the completed prefix must match the session running alone
        # through the unbatched engine.
        if dtype != "float64":
            continue
        done = []
        for r in arena_out[sid]:
            if r.error is not None:
                break
            done.append(r.y)
        if done:
            solo = engine_gs.run(inputs_of(sid)[: len(done)])
            assert np.max(np.abs(np.stack(done) - solo)) <= 1e-10, sid
            compared_sessions += 1
    # The schedule must actually have exercised churn and real work.
    if dtype == "float64":
        assert compared_sessions >= 10
    assert compared_requests >= 100


@pytest.mark.parametrize("dtype,tol", [("float64", 1e-10), ("float32", 1e-4)])
def test_churn_dense_partial_step_matches_gather_scatter(dtype, tol):
    """The same churn property with the dense-capacity masked step forced
    on (``masked_dense_min_occupancy=0.0``): every partially-occupied
    arena tick runs the in-place write phase over the full resident
    batch.  float64 keeps the 1e-10 bar; float32 gets the engine's
    documented batched-vs-unbatched story — the dense path's
    full-capacity gemms and the fallback's dispatch-sized gemms can hit
    different BLAS kernels (m=1 especially), which rounds differently at
    float32 but stays well inside the dtype's verify tolerance."""
    rng = np.random.default_rng(1234)
    schedule = make_schedule(rng, ticks=80)
    input_cache = {}

    def inputs_of(sid):
        if sid not in input_cache:
            gen = np.random.default_rng(hash(sid) % (2**32))
            input_cache[sid] = gen.standard_normal((30, 16))
        return input_cache[sid]

    outputs = {}
    for state_arena in (True, False):
        engine = make_engine(dtype=dtype, masked_dense_min_occupancy=0.0)
        server = SessionServer(
            engine, max_batch=4, max_wait_ticks=1,
            session_capacity=6, session_ttl_ticks=25,
            state_arena=state_arena,
        )
        outputs[state_arena] = run_churn(server, schedule, inputs_of)

    arena_out, gs_out = outputs[True], outputs[False]
    assert set(arena_out) == set(gs_out)
    compared = 0
    for sid in arena_out:
        for ra, rg in zip(arena_out[sid], gs_out[sid]):
            assert ra.done == rg.done
            if ra.error is not None:
                continue
            assert np.max(np.abs(ra.y - rg.y)) <= tol, sid
            compared += 1
    assert compared >= 50


def test_churn_exercises_eviction_paths():
    """The churn schedule is only a real test if sessions get evicted."""
    rng = np.random.default_rng(99)
    schedule = make_schedule(rng, ticks=130)
    input_cache = {}

    def inputs_of(sid):
        if sid not in input_cache:
            gen = np.random.default_rng(hash(sid) % (2**32))
            input_cache[sid] = gen.standard_normal((30, 16))
        return input_cache[sid]

    engine = make_engine()
    server = SessionServer(
        engine, max_batch=4, max_wait_ticks=1,
        session_capacity=6, session_ttl_ticks=25, state_arena=True,
    )
    run_churn(server, schedule, inputs_of)
    metrics = server.metrics
    assert metrics.evictions_ttl + metrics.evictions_lru > 0
    # Slot bookkeeping stayed consistent through every evict/close.
    assert server.arena.occupancy == len(server.store)


# ---------------------------------------------------------------------------
# Input-buffer reuse and copy metrics
# ---------------------------------------------------------------------------


def test_run_tick_reuses_one_input_buffer(rng):
    engine = make_engine()
    server = SessionServer(engine, max_batch=4, max_wait_ticks=0)
    buf = server._x_buf
    sids = [server.open_session() for _ in range(3)]
    for _ in range(4):
        for sid in sids:
            server.submit(sid, rng.standard_normal(16))
        server.run_tick()
    assert server._x_buf is buf


def test_stale_buffer_rows_do_not_leak_into_later_ticks(rng):
    """Only a subset submits on tick 2: the other sessions' stale buffer
    rows must not affect anyone (mask ignores them)."""
    engine = make_engine()
    server = SessionServer(engine, max_batch=4, max_wait_ticks=0)
    a = server.open_session()
    b = server.open_session()
    xs_a = rng.standard_normal((2, 16))
    x_b = rng.standard_normal(16)
    ra0 = server.submit(a, xs_a[0])
    rb0 = server.submit(b, x_b)
    server.run_tick()
    ra1 = server.submit(a, xs_a[1])  # b sits this tick out
    server.run_tick()
    assert ra0.done and rb0.done and ra1.done
    solo_a = engine.run(xs_a)
    assert np.max(np.abs(ra1.y - solo_a[1])) <= 1e-10
    # b's state did not advance while sitting out.
    state_b = server.session_state(b)
    solo_b = engine.step(x_b, engine.initial_state())[1]
    for name in NumpyDNCState.FIELDS:
        assert np.max(np.abs(
            getattr(state_b, name) - getattr(solo_b, name)
        )) <= 1e-10, name


def test_arena_copies_state_only_on_join_while_fallback_copies_per_tick(rng):
    def run(state_arena):
        engine = make_engine()
        # session_capacity == session count, so every arena tick hits the
        # dense all-slots fast path (zero state copies).
        server = SessionServer(
            engine, max_batch=4, max_wait_ticks=0, session_capacity=4,
            state_arena=state_arena,
        )
        sids = [server.open_session() for _ in range(4)]
        after_join = server.metrics.state_bytes_copied
        for _ in range(5):
            for sid in sids:
                server.submit(sid, rng.standard_normal(16))
            server.run_tick()
        return server, after_join

    arena_server, arena_join_bytes = run(True)
    fallback_server, fallback_join_bytes = run(False)
    row = arena_server.arena.row_nbytes
    # Arena: exactly one slot write per join, nothing per dense tick.
    assert arena_join_bytes == 4 * row
    assert arena_server.metrics.state_bytes_copied == 4 * row
    # Fallback: two full 4-row batches per tick, every tick.
    assert fallback_join_bytes == 0
    assert fallback_server.metrics.state_bytes_copied == 5 * 2 * 4 * row


def test_metrics_snapshot_has_arena_counters(rng):
    engine = make_engine()
    server = SessionServer(engine, max_batch=2, max_wait_ticks=0)
    sid = server.open_session()
    server.submit(sid, rng.standard_normal(16))
    server.run_tick()
    snap = server.metrics.snapshot()
    for key in (
        "state_bytes_copied", "state_bytes_per_tick",
        "mean_slot_occupancy", "slot_occupancy_histogram",
    ):
        assert key in snap
    assert snap["state_bytes_copied"] >= server.arena.row_nbytes
    assert snap["slot_occupancy_histogram"] == {"1": 1}
    assert snap["mean_slot_occupancy"] == 1.0


# ---------------------------------------------------------------------------
# Checkpoint read/restore
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("state_arena", [True, False], ids=["arena", "fallback"])
def test_session_state_roundtrip_and_restore(state_arena, rng):
    engine = make_engine()
    server = SessionServer(
        engine, max_batch=2, max_wait_ticks=0, state_arena=state_arena
    )
    sid = server.open_session()
    xs = rng.standard_normal((3, 16))
    for x in xs[:2]:
        server.submit(sid, x)
        server.run_tick()
    checkpoint = server.session_state(sid)

    # Divergence: step once more, then restore the checkpoint.
    server.submit(sid, xs[2])
    server.run_tick()
    server.restore_session_state(sid, checkpoint)
    restored = server.session_state(sid)
    for name in NumpyDNCState.FIELDS:
        assert np.array_equal(
            getattr(restored, name), getattr(checkpoint, name)
        )
    # Restored state resumes exactly where the checkpoint was taken.
    request = server.submit(sid, xs[2])
    server.run_tick()
    solo = engine.run(xs)
    assert np.max(np.abs(request.y - solo[2])) <= 1e-10

    with pytest.raises(ConfigError):
        server.restore_session_state(
            sid, engine.initial_state(batch_size=2)
        )


def test_arena_default_on_and_fallback_flag():
    engine = make_engine()
    assert SessionServer(engine).arena is not None
    assert SessionServer(engine, state_arena=False).arena is None
