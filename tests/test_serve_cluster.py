"""Sharded serving: routing policies, cluster correctness, migration.

The acceptance bar for the router + engine-shard cluster: served
trajectories under :class:`ShardedServer` — any shard count, with
mid-stream checkpoint migrations included — must match solo unbatched
stepping to <= 1e-10; a migrated session's post-migration trajectory
must be **bitwise** identical to the never-migrated run at equal
dispatch order; and the 1-shard cluster must behave exactly like the
single-engine :class:`SessionServer` it generalizes.
"""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.dnc.numpy_ref import NumpyDNCState
from repro.errors import CapacityError, ConfigError
from repro.serve import (
    ConsistentHashPlacement,
    EngineShard,
    HotSpotRebalance,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    ServerMetrics,
    SessionServer,
    ShardedServer,
    generate_zipf_scripts,
    run_open_loop,
    tenant_of,
)
from repro.serve.loadgen import SessionScript


def serve_config(**features):
    base = dict(
        memory_size=32, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, two_stage_sort=False,
    )
    base.update(features)
    return HiMAConfig(**base)


def make_engines(count, **features):
    return [TiledEngine(serve_config(**features), rng=0) for _ in range(count)]


def make_cluster(num_shards, parallel=False, **kwargs):
    defaults = dict(max_batch=4, max_wait_ticks=1, session_capacity=8)
    defaults.update(kwargs)
    features = defaults.pop("features", {})
    return ShardedServer(
        make_engines(num_shards, **features), parallel=parallel, **defaults
    )


def scripted(session_id, arrival, inputs):
    return SessionScript(
        session_id=session_id, arrival_tick=arrival, kind="copy",
        inputs=np.asarray(inputs),
    )


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------


class _FakeShard:
    def __init__(self, load, queue_depth=0):
        self.load = load
        self.queue_depth = queue_depth


class TestPlacementPolicies:
    def test_least_loaded_picks_min_sessions_then_queue_then_index(self):
        policy = LeastLoadedPlacement()
        shards = [_FakeShard(3), _FakeShard(1), _FakeShard(1, queue_depth=5)]
        assert policy.place("x", shards) == 1
        shards = [_FakeShard(2), _FakeShard(2), _FakeShard(2)]
        assert policy.place("x", shards) == 0

    def test_round_robin_cycles(self):
        policy = RoundRobinPlacement()
        shards = [_FakeShard(0)] * 3
        assert [policy.place(f"s{i}", shards) for i in range(6)] == [
            0, 1, 2, 0, 1, 2,
        ]

    def test_consistent_hash_is_deterministic_across_instances(self):
        shards = [_FakeShard(0)] * 4
        a = ConsistentHashPlacement()
        b = ConsistentHashPlacement()
        ids = [f"session-{i}" for i in range(50)]
        assert [a.place(s, shards) for s in ids] == [
            b.place(s, shards) for s in ids
        ]

    def test_consistent_hash_spreads_and_groups_by_key(self):
        shards = [_FakeShard(0)] * 4
        policy = ConsistentHashPlacement(key_of=tenant_of)
        placements = {
            f"t{t:02d}-copy-{i}": policy.place(f"t{t:02d}-copy-{i}", shards)
            for t in range(8) for i in range(5)
        }
        # Co-tenant sessions always land together...
        for t in range(8):
            tenant_shards = {
                placements[f"t{t:02d}-copy-{i}"] for i in range(5)
            }
            assert len(tenant_shards) == 1, t
        # ...and the tenants themselves use more than one shard.
        assert len(set(placements.values())) > 1

    def test_hash_ring_mostly_stable_when_growing(self):
        """Consistent hashing's point: adding shards remaps only the keys
        whose ring arc moved, not the whole population."""
        policy = ConsistentHashPlacement()
        ids = [f"session-{i}" for i in range(200)]
        before = [policy.place(s, [_FakeShard(0)] * 4) for s in ids]
        after = [policy.place(s, [_FakeShard(0)] * 5) for s in ids]
        moved = sum(1 for x, y in zip(before, after) if x != y)
        assert moved < len(ids) // 2  # naive modulo would move ~80%


# ---------------------------------------------------------------------------
# Cluster correctness vs solo stepping
# ---------------------------------------------------------------------------


class TestClusterNumericalIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("parallel", [False, True], ids=["seq", "threads"])
    def test_cluster_matches_solo_runs(self, num_shards, parallel, rng):
        cluster = make_cluster(num_shards, parallel=parallel)
        scripts = [
            scripted(f"s{i}", i % 3, rng.standard_normal((4 + i % 4, 16)))
            for i in range(7)
        ]
        results = run_open_loop(cluster, scripts)
        cluster.close()
        solo = TiledEngine(serve_config(), rng=0)
        for script in scripts:
            served = np.stack([r.y for r in results[script.session_id]])
            expected = solo.run(script.inputs)
            assert np.max(np.abs(served - expected)) <= 1e-10, script.session_id

    def test_one_shard_cluster_matches_session_server_bitwise(self, rng):
        """The 1-shard special case: identical engine, identical dispatch
        order, therefore identical bits."""
        scripts = [
            scripted(f"s{i}", 0, rng.standard_normal((5, 16)))
            for i in range(4)
        ]
        cluster = make_cluster(1)
        cluster_results = run_open_loop(cluster, scripts)
        cluster.close()
        server = SessionServer(
            TiledEngine(serve_config(), rng=0),
            max_batch=4, max_wait_ticks=1, session_capacity=8,
        )
        server_results = run_open_loop(server, scripts)
        for script in scripts:
            a = np.stack([r.y for r in cluster_results[script.session_id]])
            b = np.stack([r.y for r in server_results[script.session_id]])
            assert np.array_equal(a, b), script.session_id

    def test_parallel_ticks_bitwise_match_sequential(self, rng):
        """Shards share nothing: thread-parallel cluster ticks must be
        bit-identical to sequential ones."""
        scripts = [
            scripted(f"s{i}", 0, rng.standard_normal((6, 16)))
            for i in range(6)
        ]
        outs = {}
        for parallel in (False, True):
            cluster = make_cluster(3, parallel=parallel)
            results = run_open_loop(cluster, scripts)
            cluster.close()
            outs[parallel] = {
                sid: np.stack([r.y for r in reqs])
                for sid, reqs in results.items()
            }
        for sid in outs[False]:
            assert np.array_equal(outs[False][sid], outs[True][sid]), sid

    def test_thread_per_shard_pool_bitwise_matches_sequential(self, rng):
        """An explicit ``parallel_workers`` width (thread-per-shard, the
        proc-bench baseline topology) changes scheduling only, never
        results."""
        scripts = [
            scripted(f"s{i}", 0, rng.standard_normal((5, 16)))
            for i in range(6)
        ]
        outs = {}
        for workers in (None, 3):
            cluster = make_cluster(3, parallel=True, parallel_workers=workers)
            results = run_open_loop(cluster, scripts)
            cluster.close()
            outs[workers] = {
                sid: np.stack([r.y for r in reqs])
                for sid, reqs in results.items()
            }
        for sid in outs[None]:
            assert np.array_equal(outs[None][sid], outs[3][sid]), sid

    def test_parallel_workers_validated(self):
        with pytest.raises(ConfigError, match="parallel_workers"):
            make_cluster(2, parallel=True, parallel_workers=0)


# ---------------------------------------------------------------------------
# Checkpoint-based migration
# ---------------------------------------------------------------------------


class TestMigration:
    def test_migrated_session_matches_solo_with_pending_queue(self, rng):
        """Mid-stream migration with requests still queued: nothing
        fails, and the whole trajectory matches the solo run."""
        cluster = make_cluster(2)
        inputs = {f"s{i}": rng.standard_normal((6, 16)) for i in range(4)}
        requests = {}
        for sid, xs in inputs.items():
            assert cluster.open_session(sid) == sid
            requests[sid] = [cluster.submit(sid, x) for x in xs]
        cluster.run_tick()
        victim = "s0"
        src = cluster.shard_of(victim)
        cluster.migrate_session(victim, 1 - src)
        assert cluster.shard_of(victim) == 1 - src
        assert cluster.migrations == 1
        cluster.drain()
        cluster.close()
        solo = TiledEngine(serve_config(), rng=0)
        for sid, xs in inputs.items():
            assert all(r.done and r.error is None for r in requests[sid]), sid
            served = np.stack([r.y for r in requests[sid]])
            assert np.max(np.abs(served - solo.run(xs))) <= 1e-10, sid

    def test_post_migration_trajectory_bitwise_at_equal_dispatch(self, rng):
        """At equal dispatch order (the session steps alone in its batch
        before and after the move), migrating is invisible: the continued
        trajectory is bitwise the never-migrated one."""
        inputs = rng.standard_normal((6, 16))

        def run(migrate_at):
            cluster = make_cluster(2, max_batch=2, max_wait_ticks=0,
                                   session_capacity=2)
            cluster.open_session("solo")
            ys = []
            for t, x in enumerate(inputs):
                if migrate_at == t:
                    cluster.migrate_session(
                        "solo", 1 - cluster.shard_of("solo")
                    )
                request = cluster.submit("solo", x)
                cluster.run_tick()
                ys.append(request.y)
            state = cluster.session_state("solo")
            cluster.close()
            return np.stack(ys), state

        y_stay, state_stay = run(migrate_at=None)
        y_move, state_move = run(migrate_at=3)
        assert np.array_equal(y_stay, y_move)
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(
                getattr(state_stay, name), getattr(state_move, name)
            ), name

    def test_checkpoint_restore_across_shards_is_bitwise(self, rng):
        cluster = make_cluster(2)
        cluster.open_session("a")
        for x in rng.standard_normal((3, 16)):
            cluster.submit("a", x)
        cluster.drain()
        payload = cluster.checkpoint_session("a")
        state = cluster.session_state("a")
        other = cluster.shards[1 - cluster.shard_of("a")]
        other.restore_session("copy-of-a", payload)
        restored = other.session_state("copy-of-a")
        for name in NumpyDNCState.FIELDS:
            assert np.array_equal(
                getattr(state, name), getattr(restored, name)
            ), name
        cluster.close()

    def test_migration_to_full_shard_refused_and_session_survives(self, rng):
        cluster = make_cluster(2, session_capacity=1)
        placements = {}
        for sid in ("a", "b"):
            cluster.open_session(sid)
            placements[sid] = cluster.shard_of(sid)
        with pytest.raises(CapacityError):
            cluster.migrate_session("a", 1 - placements["a"])
        assert cluster.shard_of("a") == placements["a"]
        cluster.submit("a", rng.standard_normal(16))
        completed = cluster.drain()
        assert len(completed) == 1 and completed[0].error is None
        cluster.close()

    def test_detach_attach_preserves_request_objects_in_order(self, rng):
        shard_a, shard_b = make_cluster(2).shards
        shard_a.open_session("s")
        submitted = [
            shard_a.submit("s", rng.standard_normal(16)) for _ in range(3)
        ]
        payload, pending = shard_a.detach_session("s")
        assert pending == submitted  # same objects, same order
        assert shard_a.queue_depth == 0 and "s" not in shard_a.store
        assert shard_a.metrics.migrations_out == 1
        shard_b.attach_session("s", payload, pending)
        assert shard_b.queue_depth == 3
        assert shard_b.metrics.migrations_in == 1
        completed = shard_b.drain()
        assert completed == submitted
        assert all(r.error is None for r in completed)


# ---------------------------------------------------------------------------
# Rebalancing under skewed load
# ---------------------------------------------------------------------------


class TestRebalancing:
    def test_hot_spot_plan_moves_lru_from_hot_to_cold(self):
        cluster = make_cluster(2, session_capacity=8)
        for i in range(5):
            cluster.shards[0].open_session(f"hot-{i}")
        policy = HotSpotRebalance(max_spread=2, max_moves=2)
        moves = policy.plan(cluster.shards)
        # LRU-first victims, hot shard 0 -> cold shard 1, spread closes.
        assert moves == [("hot-0", 0, 1), ("hot-1", 0, 1)]
        cluster.close()

    def test_zipf_load_rebalances_and_stays_correct(self):
        cluster = make_cluster(
            4, session_capacity=12, max_batch=8,
            placement=ConsistentHashPlacement(key_of=tenant_of),
            rebalance=HotSpotRebalance(max_spread=2, max_moves=2),
        )
        scripts = generate_zipf_scripts(
            input_size=16, num_sessions=20, num_tenants=5,
            zipf_exponent=1.5, mean_session_len=5.0,
            mean_interarrival_ticks=0.5, rng=13,
        )
        results = run_open_loop(cluster, scripts)
        cluster.close()
        assert cluster.migrations > 0
        solo = TiledEngine(serve_config(), rng=0)
        checked = 0
        for script in scripts:
            requests = results[script.session_id]
            assert len(requests) == script.length
            served = np.stack([r.y for r in requests])
            expected = solo.run(script.inputs)
            assert np.max(np.abs(served - expected)) <= 1e-10
            checked += 1
        assert checked == len(scripts)


# ---------------------------------------------------------------------------
# Cluster surface: sessions, metrics, validation
# ---------------------------------------------------------------------------


class TestClusterSurface:
    def test_least_loaded_default_balances_opens(self):
        cluster = make_cluster(4)
        for _ in range(8):
            cluster.open_session()
        assert [shard.load for shard in cluster.shards] == [2, 2, 2, 2]
        cluster.close()

    def test_snapshot_merges_shard_metrics_exactly(self, rng):
        cluster = make_cluster(2)
        for i in range(4):
            sid = cluster.open_session()
            cluster.submit(sid, rng.standard_normal(16))
        cluster.drain()
        snap = cluster.snapshot()
        merged = ServerMetrics.merge(
            shard.metrics for shard in cluster.shards
        )
        assert snap["requests_completed"] == 4
        assert snap["requests_completed"] == merged.requests_completed
        assert snap["shards"] == 2
        assert snap["sessions_migrated"] == 0
        assert len(snap["per_shard"]) == 2
        assert sum(s["requests_completed"] for s in snap["per_shard"]) == 4
        cluster.close()

    def test_lru_eviction_during_open_updates_routing_table(self):
        """Admitting a session may LRU-evict another one inside the
        shard; the victim must leave the routing table immediately, not
        at the next tick."""
        cluster = make_cluster(1, session_capacity=2)
        cluster.open_session("a")
        cluster.open_session("b")
        cluster.open_session("c")  # shard evicts idle "a" to make room
        assert cluster.session_count == 2
        with pytest.raises(ConfigError):
            cluster.shard_of("a")
        # The id is free again: reopening it must not hit a phantom.
        assert cluster.open_session("a") == "a"
        cluster.close()

    def test_eviction_updates_routing_table(self, rng):
        cluster = make_cluster(1, session_ttl_ticks=2)
        sid = cluster.open_session()
        cluster.submit(sid, rng.standard_normal(16))
        cluster.drain()
        for _ in range(4):
            cluster.run_tick()  # session idles past its TTL
        assert cluster.session_count == 0
        with pytest.raises(ConfigError):
            cluster.submit(sid, rng.standard_normal(16))
        cluster.close()

    def test_close_session_routes_and_unmaps(self, rng):
        cluster = make_cluster(2)
        sid = cluster.open_session()
        cluster.close_session(sid)
        assert cluster.session_count == 0
        with pytest.raises(ConfigError):
            cluster.shard_of(sid)
        cluster.close()

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardedServer()  # neither engines nor factory
        with pytest.raises(ConfigError):
            ShardedServer([])
        mixed = [
            TiledEngine(serve_config(), rng=0),
            TiledEngine(serve_config(memory_size=64), rng=0),
        ]
        with pytest.raises(ConfigError):
            ShardedServer(mixed)
        reseeded = [
            TiledEngine(serve_config(), rng=0),
            TiledEngine(serve_config(), rng=1),
        ]
        with pytest.raises(ConfigError):
            ShardedServer(reseeded)
        cluster = make_cluster(2)
        cluster.open_session("dup")
        with pytest.raises(ConfigError):
            cluster.open_session("dup")
        with pytest.raises(ConfigError):
            cluster.submit("missing", np.zeros(16))
        with pytest.raises(ConfigError):
            cluster.migrate_session("dup", 7)
        cluster.close()

    def test_engine_factory_construction(self):
        cluster = ShardedServer(
            engine_factory=lambda: TiledEngine(serve_config(), rng=0),
            num_shards=3,
            max_batch=4, session_capacity=4,
        )
        assert cluster.num_shards == 3
        assert all(isinstance(s, EngineShard) for s in cluster.shards)
        cluster.close()
