"""Calibrated area and power models vs the paper's Figure 11(e)/(f)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw.area_model import AreaModel, SRAM_MM2_PER_BYTE
from repro.hw.power_model import (
    EnergyConstants,
    PowerBreakdown,
    PowerModel,
    WorkloadActivity,
)


class TestAreaModel:
    @pytest.fixture
    def dnc(self):
        return AreaModel(1024, 64, 4, 16)

    @pytest.fixture
    def dncd(self):
        return AreaModel(1024, 64, 4, 16, distributed=True)

    def test_linkage_shard_matches_paper_262kb(self, dnc):
        assert dnc.linkage_bytes() == 262144  # N^2/Nt words * 4B

    def test_external_shard_matches_paper_16kb(self, dnc):
        assert dnc.external_memory_bytes() == 16384

    def test_dncd_linkage_is_local_square(self, dncd):
        assert dncd.linkage_bytes() == 64 * 64 * 4

    def test_pt_memory_area_calibrated(self, dnc):
        assert dnc.breakdown().pt_memory == pytest.approx(2.07, abs=0.02)

    def test_pt_total_matches_paper(self, dnc):
        assert dnc.breakdown().pt_total == pytest.approx(5.01, abs=0.05)

    def test_total_matches_paper(self, dnc):
        assert dnc.breakdown().total == pytest.approx(80.69, rel=0.01)

    def test_baseline_pt_smaller_by_feature_overhead(self):
        baseline = AreaModel(1024, 64, 4, 16, two_stage_sort=False,
                             multimode_noc=False)
        dnc = AreaModel(1024, 64, 4, 16)
        overhead = dnc.breakdown().pt_total / baseline.breakdown().pt_total
        assert 1.0 < overhead < 1.03  # paper: 1.8% PT overhead

    def test_dncd_smaller_than_dnc(self, dnc, dncd):
        assert dncd.breakdown().total < dnc.breakdown().total
        assert dncd.breakdown().ct_total == pytest.approx(0.18, abs=0.02)

    def test_linkage_dominates_pt_memory(self, dnc):
        breakdown = dnc.breakdown()
        linkage_area = dnc.linkage_bytes() * SRAM_MM2_PER_BYTE
        assert linkage_area / breakdown.pt_memory == pytest.approx(0.813, abs=0.02)

    def test_area_grows_with_memory(self):
        small = AreaModel(512, 64, 4, 16).breakdown().total
        large = AreaModel(2048, 64, 4, 16).breakdown().total
        assert large > small

    def test_divisibility_enforced(self):
        with pytest.raises(ConfigError):
            AreaModel(100, 64, 4, 16)

    def test_details_inventory(self, dnc):
        details = dnc.breakdown().details
        assert details["linkage_kb"] == 256.0
        assert details["external_kb"] == 16.0
        assert details["mm_engine"] > 0


class TestPowerModel:
    @pytest.fixture
    def activity(self):
        return WorkloadActivity(
            pt_ops=23_000_000, mem_accesses=4_500_000,
            noc_hop_words=50_000, lstm_ops=1_200_000,
            num_tiles=16, timestep_cycles=3000,
        )

    def test_estimate_module_set(self, activity):
        breakdown = PowerModel().estimate(activity)
        assert set(breakdown.modules) == set(PowerModel.MODULES)
        assert breakdown.total > 0

    def test_power_scales_with_ops(self, activity):
        low = PowerModel().estimate(activity)
        activity2 = WorkloadActivity(
            pt_ops=activity.pt_ops * 2, mem_accesses=activity.mem_accesses,
            noc_hop_words=activity.noc_hop_words, lstm_ops=activity.lstm_ops,
            num_tiles=16, timestep_cycles=activity.timestep_cycles,
        )
        high = PowerModel().estimate(activity2)
        assert high.modules["pt_mm_engine"] == pytest.approx(
            2 * low.modules["pt_mm_engine"]
        )

    def test_other_power_scales_with_tiles(self):
        constants = EnergyConstants()
        act4 = WorkloadActivity(1e6, 1e6, 1e3, 1e5, 4, 1000)
        act16 = WorkloadActivity(1e6, 1e6, 1e3, 1e5, 16, 1000)
        model = PowerModel(constants)
        assert model.estimate(act16).modules["pt_other"] == pytest.approx(
            4 * model.estimate(act4).modules["pt_other"]
        )

    def test_fraction_helper(self, activity):
        breakdown = PowerModel().estimate(activity)
        fractions = [breakdown.fraction(m) for m in breakdown.modules]
        assert sum(fractions) == pytest.approx(1.0)

    def test_zero_cycles_rejected(self):
        activity = WorkloadActivity(1, 1, 1, 1, 1, 0)
        with pytest.raises(ConfigError):
            PowerModel().estimate(activity)

    def test_kernel_power_sums_to_dynamic_total(self):
        model = PowerModel()
        kernels = {
            "a": WorkloadActivity(1e6, 1e5, 1e3, 0, 16, 100),
            "b": WorkloadActivity(2e6, 2e5, 0, 0, 16, 200),
        }
        per_kernel = model.kernel_power(kernels, total_cycles=300)
        c = model.constants
        expected = sum(
            (c.pj_per_op * k.pt_ops + c.pj_per_mem_access * k.mem_accesses
             + c.pj_per_hop_word * k.noc_hop_words) * 1e-12
            for k in kernels.values()
        ) / (300 / 500e6)
        assert sum(per_kernel.values()) == pytest.approx(expected)


class TestCalibrationAgainstPaper:
    """End-to-end: the HiMA-DNC prototype must land on Fig. 11(e)/(f)."""

    def test_hima_dnc_power_matches_figure_11f(self):
        from repro.core.config import HiMAConfig
        from repro.core.perf_model import HiMAPerformanceModel

        model = HiMAPerformanceModel(HiMAConfig.hima_dnc())
        breakdown = PowerModel().estimate(model.activity())
        assert breakdown.total == pytest.approx(16.96, rel=0.05)
        assert breakdown.modules["pt_mm_engine"] == pytest.approx(8.10, rel=0.1)
        assert breakdown.modules["pt_memory"] == pytest.approx(4.86, rel=0.1)
        assert breakdown.modules["pt_other"] == pytest.approx(2.30, rel=0.1)

    def test_dncd_uses_less_power_than_dnc(self):
        from repro.core.config import HiMAConfig
        from repro.core.perf_model import HiMAPerformanceModel

        power = PowerModel()
        dnc = power.estimate(
            HiMAPerformanceModel(HiMAConfig.hima_dnc()).activity()
        )
        dncd = power.estimate(
            HiMAPerformanceModel(HiMAConfig.hima_dncd()).activity()
        )
        assert dncd.total < dnc.total
        # Router power collapses without inter-PT traffic (paper: -98.4%).
        assert dncd.modules["pt_router"] < 0.6 * dnc.modules["pt_router"]
