"""PE, CPT, M-M engine, memory bank, and technology scaling."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigError
from repro.hw import (
    ConfigurableProcessingTree,
    MemoryBank,
    MMEngine,
    PE,
    PEMode,
    TechnologyNode,
    normalize_area,
)
from repro.hw.tech import NODE_15NM, NODE_40NM


class TestPE:
    def test_modes(self):
        pe = PE()
        assert pe.execute(PEMode.BYPASS, 5.0) == 5.0
        assert pe.execute(PEMode.ADD, 2.0, 3.0) == 5.0
        assert pe.execute(PEMode.MULTIPLY, 2.0, 3.0) == 6.0

    def test_multiply_add_accumulates(self):
        pe = PE()
        pe.write_rf(0, 10.0)
        assert pe.execute(PEMode.MULTIPLY_ADD, 2.0, 3.0, 0) == 16.0

    def test_add_multiply_uses_rf(self):
        pe = PE()
        pe.write_rf(1, 4.0)
        assert pe.execute(PEMode.ADD_MULTIPLY, 1.0, 2.0, 1) == 12.0

    def test_result_lands_in_rf(self):
        pe = PE()
        pe.execute(PEMode.ADD, 2.0, 3.0, rf_index=2)
        assert pe.read_rf(2) == 5.0

    def test_mac_sequence_dot_product(self, rng):
        pe = PE()
        a, b = rng.random(8), rng.random(8)
        assert pe.mac_sequence(a, b) == pytest.approx(float(a @ b))
        assert pe.ops_executed == 8

    def test_rf_bounds(self):
        pe = PE(rf_depth=2)
        with pytest.raises(CapacityError):
            pe.write_rf(2, 1.0)
        with pytest.raises(CapacityError):
            pe.read_rf(-1)

    def test_mismatched_mac_operands(self, rng):
        with pytest.raises(ConfigError):
            PE().mac_sequence(rng.random(3), rng.random(4))


class TestCPT:
    def test_reduce_add(self, rng):
        cpt = ConfigurableProcessingTree(8)
        values = rng.random(8)
        assert cpt.reduce(values, "add") == pytest.approx(values.sum())

    def test_reduce_other_ops(self):
        cpt = ConfigurableProcessingTree(4)
        assert cpt.reduce([3.0, 1.0, 2.0, 5.0], "max") == 5.0
        assert cpt.reduce([3.0, 1.0, 2.0, 5.0], "min") == 1.0
        assert cpt.reduce([2.0, 3.0, 4.0, 1.0], "multiply") == 24.0

    def test_partial_inputs_padded_with_identity(self):
        cpt = ConfigurableProcessingTree(8)
        assert cpt.reduce([1.0, 2.0], "add") == 3.0
        assert cpt.reduce([2.0, 5.0], "multiply") == 10.0

    def test_depth_and_pipeline(self):
        cpt = ConfigurableProcessingTree(64)
        assert cpt.depth == 6
        assert cpt.reduce_cycles(1) == 6
        assert cpt.reduce_cycles(10) == 15

    def test_validation(self):
        with pytest.raises(ConfigError):
            ConfigurableProcessingTree(6)
        cpt = ConfigurableProcessingTree(4)
        with pytest.raises(ConfigError):
            cpt.reduce([1.0] * 5)
        with pytest.raises(ConfigError):
            cpt.reduce([1.0], "xor")
        with pytest.raises(ConfigError):
            cpt.reduce([])


class TestMMEngine:
    def test_functional_ops(self, rng):
        engine = MMEngine()
        m, v = rng.random((5, 4)), rng.random(4)
        assert np.allclose(engine.matvec(m, v), m @ v)
        assert np.allclose(engine.outer(v, v), np.outer(v, v))
        assert np.allclose(engine.elementwise(v, v, "add"), 2 * v)
        assert np.allclose(engine.elementwise(v, v, "mul"), v * v)

    def test_cycle_model_scales_with_ops(self):
        engine = MMEngine(macs_per_cycle=64)
        assert engine.cycles_for_ops(0) == 0
        one = engine.cycles_for_ops(64)
        two = engine.cycles_for_ops(128)
        assert two == one + 1  # one extra issue cycle

    def test_higher_throughput_is_faster(self):
        slow = MMEngine(macs_per_cycle=64)
        fast = MMEngine(macs_per_cycle=1024)
        assert fast.cycles_matvec(256, 256) < slow.cycles_matvec(256, 256)

    def test_shape_validation(self, rng):
        with pytest.raises(ConfigError):
            MMEngine().matvec(rng.random((3, 4)), rng.random(5))
        with pytest.raises(ConfigError):
            MMEngine().elementwise(rng.random(3), rng.random(3), "div")
        with pytest.raises(ConfigError):
            MMEngine().cycles_for_ops(-1)


class TestMemoryBank:
    def test_capacity_math(self):
        bank = MemoryBank("linkage", words=65536, bits_per_word=32)
        assert bank.bytes == 262144
        assert bank.kilobytes == 256.0

    def test_read_write_roundtrip(self, rng):
        bank = MemoryBank("ext", 64)
        data = rng.random(16)
        bank.write(8, data)
        assert np.allclose(bank.read(8, 16), data)

    def test_counters(self, rng):
        bank = MemoryBank("ext", 64)
        bank.write(0, rng.random(10))
        bank.read(0, 5)
        assert bank.writes == 10 and bank.reads == 5
        bank.reset_counters()
        assert bank.writes == 0 and bank.reads == 0

    def test_bounds_enforced(self):
        bank = MemoryBank("ext", 8)
        with pytest.raises(CapacityError):
            bank.read(6, 4)
        with pytest.raises(CapacityError):
            bank.write(-1, np.zeros(2))
        with pytest.raises(ConfigError):
            bank.read(0, 0)


class TestTechnology:
    def test_area_scaling_is_quadratic(self):
        assert NODE_15NM.area_scale_to(NODE_40NM) == pytest.approx((40 / 15) ** 2)

    def test_normalize_roundtrip(self):
        up = normalize_area(10.0, NODE_15NM, NODE_40NM)
        back = normalize_area(up, NODE_40NM, NODE_15NM)
        assert back == pytest.approx(10.0)

    def test_same_node_identity(self):
        assert normalize_area(5.0, NODE_40NM, NODE_40NM) == 5.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TechnologyNode(0)
        with pytest.raises(ConfigError):
            normalize_area(-1.0, NODE_40NM, NODE_15NM)
