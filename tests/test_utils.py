"""Utility helpers: RNG, formatting, validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils import (
    check_in,
    check_positive,
    check_power_of_two,
    check_probability,
    format_breakdown,
    format_ratio,
    format_table,
    new_rng,
)
from repro.utils.rng import RngMixin, spawn


class TestRng:
    def test_int_seed_is_deterministic(self):
        a = new_rng(42).random(5)
        b = new_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)

    def test_spawn_children_independent(self):
        children = spawn(new_rng(0), 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_mixin_seeding(self):
        class Thing(RngMixin):
            pass

        a, b = Thing(), Thing()
        a.seed(7)
        b.seed(7)
        assert a.rng.random() == b.rng.random()

    def test_mixin_lazy_default(self):
        class Thing(RngMixin):
            pass

        assert isinstance(Thing().rng, np.random.Generator)


class TestFormatting:
    def test_table_alignment_and_title(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_table_float_rendering(self):
        text = format_table(["x"], [[0.000123], [12345.6], [1.5], [0.0]])
        assert "1.230e-04" in text
        assert "1.235e+04" in text
        assert "1.5" in text

    def test_ratio(self):
        assert format_ratio(20.0, 10.0) == "2x"
        assert format_ratio(1.0, 0.0) == "inf x"

    def test_breakdown_percentages(self):
        text = format_breakdown({"a": 3.0, "b": 1.0}, title="split")
        assert "split" in text
        assert "75.0%" in text and "25.0%" in text and "100.0%" in text

    def test_breakdown_empty_total(self):
        text = format_breakdown({"a": 0.0})
        assert "0.0%" in text


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ConfigError):
            check_positive("x", 0)
        with pytest.raises(ConfigError):
            check_positive("x", -3)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ConfigError):
            check_probability("p", 1.01)

    def test_check_power_of_two(self):
        for good in (1, 2, 4, 64):
            check_power_of_two("n", good)
        for bad in (0, 3, 12, -4):
            with pytest.raises(ConfigError):
                check_power_of_two("n", bad)

    def test_check_in(self):
        check_in("mode", "a", ("a", "b"))
        with pytest.raises(ConfigError) as excinfo:
            check_in("mode", "c", ("a", "b"))
        assert "mode" in str(excinfo.value)


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in ("ConfigError", "ShapeError", "GradientError",
                     "SimulationError", "RoutingError", "CapacityError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_routing_and_capacity_are_simulation_errors(self):
        from repro import errors

        assert issubclass(errors.RoutingError, errors.SimulationError)
        assert issubclass(errors.CapacityError, errors.SimulationError)
