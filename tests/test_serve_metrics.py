"""ServerMetrics: merge exactness, quantiles, tenants, exporters.

The cluster layers (thread-sharded and process-sharded) aggregate
per-shard :class:`repro.serve.metrics.ServerMetrics` with
:meth:`~repro.serve.metrics.ServerMetrics.merge`, and the whole
observability story leans on one property: every statistic derived from
the merged object equals the statistic of a single metrics object that
had observed every event itself.  These tests pin that property
directly — merge vs recompute-from-the-union — over disjoint bins,
overlapping bins, and the per-tenant label dimension, plus the exact
histogram quantiles and the registry export surfaces.
"""

import json

import numpy as np
import pytest

from repro.obs import validate_metrics_json
from repro.serve.metrics import ServerMetrics, tenant_of


def _observe(metrics: ServerMetrics, waits, occupancies=(), sessions=()):
    for wait in waits:
        metrics.observe_wait(int(wait))
        metrics.requests_completed += 1
    for occ in occupancies:
        metrics.observe_occupancy(int(occ))
    for session_id in sessions:
        metrics.observe_tenant(session_id)


def _union(parts):
    """One metrics object that observed every part's events itself."""
    union = ServerMetrics()
    for part in parts:
        for wait, count in part.wait_histogram.items():
            for _ in range(count):
                union.observe_wait(wait)
        for occ, count in part.occupancy_histogram.items():
            for _ in range(count):
                union.observe_occupancy(occ)
        for name in ServerMetrics.COUNTERS:
            if name == "ticks":
                continue  # observe_occupancy already advanced it
            setattr(union, name, getattr(union, name) + getattr(part, name))
        for tenant, count in part.tenant_completed.items():
            union.tenant_completed[tenant] = (
                union.tenant_completed.get(tenant, 0) + count
            )
    return union


def _assert_equivalent(merged: ServerMetrics, union: ServerMetrics):
    for name in ServerMetrics.COUNTERS:
        assert getattr(merged, name) == getattr(union, name), name
    for name in ServerMetrics.HISTOGRAMS + ServerMetrics.LABELED:
        assert getattr(merged, name) == getattr(union, name), name
    assert merged.wait_percentiles() == union.wait_percentiles()
    assert merged.wait_quantiles() == union.wait_quantiles()
    assert merged.mean_occupancy() == union.mean_occupancy()
    assert merged.snapshot() == union.snapshot()


def test_merge_disjoint_bins_equals_union():
    """Shards that saw non-overlapping wait values merge exactly."""
    a, b = ServerMetrics(), ServerMetrics()
    _observe(a, waits=[1, 1, 2], occupancies=[4, 4])
    _observe(b, waits=[7, 9, 9, 9], occupancies=[16])
    merged = ServerMetrics.merge([a, b])
    assert set(merged.wait_histogram) == {1, 2, 7, 9}
    _assert_equivalent(merged, _union([a, b]))


def test_merge_overlapping_bins_equals_union():
    """Shared bin values sum counts rather than clobbering them."""
    a, b, c = ServerMetrics(), ServerMetrics(), ServerMetrics()
    _observe(a, waits=[1, 2, 2, 3], occupancies=[8, 8])
    _observe(b, waits=[2, 3, 3, 4], occupancies=[8, 16])
    _observe(c, waits=[3], occupancies=[0, 16])
    merged = ServerMetrics.merge([a, b, c])
    assert merged.wait_histogram == {1: 1, 2: 3, 3: 4, 4: 1}
    _assert_equivalent(merged, _union([a, b, c]))


def test_merge_random_shards_equals_union():
    """The property, fuzzed: random shard splits of one event stream."""
    gen = np.random.default_rng(11)
    parts = []
    for _ in range(5):
        part = ServerMetrics()
        _observe(
            part,
            waits=gen.integers(0, 12, size=int(gen.integers(0, 40))),
            occupancies=gen.integers(0, 17, size=int(gen.integers(1, 20))),
        )
        part.admission_rejects = int(gen.integers(0, 5))
        part.state_bytes_copied = int(gen.integers(0, 1 << 20))
        parts.append(part)
    _assert_equivalent(ServerMetrics.merge(parts), _union(parts))


def test_merge_tenant_labels_sum_keywise():
    """Per-tenant counts aggregate across shards like any histogram."""
    a, b = ServerMetrics(), ServerMetrics()
    _observe(a, waits=[], sessions=["t00-copy-0", "t00-copy-1", "t01-recall-2"])
    _observe(b, waits=[], sessions=["t00-copy-3", "t02-copy-4"])
    merged = ServerMetrics.merge([a, b])
    assert merged.tenant_completed == {"t00": 3, "t01": 1, "t02": 1}
    assert tenant_of("t03-copy-7") == "t03"
    # Sessions without a tenant prefix fall back to the whole id.
    assert tenant_of("solo") == "solo"


def test_wait_quantiles_exact_nearest_rank():
    """p50/p95/p99 from the histogram match nearest-rank on raw data."""
    metrics = ServerMetrics()
    waits = [0] * 50 + [1] * 30 + [2] * 15 + [5] * 4 + [40] * 1
    _observe(metrics, waits=waits)
    ordered = sorted(waits)
    for q in (0.50, 0.95, 0.99, 1.0):
        rank = max(1, int(np.ceil(q * len(ordered))))
        assert metrics.wait_quantile(q) == float(ordered[rank - 1]), q
    p50, p95 = metrics.wait_percentiles()
    assert (p50, p95) == (0.0, 2.0)
    assert metrics.wait_quantile(0.99) == 5.0
    quantiles = metrics.wait_quantiles()
    assert quantiles == {
        "p50_wait_ticks": 0.0, "p95_wait_ticks": 2.0, "p99_wait_ticks": 5.0,
    }


def test_configurable_quantiles_surface_in_snapshot():
    metrics = ServerMetrics(quantiles=(0.5, 0.999))
    _observe(metrics, waits=list(range(1000)))
    snap = metrics.snapshot()
    # Nearest-rank over 0..999: rank ceil(q * 1000), 1-based.
    assert snap["p50_wait_ticks"] == 499.0
    assert snap["p99.9_wait_ticks"] == 998.0
    assert "p95_wait_ticks" not in snap
    with pytest.raises(ValueError):
        ServerMetrics(quantiles=(0.5, 1.5))
    with pytest.raises(ValueError):
        ServerMetrics(quantiles=(0.0,))


def test_empty_metrics_quantiles_are_none():
    metrics = ServerMetrics()
    assert metrics.wait_quantile(0.99) is None
    assert metrics.wait_percentiles() == (None, None)
    assert metrics.mean_occupancy() is None


def test_state_roundtrip_with_tenants_is_exact():
    """to_state/from_state (the worker RPC form) loses nothing."""
    metrics = ServerMetrics()
    _observe(
        metrics,
        waits=[0, 0, 1, 3, 3, 3, 9],
        occupancies=[0, 4, 16, 16],
        sessions=["t00-copy-0", "t01-recall-1", "t00-copy-2"],
    )
    metrics.admission_rejects = 3
    metrics.state_bytes_copied = 4096
    clone = ServerMetrics.from_state(metrics.to_state())
    _assert_equivalent(clone, metrics)
    # And the RPC form itself is JSON-able (the wire requirement).
    json.dumps(metrics.to_state())


def test_registry_export_validates_and_carries_labels():
    metrics = ServerMetrics()
    _observe(
        metrics,
        waits=[0, 1, 1, 2],
        occupancies=[4, 4],
        sessions=["t00-copy-0", "t01-copy-1"],
    )
    phase_stats = {
        "controller": {"seconds": 0.25, "bytes": 1024, "count": 4},
        "read": {"seconds": 0.5, "bytes": 2048, "count": 4},
    }
    registry = metrics.to_registry(
        labels={"shard": "3"}, phase_stats=phase_stats
    )
    data = json.loads(registry.to_json_text())
    problems = validate_metrics_json(data)
    assert problems == [], "\n".join(problems)
    text = registry.to_prometheus_text()
    assert 'serve_requests_completed{shard="3"} 4' in text
    assert 'serve_tenant_requests_completed{shard="3",tenant="t00"} 1' in text
    assert 'engine_phase_seconds{phase="controller",shard="3"} 0.25' in text
    # Quantile gauges ride the same labels.
    assert 'serve_wait_ticks_quantile{quantile="0.5",shard="3"}' in text
    # Histogram series render cumulative buckets plus sum/count.
    assert 'serve_wait_ticks_bucket{shard="3",le="+Inf"} 4' in text
    assert 'serve_wait_ticks_count{shard="3"} 4' in text
