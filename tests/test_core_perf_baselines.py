"""Performance model, baselines, and efficiency metrics."""

import numpy as np
import pytest

from repro.core.baselines import (
    BASELINES,
    CPU_SECONDS_PER_TEST,
    FARM,
    GPU_SECONDS_PER_TEST,
    MANNA,
)
from repro.core.config import HiMAConfig
from repro.core.metrics import EfficiencyMetrics, compare_designs
from repro.core.perf_model import HiMAPerformanceModel
from repro.dnc.instrumentation import KernelCategory
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def models():
    """Perf models for the full feature ladder (paper-scale config)."""
    return {
        "baseline": HiMAPerformanceModel(HiMAConfig.baseline()),
        "two_stage": HiMAPerformanceModel(
            HiMAConfig.baseline().with_features(two_stage_sort=True)
        ),
        "noc": HiMAPerformanceModel(
            HiMAConfig.baseline().with_features(two_stage_sort=True, noc="hima")
        ),
        "dnc": HiMAPerformanceModel(HiMAConfig.hima_dnc()),
        "dncd": HiMAPerformanceModel(HiMAConfig.hima_dncd()),
    }


class TestPerformanceLadder:
    def test_each_feature_speeds_up(self, models):
        times = [
            models[k].inference_time_s()
            for k in ("baseline", "two_stage", "noc", "dnc", "dncd")
        ]
        assert times == sorted(times, reverse=True)

    def test_dncd_speedup_in_paper_ballpark(self, models):
        speedup = models["dncd"].speedup_over(models["baseline"])
        assert 5.0 < speedup < 15.0  # paper: 8.29x

    def test_two_stage_sort_modest_gain(self, models):
        gain = models["two_stage"].speedup_over(models["baseline"])
        assert 1.05 < gain < 2.0  # paper: 1.12x

    def test_hist_kernels_dominate_dnc_runtime(self, models):
        fractions = models["dnc"].category_fractions()
        hist = (
            fractions[KernelCategory.HIST_WRITE_WEIGHTING]
            + fractions[KernelCategory.HIST_READ_WEIGHTING]
        )
        assert hist > 0.5  # paper: 57%

    def test_dncd_cuts_hist_read_cycles(self, models):
        dnc = models["dnc"].category_cycles()
        dncd = models["dncd"].category_cycles()
        reduction = 1 - (
            dncd[KernelCategory.HIST_READ_WEIGHTING]
            / dnc[KernelCategory.HIST_READ_WEIGHTING]
        )
        assert reduction > 0.75  # paper: 89%

    def test_category_fractions_sum_to_one(self, models):
        for model in models.values():
            assert sum(model.category_fractions().values()) == pytest.approx(1.0)

    def test_kernel_cycles_structure(self, models):
        cycles = models["dnc"].kernel_cycles()
        assert "usage_sort" in cycles and "lstm" in cycles
        for kernel in cycles.values():
            assert kernel.compute >= 0 and kernel.comm >= 0
            assert kernel.total == kernel.compute + kernel.comm

    def test_two_stage_sort_cycles_in_model(self, models):
        # Nt=16, N=1024: local MDSA 66 + PMS merge 75 = 141 cycles.
        assert models["dnc"].kernel_cycles()["usage_sort"].compute == 141

    def test_inference_time_units(self, models):
        model = models["dnc"]
        assert model.inference_time_us() == pytest.approx(
            model.inference_time_s() * 1e6
        )
        assert model.inference_cycles() == pytest.approx(
            model.timestep_cycles() * 8
        )

    def test_activity_counts_positive(self, models):
        activity = models["dnc"].activity()
        assert activity.pt_ops > 0
        assert activity.mem_accesses > 0
        assert activity.noc_hop_words > 0
        dncd_activity = models["dncd"].activity()
        assert dncd_activity.noc_hop_words < activity.noc_hop_words

    def test_kernel_activity_keys_match_cycles(self, models):
        model = models["dnc"]
        assert set(model.kernel_activity()) == set(model.kernel_cycles())


class TestNoCScalabilityShape:
    def test_htree_saturates_hima_scales(self):
        def speedup(noc, nt):
            t1 = HiMAPerformanceModel(
                HiMAConfig(num_tiles=1, noc=noc)
            ).inference_time_s()
            tn = HiMAPerformanceModel(
                HiMAConfig(num_tiles=nt, noc=noc)
            ).inference_time_s()
            return t1 / tn

        assert speedup("hima", 32) > speedup("htree", 32)

    def test_dncd_scales_better_than_dnc(self):
        def speedup(distributed, nt):
            t1 = HiMAPerformanceModel(
                HiMAConfig(num_tiles=1, distributed=distributed)
            ).inference_time_s()
            tn = HiMAPerformanceModel(
                HiMAConfig(num_tiles=nt, distributed=distributed)
            ).inference_time_s()
            return t1 / tn

        assert speedup(True, 16) > speedup(False, 16)


class TestBaselines:
    def test_registry(self):
        assert set(BASELINES) == {"farm", "manna"}

    def test_farm_derivation_chain(self):
        # HiMA-baseline is 3.16x Farm's area (Section 7.4).
        assert FARM.area_mm2_normalized == pytest.approx(79.14 / 3.16)
        assert FARM.seconds_per_test == pytest.approx(
            GPU_SECONDS_PER_TEST / 68.5
        )
        assert FARM.max_memory_rows == 256

    def test_manna_derivation_chain(self):
        assert MANNA.speedup_vs_gpu == pytest.approx(437.0 / 6.47)
        assert MANNA.area_mm2_normalized == pytest.approx(
            11.0 * FARM.area_mm2_normalized
        )
        assert MANNA.power_w == pytest.approx(32.0 * FARM.power_w)
        assert not MANNA.supports_dnc

    def test_cpu_gpu_ratio(self):
        assert CPU_SECONDS_PER_TEST / GPU_SECONDS_PER_TEST == pytest.approx(
            2.12, abs=0.01
        )


class TestMetrics:
    def test_efficiency_definitions(self):
        m = EfficiencyMetrics("x", seconds_per_test=1e-5, area_mm2=80.0,
                              power_w=16.0)
        assert m.throughput == pytest.approx(1e5)
        assert m.area_efficiency == pytest.approx(1e5 / 80.0)
        assert m.energy_efficiency == pytest.approx(1e5 / 16.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            EfficiencyMetrics("x", 0.0, 1.0, 1.0)

    def test_compare_designs_ratios(self):
        ref = EfficiencyMetrics("ref", 1e-3, 100.0, 10.0)
        fast = EfficiencyMetrics("fast", 1e-4, 50.0, 10.0)
        rows = compare_designs([fast], ref)
        assert rows[0]["speedup"] == pytest.approx(10.0)
        assert rows[0]["area_ratio"] == pytest.approx(0.5)
        assert rows[0]["area_eff_ratio"] == pytest.approx(20.0)
        assert rows[0]["energy_eff_ratio"] == pytest.approx(10.0)

    def test_paper_ratio_consistency(self):
        """The published comparison chain must be self-consistent:
        HiMA-DNC at 437x GPU with 6.47x MANNA speed and 22.8x area-eff
        implies HiMA-DNC area ~= 3.2x Farm (the paper's 3.16x claim)."""
        hima_area_vs_farm = (437.0 / 67.5) / 22.8 * 11.0
        assert hima_area_vs_farm == pytest.approx(3.16, abs=0.1)
