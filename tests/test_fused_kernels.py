"""Fused erase/write/linkage kernel: bitwise contract, mask, workspace.

The fused kernel's whole value proposition rests on being *bitwise*
identical to the three-pass reference sequence — not merely within
tolerance — so every comparison here uses exact equality.
"""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.core.kernels import FusedWriteWorkspace, fused_erase_write_linkage
from repro.dnc import numpy_ref as K


def random_write_inputs(rng, lead, n=24, w=8, dtype="float64"):
    """Previous state + write operands with the given leading shape."""
    def draw(*shape):
        return rng.standard_normal(lead + shape).astype(dtype)

    memory = draw(n, w)
    linkage = draw(n, n)
    precedence = rng.random(lead + (n,)).astype(dtype)
    write_w = rng.random(lead + (n,)).astype(dtype)
    write_w /= write_w.sum(axis=-1, keepdims=True)
    erase = rng.random(lead + (w,)).astype(dtype)
    value = draw(w)
    return memory, linkage, precedence, write_w, erase, value


def three_pass(memory, linkage, precedence, write_w, erase, value):
    new_memory = K.erase_write(memory, write_w, erase, value)
    new_linkage = K.linkage_update(linkage, write_w, precedence)
    new_precedence = K.precedence_update(precedence, write_w)
    return new_memory, new_linkage, new_precedence


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("lead", [(), (3,), (2, 4)], ids=["unbatched", "B3", "B2xNt4"])
def test_fused_bitwise_equals_three_pass(dtype, lead, rng):
    inputs = random_write_inputs(rng, lead, dtype=dtype)
    expected = three_pass(*inputs)
    fused = fused_erase_write_linkage(*inputs)
    for got, want in zip(fused, expected):
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


def test_fused_does_not_mutate_inputs(rng):
    inputs = random_write_inputs(rng, (2,))
    copies = [a.copy() for a in inputs]
    fused_erase_write_linkage(*inputs)
    for a, c in zip(inputs, copies):
        assert np.array_equal(a, c)


class TestMaskedVariant:
    def test_active_subset_matches_subset_compute(self, rng):
        inputs = random_write_inputs(rng, (5,))
        idx = np.array([3, 0])
        got = fused_erase_write_linkage(*inputs, active=idx)
        sub = fused_erase_write_linkage(*(a[idx] for a in inputs))
        for out, full_in, sub_out in zip(got, inputs[:3], sub):
            assert np.array_equal(out[idx], sub_out)
            # Inactive slots pass through bitwise.
            inactive = [i for i in range(5) if i not in idx]
            assert np.array_equal(out[inactive], full_in[inactive])

    def test_boolean_mask_accepted(self, rng):
        inputs = random_write_inputs(rng, (4,))
        mask = np.array([True, False, True, False])
        via_mask = fused_erase_write_linkage(*inputs, active=mask)
        via_idx = fused_erase_write_linkage(
            *inputs, active=np.flatnonzero(mask)
        )
        for a, b in zip(via_mask, via_idx):
            assert np.array_equal(a, b)

    def test_empty_active_passes_everything_through(self, rng):
        inputs = random_write_inputs(rng, (3,))
        got = fused_erase_write_linkage(*inputs, active=np.array([], dtype=int))
        for out, full_in in zip(got, inputs[:3]):
            assert np.array_equal(out, full_in)

    def test_unbatched_active_rejected(self, rng):
        inputs = random_write_inputs(rng, ())
        with pytest.raises(ValueError):
            fused_erase_write_linkage(*inputs, active=np.array([0]))


class TestWorkspace:
    def test_workspace_results_bitwise(self, rng):
        inputs = random_write_inputs(rng, (3,))
        plain = fused_erase_write_linkage(*inputs)
        ws = FusedWriteWorkspace()
        via_ws = fused_erase_write_linkage(*inputs, workspace=ws)
        for a, b in zip(plain, via_ws):
            assert np.array_equal(a, b)

    def test_workspace_buffers_are_reused(self, rng):
        ws = FusedWriteWorkspace()
        inputs = random_write_inputs(rng, (3,))
        first = fused_erase_write_linkage(*inputs, workspace=ws)
        second = fused_erase_write_linkage(*inputs, workspace=ws)
        for a, b in zip(first, second):
            assert a is b  # same resident buffer, overwritten in place

    def test_recycled_arrays_become_outputs(self, rng):
        ws = FusedWriteWorkspace()
        inputs = random_write_inputs(rng, (2,))
        donated = [np.empty_like(a) for a in inputs[:3]]
        ws.recycle(*donated)
        outs = fused_erase_write_linkage(*inputs, workspace=ws)
        for out, buf in zip(outs, donated):
            assert out is buf

    def test_aliasing_input_as_output_raises(self, rng):
        ws = FusedWriteWorkspace()
        memory, linkage, precedence, write_w, erase, value = (
            random_write_inputs(rng, (2,))
        )
        ws.recycle(memory, linkage, precedence)
        with pytest.raises(ValueError):
            fused_erase_write_linkage(
                memory, linkage, precedence, write_w, erase, value,
                workspace=ws,
            )

    def test_same_shape_memory_and_linkage_do_not_collide(self, rng):
        # N == W makes memory and linkage the same shape; the workspace
        # must still hand out distinct buffers per role.
        n = 6
        memory = rng.standard_normal((2, n, n))
        linkage = rng.standard_normal((2, n, n))
        precedence = rng.random((2, n))
        write_w = rng.random((2, n))
        erase = rng.random((2, n))
        value = rng.standard_normal((2, n))
        ws = FusedWriteWorkspace()
        out_m, out_l, _ = fused_erase_write_linkage(
            memory, linkage, precedence, write_w, erase, value, workspace=ws
        )
        assert out_m is not out_l
        expected = three_pass(memory, linkage, precedence, write_w, erase, value)
        assert np.array_equal(out_m, expected[0])
        assert np.array_equal(out_l, expected[1])


class TestEngineIntegration:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("distributed", [False, True], ids=["dnc", "dncd"])
    def test_engine_fused_vs_three_pass_bitwise(self, dtype, distributed, rng):
        base = dict(
            memory_size=32, word_size=16, num_reads=2, num_tiles=4,
            hidden_size=32, two_stage_sort=False,
            distributed=distributed, dtype=dtype,
        )
        fused_engine = TiledEngine(HiMAConfig(**base), rng=0)
        legacy_engine = TiledEngine(
            HiMAConfig(**base, fused_write_linkage=False), rng=0
        )
        xs = rng.standard_normal((5, 16)).astype(dtype)
        assert np.array_equal(fused_engine.run(xs), legacy_engine.run(xs))
        xb = rng.standard_normal((3, 4, 16)).astype(dtype)
        assert np.array_equal(
            fused_engine.run_batch(xb), legacy_engine.run_batch(xb)
        )

    def test_engine_fused_passes_reference_verification(self):
        engine = TiledEngine(HiMAConfig(
            memory_size=32, word_size=16, num_reads=2, num_tiles=4,
            hidden_size=32, two_stage_sort=False,
        ), rng=0)
        assert engine.config.fused_write_linkage  # the default
        assert engine.verify_against_reference(steps=3) <= 1e-9
        assert engine.verify_against_reference(steps=3, batch_size=3) <= 1e-10
