"""Serving correctness: micro-batched == solo unbatched, traffic convention.

The acceptance bar for the serving layer: stepping K sessions through
the micro-batcher must be numerically identical (<= 1e-10, float64) to
stepping each session alone through the unbatched engine — including
when sessions join and leave mid-stream, so batch membership is ragged
across ticks.  TrafficLog accounting must keep PR 1's batched-words
convention (per-tick message pattern of one step, words scaled by that
tick's occupancy).
"""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.errors import ConfigError
from repro.serve import (
    EngineShard,
    SessionScript,
    SessionServer,
    generate_scripts,
    run_open_loop,
)


def serve_config(**features):
    base = dict(
        memory_size=64, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, two_stage_sort=False,
    )
    base.update(features)
    return HiMAConfig(**base)


def make_engine(**features):
    return TiledEngine(serve_config(**features), rng=0)


def scripted(session_id, arrival, inputs):
    return SessionScript(
        session_id=session_id, arrival_tick=arrival, kind="copy",
        inputs=np.asarray(inputs),
    )


class TestMicrobatchNumericalIdentity:
    def test_concurrent_sessions_match_solo_runs(self, rng):
        engine = make_engine()
        scripts = [
            scripted(f"s{i}", 0, rng.standard_normal((6, 16)))
            for i in range(5)
        ]
        server = SessionServer(engine, max_batch=4, max_wait_ticks=1)
        results = run_open_loop(server, scripts)
        for script in scripts:
            served = np.stack([r.y for r in results[script.session_id]])
            solo = engine.run(script.inputs)
            assert np.max(np.abs(served - solo)) <= 1e-10, script.session_id

    def test_ragged_join_and_leave_matches_solo_runs(self, rng):
        """Sessions with different arrival ticks and lengths: membership
        changes on nearly every tick, and each trajectory still matches
        the session running alone."""
        engine = make_engine()
        lengths = [3, 9, 5, 2, 7, 4]
        arrivals = [0, 0, 2, 3, 5, 9]
        scripts = [
            scripted(f"s{i}", arrivals[i], rng.standard_normal((lengths[i], 16)))
            for i in range(len(lengths))
        ]
        server = SessionServer(engine, max_batch=4, max_wait_ticks=0)
        results = run_open_loop(server, scripts)
        occupancies = [
            occ for occ, n in server.metrics.occupancy_histogram.items()
            if occ > 0 for _ in range(n)
        ]
        assert len(set(occupancies)) > 1  # membership truly ragged
        for script in scripts:
            served = np.stack([r.y for r in results[script.session_id]])
            solo = engine.run(script.inputs)
            assert np.max(np.abs(served - solo)) <= 1e-10, script.session_id

    @pytest.mark.parametrize("features", [
        pytest.param(dict(two_stage_sort=True), id="two-stage-sort"),
        pytest.param(dict(skim_fraction=0.25), id="skim"),
        pytest.param(dict(distributed=True), id="dncd"),
    ])
    def test_engine_feature_paths_match_solo_runs(self, features, rng):
        engine = make_engine(**features)
        scripts = [
            scripted(f"s{i}", i % 2, rng.standard_normal((4 + i, 16)))
            for i in range(3)
        ]
        server = SessionServer(engine, max_batch=3, max_wait_ticks=1)
        results = run_open_loop(server, scripts)
        for script in scripts:
            served = np.stack([r.y for r in results[script.session_id]])
            solo = engine.run(script.inputs)
            assert np.max(np.abs(served - solo)) <= 1e-10, script.session_id

    def test_generated_poisson_load_matches_solo_runs(self):
        engine = make_engine()
        scripts = generate_scripts(
            input_size=16, num_sessions=8, mean_session_len=5.0,
            mean_interarrival_ticks=1.0, rng=3,
        )
        server = SessionServer(engine, max_batch=4, max_wait_ticks=2)
        results = run_open_loop(server, scripts)
        for script in scripts:
            served = np.stack([r.y for r in results[script.session_id]])
            solo = engine.run(script.inputs)
            assert np.max(np.abs(served - solo)) <= 1e-10, script.session_id


class TestServeTrafficConvention:
    def test_full_batch_tick_scales_words_by_occupancy(self, rng):
        """One dispatched tick with K sessions logs the single-step
        message pattern with every event's words scaled by K."""
        solo_engine = make_engine()
        solo_engine.traffic.clear()
        solo_engine.step(rng.standard_normal(16), solo_engine.initial_state())
        solo_events = len(solo_engine.traffic.events)
        solo_words = solo_engine.traffic.total_words()

        engine = make_engine()
        server = SessionServer(engine, max_batch=4, max_wait_ticks=0)
        for i in range(3):
            sid = server.open_session(f"s{i}")
            server.submit(sid, rng.standard_normal(16))
        engine.traffic.clear()
        completed = server.run_tick()
        assert len(completed) == 3
        assert len(engine.traffic.events) == solo_events
        assert engine.traffic.total_words() == 3 * solo_words

    def test_ragged_ticks_words_track_occupancy(self, rng):
        engine = make_engine()
        solo_engine = make_engine()
        solo_engine.traffic.clear()
        solo_engine.step(rng.standard_normal(16), solo_engine.initial_state())
        solo_words = solo_engine.traffic.total_words()

        server = SessionServer(engine, max_batch=8, max_wait_ticks=0)
        s0 = server.open_session()
        s1 = server.open_session()
        server.submit(s0, rng.standard_normal(16))
        server.submit(s1, rng.standard_normal(16))
        engine.traffic.clear()
        server.run_tick()  # occupancy 2
        assert engine.traffic.total_words() == 2 * solo_words
        engine.traffic.clear()
        server.submit(s0, rng.standard_normal(16))  # s1 left: occupancy 1
        server.run_tick()
        assert engine.traffic.total_words() == solo_words


class TestSchedulingPolicy:
    def test_lone_request_dispatches_within_wait_bound(self, rng):
        engine = make_engine()
        server = SessionServer(engine, max_batch=8, max_wait_ticks=3)
        sid = server.open_session()
        request = server.submit(sid, rng.standard_normal(16))
        for _ in range(3):
            server.run_tick()
            assert not request.done  # still accumulating companions
        server.run_tick()  # tick - submitted == max_wait_ticks
        assert request.done
        assert request.wait_ticks == 3

    def test_full_batch_dispatches_immediately(self, rng):
        engine = make_engine()
        server = SessionServer(engine, max_batch=2, max_wait_ticks=100)
        for i in range(2):
            sid = server.open_session()
            server.submit(sid, rng.standard_normal(16))
        completed = server.run_tick()
        assert len(completed) == 2

    def test_backpressure_rejects_when_queue_full(self, rng):
        engine = make_engine()
        server = SessionServer(engine, max_batch=2, queue_capacity=2)
        sid = server.open_session()
        assert server.submit(sid, rng.standard_normal(16)) is not None
        assert server.submit(sid, rng.standard_normal(16)) is not None
        rejected = server.submit(sid, rng.standard_normal(16))
        assert rejected is None
        assert server.metrics.admission_rejects == 1
        # Draining frees queue space again.
        server.drain()
        assert server.submit(sid, rng.standard_normal(16)) is not None

    def test_submit_rejects_malformed_input(self, rng):
        """A bad input fails at the offending client's submit, never
        inside run_tick where it would poison a whole batch."""
        engine = make_engine()
        server = SessionServer(engine, max_batch=2)
        sid = server.open_session()
        with pytest.raises(ConfigError):
            server.submit(sid, rng.standard_normal(17))
        with pytest.raises(ConfigError):
            server.submit(sid, rng.standard_normal((2, 16)))
        assert len(server.batcher) == 0

    def test_submitted_buffer_reuse_is_safe(self, rng):
        """Clients may reuse one input buffer per step: each queued
        request keeps the values it was submitted with."""
        engine = make_engine()
        server = SessionServer(engine, max_batch=8, max_wait_ticks=5)
        sid = server.open_session()
        inputs = rng.standard_normal((3, 16))
        buf = np.empty(16)
        requests = []
        for t in range(3):
            buf[:] = inputs[t]
            requests.append(server.submit(sid, buf))
        buf[:] = 0.0
        server.drain()
        served = np.stack([r.y for r in requests])
        solo = engine.run(inputs)
        assert np.max(np.abs(served - solo)) <= 1e-10

    def test_results_in_one_tick_do_not_alias(self, rng):
        """Each completed request owns its output — results from the same
        tick must not be views of one shared batched buffer."""
        engine = make_engine()
        server = SessionServer(engine, max_batch=2, max_wait_ticks=0)
        requests = []
        for _ in range(2):
            sid = server.open_session()
            requests.append(server.submit(sid, rng.standard_normal(16)))
        server.run_tick()
        ra, rb = requests
        assert not np.shares_memory(ra.y, rb.y)
        before = rb.y.copy()
        ra.y[...] = 0.0
        assert np.array_equal(rb.y, before)

    def test_auto_session_ids_skip_caller_claimed_names(self):
        engine = make_engine()
        server = SessionServer(engine, max_batch=2)
        assert server.open_session("session-0") == "session-0"
        assert server.open_session() == "session-1"
        assert server.open_session("session-2") == "session-2"
        assert server.open_session() == "session-3"

    def test_backpressure_sheds_whole_streams_in_open_loop(self, rng):
        """A refused mid-stream submit drops the session's remaining
        steps — never a step out of the middle, which would silently put
        the session on a different trajectory than its script."""
        engine = make_engine()
        scripts = [
            scripted(f"s{i}", 0, rng.standard_normal((6, 16)))
            for i in range(3)
        ]
        server = SessionServer(
            engine, max_batch=2, max_wait_ticks=0, queue_capacity=8
        )
        results = run_open_loop(server, scripts)
        assert any(len(v) < 6 for v in results.values())  # something shed
        for script in scripts:
            requests = results[script.session_id]
            if not requests:
                continue
            served = np.stack([r.y for r in requests])
            solo = engine.run(script.inputs[: len(requests)])
            assert np.max(np.abs(served - solo)) <= 1e-10, script.session_id

    def test_closed_session_fails_queued_requests(self, rng):
        engine = make_engine()
        server = SessionServer(engine, max_batch=4, max_wait_ticks=5)
        sid = server.open_session()
        request = server.submit(sid, rng.standard_normal(16))
        server.close_session(sid)
        assert request.done and request.error is not None
        assert server.metrics.requests_failed == 1
        with pytest.raises(ConfigError):
            server.submit(sid, rng.standard_normal(16))


class TestShardExtraction:
    """SessionServer is the 1-shard special case of EngineShard — the
    extraction that makes the sharded cluster possible must leave the
    single-server surface intact."""

    def test_session_server_is_an_engine_shard(self):
        server = SessionServer(make_engine())
        assert isinstance(server, EngineShard)
        assert server.shard_id == 0
        assert server.load == 0 and server.queue_depth == 0

    def test_bare_engine_shard_serves_like_the_server(self, rng):
        """A raw EngineShard (as the cluster builds them) serves the
        identical trajectory the SessionServer front door does."""
        scripts = [
            scripted(f"s{i}", 0, rng.standard_normal((4, 16)))
            for i in range(3)
        ]
        shard = EngineShard(make_engine(), shard_id=7, max_batch=4,
                            max_wait_ticks=1)
        shard_results = run_open_loop(shard, scripts)
        server = SessionServer(make_engine(), max_batch=4, max_wait_ticks=1)
        server_results = run_open_loop(server, scripts)
        for script in scripts:
            a = np.stack([r.y for r in shard_results[script.session_id]])
            b = np.stack([r.y for r in server_results[script.session_id]])
            assert np.array_equal(a, b), script.session_id

    def test_checkpoint_bytes_roundtrip_on_server(self, rng):
        """checkpoint_session/restore_session: the byte-level checkpoint
        path works on the single server too (same shard surface)."""
        server = SessionServer(make_engine(), max_batch=2, max_wait_ticks=0)
        sid = server.open_session()
        xs = rng.standard_normal((3, 16))
        for x in xs[:2]:
            server.submit(sid, x)
            server.run_tick()
        payload = server.checkpoint_session(sid)
        assert isinstance(payload, bytes)
        server.submit(sid, xs[2])
        server.run_tick()  # diverge...
        server.restore_session(sid, payload)  # ...and rewind
        request = server.submit(sid, xs[2])
        server.run_tick()
        solo = server.engine.run(xs)
        assert np.max(np.abs(request.y - solo[2])) <= 1e-10
