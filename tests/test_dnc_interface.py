"""Interface-vector codec tests."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.dnc.interface import InterfaceSpec
from repro.errors import ConfigError, ShapeError


class TestInterfaceSpec:
    def test_size_formula(self):
        spec = InterfaceSpec(word_size=64, num_reads=4)
        assert spec.size == 64 * 4 + 3 * 64 + 5 * 4 + 3

    def test_size_small(self):
        assert InterfaceSpec(word_size=4, num_reads=1).size == 4 + 12 + 5 + 3

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            InterfaceSpec(word_size=0, num_reads=1)
        with pytest.raises(ConfigError):
            InterfaceSpec(word_size=4, num_reads=0)

    def test_wrong_length_rejected(self):
        spec = InterfaceSpec(4, 2)
        with pytest.raises(ShapeError):
            spec.parse(Tensor(np.zeros(spec.size + 1)))


class TestParse:
    @pytest.fixture
    def parsed(self, rng):
        spec = InterfaceSpec(word_size=6, num_reads=3)
        return spec.parse(Tensor(rng.standard_normal(spec.size))), spec

    def test_shapes(self, parsed):
        interface, spec = parsed
        assert interface.read_keys.shape == (3, 6)
        assert interface.read_strengths.shape == (3,)
        assert interface.write_key.shape == (6,)
        assert interface.write_strength.shape == ()
        assert interface.erase.shape == (6,)
        assert interface.write_vector.shape == (6,)
        assert interface.free_gates.shape == (3,)
        assert interface.allocation_gate.shape == ()
        assert interface.write_gate.shape == ()
        assert interface.read_modes.shape == (3, 3)

    def test_squashing_ranges(self, parsed):
        interface, _ = parsed
        assert np.all(interface.read_strengths.data >= 1.0)
        assert float(interface.write_strength.data) >= 1.0
        for gated in (interface.erase, interface.free_gates):
            assert np.all((gated.data >= 0) & (gated.data <= 1))
        assert 0 <= float(interface.allocation_gate.data) <= 1
        assert 0 <= float(interface.write_gate.data) <= 1

    def test_read_modes_simplex(self, parsed):
        interface, _ = parsed
        assert np.allclose(interface.read_modes.data.sum(axis=-1), 1.0)
        assert np.all(interface.read_modes.data >= 0)

    def test_batched_parse(self, rng):
        spec = InterfaceSpec(word_size=4, num_reads=2)
        flat = Tensor(rng.standard_normal((5, spec.size)))
        interface = spec.parse(flat)
        assert interface.read_keys.shape == (5, 2, 4)
        assert interface.write_strength.shape == (5,)
        assert interface.read_modes.shape == (5, 2, 3)

    def test_deterministic_layout(self, rng):
        # Perturbing only the write-key segment must not change read keys.
        spec = InterfaceSpec(word_size=4, num_reads=2)
        flat = rng.standard_normal(spec.size)
        a = spec.parse(Tensor(flat.copy()))
        flat2 = flat.copy()
        offset = 2 * 4 + 2  # read keys + read strengths
        flat2[offset : offset + 4] += 1.0
        b = spec.parse(Tensor(flat2))
        assert np.allclose(a.read_keys.data, b.read_keys.data)
        assert not np.allclose(a.write_key.data, b.write_key.data)

    def test_gradient_flows_through_parse(self, rng):
        spec = InterfaceSpec(word_size=4, num_reads=2)
        flat = Tensor(rng.standard_normal(spec.size), requires_grad=True)
        interface = spec.parse(flat)
        from repro.autodiff import ops

        loss = ops.sum(interface.read_modes) + ops.sum(interface.erase)
        loss.backward()
        assert flat.grad is not None
