"""Instrumented numpy reference DNC: agreement + instrumentation."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.dnc import DNC, DNCConfig, NumpyDNC, NumpyDNCConfig
from repro.dnc.instrumentation import (
    KERNEL_CATEGORIES,
    KernelCategory,
    KernelRecorder,
)
from repro.errors import ConfigError


@pytest.fixture
def pair():
    """Matched (autodiff DNC, numpy reference) with shared weights."""
    cfg = DNCConfig(
        input_size=5, output_size=3, memory_size=8, word_size=4,
        num_reads=2, hidden_size=12,
    )
    dnc = DNC(cfg, rng=0)
    ref = NumpyDNC(
        NumpyDNCConfig(
            input_size=5, output_size=3, memory_size=8, word_size=4,
            num_reads=2, hidden_size=12,
        ),
        rng=0,
    )
    ref.load_from_dnc(dnc)
    return dnc, ref


class TestAgreement:
    def test_outputs_match_autodiff_model(self, pair, rng):
        dnc, ref = pair
        xs = rng.standard_normal((6, 5))
        ys_autodiff, _ = dnc(Tensor(xs))
        ys_ref = ref.run(xs)
        assert np.allclose(ys_ref, ys_autodiff.data, atol=1e-9)

    def test_state_matches_after_steps(self, pair, rng):
        dnc, ref = pair
        xs = rng.standard_normal((4, 5))
        _, ad_state = dnc(Tensor(xs))
        state = ref.initial_state()
        for t in range(4):
            _, state = ref.step(xs[t], state)
        assert np.allclose(state.memory, ad_state.memory.memory.data, atol=1e-9)
        assert np.allclose(state.usage, ad_state.memory.usage.data, atol=1e-9)
        assert np.allclose(
            state.linkage, ad_state.memory.linkage.data, atol=1e-9
        )

    def test_load_rejects_mismatched_config(self, pair):
        dnc, _ = pair
        wrong = NumpyDNC(NumpyDNCConfig(memory_size=16, word_size=4,
                                        num_reads=2, hidden_size=12))
        with pytest.raises(ConfigError):
            wrong.load_from_dnc(dnc)


class TestInstrumentation:
    def test_all_kernels_recorded(self, rng):
        ref = NumpyDNC(
            NumpyDNCConfig(input_size=4, output_size=4, memory_size=16,
                           word_size=4, num_reads=2, hidden_size=8),
            rng=0,
        )
        ref.run(rng.standard_normal((2, 4)))
        for kernel in KERNEL_CATEGORIES:
            assert kernel in ref.recorder.stats, kernel

    def test_category_fractions_sum_to_one(self, rng):
        ref = NumpyDNC(
            NumpyDNCConfig(input_size=4, output_size=4, memory_size=16,
                           word_size=4, num_reads=2, hidden_size=8),
            rng=0,
        )
        ref.run(rng.standard_normal((2, 4)))
        fractions = ref.recorder.category_fractions("seconds")
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_access_counts_scale_with_memory_size(self):
        small = NumpyDNC(NumpyDNCConfig(input_size=4, output_size=4,
                                        memory_size=8, word_size=4,
                                        num_reads=1, hidden_size=8), rng=0)
        large = NumpyDNC(NumpyDNCConfig(input_size=4, output_size=4,
                                        memory_size=32, word_size=4,
                                        num_reads=1, hidden_size=8), rng=0)
        x = np.zeros(4)
        small.step(x, small.initial_state())
        large.step(x, large.initial_state())
        s = small.recorder.stats["linkage"].state_mem_accesses
        l = large.recorder.stats["linkage"].state_mem_accesses
        assert l == 16 * s  # O(N^2)

    def test_recorder_rejects_unknown_kernel(self):
        recorder = KernelRecorder()
        with pytest.raises(ConfigError):
            recorder.add("not_a_kernel", ops=1)

    def test_recorder_measure_times_block(self):
        recorder = KernelRecorder()
        with recorder.measure("usage", ops=10, state_mem=5):
            sum(range(1000))
        stats = recorder.stats["usage"]
        assert stats.calls == 1
        assert stats.ops == 10
        assert stats.state_mem_accesses == 5
        assert stats.seconds > 0

    def test_recorder_reset(self):
        recorder = KernelRecorder()
        recorder.add("usage", ops=5)
        recorder.reset()
        assert recorder.stats == {}

    def test_stats_merge(self):
        recorder = KernelRecorder()
        recorder.add("usage", ops=5, state_mem=2)
        recorder.add("usage", ops=7, state_mem=3)
        stats = recorder.stats["usage"]
        assert stats.calls == 2
        assert stats.ops == 12
        assert stats.state_mem_accesses == 5


class TestApproximateModes:
    def test_skimming_changes_outputs(self, rng):
        kwargs = dict(input_size=4, output_size=4, memory_size=16,
                      word_size=4, num_reads=1, hidden_size=8)
        exact = NumpyDNC(NumpyDNCConfig(**kwargs), rng=0)
        skim = NumpyDNC(NumpyDNCConfig(skim_fraction=0.5, **kwargs), rng=0)
        xs = rng.standard_normal((5, 4))
        out_exact = exact.run(xs)
        out_skim = skim.run(xs)
        assert out_exact.shape == out_skim.shape
        # Large skim rates perturb the allocation order, so the
        # trajectories measurably diverge (though possibly slowly).
        assert not np.array_equal(out_exact, out_skim)

    def test_approx_softmax_close_to_exact(self, rng):
        from repro.dnc.approx import SoftmaxApproximator

        kwargs = dict(input_size=4, output_size=4, memory_size=16,
                      word_size=4, num_reads=1, hidden_size=8)
        exact = NumpyDNC(NumpyDNCConfig(**kwargs), rng=0)
        approx = NumpyDNC(
            NumpyDNCConfig(softmax_approx=SoftmaxApproximator(), **kwargs),
            rng=0,
        )
        xs = rng.standard_normal((3, 4))
        assert np.max(np.abs(exact.run(xs) - approx.run(xs))) < 0.1
