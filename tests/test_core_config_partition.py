"""HiMAConfig and the submatrix partition model (Eqs. 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import HiMAConfig
from repro.core.partition import (
    Partition,
    content_weighting_traffic,
    factor_pairs,
    forward_backward_traffic,
    forward_backward_traffic_words,
    linkage_distribution_traffic,
    memory_read_traffic,
    optimal_external_partition,
    optimal_linkage_partition,
)
from repro.errors import ConfigError


class TestHiMAConfig:
    def test_defaults_are_paper_prototype(self):
        cfg = HiMAConfig()
        assert (cfg.memory_size, cfg.word_size, cfg.num_reads,
                cfg.num_tiles) == (1024, 64, 4, 16)
        assert cfg.clock_hz == 500e6

    def test_presets(self):
        base = HiMAConfig.baseline()
        assert base.noc == "htree"
        assert not base.two_stage_sort and not base.submatrix_partition
        dnc = HiMAConfig.hima_dnc()
        assert dnc.noc == "hima" and dnc.two_stage_sort
        dncd = HiMAConfig.hima_dncd(skim_fraction=0.2)
        assert dncd.distributed and dncd.skim_fraction == 0.2

    def test_local_rows(self):
        assert HiMAConfig().local_rows == 64

    def test_linkage_partition_modes(self):
        assert HiMAConfig().linkage_partition == (4, 4)
        assert HiMAConfig(submatrix_partition=False).linkage_partition == (16, 1)

    def test_effective_sort_length(self):
        assert HiMAConfig().effective_sort_length == 1024
        skim = HiMAConfig(skim_fraction=0.2)
        assert skim.effective_sort_length == 1024 - 204

    def test_validation(self):
        with pytest.raises(ConfigError):
            HiMAConfig(memory_size=100, num_tiles=16)  # not divisible
        with pytest.raises(ConfigError):
            HiMAConfig(num_tiles=12)  # not a power of two
        with pytest.raises(ConfigError):
            HiMAConfig(noc="torus")
        with pytest.raises(ConfigError):
            HiMAConfig(skim_fraction=2.0)

    def test_with_features_is_functional_update(self):
        cfg = HiMAConfig()
        updated = cfg.with_features(num_tiles=8)
        assert updated.num_tiles == 8
        assert cfg.num_tiles == 16


class TestFactorPairs:
    def test_sixteen(self):
        assert factor_pairs(16) == [(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)]

    def test_products_correct(self):
        for n in (4, 12, 48):
            for rows, cols in factor_pairs(n):
                assert rows * cols == n

    def test_partition_block_shape(self):
        p = Partition(4, 4)
        assert p.num_tiles == 16
        assert p.block_shape(1024, 1024) == (256, 256)
        with pytest.raises(ConfigError):
            p.block_shape(1001, 1024)


class TestEq1ContentWeighting:
    def test_row_wise_minimal(self):
        # Eq. (1): row-wise costs 2(Nt-1); column-wise costs 2N(Nt-1).
        assert content_weighting_traffic(1024, 16, 1) == 30
        assert content_weighting_traffic(1024, 1, 16) == 2 * 1024 * 15
        row = content_weighting_traffic(1024, 16, 1)
        for nt_h, nt_w in factor_pairs(16):
            assert content_weighting_traffic(1024, nt_h, nt_w) >= row


class TestEq2MemoryRead:
    def test_column_wise_quadratically_worse(self):
        row = memory_read_traffic(1024, 64, 16, 16, 1)
        col = memory_read_traffic(1024, 64, 16, 1, 16)
        assert col > 10 * row

    def test_row_wise_value(self):
        # Nt_w=1: W(Nt-1) psum transfers only.
        assert memory_read_traffic(1024, 64, 16, 16, 1) == 64 * 15

    def test_monotone_toward_column_wise_tail(self):
        values = [
            memory_read_traffic(1024, 64, 16, 16 // w, w)
            for w in (2, 4, 8, 16)
        ]
        assert values == sorted(values)


class TestEq3ForwardBackward:
    def test_interior_optimum_at_16_tiles(self):
        assert optimal_linkage_partition(1024, 16) == (4, 4)

    def test_extremes_suboptimal(self):
        square = forward_backward_traffic(16, 4, 4)
        assert forward_backward_traffic(16, 16, 1) > square
        assert forward_backward_traffic(16, 1, 16) > square

    def test_symmetry(self):
        assert forward_backward_traffic(16, 2, 8) == pytest.approx(
            forward_backward_traffic(16, 8, 2)
        )

    def test_sixty_four_tiles_optimum_square(self):
        assert optimal_linkage_partition(1024, 64) == (8, 8)

    def test_words_model_prefers_square_too(self):
        square = forward_backward_traffic_words(1024, 4, 16, 4, 4)
        row = forward_backward_traffic_words(1024, 4, 16, 16, 1)
        assert square < row

    def test_linkage_distribution_order_nt_n(self):
        # Table 1 claims O(Nt * N) traffic for the linkage kernel.
        small = linkage_distribution_traffic(1024, 16, 4, 4)
        double_n = linkage_distribution_traffic(2048, 16, 4, 4)
        assert double_n == pytest.approx(2 * small)


class TestOptimizers:
    def test_external_optimum_is_row_wise(self):
        # Row-wise exactly for moderate tile counts; at Nt=64 the paper's
        # own Eq. (2) admits Nt_w=2 ("Nt_w should generally be kept low").
        for nt in (4, 16):
            assert optimal_external_partition(1024, 64, nt) == (nt, 1)
        nt_h, nt_w = optimal_external_partition(1024, 64, 64)
        assert nt_w <= 2

    def test_brute_force_matches_manual_scan(self):
        nt = 16
        best = min(
            factor_pairs(nt),
            key=lambda p: forward_backward_traffic(nt, *p),
        )
        assert optimal_linkage_partition(1024, nt) == best


@given(st.sampled_from([4, 8, 16, 32, 64]))
@settings(max_examples=10, deadline=None)
def test_optimal_linkage_is_global_minimum_property(nt):
    best = optimal_linkage_partition(1024, nt)
    best_cost = forward_backward_traffic(nt, *best)
    for pair in factor_pairs(nt):
        assert forward_backward_traffic(nt, *pair) >= best_cost - 1e-9


@given(st.sampled_from([4, 8, 16, 32]), st.sampled_from([256, 1024, 4096]))
@settings(max_examples=15, deadline=None)
def test_eq2_row_wise_never_worse_than_column_property(nt, n):
    row = memory_read_traffic(n, 64, nt, nt, 1)
    col = memory_read_traffic(n, 64, nt, 1, nt)
    assert row <= col
