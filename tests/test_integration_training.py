"""End-to-end integration: DNC training on the copy task, DNC-D transfer,
and cross-model consistency between the trained model and the engine."""

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.dnc import DNC, DNCConfig, DNCD, DNCDConfig
from repro.nn import Adam, clip_grad_norm
from repro.nn.losses import sigmoid_binary_cross_entropy
from repro.tasks import CopyTask


def masked_bce(outputs, targets, mask):
    """BCE computed on the recall-phase rows only."""
    recall_rows = np.flatnonzero(mask)
    return sigmoid_binary_cross_entropy(
        outputs[recall_rows], targets[recall_rows]
    )


def train_copy(model, task, steps, lr=1e-2, seed=0):
    optimizer = Adam(model.parameters(), lr=lr)
    losses = []
    for _ in range(steps):
        sample = task.sample()
        optimizer.zero_grad()
        outputs, _ = model(Tensor(sample.inputs))
        loss = masked_bce(outputs, sample.targets, sample.mask)
        loss.backward()
        clip_grad_norm(model.parameters(), 10.0)
        optimizer.step()
        losses.append(loss.item())
    return losses


def bit_accuracy(model, task, episodes=10):
    correct, total = 0, 0
    with no_grad():
        for _ in range(episodes):
            sample = task.sample()
            outputs, _ = model(Tensor(sample.inputs))
            predictions = (outputs.data > 0).astype(float)
            recall = sample.mask == 1
            correct += np.sum(predictions[recall] == sample.targets[recall])
            total += np.sum(recall) * sample.targets.shape[1]
    return correct / total


@pytest.mark.slow
class TestCopyTaskTraining:
    def test_dnc_loss_decreases_substantially(self):
        task = CopyTask(num_bits=3, min_length=2, max_length=3, rng=0)
        model = DNC(
            DNCConfig(input_size=task.input_size, output_size=task.output_size,
                      memory_size=8, word_size=6, num_reads=1, hidden_size=24),
            rng=0,
        )
        losses = train_copy(model, task, steps=400)
        early = float(np.mean(losses[:10]))
        late = float(np.mean(losses[-10:]))
        assert late < 0.6 * early

    def test_trained_dnc_beats_chance(self):
        task = CopyTask(num_bits=3, min_length=2, max_length=2, rng=1)
        model = DNC(
            DNCConfig(input_size=task.input_size, output_size=task.output_size,
                      memory_size=8, word_size=6, num_reads=1, hidden_size=24),
            rng=0,
        )
        train_copy(model, task, steps=400)
        assert bit_accuracy(model, task, episodes=20) > 0.65

    def test_dncd_warm_start_trains(self):
        task = CopyTask(num_bits=3, min_length=2, max_length=2, rng=2)
        dnc = DNC(
            DNCConfig(input_size=task.input_size, output_size=task.output_size,
                      memory_size=8, word_size=6, num_reads=1, hidden_size=24),
            rng=0,
        )
        train_copy(dnc, task, steps=60)
        dncd = DNCD(
            DNCDConfig(input_size=task.input_size, output_size=task.output_size,
                       memory_size=8, word_size=6, num_reads=1,
                       hidden_size=24, num_tiles=2),
            rng=0,
        )
        dncd.init_from_dnc(dnc)
        losses = train_copy(dncd, task, steps=30)
        assert np.isfinite(losses).all()
        assert losses[-1] < losses[0] * 1.5  # fine-tune does not diverge


class TestEngineModelConsistency:
    def test_engine_and_reference_share_kernel_semantics(self, rng):
        """A trained-weight DNC pushed through the tiled engine's
        reference equals the autodiff model output exactly."""
        from repro.core.config import HiMAConfig
        from repro.core.engine import TiledEngine

        config = HiMAConfig(memory_size=32, word_size=8, num_reads=2,
                            num_tiles=4, hidden_size=16)
        engine = TiledEngine(config, rng=3)
        dnc = DNC(
            DNCConfig(input_size=8, output_size=8, memory_size=32,
                      word_size=8, num_reads=2, hidden_size=16),
            rng=3,
        )
        engine.reference.load_from_dnc(dnc)
        xs = rng.standard_normal((4, 8))
        engine_out = engine.run(xs)
        model_out, _ = dnc(Tensor(xs))
        assert np.allclose(engine_out, model_out.data, atol=1e-9)
