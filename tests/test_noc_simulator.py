"""Cycle-level NoC simulator: delivery, serialization, contention."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, SimulationError
from repro.noc import Message, NoCSimulator, build_topology, traffic
from repro.noc.traffic import MessageFactory


@pytest.fixture
def star():
    return build_topology("star", 4)


@pytest.fixture
def hima16():
    return build_topology("hima", 16)


class TestMessage:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Message(0, src=1, dst=1)
        with pytest.raises(ConfigError):
            Message(0, src=0, dst=1, size=0)


class TestBasicDelivery:
    def test_single_message_latency(self, star):
        sim = NoCSimulator(star)
        result = sim.run([Message(0, src=0, dst=4, size=1)])
        # One hop, idle link: feed-through latency 1, size 1.
        assert result.delivery_times[0] == 1
        assert result.makespan == 1

    def test_two_hop_uncongested(self, star):
        sim = NoCSimulator(star)
        result = sim.run([Message(0, src=0, dst=1, size=1)])
        assert result.delivery_times[0] == 2  # PT -> CT -> PT, feed-through

    def test_serialization_with_size(self, star):
        sim = NoCSimulator(star)
        result = sim.run([Message(0, src=0, dst=4, size=10)])
        assert result.delivery_times[0] == 10  # 1 + 10 - 1

    def test_all_messages_delivered(self, hima16):
        sim = NoCSimulator(hima16)
        msgs = traffic.all_to_all(hima16, size=2)
        result = sim.run(msgs)
        assert result.num_delivered == len(msgs)
        assert set(result.delivery_times) == {m.msg_id for m in msgs}

    def test_empty_batch(self, star):
        result = NoCSimulator(star).run([])
        assert result.makespan == 0
        assert result.num_delivered == 0


class TestContention:
    def test_shared_link_serializes(self, star):
        sim = NoCSimulator(star)
        # Two messages from the same source must share the PT->CT link.
        msgs = [
            Message(0, src=0, dst=4, size=5),
            Message(1, src=0, dst=4, size=5),
        ]
        result = sim.run(msgs)
        assert result.delivery_times[1] > result.delivery_times[0]
        busy = result.link_busy_cycles[(0, 4)]
        assert busy == 10

    def test_contended_hop_pays_router_latency(self, star):
        sim = NoCSimulator(star, router_latency=3, feed_through_latency=1)
        msgs = [
            Message(0, src=0, dst=4, size=4),
            Message(1, src=0, dst=4, size=4),
        ]
        result = sim.run(msgs)
        # Second message waits 4 cycles then pays the full pipeline.
        assert result.delivery_times[1] == 4 + 3 + 4 - 1

    def test_disjoint_links_run_in_parallel(self, star):
        sim = NoCSimulator(star)
        msgs = [
            Message(0, src=0, dst=4, size=5),
            Message(1, src=1, dst=4, size=5),
        ]
        result = sim.run(msgs)
        assert result.delivery_times[0] == result.delivery_times[1]

    def test_deterministic_arbitration(self, hima16):
        sim = NoCSimulator(hima16)
        msgs = traffic.random_uniform(hima16, 50, size=3, rng=0)
        a = sim.run(msgs).delivery_times
        b = sim.run(msgs).delivery_times
        assert a == b

    def test_max_link_utilization_bounded(self, hima16):
        sim = NoCSimulator(hima16)
        result = sim.run(traffic.all_to_all(hima16, size=2))
        assert 0 < result.max_link_utilization() <= 1.0


class TestDependencies:
    def test_dependent_message_waits(self, star):
        msgs = [
            Message(0, src=0, dst=4, size=3),
            Message(1, src=1, dst=4, size=3, depends_on=0),
        ]
        result = NoCSimulator(star).run(msgs)
        assert result.delivery_times[1] > result.delivery_times[0]

    def test_ring_accumulate_is_sequential(self, hima16):
        sim = NoCSimulator(hima16)
        chain = traffic.ring_accumulate(hima16, size=1)
        result = sim.run(chain)
        times = [result.delivery_times[m.msg_id] for m in chain]
        assert times == sorted(times)
        assert times[-1] >= len(chain)

    def test_missing_dependency_rejected(self, star):
        with pytest.raises(SimulationError):
            NoCSimulator(star).run(
                [Message(0, src=0, dst=4, depends_on=99)]
            )

    def test_duplicate_ids_rejected(self, star):
        with pytest.raises(SimulationError):
            NoCSimulator(star).run([
                Message(0, src=0, dst=4), Message(0, src=1, dst=4),
            ])

    def test_bad_latency_config_rejected(self, star):
        with pytest.raises(SimulationError):
            NoCSimulator(star, router_latency=1, feed_through_latency=2)


class TestTrafficPatterns:
    def test_broadcast_endpoints(self, hima16):
        msgs = traffic.broadcast(hima16, size=4)
        assert len(msgs) == 16
        assert all(m.src == hima16.ct_node for m in msgs)
        assert {m.dst for m in msgs} == set(hima16.pt_nodes)

    def test_gather_endpoints(self, hima16):
        msgs = traffic.gather(hima16, size=4)
        assert all(m.dst == hima16.ct_node for m in msgs)

    def test_all_to_all_count(self, hima16):
        assert len(traffic.all_to_all(hima16)) == 16 * 15

    def test_transpose_uses_grid_geometry(self, hima16):
        msgs = traffic.transpose_exchange(hima16)
        assert msgs, "grid topology should produce transpose messages"
        pos = hima16.positions
        for m in msgs:
            r, c = pos[m.src]
            assert pos[m.dst] == (c, r)

    def test_transpose_fallback_without_geometry(self):
        star = build_topology("star", 8)
        msgs = traffic.transpose_exchange(star)
        assert len(msgs) == 8  # pairwise reversal, self-pairs excluded

    def test_random_uniform_no_self_messages(self, hima16):
        msgs = traffic.random_uniform(hima16, 30, rng=1)
        assert all(m.src != m.dst for m in msgs)

    def test_factory_ids_unique_across_patterns(self, hima16):
        factory = MessageFactory()
        a = traffic.broadcast(hima16, factory=factory)
        b = traffic.gather(hima16, factory=factory)
        ids = [m.msg_id for m in a + b]
        assert len(ids) == len(set(ids))

    def test_random_needs_two_pts(self):
        topo = build_topology("star", 1)
        with pytest.raises(ConfigError):
            traffic.random_uniform(topo, 5)


class TestTopologyPerformanceOrdering:
    def test_hima_beats_htree_on_all_to_all(self):
        hima = build_topology("hima", 16)
        htree = build_topology("htree", 16)
        load_hima = NoCSimulator(hima).run(traffic.all_to_all(hima, size=4))
        load_htree = NoCSimulator(htree).run(traffic.all_to_all(htree, size=4))
        assert load_hima.makespan < load_htree.makespan

    def test_star_good_at_broadcast_bad_at_all_to_all(self):
        star = build_topology("star", 16)
        hima = build_topology("hima", 16)
        sim_star, sim_hima = NoCSimulator(star), NoCSimulator(hima)
        a2a_star = sim_star.run(traffic.all_to_all(star, size=4)).makespan
        a2a_hima = sim_hima.run(traffic.all_to_all(hima, size=4)).makespan
        assert a2a_hima < a2a_star  # every star path funnels through the CT


@given(st.integers(2, 12), st.integers(1, 6), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_random_traffic_always_fully_delivered(num_msgs, size, seed):
    topo = build_topology("hima", 8)
    msgs = traffic.random_uniform(topo, num_msgs, size=size, rng=seed)
    result = NoCSimulator(topo).run(msgs)
    assert result.num_delivered == num_msgs
    assert result.makespan >= size  # at least one serialization
    assert result.total_flit_hops >= num_msgs * size
