"""Tiled execution engine: exactness, traffic accounting, DNC-D locality."""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine, TrafficLog
from repro.errors import SimulationError


@pytest.fixture
def engine(small_hima_config):
    return TiledEngine(small_hima_config, rng=0)


class TestExactness:
    def test_dnc_mode_matches_monolithic_reference(self, engine):
        error = engine.verify_against_reference(steps=4)
        assert error < 1e-12

    def test_dnc_mode_with_skimming_matches(self, small_hima_config):
        engine = TiledEngine(
            small_hima_config.with_features(skim_fraction=0.25), rng=0
        )
        assert engine.verify_against_reference(steps=4) < 1e-12

    def test_dnc_mode_rowwise_linkage_matches(self, small_hima_config):
        engine = TiledEngine(
            small_hima_config.with_features(submatrix_partition=False), rng=0
        )
        assert engine.verify_against_reference(steps=3) < 1e-12

    def test_dnc_mode_without_two_stage_sort_matches(self, small_hima_config):
        engine = TiledEngine(
            small_hima_config.with_features(two_stage_sort=False), rng=0
        )
        assert engine.verify_against_reference(steps=3) < 1e-12

    def test_dncd_mode_differs_from_monolithic(self, small_hima_config):
        engine = TiledEngine(
            small_hima_config.with_features(distributed=True), rng=0
        )
        error = engine.verify_against_reference(steps=4)
        assert error > 0  # DNC-D is an approximation of the DNC

    def test_state_shapes_preserved(self, engine, rng):
        state = engine.initial_state()
        y, state = engine.step(rng.standard_normal(16), state)
        assert y.shape == (16,)
        assert state.memory.shape == (64, 16)
        assert state.linkage.shape == (64, 64)


class TestTrafficAccounting:
    def test_dnc_traffic_covers_expected_kernels(self, engine, rng):
        engine.traffic.clear()
        state = engine.initial_state()
        engine.step(rng.standard_normal(16), state)
        kernels = set(engine.traffic.words_by_kernel())
        assert {"interface_broadcast", "similarity", "usage_sort",
                "linkage", "forward_backward", "memory_read"} <= kernels

    def test_dncd_has_zero_inter_pt_traffic(self, small_hima_config, rng):
        engine = TiledEngine(
            small_hima_config.with_features(distributed=True), rng=0
        )
        state = engine.initial_state()
        for _ in range(3):
            _, state = engine.step(rng.standard_normal(16), state)
        assert engine.traffic.inter_pt_words() == 0
        assert engine.traffic.total_words() > 0  # CT traffic remains

    def test_dnc_has_inter_pt_traffic(self, engine, rng):
        engine.traffic.clear()
        engine.step(rng.standard_normal(16), engine.initial_state())
        assert engine.traffic.inter_pt_words() > 0

    def test_submatrix_partition_cuts_fb_traffic(self, small_hima_config, rng):
        def fb_words(submat):
            engine = TiledEngine(
                small_hima_config.with_features(submatrix_partition=submat),
                rng=0,
            )
            state = engine.initial_state()
            _, state = engine.step(rng.standard_normal(16), state)
            engine.traffic.clear()
            engine.step(rng.standard_normal(16), state)
            return engine.traffic.words_by_kernel()["forward_backward"]

        assert fb_words(True) < fb_words(False)

    def test_traffic_log_filters_and_converts(self):
        log = TrafficLog(ct_node=4)
        log.add("linkage", 0, 1, 64)
        log.add("linkage", 1, 2, 64)
        log.add("memory_read", 0, 4, 32)
        assert log.total_words() == 160
        assert log.inter_pt_words() == 128
        messages = log.messages(link_words_per_cycle=32, kernel="linkage")
        assert len(messages) == 2
        assert all(m.size == 2 for m in messages)

    def test_traffic_log_message_ids_stable_under_filter(self):
        # An event keeps the same message id whether the caller converts
        # the whole log or one kernel's slice — per-kernel message sets
        # from one log never alias ids.
        log = TrafficLog(ct_node=4)
        log.add("linkage", 0, 1, 64)
        log.add("memory_read", 0, 4, 32)
        log.add("linkage", 1, 2, 64)
        all_ids = {
            (m.src, m.dst): m.msg_id for m in log.messages(link_words_per_cycle=32)
        }
        linkage = log.messages(link_words_per_cycle=32, kernel="linkage")
        reads = log.messages(link_words_per_cycle=32, kernel="memory_read")
        assert [m.msg_id for m in linkage] == [0, 2]
        assert [m.msg_id for m in reads] == [1]
        for m in linkage + reads:
            assert m.msg_id == all_ids[(m.src, m.dst)]
        assert not {m.msg_id for m in linkage} & {m.msg_id for m in reads}

    def test_traffic_log_ignores_self_and_empty(self):
        log = TrafficLog(ct_node=4)
        log.add("linkage", 1, 1, 64)
        log.add("linkage", 0, 1, 0)
        assert log.events == []

    def test_skimming_reduces_sort_traffic(self, small_hima_config, rng):
        def sort_words(skim):
            engine = TiledEngine(
                small_hima_config.with_features(skim_fraction=skim), rng=0
            )
            state = engine.initial_state()
            _, state = engine.step(rng.standard_normal(16), state)
            engine.traffic.clear()
            engine.step(rng.standard_normal(16), state)
            return engine.traffic.words_by_kernel()["usage_sort"]

        assert sort_words(0.5) < sort_words(0.0)


class TestTrafficCompaction:
    KERNELS = ("linkage", "memory_read", "similarity")

    def _fill(self, log, count=100):
        for i in range(count):
            log.add(self.KERNELS[i % 3], i % 5, (i + 1) % 5, 10 + i)

    def test_aggregates_stay_exact_under_compaction(self):
        bounded = TrafficLog(ct_node=4, max_events=8)
        unbounded = TrafficLog(ct_node=4)
        self._fill(bounded)
        self._fill(unbounded)
        assert len(bounded.events) <= 8
        assert bounded.dropped_events > 0
        assert bounded.total_words() == unbounded.total_words()
        assert bounded.words_by_kernel() == unbounded.words_by_kernel()
        assert bounded.inter_pt_words() == unbounded.inter_pt_words()

    def test_retained_window_keeps_recent_events(self):
        log = TrafficLog(ct_node=4, max_events=8)
        self._fill(log, count=100)
        # The retained tail is the most recent appends, in order.
        assert [e.words for e in log.events] == [
            10 + i for i in range(100 - len(log.events), 100)
        ]
        assert len(log.events) >= 4  # at least max_events // 2 retained

    def test_message_ids_stay_globally_stable(self):
        log = TrafficLog(ct_node=4, max_events=8)
        self._fill(log, count=100)
        messages = log.messages(link_words_per_cycle=32)
        expected_first = log.dropped_events
        assert [m.msg_id for m in messages] == list(
            range(expected_first, 100)
        )

    def test_clear_resets_aggregates(self):
        log = TrafficLog(ct_node=4, max_events=8)
        self._fill(log)
        log.clear()
        assert log.events == [] and log.dropped_events == 0
        assert log.total_words() == 0
        assert log.words_by_kernel() == {}
        assert log.inter_pt_words() == 0

    def test_max_events_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            TrafficLog(ct_node=4, max_events=1)

    def test_engine_bounded_log_matches_unbounded_totals(
        self, small_hima_config, rng
    ):
        inputs = rng.standard_normal((6, 16))
        unbounded = TiledEngine(small_hima_config, rng=0)
        unbounded.run(inputs)
        bounded = TiledEngine(
            small_hima_config, rng=0, traffic_max_events=16
        )
        bounded.run(inputs)
        assert len(bounded.traffic.events) <= 16
        assert bounded.traffic.total_words() == unbounded.traffic.total_words()
        assert (
            bounded.traffic.words_by_kernel()
            == unbounded.traffic.words_by_kernel()
        )


class TestRun:
    def test_run_sequence(self, engine, rng):
        outputs = engine.run(rng.standard_normal((5, 16)))
        assert outputs.shape == (5, 16)
        assert np.all(np.isfinite(outputs))

    def test_divergence_raises(self, engine, rng, monkeypatch):
        # Corrupt the sharded path and confirm verification catches it.
        original = engine._usage_sort

        def corrupted(usage, log):
            order = original(usage, log)
            return order[::-1].copy()

        monkeypatch.setattr(engine, "_usage_sort", corrupted)
        with pytest.raises(SimulationError):
            engine.verify_against_reference(steps=3)
