"""Task generator tests: copy, repeat-copy, recall, synthetic bAbI."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.tasks import (
    AssociativeRecallTask,
    BabiTaskSuite,
    CopyTask,
    RepeatCopyTask,
    TASK_NAMES,
    encode_example,
    encode_tokens,
)
from repro.tasks.encoding import Vocabulary


class TestVocabulary:
    def test_add_and_lookup(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.id_of("a") == 0
        assert vocab.token_of(1) == "b"
        assert "a" in vocab and "z" not in vocab
        assert len(vocab) == 2

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        assert vocab.add("x") == vocab.add("x") == 0
        assert len(vocab) == 1

    def test_unknown_token_raises(self):
        with pytest.raises(ConfigError):
            Vocabulary(["a"]).id_of("b")

    def test_encode_tokens_one_hot(self):
        vocab = Vocabulary(["a", "b", "c"])
        out = encode_tokens(["b", "a"], vocab)
        assert out.shape == (2, 3)
        assert np.allclose(out, [[0, 1, 0], [1, 0, 0]])


class TestCopyTask:
    def test_episode_structure(self):
        task = CopyTask(num_bits=4, min_length=3, max_length=3, rng=0)
        sample = task.sample()
        assert sample.inputs.shape == (8, 6)
        assert sample.targets.shape == (8, 4)
        assert sample.mask.sum() == 3
        # Markers on their own channels.
        assert sample.inputs[0, 4] == 1.0
        assert sample.inputs[4, 5] == 1.0

    def test_targets_reproduce_presented_bits(self):
        task = CopyTask(num_bits=5, min_length=4, max_length=4, rng=1)
        sample = task.sample()
        presented = sample.inputs[1:5, :5]
        recalled = sample.targets[sample.mask == 1]
        assert np.array_equal(presented, recalled)

    def test_length_range_respected(self):
        task = CopyTask(num_bits=2, min_length=2, max_length=5, rng=2)
        lengths = {int(task.sample().mask.sum()) for _ in range(50)}
        assert lengths <= {2, 3, 4, 5}
        assert len(lengths) > 1

    def test_deterministic_with_seed(self):
        a = CopyTask(rng=7).sample()
        b = CopyTask(rng=7).sample()
        assert np.array_equal(a.inputs, b.inputs)

    def test_invalid_lengths(self):
        with pytest.raises(ConfigError):
            CopyTask(min_length=5, max_length=2)


class TestRepeatCopyTask:
    def test_episode_structure(self):
        task = RepeatCopyTask(
            num_bits=3, min_length=2, max_length=2,
            min_repeats=2, max_repeats=2, rng=0,
        )
        sample = task.sample()
        assert sample.mask.sum() == 4  # length * repeats
        recalled = sample.targets[sample.mask == 1]
        assert np.array_equal(recalled[:2], recalled[2:])

    def test_repeat_count_encoded(self):
        task = RepeatCopyTask(min_repeats=3, max_repeats=3, rng=0)
        sample = task.sample()
        marker_rows = np.flatnonzero(sample.inputs[:, -1])
        assert len(marker_rows) == 1
        assert sample.inputs[marker_rows[0], -1] == pytest.approx(1.0)

    def test_invalid_repeats(self):
        with pytest.raises(ConfigError):
            RepeatCopyTask(min_repeats=3, max_repeats=1)


class TestAssociativeRecall:
    def test_episode_structure(self):
        task = AssociativeRecallTask(
            num_bits=4, item_length=2, min_items=3, max_items=3, rng=0
        )
        sample = task.sample()
        assert sample.mask.sum() == 2  # item_length rows of answer
        assert sample.inputs.shape[1] == 6

    def test_answer_is_successor_of_query(self):
        task = AssociativeRecallTask(
            num_bits=3, item_length=1, min_items=4, max_items=4, rng=5
        )
        sample = task.sample()
        # Reconstruct items from the presentation phase.
        item_rows = np.flatnonzero(sample.inputs[:, 3])
        items = [sample.inputs[r + 1, :3] for r in item_rows]
        query_row = np.flatnonzero(sample.inputs[:, 4])[0]
        query = sample.inputs[query_row + 1, :3]
        answer = sample.targets[sample.mask == 1][0]
        matches = [i for i, item in enumerate(items) if np.array_equal(item, query)]
        assert any(np.array_equal(items[i + 1], answer) for i in matches)

    def test_requires_two_items(self):
        with pytest.raises(ConfigError):
            AssociativeRecallTask(min_items=1, max_items=1)


class TestBabiSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return BabiTaskSuite(rng=0)

    @pytest.fixture(scope="class")
    def vocab(self, suite):
        return suite.vocabulary()

    def test_twenty_task_names(self):
        assert len(TASK_NAMES) == 20
        assert len(set(TASK_NAMES)) == 20

    @pytest.mark.parametrize("task_id", range(1, 21))
    def test_every_task_generates_valid_episodes(self, suite, vocab, task_id):
        for example in suite.generate(task_id, 8):
            assert example.task_id == task_id
            assert example.tokens[-1] == "?"
            for token in example.tokens:
                vocab.id_of(token)  # raises if unknown
            vocab.id_of(example.answer)

    def test_generate_all(self, suite):
        per_task = suite.generate_all(per_task=2)
        assert set(per_task) == set(range(1, 21))
        assert all(len(v) == 2 for v in per_task.values())

    def test_invalid_task_id(self, suite):
        with pytest.raises(ConfigError):
            suite.generate(0, 1)
        with pytest.raises(ConfigError):
            suite.generate(21, 1)

    def test_deterministic_with_seed(self):
        a = BabiTaskSuite(rng=3).generate(1, 3)
        b = BabiTaskSuite(rng=3).generate(1, 3)
        assert [x.tokens for x in a] == [y.tokens for y in b]
        assert [x.answer for x in a] == [y.answer for y in b]

    def test_answers_vary_across_episodes(self, suite):
        answers = {ex.answer for ex in suite.generate(1, 30)}
        assert len(answers) > 1

    def test_task1_answer_is_final_location(self, suite):
        for example in suite.generate(1, 10):
            # The queried person's last "moved to" sentence names the answer.
            person = example.tokens[-2]
            locations = [
                example.tokens[i + 4]
                for i, tok in enumerate(example.tokens)
                if tok == person and i + 4 < len(example.tokens)
                and example.tokens[i + 1] == "moved"
            ]
            assert locations[-1] == example.answer

    def test_task6_yes_no_consistency(self, suite):
        for example in suite.generate(6, 20):
            place_visited = example.tokens[4]
            place_asked = example.tokens[-2]
            expected = "yes" if place_visited == place_asked else "no"
            assert example.answer == expected

    def test_encode_example(self, suite, vocab):
        example = suite.generate(2, 1)[0]
        inputs, answer_id = encode_example(example, vocab)
        assert inputs.shape == (len(example.tokens), len(vocab))
        assert np.all(inputs.sum(axis=1) == 1.0)
        assert vocab.token_of(answer_id) == example.answer


@given(st.integers(1, 20), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_babi_episodes_always_well_formed(task_id, seed):
    suite = BabiTaskSuite(rng=seed)
    vocab = suite.vocabulary()
    example = suite.generate(task_id, 1)[0]
    assert example.tokens.count("?") == 1
    for token in example.tokens:
        assert token in vocab
    assert example.answer in vocab
