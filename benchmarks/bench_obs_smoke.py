"""Observability smoke — traced serving, exporter schemas, overhead floor.

Runs a fully-instrumented 16-session serve (request tracing + per-phase
engine profiling on one :class:`repro.serve.SessionServer`), checks the
three export surfaces against their published validators —

* the span JSONL dump (:func:`repro.obs.validate_trace_jsonl`),
* the metrics JSON export (:func:`repro.obs.validate_metrics_json`),
* the Prometheus text exposition (line-format sanity)

— and prices the instrumentation with an interleaved tracing-on vs
tracing-off A/B (:func:`repro.serve.measure_serve_tracing_ab`) whose
results land in ``BENCH_serve_load.json`` as the ``tracing_on`` /
``tracing_off`` variants.  Asserted floor: tracing + profiling may cost
at most 3% request throughput (``tracing_on.requests_per_sec >= 0.97 *
tracing_off.requests_per_sec``), and the traced run's outputs must be
bitwise identical to the untraced run's — observability is timing and
counting only, never arithmetic.
"""

import json
import pathlib

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.eval.bench_schema import merge_artifact, validate_serve_load
from repro.obs import (
    PhaseTimer,
    Tracer,
    engine_phases,
    render_span_tree,
    validate_metrics_json,
    validate_trace_jsonl,
)
from repro.serve import (
    SessionServer,
    generate_scripts,
    measure_serve_tracing_ab,
    run_open_loop,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_serve_load.json"

#: The A/B serves at N=256 — large enough that engine phases dominate
#: the tick (the regime where per-phase timer overhead is meaningful)
#: yet small enough for a CI runner's 20-minute budget.
OBS_AB_CONFIG = dict(
    memory_size=256, word_size=16, num_reads=1, num_tiles=8, hidden_size=32,
    two_stage_sort=False,
)

#: Small config for the export-surface checks: schema validity does not
#: depend on engine scale, so these stay fast.
OBS_SMOKE_CONFIG = dict(
    memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
    two_stage_sort=False,
)


def _traced_serve(num_sessions: int = 16):
    """One fully-instrumented serve; returns the drained server."""
    engine = TiledEngine(HiMAConfig(**OBS_SMOKE_CONFIG), rng=0)
    scripts = generate_scripts(
        input_size=engine.reference.config.input_size,
        num_sessions=num_sessions, mean_session_len=4.0,
        mean_interarrival_ticks=0.0, rng=3,
    )
    server = SessionServer(
        engine,
        max_batch=16, max_wait_ticks=1,
        queue_capacity=4096, session_capacity=num_sessions,
        tracer=Tracer(), profiler=PhaseTimer(),
    )
    results = run_open_loop(server, scripts)
    assert all(r.done and r.error is None for v in results.values() for r in v)
    return server


def test_traced_serve_exports_valid_jsonl(tmp_path):
    """A traced 16-session serve dumps a schema-valid span JSONL file."""
    server = _traced_serve()
    path = tmp_path / "trace.jsonl"
    written = server.tracer.export_jsonl(path)
    assert written > 0
    problems = validate_trace_jsonl(path)
    assert problems == [], "\n".join(problems)
    # The single-server tree: submits and ticks, with engine steps and
    # every profiled phase hanging under the ticks.
    names = {rec["name"] for rec in server.tracer.records()}
    assert {"shard.submit", "shard.tick", "shard.dispatch", "engine.step"} <= names
    # Which read label fires follows the serve engine's backend.
    phases = engine_phases(server.engine.backend.read_phase_label)
    assert {f"engine.phase:{phase}" for phase in phases} <= names
    tree = render_span_tree(server.tracer.records())
    assert "shard.tick" in tree and "engine.phase:controller" in tree


def test_metrics_exports_validate():
    """Registry JSON passes its validator; Prometheus text is well-formed."""
    server = _traced_serve()
    registry = server.metrics.to_registry(
        labels={"shard": "0"}, phase_stats=server.phase_stats()
    )
    data = json.loads(registry.to_json_text())
    problems = validate_metrics_json(data)
    assert problems == [], "\n".join(problems)
    text = registry.to_prometheus_text()
    assert "# TYPE" in text and "serve_requests_completed" in text
    # Every profiled phase surfaces as a labelled series.
    for phase in engine_phases(server.engine.backend.read_phase_label):
        assert f'phase="{phase}"' in text


def test_tracing_overhead_trajectory():
    """Full observability costs < 3% throughput on the N=256 serve.

    The floor the whole PR stands behind: span starts/ends are bounded
    ring appends and the phase timers are perf_counter pairs, so at
    N=256 — where engine arithmetic dominates the tick — the
    instrumented serve must hold >= 97% of the bare serve's request
    throughput.  Merged into the serve-load artifact as the
    ``tracing_on`` / ``tracing_off`` variant pair.
    """
    on, off = measure_serve_tracing_ab(
        HiMAConfig(**OBS_AB_CONFIG),
        num_sessions=16, steps_per_session=4,
        max_batch=16, max_wait_ticks=1, repeats=5,
    )
    merge_artifact(ARTIFACT, {
        "variants": {
            "tracing_on": on.to_json(),
            "tracing_off": off.to_json(),
        },
    })
    assert on.tracing and not off.tracing
    # Tracing must never perturb numerics: bitwise-identical outputs.
    assert on.microbatch_max_abs_diff == 0.0
    for result in (on, off):
        assert result.mean_batch_occupancy >= 8.0
        assert result.admission_rejects == 0
    assert on.requests_per_sec >= 0.97 * off.requests_per_sec


def test_serve_load_artifact_schema_valid():
    """The artifact written above satisfies the published contract."""
    problems = validate_serve_load(json.loads(ARTIFACT.read_text()))
    assert problems == [], "\n".join(problems)
