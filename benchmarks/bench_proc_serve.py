"""Process-level serving — worker-process cluster vs thread-sharded server.

Drives the identical 64-concurrent-session Zipf workload through the
thread-sharded :class:`repro.serve.ShardedServer` (4 shards) and the
worker-process :class:`repro.serve.ProcCluster` (4 worker processes),
plus the process cluster under a rolling SIGKILL drill (one worker
killed every few ticks, checkpoint/replay recovery carrying the
sessions through), and writes the comparison to
``BENCH_proc_serve.json`` at the repo root under the schema registered
in :mod:`repro.eval.bench_schema` (``PROC_ENTRY_KEYS``)::

    {
      "mode": "procs", "workers": 4, "requests_per_sec": x,
      "speedup_vs_threads": y, ...,
      "variants": {
        "threads": {...},        # the GIL-sharing baseline
        "procs": {...},          # == the top-level entry
        "procs_restart": {...}   # crash recovery, priced
      }
    }

Why processes win here: both clusters run one execution context per
shard (the thread cluster is pinned to a thread-per-shard pool via
``parallel_workers`` — its natural deployment topology), so the
comparison isolates what the contexts are made of.  The thread
cluster's four ticks share one GIL: every tick pays lock arbitration
and forced thread switches, with only the numpy-release windows
overlapping.  The process cluster's ticks run on four interpreters
with no shared lock; its cost is RPC framing (a few KiB of float rows
per tick), which at the state-heavy serve config (N=384) is dwarfed by
the per-tick engine work the GIL serializes.

Asserted floors (conservative): the 4-worker process cluster must at
least match the 4-shard thread cluster's request throughput; every
served trajectory in every variant — including through the rolling
restart drill — must match solo unbatched stepping to <= 1e-10 with
zero failed requests; and the restart variant must actually have killed
and recovered workers (otherwise the drill measured nothing).
"""

import json
import pathlib

from repro.core.config import HiMAConfig
from repro.eval.bench_schema import merge_artifact, validate_proc_serve
from repro.serve import measure_proc_serve

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_proc_serve.json"

#: The state-heavy serve config (N=384, one read head), matching
#: ``bench_serve_load`` / ``bench_shard_scaling``: per-tick engine work
#: must dominate RPC framing for the comparison to be about topology.
PROC_CONFIG = dict(
    memory_size=384, word_size=16, num_reads=1, num_tiles=8, hidden_size=32,
    two_stage_sort=False,
)


def test_proc_serve_comparison():
    results = measure_proc_serve(
        HiMAConfig(**PROC_CONFIG),
        num_workers=4, num_sessions=64,
        max_batch=16, max_wait_ticks=1, repeats=5,
        checkpoint_interval=8, kill_every_ticks=8,
    )
    # Always leave the artifact on disk, even if the floors fail below:
    # a regressing run should still record what it measured.  Top level
    # carries the headline process-cluster point.
    merge_artifact(ARTIFACT, {
        **results["procs"].to_json(),
        "variants": {
            mode: result.to_json() for mode, result in sorted(results.items())
        },
    })
    for mode, result in results.items():
        assert result.max_abs_diff_vs_solo <= 1e-10, mode
        assert result.requests_failed == 0, mode
    # The drill must have actually exercised recovery.
    restart = results["procs_restart"]
    assert restart.worker_restarts >= 1
    assert restart.sessions_recovered >= 1
    assert restart.checkpoints_taken >= 1
    # Threads never restart anything.
    assert results["threads"].worker_restarts == 0
    # The headline floor: worker processes must at least match the
    # GIL-sharing thread cluster on the identical workload.
    assert results["procs"].speedup_vs_threads >= 1.0


def test_proc_artifact_schema_valid():
    """The artifact written above satisfies the published contract."""
    problems = validate_proc_serve(json.loads(ARTIFACT.read_text()))
    assert problems == [], "\n".join(problems)
