"""Figure 5 — NoC hop analysis and speedup scalability.

Benchmarks the cycle-level NoC simulator on DNC-shaped traffic and
regenerates both the hop table (Fig. 5(a)-(c)) and the scalability curves
(Fig. 5(d)).
"""

import pytest

from repro.eval import fig5
from repro.noc import NoCSimulator, build_topology, traffic


def test_fig5_hop_table(benchmark, save_result):
    result = benchmark(fig5.hop_table, 16)
    save_result(result)
    htree = next(r for r in result.rows if r[0] == "htree")
    assert htree[2] == 8


def test_fig5_scalability_curves(benchmark, save_result):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    save_result(result)
    by_name = {row[0]: row for row in result.rows}

    def final_speedup(name):
        return float(by_name[name][-1].rstrip("x"))

    # Paper shape: trees saturate; HiMA scales; DNC-D near-ideal.
    assert final_speedup("hima, DNC") > final_speedup("htree, DNC")
    assert final_speedup("hima, DNC-D") > final_speedup("hima, DNC")


def test_noc_simulator_all_to_all(benchmark):
    """Raw simulator throughput: 16-tile all-to-all with contention."""
    topo = build_topology("hima", 16)
    sim = NoCSimulator(topo)
    messages = traffic.all_to_all(topo, size=8)
    result = benchmark(sim.run, messages)
    assert result.num_delivered == len(messages)


def test_noc_simulator_htree_congestion(benchmark):
    topo = build_topology("htree", 16)
    sim = NoCSimulator(topo)
    messages = traffic.all_to_all(topo, size=8)
    result = benchmark(sim.run, messages)
    assert result.num_delivered == len(messages)
