#!/usr/bin/env python
"""CLI wrapper: validate repo-root ``BENCH_*.json`` artifacts.

Usage::

    PYTHONPATH=src python benchmarks/validate_bench_schema.py [path ...]

Each path is validated against the schema registered for its filename in
:data:`repro.eval.bench_schema.ARTIFACT_VALIDATORS`; with no arguments,
every registered artifact present at the repo root is validated (at
least one must exist).  Exits non-zero (listing every problem) when any
artifact has drifted from its contract — the CI benchmark jobs run this
right after regenerating the artifacts.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.eval.bench_schema import ARTIFACT_VALIDATORS, validate_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _validate_file(path: pathlib.Path) -> int:
    if not path.exists():
        print(f"trajectory artifact not found: {path}")
        return 1
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"{path}: not valid JSON ({exc})")
        return 1
    problems = validate_artifact(path.name, data)
    if problems:
        print(f"{path}: {len(problems)} schema problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"{path}: schema OK")
    return 0


def main(argv: list) -> int:
    if len(argv) > 1:
        paths = [pathlib.Path(arg) for arg in argv[1:]]
    else:
        paths = [
            REPO_ROOT / name
            for name in sorted(ARTIFACT_VALIDATORS)
            if (REPO_ROOT / name).exists()
        ]
        if not paths:
            print(f"no registered artifacts found at {REPO_ROOT}")
            return 1
    return max(_validate_file(path) for path in paths)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
