#!/usr/bin/env python
"""CLI wrapper: validate BENCH_batched_throughput.json against its schema.

Usage::

    PYTHONPATH=src python benchmarks/validate_bench_schema.py [path]

Exits non-zero (listing every problem) when the trajectory artifact has
drifted from the contract in :mod:`repro.eval.bench_schema` — the CI
benchmark-contract job runs this right after regenerating the artifact.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.eval.bench_schema import validate_trajectory

DEFAULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batched_throughput.json"


def main(argv: list) -> int:
    path = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(f"trajectory artifact not found: {path}")
        return 1
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"{path}: not valid JSON ({exc})")
        return 1
    problems = validate_trajectory(data)
    if problems:
        print(f"{path}: {len(problems)} schema problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"{path}: schema OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
