"""Batched engine throughput — the repo's perf trajectory benchmark.

Measures ``TiledEngine.run_batch`` (B sequences advancing in lock-step
through stacked kernels) against B sequential B=1 ``run`` calls on the
identical workload, and writes a machine-readable record to
``BENCH_batched_throughput.json`` at the repo root so future PRs can
track throughput regressions.  Schema (top-level keys)::

    {"batch_size": B, "steps_per_sec": x, "speedup_vs_seq": y, ...}

The asserted floors are deliberately conservative (the measured ratio is
typically well above them): batching must pay off by >= 4x at B=16, and
a batch of one must reproduce the unbatched path to 1e-10.
"""

import json
import pathlib

import pytest

from repro.core.config import HiMAConfig
from repro.eval.runners import batched_throughput_experiment, measure_batched_throughput

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_batched_throughput.json"

#: The trajectory configuration: small enough that per-step engine
#: overhead (what batching amortizes) dominates, keeping the measured
#: ratio stable on loaded CI machines.
TRAJECTORY_CONFIG = dict(
    memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
    two_stage_sort=False,
)


def test_batched_throughput_trajectory():
    result = measure_batched_throughput(
        HiMAConfig(**TRAJECTORY_CONFIG), batch_size=16, seq_len=16, repeats=5
    )
    # Always leave the artifact on disk, even if the floors fail below:
    # a regressing run should still record what it measured.
    ARTIFACT.write_text(json.dumps(result.to_json(), indent=2) + "\n")
    assert result.batch1_max_abs_diff <= 1e-10
    assert result.speedup_vs_seq >= 4.0


def test_batched_throughput_scaling_table(save_result):
    result = batched_throughput_experiment(
        HiMAConfig(**TRAJECTORY_CONFIG), batch_sizes=(4, 16), seq_len=8
    )
    save_result(result)
    assert len(result.rows) == 2


@pytest.mark.parametrize("distributed", [False, True])
def test_batched_equivalence_both_modes(distributed):
    config = HiMAConfig(
        memory_size=64, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, distributed=distributed,
    )
    from repro.core.engine import TiledEngine

    engine = TiledEngine(config, rng=0)
    error = engine.verify_against_reference(steps=4, batch_size=4)
    assert error < 1e-10
