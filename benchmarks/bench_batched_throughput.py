"""Batched engine throughput — the repo's perf trajectory benchmark.

Measures ``TiledEngine.run_batch`` (B sequences advancing in lock-step
through stacked kernels) against B sequential B=1 ``run`` calls on the
identical workload, and writes a machine-readable record to
``BENCH_batched_throughput.json`` at the repo root so future PRs can
track throughput regressions.  Schema (see
``benchmarks/validate_bench_schema.py`` for the authoritative contract)::

    {
      "batch_size": B, "steps_per_sec": x, "speedup_vs_seq": y, ...,
      "dtype": "float64",
      "variants": {
        "two_stage_sort":        {...},   # sort-enabled hot path
        "skim":                  {...},   # skimmed-allocation hot path
        "float64_n256":          {...},   # dtype A/B at memory_size=256
        "float32_n256":          {...},
        "fused_write_linkage":   {...},   # fused write-phase kernel A/B
        "unfused_write_linkage": {...},   # (three-pass legacy path)
        "backend_reference":     {...},   # kernel-backend A/B at N=256
        "backend_tuned":         {...},   # (+ backend_torch when torch
        "read_fused":            {...},   #  is importable)
        "read_unfused":          {...},   # read-phase kernel A/B (tuned)
      }
    }

Every entry carries the full :class:`BatchedThroughput` record including
the config it ran under (``dtype``, ``memory_size``, ``two_stage_sort``,
``skim_fraction``).  The asserted floors are deliberately conservative
(the measured ratios are typically well above them): batching must pay
off by >= 4x at B=16 on the base config, >= 3x with the two-stage sorter
or skimming enabled, and float32 must beat float64 at ``N=256`` where
the N^2 linkage kernels are memory-bandwidth-bound.
"""

import json
import pathlib

import pytest

from repro.core.config import HiMAConfig
from repro.eval.bench_schema import merge_artifact, validate_trajectory
from repro.core.backend import available_backends
from repro.eval.runners import (
    batched_throughput_experiment,
    measure_backend_ab,
    measure_batched_throughput,
    measure_masked_occupancy,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_batched_throughput.json"

#: The trajectory configuration: small enough that per-step engine
#: overhead (what batching amortizes) dominates, keeping the measured
#: ratio stable on loaded CI machines.
TRAJECTORY_CONFIG = dict(
    memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
    two_stage_sort=False,
)

#: Dtype A/B configuration: large enough (memory_size >= 256) that the
#: N^2 linkage/forward-backward kernels are memory-bandwidth-bound, so
#: halving the word width is measurable above timer noise.
DTYPE_AB_CONFIG = dict(
    memory_size=256, word_size=32, num_reads=2, num_tiles=8, hidden_size=64,
    two_stage_sort=False,
)

#: Masked-occupancy A/B configuration: state-heavy (N=256, one read
#: head) so the per-tick state movement the dense-capacity path
#: eliminates is visible; half occupancy (8 of 16 resident slots) is
#: the serving arena's steady-state shape when it is not full.
OCCUPANCY_CONFIG = dict(
    memory_size=256, word_size=32, num_reads=1, num_tiles=8, hidden_size=64,
    two_stage_sort=False,
)


def _merge_artifact(update: dict) -> None:
    """Read-modify-write the trajectory JSON, preserving other entries."""
    merge_artifact(ARTIFACT, update)


def test_batched_throughput_trajectory():
    result = measure_batched_throughput(
        HiMAConfig(**TRAJECTORY_CONFIG), batch_size=16, seq_len=16, repeats=5
    )
    # Always leave the artifact on disk, even if the floors fail below:
    # a regressing run should still record what it measured.
    _merge_artifact(result.to_json())
    assert result.batch1_max_abs_diff <= 1e-10
    assert result.speedup_vs_seq >= 4.0


def test_sort_enabled_throughput_trajectory():
    """The sort/allocation path must stay batch-vectorized.

    Before the batched two-stage sorter, enabling ``two_stage_sort`` or
    ``skim_fraction`` dropped run_batch to a per-element Python loop in
    the sorter; these floors pin the vectorized behaviour.
    """
    sorted_result = measure_batched_throughput(
        HiMAConfig(**{**TRAJECTORY_CONFIG, "two_stage_sort": True}),
        batch_size=16, seq_len=16, repeats=5,
    )
    skim_result = measure_batched_throughput(
        HiMAConfig(**{**TRAJECTORY_CONFIG, "skim_fraction": 0.25}),
        batch_size=16, seq_len=16, repeats=5,
    )
    _merge_artifact({
        "variants": {
            "two_stage_sort": sorted_result.to_json(),
            "skim": skim_result.to_json(),
        }
    })
    assert sorted_result.batch1_max_abs_diff <= 1e-10
    assert skim_result.batch1_max_abs_diff <= 1e-10
    assert sorted_result.speedup_vs_seq >= 3.0
    assert skim_result.speedup_vs_seq >= 3.0


def test_dtype_throughput_trajectory():
    """float32 must beat float64 on the bandwidth-bound N=256 config."""
    f64 = measure_batched_throughput(
        HiMAConfig(**DTYPE_AB_CONFIG), batch_size=16, seq_len=6, repeats=3
    )
    f32 = measure_batched_throughput(
        HiMAConfig(**{**DTYPE_AB_CONFIG, "dtype": "float32"}),
        batch_size=16, seq_len=6, repeats=3,
    )
    _merge_artifact({
        "variants": {"float64_n256": f64.to_json(), "float32_n256": f32.to_json()}
    })
    assert f64.batch1_max_abs_diff <= 1e-10
    # float32 batch-of-1 rounds differently through BLAS but stays within
    # the engine's documented float32 tolerance.
    assert f32.batch1_max_abs_diff <= 1e-3
    assert f32.steps_per_sec > f64.steps_per_sec


def test_fused_write_linkage_trajectory():
    """A/B the fused single-sweep write kernel against the three-pass path.

    Both run the bandwidth-bound N=256 config where the write phase's
    N^2 linkage update is a visible slice of the step.  The fused kernel
    is bitwise identical to the three-pass path (pinned hard in
    ``tests/test_fused_kernels.py``); here it lands as a measured
    trajectory variant so regressions in either path show up in the
    artifact.
    """
    fused = measure_batched_throughput(
        HiMAConfig(**DTYPE_AB_CONFIG), batch_size=16, seq_len=6, repeats=3
    )
    unfused = measure_batched_throughput(
        HiMAConfig(**DTYPE_AB_CONFIG, fused_write_linkage=False),
        batch_size=16, seq_len=6, repeats=3,
    )
    _merge_artifact({
        "variants": {
            "fused_write_linkage": fused.to_json(),
            "unfused_write_linkage": unfused.to_json(),
        }
    })
    assert fused.fused_write_linkage and not unfused.fused_write_linkage
    assert fused.batch1_max_abs_diff <= 1e-10
    assert unfused.batch1_max_abs_diff <= 1e-10
    # Fusion must never cost throughput (it typically buys a few percent
    # by dropping full-size temporaries); generous slack for CI noise.
    assert fused.steps_per_sec >= 0.7 * unfused.steps_per_sec


def test_masked_occupancy_trajectory():
    """A/B the partial-occupancy masked-step paths at half occupancy.

    The dense-capacity path (``masked_dense_min_occupancy=0.0``: cheap
    kernels over the full resident batch, O(N^2) write phase skipping
    inactive slots in place) against the compact gather path
    (``masked_dense_min_occupancy=1.0``: fancy-index gather/scatter of
    the active rows), both stepping 8 active of 16 resident slots on
    the state-heavy config.  The paths are numerically interchangeable
    (pinned in ``tests/test_masked_step.py``); the artifact records
    which one wins at this occupancy, and the floor only forbids the
    dense path from regressing materially below the gather path it is
    meant to replace above the threshold.
    """
    dense = measure_masked_occupancy(
        HiMAConfig(**OCCUPANCY_CONFIG, masked_dense_min_occupancy=0.0),
        capacity=16, active=8, seq_len=8, repeats=3,
    )
    gather = measure_masked_occupancy(
        HiMAConfig(**OCCUPANCY_CONFIG, masked_dense_min_occupancy=1.0),
        capacity=16, active=8, seq_len=8, repeats=3,
    )
    _merge_artifact({
        "variants": {
            "masked_dense_occupancy": dense.to_json(),
            "masked_gather_occupancy": gather.to_json(),
        }
    })
    assert dense.masked_dense_min_occupancy == 0.0
    assert gather.masked_dense_min_occupancy == 1.0
    assert dense.batch1_max_abs_diff <= 1e-10
    assert gather.batch1_max_abs_diff <= 1e-10
    assert dense.steps_per_sec >= 0.8 * gather.steps_per_sec


def test_backend_ab_trajectory():
    """A/B the kernel backends on the bandwidth-bound N=256 config.

    The ``tuned`` backend's cache-blocked linkage sweep and
    scratch-resident write phase must pay for the abstraction on the
    large-N hot path, and must not tax the small-N base config (where
    it delegates to the reference kernels below its blocking
    threshold).  The ``reference`` entry doubles as the seam's
    regression canary: its batch-of-1 trajectory must stay bitwise on
    the pre-seam numbers (diff exactly 0 against the unbatched run).

    The 1.25x floor is the PR's headline number: on a quiet run of this
    host class the interleaved ratio measures ~1.3-1.7x; a shared-CI
    neighbor can compress the gap, which is why this floor lives in the
    non-blocking bench tier rather than tier-1.
    """
    results = measure_backend_ab(
        HiMAConfig(**DTYPE_AB_CONFIG), batch_size=16, seq_len=8, repeats=9
    )
    variants = {
        "backend_reference": results["reference"].to_json(),
        "backend_tuned": results["tuned"].to_json(),
    }
    if "torch" in available_backends():
        torch_results = measure_backend_ab(
            HiMAConfig(**DTYPE_AB_CONFIG),
            backends=("reference", "torch"),
            batch_size=16, seq_len=8, repeats=5,
        )
        variants["backend_torch"] = torch_results["torch"].to_json()
    _merge_artifact({"variants": variants})
    # The reference backend holds the bitwise bar against the baseline
    # engine's unbatched run; tuned's single-rounding BLAS linkage
    # accumulation is bounded by the float64 verification tolerance.
    assert results["reference"].batch1_max_abs_diff == 0.0
    assert results["tuned"].batch1_max_abs_diff <= 1e-9
    assert results["tuned"].steps_per_sec >= 1.25 * results["reference"].steps_per_sec

    # Small-N guard: under the blocking threshold the tuned backend
    # delegates its write phase to the reference kernels and only the
    # factored content scores differ (ulp-scale), so the only
    # acceptable cost is measurement noise.
    small = measure_backend_ab(
        HiMAConfig(**TRAJECTORY_CONFIG), batch_size=16, seq_len=8, repeats=15
    )
    assert small["tuned"].batch1_max_abs_diff <= 1e-9
    assert small["tuned"].steps_per_sec >= 0.97 * small["reference"].steps_per_sec


def test_read_phase_ab_trajectory():
    """A/B the fused read-phase kernel against the two-sweep read path.

    Three contestants on the bandwidth-bound N=256 config: the
    reference backend (control; classic forward/backward as two
    separate linkage matvecs), the tuned backend with
    ``read_phase_fused=False`` (blocked write phase, unfused read), and
    the tuned backend with the fused read kernel (one cache-blocked
    panel pass over the linkage computes both directions — the linkage
    is touched once per tick instead of twice).

    The ISSUE-10 acceptance floor: the fused read variant must hold
    >= 1.15x the reference backend's whole-tick throughput.  The
    fused-vs-unfused delta itself is recorded but only softly gated
    (fusion must not *cost* throughput beyond CI noise) — most of the
    tuned backend's win comes from its write phase, and the read-phase
    fusion's marginal gain is within shared-runner noise some days.
    """
    results = measure_backend_ab(
        HiMAConfig(**DTYPE_AB_CONFIG), batch_size=16, seq_len=8, repeats=9,
        variants={
            "reference": {"backend": "reference"},
            "read_unfused": {"backend": "tuned", "read_phase_fused": False},
            "read_fused": {"backend": "tuned"},
        },
    )
    _merge_artifact({
        "variants": {
            "read_fused": results["read_fused"].to_json(),
            "read_unfused": results["read_unfused"].to_json(),
        }
    })
    assert results["read_fused"].read_phase_fused
    assert not results["read_unfused"].read_phase_fused
    assert results["reference"].batch1_max_abs_diff == 0.0
    # Both tuned variants stay within the float64 verification
    # tolerance of the reference trajectory (blocked reductions round
    # differently; the mix kernel is bitwise).
    assert results["read_fused"].batch1_max_abs_diff <= 1e-9
    assert results["read_unfused"].batch1_max_abs_diff <= 1e-9
    floor = 1.15 * results["reference"].steps_per_sec
    assert results["read_fused"].steps_per_sec >= floor
    assert results["read_fused"].steps_per_sec >= (
        0.9 * results["read_unfused"].steps_per_sec
    )


def test_trajectory_schema_valid():
    """The artifact written above satisfies the published contract."""
    problems = validate_trajectory(json.loads(ARTIFACT.read_text()))
    assert problems == [], "\n".join(problems)


def test_batched_throughput_scaling_table(save_result):
    result = batched_throughput_experiment(
        HiMAConfig(**TRAJECTORY_CONFIG), batch_sizes=(4, 16), seq_len=8
    )
    save_result(result)
    assert len(result.rows) == 2


@pytest.mark.parametrize("distributed", [False, True])
def test_batched_equivalence_both_modes(distributed):
    config = HiMAConfig(
        memory_size=64, word_size=16, num_reads=2, num_tiles=4,
        hidden_size=32, distributed=distributed,
    )
    from repro.core.engine import TiledEngine

    engine = TiledEngine(config, rng=0)
    error = engine.verify_against_reference(steps=4, batch_size=4)
    assert error < 1e-10
