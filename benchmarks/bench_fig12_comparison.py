"""Figure 12 — scalability and comparison with state-of-the-art designs."""

import pytest

from repro.eval import fig12
from repro.hw.area_model import AreaModel


def test_fig12a_scalability(benchmark, save_result):
    result = benchmark.pedantic(fig12.run_scalability, rounds=1, iterations=1)
    save_result(result)
    dnc_rows = [r for r in result.rows if r[0] == "HiMA-DNC"]
    dncd_rows = [r for r in result.rows if r[0] == "HiMA-DNC-D"]
    # DNC power grows super-linearly (beyond the ideal column); DNC-D not.
    assert float(dnc_rows[-1][5].rstrip("x")) > float(dnc_rows[-1][6].rstrip("x"))
    assert float(dncd_rows[-1][5].rstrip("x")) < float(dnc_rows[-1][5].rstrip("x"))


def test_fig12bcd_comparison(benchmark, save_result):
    result = benchmark.pedantic(fig12.run_comparison, rounds=1, iterations=1)
    save_result(result)
    by_name = {row[0]: row for row in result.rows}

    def speed(name):
        return float(by_name[name][2].rstrip("x"))

    # Paper ordering: DNC-D > DNC > baseline > MANNA ~ Farm >> GPU.
    assert speed("HiMA-DNC-D") > speed("HiMA-DNC") > speed("HiMA-baseline")
    assert speed("HiMA-DNC") > speed("MANNA")
    # DNC-D beats MANNA on both efficiency axes by a large factor.
    dncd = by_name["HiMA-DNC-D"]
    assert float(dncd[5].rstrip("x")) > 10.0
    assert float(dncd[6].rstrip("x")) > 5.0


def test_area_model_evaluation(benchmark):
    def evaluate():
        return AreaModel(1024, 64, 4, 16).breakdown().total

    total = benchmark(evaluate)
    assert total == pytest.approx(80.69, rel=0.01)
