"""Figure 6(c)/(d) — partition sweeps for external and linkage memories."""

import pytest

from repro.core.partition import optimal_linkage_partition
from repro.eval import fig6


def test_fig6c_memory_read_sweep(benchmark, save_result):
    result = benchmark(fig6.run_memory_read)
    save_result(result)
    # Row-wise reference column is 1.00x everywhere.
    assert all(row[1] == "1.00x" for row in result.rows)


def test_fig6d_forward_backward_sweep(benchmark, save_result):
    result = benchmark(fig6.run_forward_backward)
    save_result(result)
    assert "4x4" in result.notes[-1]


def test_partition_optimizer(benchmark):
    """Brute-force Eq. (3) optimization across all factorizations."""
    best = benchmark(optimal_linkage_partition, 1024, 64)
    assert best == (8, 8)
