"""Figure 11 — speed ladder, runtime/power breakdowns, area/power table.

All six sub-figures regenerate at the paper's full scale (N x W =
1024 x 64, Nt = 16); the benchmark times the cycle-model evaluation that
produces them.
"""

import pytest

from repro.core.config import HiMAConfig
from repro.core.perf_model import HiMAPerformanceModel
from repro.eval import fig11


def test_fig11a_speed_ladder(benchmark, save_result):
    result = benchmark.pedantic(fig11.run_speed_ladder, rounds=1, iterations=1)
    save_result(result)
    speedups = [float(r[2].rstrip("x")) for r in result.rows]
    assert speedups == sorted(speedups)  # every feature helps
    assert speedups[-2] > 5.0  # DNC-D well past the architectural ladder


def test_fig11b_runtime_breakdown(benchmark, save_result):
    result = benchmark.pedantic(
        fig11.run_runtime_breakdown, rounds=1, iterations=1
    )
    save_result(result)
    assert len(result.rows) == 10


def test_fig11c_power_ladder(benchmark, save_result):
    result = benchmark.pedantic(fig11.run_power_ladder, rounds=1, iterations=1)
    save_result(result)
    watts = {row[0]: float(row[1]) for row in result.rows}
    assert watts["DNC-D (Nt=16)"] < watts["+submatrix (HiMA-DNC)"]


def test_fig11d_kernel_power(benchmark, save_result):
    result = benchmark.pedantic(fig11.run_kernel_power, rounds=1, iterations=1)
    save_result(result)


def test_fig11e_area_power_table(benchmark, save_result):
    result = benchmark.pedantic(
        fig11.run_area_power_table, rounds=1, iterations=1
    )
    save_result(result)
    dnc = next(r for r in result.rows if r[0] == "dnc")
    model_total = float(dnc[4].split("/")[0])
    assert model_total == pytest.approx(80.69, rel=0.01)


def test_fig11f_module_power(benchmark, save_result):
    result = benchmark.pedantic(fig11.run_module_power, rounds=1, iterations=1)
    save_result(result)


def test_perf_model_evaluation(benchmark):
    """Cost of one full cycle-model evaluation (HiMA-DNC, Nt=16)."""

    def evaluate():
        return HiMAPerformanceModel(HiMAConfig.hima_dnc()).inference_time_us()

    time_us = benchmark(evaluate)
    assert 1.0 < time_us < 1000.0
