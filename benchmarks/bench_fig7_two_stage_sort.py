"""Section 4.3 / Figure 7 — two-stage usage sort.

Regenerates the cycle table (389 cycles at N=1024, Nt=4) and benchmarks
the functional sorters themselves.
"""

import numpy as np
import pytest

from repro.eval import fig7
from repro.hw.sorters import CentralizedMergeSorter, MDSASorter, TwoStageSorter


def test_fig7_cycle_table(benchmark, save_result):
    result = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    save_result(result)
    reference = next(r for r in result.rows if r[0] == 1024 and r[1] == 4)
    assert reference[4] == 389


@pytest.fixture(scope="module")
def usage_1024():
    return np.random.default_rng(0).random(1024)


def test_two_stage_functional_sort(benchmark, usage_1024):
    sorter = TwoStageSorter(1024, 4)
    values, order = benchmark(sorter.sort, usage_1024)
    assert np.array_equal(values, np.sort(usage_1024))


def test_mdsa_local_sort(benchmark, usage_1024):
    sorter = MDSASorter(256)
    shard = usage_1024[:256]
    values, _ = benchmark(sorter.sort, shard)
    assert np.array_equal(values, np.sort(shard))


def test_centralized_merge_sort(benchmark, usage_1024):
    sorter = CentralizedMergeSorter()
    values, _ = benchmark(sorter.sort, usage_1024)
    assert np.array_equal(values, np.sort(usage_1024))
