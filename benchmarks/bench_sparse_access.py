"""Sparse top-K access A/B — the large-N scaling benchmark.

A/Bs ``access_policy="sparse"`` (top-K content addressing with K-row
sparse write/linkage updates, O(K*N) per step) against the dense
baseline (O(N^2)) at memory sizes where the difference matters, and
writes a machine-readable record to ``BENCH_sparse_access.json`` at the
repo root.  Schema (see ``repro.eval.bench_schema.validate_sparse_access``
for the authoritative contract)::

    {
      "memory_size": 2048, "access_policy": "sparse", ...,  # headline point
      "variants": {
        "dense_n384":        {...},   # dense reference at each N
        "sparse_k64_n384":   {...},
        "dense_n1024":       {...},
        "sparse_k64_n1024":  {...},
        "dense_n2048":       {...},
        "sparse_k128_n2048": {...}    # the headline sparse point
      }
    }

Every entry carries its measured ``steps_per_sec``, the dense baseline
at the same ``N``, the resulting ``speedup_vs_dense``, and the explicit
accuracy cost (``max/mean_abs_delta_vs_dense``) of a same-seed,
same-input unbatched trajectory against the dense float64 path.  The
asserted floor is the ROADMAP item-2 target: at ``N=2048`` sparse must
beat dense by >= 5x.  Smaller sizes record their measured ratios with
no floor — at ``N=384`` the O(N^2) phases are not yet dominant and the
ratio is informational.
"""

import json
import os
import pathlib

from repro.eval.bench_schema import merge_artifact, validate_sparse_access
from repro.eval.runners import measure_sparse_access

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_sparse_access.json"

#: Accuracy-delta ceiling for the recorded sparse points: top-K
#: truncation is an approximation, but a delta at O(1) would mean the
#: policy is computing a different function, not an approximate one.
DELTA_CEILING = 0.5


def _merge_artifact(update: dict) -> None:
    """Read-modify-write the artifact JSON, preserving other entries."""
    merge_artifact(ARTIFACT, update)


def bench_sparse_access_n384():
    """N=384: smallest size in the sweep; ratio is informational."""
    results = measure_sparse_access(384, top_ks=(64,), repeats=3)
    _merge_artifact(
        {"variants": {name: r.to_json() for name, r in results.items()}}
    )
    sparse = results["sparse_k64_n384"]
    assert sparse.max_abs_delta_vs_dense <= DELTA_CEILING
    assert results["dense_n384"].speedup_vs_dense == 1.0


def bench_sparse_access_n1024():
    """N=1024: the large-N serve scenario's memory size."""
    results = measure_sparse_access(1024, top_ks=(64,), repeats=3)
    _merge_artifact(
        {"variants": {name: r.to_json() for name, r in results.items()}}
    )
    sparse = results["sparse_k64_n1024"]
    assert sparse.max_abs_delta_vs_dense <= DELTA_CEILING
    # By N=1024 the N^2 phases dominate the dense step; sparse must at
    # minimum not lose to dense (measured ratios are far higher).
    assert sparse.speedup_vs_dense >= 1.0


def bench_sparse_access_n2048():
    """N=2048 headline point: sparse must beat dense by >= 5x.

    The floor is backend-aware: the ROADMAP item-2 target (>= 5x) is
    against the *reference* dense baseline.  Under ``REPRO_BACKEND=
    tuned`` (the sparse-tuned CI lane) the dense baseline itself runs
    the fused cache-blocked kernels and gets ~1.6x faster at N=2048
    while the gather-bound sparse path gains little, so the honest
    floor there is the compressed one — sparse must still beat the
    *tuned* dense baseline by >= 3x (measured ~3.8x).
    """
    backend = os.environ.get("REPRO_BACKEND", "reference")
    results = measure_sparse_access(2048, top_ks=(128,), repeats=2)
    sparse = results["sparse_k128_n2048"]
    # Always leave the artifact on disk, even if the floor fails below:
    # a regressing run should still record what it measured.  The
    # headline sparse point doubles as the artifact's top-level entry.
    _merge_artifact({
        **sparse.to_json(),
        "variants": {name: r.to_json() for name, r in results.items()},
    })
    assert sparse.max_abs_delta_vs_dense <= DELTA_CEILING
    assert sparse.speedup_vs_dense >= (5.0 if backend == "reference" else 3.0)


def bench_sparse_tuned_backend():
    """Sparse-vs-dense under the tuned backend's fused kernels.

    The tuned backend accelerates the *dense* baseline more than the
    sparse path (the K-row sparse kernels are gather-bound and mostly
    shared), so the dense-vs-sparse ratio compresses — this lane pins
    that the sparse policy still pays off with the fused kernels
    engaged at N=1024.  No artifact writes: ``SPARSE_ENTRY_KEYS``
    carries no backend field, so tuned numbers merged into
    ``BENCH_sparse_access.json`` would be indistinguishable from (and
    clobber) the reference-backend entries.  CI additionally runs the
    whole file under ``REPRO_BACKEND=tuned`` (the sparse-tuned bench
    lane), which exercises the recorded floors end-to-end on the tuned
    backend.
    """
    results = measure_sparse_access(
        1024, top_ks=(64,), repeats=3, backend="tuned"
    )
    sparse = results["sparse_k64_n1024"]
    assert sparse.max_abs_delta_vs_dense <= DELTA_CEILING
    assert sparse.speedup_vs_dense >= 1.0


def bench_sparse_artifact_schema_valid():
    """The artifact written above satisfies the published contract."""
    problems = validate_sparse_access(json.loads(ARTIFACT.read_text()))
    assert problems == [], "\n".join(problems)
