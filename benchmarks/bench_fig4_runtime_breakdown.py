"""Figure 4 — kernel runtime breakdown on CPU (measured) vs GPU (paper).

Benchmarks the full synthetic-bAbI inference episode on the instrumented
reference DNC at the paper's configuration and regenerates the breakdown.
"""

import pytest

from repro.eval import fig4


def test_fig4_breakdown(benchmark, save_result):
    result = benchmark.pedantic(
        fig4.run, kwargs=dict(num_episodes=2), rounds=1, iterations=1
    )
    save_result(result)
    assert len(result.rows) == 5


def test_fig4_memory_unit_dominates(benchmark, save_result):
    """The paper's headline: the memory unit takes >95% of runtime."""
    result = benchmark.pedantic(
        fig4.run,
        kwargs=dict(num_episodes=1, memory_size=512, hidden_size=128),
        rounds=1, iterations=1,
    )
    note = result.notes[1]
    share = float(note.split(":")[1].split("%")[0])
    assert share > 85.0
