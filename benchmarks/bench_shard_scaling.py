"""Sharded serving scaling — router + engine-shard cluster vs one server.

Drives the identical 64-concurrent-session workload through
:class:`repro.serve.ShardedServer` at 1, 2, and 4 shards (per-shard
arena capacity ``64 / shards``, same per-engine ``max_batch``) plus the
pre-sharding :class:`repro.serve.SessionServer`, and writes the scaling
curve to ``BENCH_shard_scaling.json`` at the repo root under the schema
registered in :mod:`repro.eval.bench_schema` (``SHARD_ENTRY_KEYS``)::

    {
      "shards": 4, "requests_per_sec": x, "speedup_vs_one_shard": y, ...,
      "variants": {
        "shards_1": {...},   # the no-regression point vs SessionServer
        "shards_2": {...},
        "shards_4": {...}    # == the top-level entry
      }
    }

What sharding buys on this workload: every shard runs its arena at full
occupancy, so each tick is the zero-copy dense masked step with
ping-ponged fused-write buffers, while the 1-shard server holds all 64
sessions in one arena and dispatches 16-of-64 — the partial-occupancy
masked step that still moves state every tick — and the shards' ticks
overlap on separate cores (they share nothing, so thread-parallel ticks
are bit-identical to sequential ones).

Asserted floors (conservative, as ever): the 4-shard cluster must
deliver >= 2.5x the 1-shard cluster's request throughput at 64
concurrent sessions; the 1-shard cluster must be within 10% of the
plain ``SessionServer`` (the refactor cannot tax the unsharded path);
and every served trajectory — including the forced mid-stream migration
in the correctness pass — must match solo unbatched stepping to
<= 1e-10.
"""

import json
import pathlib

from repro.core.config import HiMAConfig
from repro.eval.bench_schema import merge_artifact, validate_shard_scaling
from repro.serve import (
    ConsistentHashPlacement,
    HotSpotRebalance,
    ShardedServer,
    generate_zipf_scripts,
    measure_shard_scaling,
    run_open_loop,
    tenant_of,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_shard_scaling.json"

#: The state-heavy serve A/B config (N=384, one read head): per-tick
#: state movement — what full-occupancy shards eliminate — is a visible
#: fraction of the step, exactly as in ``bench_serve_load``.
SHARD_CONFIG = dict(
    memory_size=384, word_size=16, num_reads=1, num_tiles=8, hidden_size=32,
    two_stage_sort=False,
)


def _merge_artifact(update: dict) -> None:
    """Read-modify-write the shard JSON, preserving other entries."""
    merge_artifact(ARTIFACT, update)


def test_shard_scaling_trajectory():
    results = measure_shard_scaling(
        HiMAConfig(**SHARD_CONFIG),
        shard_counts=(1, 2, 4),
        num_sessions=64, steps_per_session=4,
        max_batch=16, max_wait_ticks=1, repeats=3,
    )
    # Always leave the artifact on disk, even if the floors fail below:
    # a regressing run should still record what it measured.  Top level
    # carries the headline 4-shard point.
    _merge_artifact({
        **results[4].to_json(),
        "variants": {
            f"shards_{count}": result.to_json()
            for count, result in sorted(results.items())
        },
    })
    for count, result in results.items():
        assert result.sharded_max_abs_diff <= 1e-10, count
        if count > 1:
            # The correctness pass migrated a session mid-stream and the
            # trajectory still matched solo stepping above.
            assert result.sessions_migrated >= 1, count
    # The refactor cannot tax the unsharded path: 1-shard cluster within
    # 10% of the PR 4 SessionServer on the identical workload.
    one = results[1]
    assert one.requests_per_sec >= 0.9 * one.session_server_requests_per_sec
    # The scaling floor: 4 shards must buy >= 2.5x aggregate throughput.
    assert results[4].speedup_vs_one_shard >= 2.5


def test_shard_artifact_schema_valid():
    """The artifact written above satisfies the published contract."""
    problems = validate_shard_scaling(json.loads(ARTIFACT.read_text()))
    assert problems == [], "\n".join(problems)


def test_zipf_hot_shard_rebalances_and_drains():
    """Tenant-skewed arrivals through tenant-keyed consistent hashing
    pile sessions onto few shards; hot-spot rebalancing must migrate
    sessions off the hot shard and the whole load must still drain with
    every request served."""
    from repro.core.engine import TiledEngine

    config = HiMAConfig(
        memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
        two_stage_sort=False,
    )
    engines = [TiledEngine(config, rng=0) for _ in range(4)]
    scripts = generate_zipf_scripts(
        input_size=16, num_sessions=24, num_tenants=6,
        zipf_exponent=1.4, mean_session_len=6.0,
        mean_interarrival_ticks=0.5, rng=11,
    )
    with ShardedServer(
        engines,
        max_batch=8, max_wait_ticks=1,
        queue_capacity=4096, session_capacity=16,
        placement=ConsistentHashPlacement(key_of=tenant_of),
        rebalance=HotSpotRebalance(max_spread=2, max_moves=2),
        parallel=False,
    ) as cluster:
        results = run_open_loop(cluster, scripts)
    assert cluster.migrations > 0  # the hot shard actually shed load
    completed = sum(len(v) for v in results.values())
    assert completed == sum(s.length for s in scripts)
    assert all(
        r.done and r.error is None for v in results.values() for r in v
    )
