"""Serving throughput — micro-batched sessions vs one-at-a-time.

Drives the same 16-concurrent-session workload through the
:class:`repro.serve.SessionServer` (dynamic micro-batching over one
shared :class:`~repro.core.engine.TiledEngine`) and through a
serve-one-session-at-a-time baseline, and writes the result to
``BENCH_serve_load.json`` at the repo root under the schema registered
in :mod:`repro.eval.bench_schema` (``SERVE_ENTRY_KEYS``)::

    {
      "concurrent_sessions": 16, "requests_per_sec": x,
      "speedup_vs_sequential": y, "p50_wait_ticks": ..., ...
    }

Asserted floors: micro-batching must deliver >= 3x request throughput at
16 concurrent sessions (the measured ratio tracks the B=16 batched
engine speedup, typically well above the floor), and the served outputs
must be numerically identical (<= 1e-10, float64) to each session
running alone through the unbatched engine.
"""

import json
import pathlib

from repro.core.config import HiMAConfig
from repro.eval.bench_schema import validate_serve_load
from repro.serve import SessionServer, generate_scripts, measure_serve_load, run_open_loop

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_serve_load.json"

#: Same trajectory config as bench_batched_throughput: small enough that
#: per-step engine overhead (what micro-batching amortizes) dominates,
#: keeping the measured ratio stable on loaded CI machines.
SERVE_CONFIG = dict(
    memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
    two_stage_sort=False,
)


def test_serve_load_trajectory():
    result = measure_serve_load(
        HiMAConfig(**SERVE_CONFIG),
        num_sessions=16, steps_per_session=8,
        max_batch=16, max_wait_ticks=1, repeats=5,
    )
    # Always leave the artifact on disk, even if the floors fail below:
    # a regressing run should still record what it measured.
    ARTIFACT.write_text(json.dumps(result.to_json(), indent=2) + "\n")
    assert result.microbatch_max_abs_diff <= 1e-10
    assert result.speedup_vs_sequential >= 3.0
    # Full concurrency + whole streams queued up front: every dispatched
    # batch should be full.
    assert result.mean_batch_occupancy >= 8.0
    assert result.admission_rejects == 0


def test_serve_load_artifact_schema_valid():
    """The artifact written above satisfies the published contract."""
    problems = validate_serve_load(json.loads(ARTIFACT.read_text()))
    assert problems == [], "\n".join(problems)


def test_serve_poisson_load_completes():
    """Poisson-ish staggered arrivals drain cleanly with bounded waits."""
    from repro.core.engine import TiledEngine

    engine = TiledEngine(HiMAConfig(**SERVE_CONFIG), rng=0)
    scripts = generate_scripts(
        input_size=engine.reference.config.input_size,
        num_sessions=12, mean_session_len=6.0,
        mean_interarrival_ticks=1.5, rng=7,
    )
    server = SessionServer(
        engine, max_batch=8, max_wait_ticks=2,
        queue_capacity=4096, session_capacity=32,
    )
    results = run_open_loop(server, scripts)
    completed = sum(len(v) for v in results.values())
    assert completed == sum(s.length for s in scripts)
    assert all(r.done and r.error is None for v in results.values() for r in v)
    p50, p95 = server.metrics.wait_percentiles()
    assert p95 is not None
