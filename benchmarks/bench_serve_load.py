"""Serving throughput — micro-batched sessions vs one-at-a-time.

Drives the same 16-concurrent-session workload through the
:class:`repro.serve.SessionServer` (dynamic micro-batching over one
shared :class:`~repro.core.engine.TiledEngine`) and through a
serve-one-session-at-a-time baseline, and writes the result to
``BENCH_serve_load.json`` at the repo root under the schema registered
in :mod:`repro.eval.bench_schema` (``SERVE_ENTRY_KEYS``)::

    {
      "concurrent_sessions": 16, "requests_per_sec": x,
      "speedup_vs_sequential": y, "state_arena": true, ...,
      "variants": {
        "state_arena":       {...},   # resident slot-pinned hot path
        "gather_scatter":    {...},   # PR 3 per-tick pack/unpack fallback
        "backend_reference": {...},   # kernel-backend A/B under the
        "backend_tuned":     {...}    # full arena serving stack
      }                               # (+ backend_torch when importable)
    }

Asserted floors (conservative, as ever — the measured ratios typically
sit well above them): micro-batching must deliver >= 3x request
throughput at 16 concurrent sessions (tracks the B=16 batched engine
speedup); the resident state arena must beat the gather/scatter path's
request throughput (>= 1.15x floor; the interleaved A/B typically
measures ~1.5-1.6x on the state-heavy config on quiet hardware, which
is what the artifact records) while copying an order of magnitude less
session state; and the served outputs must be numerically identical (<= 1e-10,
float64) to each session running alone through the unbatched engine on
**both** state paths.
"""

import json
import pathlib

from repro.core.config import HiMAConfig
from repro.eval.bench_schema import merge_artifact, validate_serve_load
from repro.core.backend import available_backends
from repro.serve import (
    SessionServer,
    generate_scripts,
    measure_serve_ab,
    measure_serve_backend_ab,
    measure_serve_load,
    run_open_loop,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_serve_load.json"

#: Same trajectory config as bench_batched_throughput: small enough that
#: per-step engine overhead (what micro-batching amortizes) dominates,
#: keeping the measured ratio stable on loaded CI machines.
SERVE_CONFIG = dict(
    memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
    two_stage_sort=False,
)

#: State-heavy A/B config for the arena-vs-gather/scatter variants: a
#: large N^2 linkage with a single read head, so per-tick state movement
#: — the thing the arena eliminates — is a visible fraction of the step
#: instead of drowning under R-scaled forward/backward compute.
SERVE_AB_CONFIG = dict(
    memory_size=384, word_size=16, num_reads=1, num_tiles=8, hidden_size=32,
    two_stage_sort=False,
)


def _merge_artifact(update: dict) -> None:
    """Read-modify-write the serve JSON, preserving other entries."""
    merge_artifact(ARTIFACT, update)


def test_serve_load_trajectory():
    result = measure_serve_load(
        HiMAConfig(**SERVE_CONFIG),
        num_sessions=16, steps_per_session=8,
        max_batch=16, max_wait_ticks=1, repeats=5,
    )
    # Always leave the artifact on disk, even if the floors fail below:
    # a regressing run should still record what it measured.  Top level
    # carries the hot path (the arena, the server default).
    _merge_artifact(result.to_json())
    assert result.state_arena
    assert result.microbatch_max_abs_diff <= 1e-10
    assert result.speedup_vs_sequential >= 3.0
    # Full concurrency + whole streams queued up front: every dispatched
    # batch should be full.
    assert result.mean_batch_occupancy >= 8.0
    assert result.admission_rejects == 0


def test_serve_state_path_ab_trajectory():
    """Resident arena vs PR 3 gather/scatter on the state-heavy config.

    The tentpole measurement: pinning sessions to arena slots removes the
    two full per-tick state copies, which at 16 concurrent sessions and
    N=384 single-head sessions typically measures ~1.5-1.6x request
    throughput on quiet hardware (recorded in the artifact).  The
    asserted floor is 1.15x — conservative like every floor in this
    file, so shared-runner noise cannot fail tier-1 — while the
    state-bytes counters pin the mechanism itself exactly: the arena
    copies one slot per join, the fallback two full batches per tick.
    """
    arena, gather_scatter = measure_serve_ab(
        HiMAConfig(**SERVE_AB_CONFIG),
        num_sessions=16, steps_per_session=4,
        max_batch=16, max_wait_ticks=1, repeats=7,
    )
    _merge_artifact({
        "variants": {
            "state_arena": arena.to_json(),
            "gather_scatter": gather_scatter.to_json(),
        },
    })
    assert arena.state_arena and not gather_scatter.state_arena
    for result in (arena, gather_scatter):
        assert result.microbatch_max_abs_diff <= 1e-10
        assert result.mean_batch_occupancy >= 8.0
        assert result.admission_rejects == 0
    # Wall-clock floor (conservative; measured is typically >= 1.5x).
    assert arena.requests_per_sec >= 1.15 * gather_scatter.requests_per_sec
    # The mechanism, exactly: 16 join writes vs 2 * 16 rows * 4 ticks.
    assert arena.state_bytes_copied * 4 <= gather_scatter.state_bytes_copied


def test_serve_backend_ab_trajectory():
    """Kernel-backend A/B under the full resident-arena serving stack.

    The serving path steps masked batches through the fused *in-place*
    write — a different kernel entry point than the batched-throughput
    A/B — so this variant pair prices the backend swap where a
    deployment actually runs it.  The floors are correctness-first:
    served-vs-solo must stay <= 1e-10 under a non-default backend (the
    seam cannot cost the serving stack its determinism bar), and the
    tuned backend must not materially regress serving throughput.  The
    recorded entries carry the measured ratio for the trajectory.
    """
    backends = ["reference", "tuned"]
    if "torch" in available_backends():
        backends.append("torch")
    results = measure_serve_backend_ab(
        HiMAConfig(**SERVE_AB_CONFIG),
        backends=tuple(backends),
        num_sessions=16, steps_per_session=4,
        max_batch=16, max_wait_ticks=1, repeats=7,
    )
    _merge_artifact({
        "variants": {
            f"backend_{name}": result.to_json()
            for name, result in results.items()
        },
    })
    for name in ("reference", "tuned"):
        result = results[name]
        assert result.state_arena
        assert result.backend == name
        # Served-vs-solo determinism holds per backend — the serving
        # stack's bar, independent of which kernels step it.
        assert result.microbatch_max_abs_diff <= 1e-10
        assert result.mean_batch_occupancy >= 8.0
        assert result.admission_rejects == 0
    # The tuned backend must never tax serving (conservative floor;
    # its in-place panel sweep typically wins on this config).
    assert (
        results["tuned"].requests_per_sec
        >= 0.95 * results["reference"].requests_per_sec
    )


def test_serve_load_artifact_schema_valid():
    """The artifact written above satisfies the published contract."""
    problems = validate_serve_load(json.loads(ARTIFACT.read_text()))
    assert problems == [], "\n".join(problems)


def test_serve_poisson_load_completes():
    """Poisson-ish staggered arrivals drain cleanly with bounded waits."""
    from repro.core.engine import TiledEngine

    engine = TiledEngine(HiMAConfig(**SERVE_CONFIG), rng=0)
    scripts = generate_scripts(
        input_size=engine.reference.config.input_size,
        num_sessions=12, mean_session_len=6.0,
        mean_interarrival_ticks=1.5, rng=7,
    )
    with SessionServer(
        engine, max_batch=8, max_wait_ticks=2,
        queue_capacity=4096, session_capacity=32,
    ) as server:
        results = run_open_loop(server, scripts)
    completed = sum(len(v) for v in results.values())
    assert completed == sum(s.length for s in scripts)
    assert all(r.done and r.error is None for v in results.values() for r in v)
    p50, p95 = server.metrics.wait_percentiles()
    assert p95 is not None
