"""Benchmark helpers: every bench regenerates its paper table/figure.

Rendered experiment tables are written to ``benchmarks/results/<id>.txt``
(and echoed to stdout, visible with ``pytest -s``), so
``pytest benchmarks/ --benchmark-only`` leaves the full reproduction
artifacts on disk alongside the timing numbers.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist an ExperimentResult's rendering and echo it."""

    def _save(result) -> str:
        text = result.render()
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return text

    return _save


def full_scale_requested() -> bool:
    """Opt into the full 20-task Figure 10 run via REPRO_FULL=1."""
    return os.environ.get("REPRO_FULL", "0") == "1"
