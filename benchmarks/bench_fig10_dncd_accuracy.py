"""Figure 10 — DNC-D inference error over DNC across the QA tasks.

Default: a reduced run (5 representative tasks, shortened training) that
finishes in a few minutes.  Set ``REPRO_FULL=1`` to run all 20 tasks at
the full (laptop-scale) budget.  Also benchmarks a single training step —
the unit of work the accuracy study is built from.
"""

import numpy as np
import pytest

from benchmarks.conftest import full_scale_requested
from repro.autodiff import Tensor
from repro.dnc import DNC, DNCConfig
from repro.eval import fig10
from repro.nn import Adam
from repro.nn.losses import softmax_cross_entropy
from repro.tasks.babi import BabiTaskSuite, encode_example

QUICK_SETTINGS = fig10.Fig10Settings(
    task_ids=(6, 15),
    train_steps=700,
    finetune_steps=200,
    eval_examples=40,
    tile_counts=(2, 4),
    skim_rates=(0.0, 0.2, 0.5),
    skim_tiles=2,
)


def test_fig10_accuracy_study(benchmark, save_result):
    settings = None if full_scale_requested() else QUICK_SETTINGS
    result = benchmark.pedantic(
        fig10.run, args=(settings,), rounds=1, iterations=1
    )
    save_result(result)
    mean_row = result.rows[-1]
    assert mean_row[0] == "mean"
    # Shape target: heavy skimming (last column) hurts more than none.
    no_skim = float(mean_row[-3])
    heavy_skim = float(mean_row[-1])
    assert heavy_skim >= no_skim


def test_dnc_training_step(benchmark):
    """One forward+backward+update on a bAbI episode (the fig10 unit)."""
    suite = BabiTaskSuite(rng=0)
    vocab = suite.vocabulary()
    model = DNC(
        DNCConfig(input_size=len(vocab), output_size=len(vocab),
                  memory_size=16, word_size=8, num_reads=1, hidden_size=48),
        rng=0,
    )
    optimizer = Adam(model.parameters(), lr=3e-3)
    inputs, answer_id = encode_example(suite.generate(1, 1)[0], vocab)
    target = np.zeros(len(vocab))
    target[answer_id] = 1.0

    def step():
        optimizer.zero_grad()
        outputs, _ = model(Tensor(inputs))
        loss = softmax_cross_entropy(outputs[-1], target)
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark(step)
    assert np.isfinite(loss)
