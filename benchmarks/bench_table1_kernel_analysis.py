"""Table 1 — DNC kernel analysis.

Regenerates the kernel taxonomy with model + measured access counts and
benchmarks the instrumented reference DNC timestep that produces the
measured columns.
"""

import numpy as np
import pytest

from repro.core.config import HiMAConfig
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig
from repro.eval import table1


@pytest.fixture(scope="module")
def reference_model():
    model = NumpyDNC(
        NumpyDNCConfig(input_size=64, output_size=64, memory_size=1024,
                       word_size=64, num_reads=4, hidden_size=256),
        rng=0,
    )
    return model


def test_table1_regeneration(benchmark, save_result):
    result = benchmark(table1.run, HiMAConfig(), 1)
    save_result(result)
    assert len(result.rows) == 13


def test_reference_dnc_timestep(benchmark, reference_model):
    """One full instrumented DNC timestep at paper scale (1024 x 64)."""
    state = reference_model.initial_state()
    x = np.zeros(64)

    def step():
        reference_model.step(x, state)

    benchmark(step)
