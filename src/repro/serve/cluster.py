"""Sharded multi-engine serving: a router over N engine shards.

:class:`ShardedServer` scales the serving layer horizontally the way
HiMA-D scales memory access: partition the state and move the work to
where the state lives.  Each :class:`~repro.serve.shard.EngineShard`
owns a complete engine + arena + batcher and serves its resident
sessions independently; the cluster front-end only routes — it places
new sessions with a pluggable
:class:`~repro.serve.router.PlacementPolicy`, forwards submits to the
owning shard, drives every shard once per :meth:`run_tick` (optionally
thread-parallel: shards share nothing, so concurrent ticks are
bit-identical to sequential ones), and aggregates the per-shard
:class:`~repro.serve.metrics.ServerMetrics` into one cluster snapshot
via :meth:`ServerMetrics.merge`.

Hot spots rebalance through the checkpoint path: a
:class:`~repro.serve.router.RebalancePolicy` plans migrations between
ticks, and :meth:`migrate_session` moves a live session — state bytes
(:meth:`EngineShard.detach_session`) plus its pending request FIFO —
onto another shard with exactly one slot read and one slot write.
Because every engine carries identical weights (enforced at
construction) and state round-trips bitwise through
:meth:`~repro.dnc.numpy_ref.NumpyDNCState.to_bytes`, a migrated
session's post-migration trajectory is bit-identical to never having
moved, given equal dispatch order — and any served trajectory matches
solo unbatched stepping to <= 1e-10 exactly like the single-engine
server (pinned in ``tests/test_serve_cluster.py``).

The 1-shard cluster is behaviorally the single
:class:`~repro.serve.server.SessionServer` (the same
:class:`EngineShard` runs underneath), so the sharded front-end costs
nothing when you don't shard.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.engine import TiledEngine
from repro.dnc.numpy_ref import NumpyDNCState
from repro.errors import CapacityError, ConfigError
from repro.obs import PhaseTimer, Tracer
from repro.serve.batcher import StepRequest
from repro.serve.metrics import ServerMetrics
from repro.serve.router import (
    LeastLoadedPlacement,
    PlacementPolicy,
    RebalancePolicy,
)
from repro.serve.shard import EngineShard

#: Weight arrays compared across shard engines at construction: identical
#: configs with different seeds would serve *valid-looking* but wrong
#: trajectories after a migration, so the mismatch must fail fast.
_WEIGHT_ATTRS = ("w_x", "w_h", "b", "w_if", "b_if", "w_y", "b_y")


class ShardedServer:
    """Route sessions across N engine shards behind one server API.

    Construct from explicit ``engines`` (one per shard, identical
    config and weights — build them with the same ``HiMAConfig`` and
    rng seed) or from ``engine_factory`` + ``num_shards``.  The
    session/batching knobs are per shard: a 4-shard cluster with
    ``session_capacity=16`` holds 64 sessions total.

    ``parallel=True`` drives the shards' ticks from a thread pool.
    Shards share no state, so the results are bit-identical to
    sequential ticking — the threads only overlap the engines' numpy
    work on separate cores.  The pool defaults to
    ``min(num_shards, cpu_count)`` workers; pass ``parallel_workers``
    to force a specific width (``parallel_workers=num_shards`` is the
    thread-per-shard topology — every shard gets its own execution
    context regardless of the box, the configuration a threaded serving
    deployment actually runs and the apples-to-apples baseline for the
    process-cluster comparison in
    :func:`~repro.serve.loadgen.measure_proc_serve`).
    """

    def __init__(
        self,
        engines: Optional[Sequence[TiledEngine]] = None,
        *,
        engine_factory: Optional[Callable[[], TiledEngine]] = None,
        num_shards: Optional[int] = None,
        max_batch: int = 16,
        max_wait_ticks: int = 2,
        queue_capacity: int = 1024,
        session_capacity: int = 64,
        session_ttl_ticks: Optional[int] = None,
        state_arena: bool = True,
        placement: Optional[PlacementPolicy] = None,
        rebalance: Optional[RebalancePolicy] = None,
        parallel: bool = True,
        parallel_workers: Optional[int] = None,
        admission_spill: bool = False,
        tracer: Optional[Tracer] = None,
        profile: bool = False,
    ):
        if parallel_workers is not None and parallel_workers < 1:
            raise ConfigError(
                f"parallel_workers must be >= 1 or None, got "
                f"{parallel_workers}"
            )
        if engines is None:
            if engine_factory is None or num_shards is None:
                raise ConfigError(
                    "ShardedServer needs either engines= or "
                    "engine_factory= with num_shards="
                )
            if num_shards < 1:
                raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
            engines = [engine_factory() for _ in range(num_shards)]
        engines = list(engines)
        if not engines:
            raise ConfigError("ShardedServer needs at least one engine")
        self._check_uniform_engines(engines)
        #: Shared request tracer (``None`` = tracing off).  One ring for
        #: the whole cluster: shard ticks append concurrently (atomic
        #: deque appends), so the cluster's spans interleave exactly as
        #: they completed.
        self.tracer = tracer
        self.shards: List[EngineShard] = [
            EngineShard(
                engine,
                shard_id=index,
                max_batch=max_batch,
                max_wait_ticks=max_wait_ticks,
                queue_capacity=queue_capacity,
                session_capacity=session_capacity,
                session_ttl_ticks=session_ttl_ticks,
                state_arena=state_arena,
                metrics=ServerMetrics(),
                tracer=tracer,
                profiler=PhaseTimer() if profile else None,
            )
            for index, engine in enumerate(engines)
        ]
        self.placement = placement if placement is not None else LeastLoadedPlacement()
        self.rebalance = rebalance
        self.parallel = parallel
        self.parallel_workers = parallel_workers
        #: When the placed shard refuses an open, try the remaining
        #: shards in next-best order before giving up.  Off by default —
        #: strict placement (a consistent-hash tier relies on sessions
        #: landing where the hash says) stays the historical behavior.
        self.admission_spill = admission_spill
        #: Front-door-local counters (admission spills); merged into
        #: :meth:`cluster_metrics` alongside the per-shard metrics.
        self.metrics = ServerMetrics()
        #: Cluster ticks driven (each drives every shard once).
        self.tick = 0
        #: Sessions migrated between shards over the cluster's lifetime.
        self.migrations = 0
        self._shard_of: Dict[str, int] = {}
        self._session_counter = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        # Oldest-first router.submit contexts of traced requests not yet
        # dispatched: the next cluster tick parents its span on the
        # oldest one, attributing the tick to the request it serves.
        self._pending_traces: List[tuple] = []

    @staticmethod
    def _check_uniform_engines(engines: Sequence[TiledEngine]) -> None:
        first = engines[0]
        for index, engine in enumerate(engines[1:], start=1):
            if engine.config != first.config:
                raise ConfigError(
                    f"shard engine {index} config differs from shard 0; "
                    "sessions could not migrate between them"
                )
            for attr in _WEIGHT_ATTRS:
                if not np.array_equal(
                    getattr(engine.reference, attr),
                    getattr(first.reference, attr),
                ):
                    raise ConfigError(
                        f"shard engine {index} weights ({attr}) differ from "
                        "shard 0; build every shard engine from the same "
                        "config and rng seed"
                    )

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def queue_depth(self) -> int:
        """Total queued step requests across all shards."""
        return sum(shard.queue_depth for shard in self.shards)

    @property
    def session_count(self) -> int:
        return len(self._shard_of)

    def shard_of(self, session_id: str) -> int:
        """The shard index currently owning ``session_id``."""
        try:
            return self._shard_of[session_id]
        except KeyError:
            raise ConfigError(f"unknown session {session_id!r}") from None

    def _owner(self, session_id: str) -> EngineShard:
        return self.shards[self.shard_of(session_id)]

    # ------------------------------------------------------------------
    def open_session(self, session_id: Optional[str] = None) -> Optional[str]:
        """Place and admit a new session; ``None`` when the shard refuses."""
        if session_id is None:
            while f"session-{self._session_counter}" in self._shard_of:
                self._session_counter += 1
            session_id = f"session-{self._session_counter}"
            self._session_counter += 1
        elif session_id in self._shard_of:
            raise ConfigError(f"session {session_id!r} already exists")
        first = self.placement.place(session_id, self.shards)
        if not 0 <= first < len(self.shards):
            raise ConfigError(
                f"placement policy returned shard {first}, cluster has "
                f"{len(self.shards)}"
            )
        candidates = [first]
        if self.admission_spill:
            candidates += sorted(
                (i for i in range(len(self.shards)) if i != first),
                key=lambda i: (
                    self.shards[i].load, self.shards[i].queue_depth, i
                ),
            )
        for attempt, index in enumerate(candidates):
            opened = self.shards[index].open_session(session_id)
            # Admission may have LRU/TTL-evicted another resident session
            # to make room — resync the routing table immediately (not
            # just at the next tick) so the victim cannot linger as a
            # phantom entry.
            self._sync_departures()
            if opened is not None:
                if attempt > 0:
                    self.metrics.admission_spills += 1
                self._shard_of[opened] = index
                return opened
        return None

    def close_session(self, session_id: str) -> None:
        self._owner(session_id).close_session(session_id)
        del self._shard_of[session_id]

    def submit(
        self,
        session_id: str,
        x: np.ndarray,
        trace: Optional[tuple] = None,
    ) -> Optional[StepRequest]:
        """Forward one timestep to the owning shard (same contract).

        With a tracer attached the routing hop is a ``router.submit``
        span (child of ``trace`` when the frontend propagated one) and
        the shard's submit span parents on it.
        """
        tracer = self.tracer
        if tracer is None:
            return self._owner(session_id).submit(session_id, x, trace=trace)
        span = tracer.start(
            "router.submit", parent=trace, attrs={"session": session_id}
        )
        request = self._owner(session_id).submit(
            session_id, x, trace=span.context
        )
        tracer.end(span, accepted=request is not None)
        if request is not None:
            self._pending_traces.append(span.context)
        return request

    # ------------------------------------------------------------------
    def session_state(self, session_id: str) -> NumpyDNCState:
        return self._owner(session_id).session_state(session_id)

    def restore_session_state(
        self, session_id: str, state: NumpyDNCState
    ) -> None:
        self._owner(session_id).restore_session_state(session_id, state)

    def checkpoint_session(self, session_id: str) -> bytes:
        """The owning shard's :meth:`EngineShard.checkpoint_session`."""
        return self._owner(session_id).checkpoint_session(session_id)

    def restore_session(self, session_id: str, payload: bytes) -> str:
        """Restore a checkpoint, placing the session first if unknown."""
        if session_id in self._shard_of:
            return self._owner(session_id).restore_session(session_id, payload)
        index = self.placement.place(session_id, self.shards)
        self.shards[index].restore_session(session_id, payload)
        # The admitting open may have evicted a resident session (see
        # open_session): resync before registering the restored one.
        self._sync_departures()
        self._shard_of[session_id] = index
        return session_id

    def migrate_session(self, session_id: str, dst_shard: int) -> None:
        """Move a live session to ``dst_shard`` mid-stream.

        Checkpoint bytes plus the pending request FIFO leave the source
        (:meth:`EngineShard.detach_session`) and land on the destination
        (:meth:`EngineShard.attach_session`): one slot read, one slot
        write, zero failed requests, and — at equal dispatch order — a
        bit-identical continued trajectory.  Raises
        :class:`~repro.errors.CapacityError` when the destination is
        full (the session stays where it was).
        """
        src_index = self.shard_of(session_id)
        if not 0 <= dst_shard < len(self.shards):
            raise ConfigError(
                f"destination shard {dst_shard} out of range "
                f"(cluster has {len(self.shards)})"
            )
        if dst_shard == src_index:
            return
        dst = self.shards[dst_shard]
        if dst.load >= dst.store.capacity:
            raise CapacityError(
                f"shard {dst_shard} is full; cannot migrate {session_id!r}"
            )
        payload, pending = self.shards[src_index].detach_session(session_id)
        dst.attach_session(session_id, payload, pending)
        self._shard_of[session_id] = dst_shard
        self.migrations += 1

    # ------------------------------------------------------------------
    def run_tick(self) -> List[StepRequest]:
        """Drive every shard one tick; then apply the rebalance policy.

        Completed requests return in shard order (deterministic whatever
        the thread interleaving — each shard's work is self-contained).
        Sessions the shards evicted during the tick leave the routing
        table before the rebalancer runs, so it never plans a move for a
        dead session.
        """
        tick_ctx = None
        tick_span = None
        if self.tracer is not None:
            parent = self._pending_traces[0] if self._pending_traces else None
            tick_span = self.tracer.start(
                "cluster.tick", parent=parent, attrs={"tick": self.tick}
            )
            tick_ctx = tick_span.context
        if self.parallel and len(self.shards) > 1:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=(
                        self.parallel_workers
                        if self.parallel_workers is not None
                        else min(len(self.shards), os.cpu_count() or 1)
                    ),
                    thread_name_prefix="engine-shard",
                )
            per_shard = list(
                self._executor.map(
                    lambda shard: shard.run_tick(trace=tick_ctx), self.shards
                )
            )
        else:
            per_shard = [shard.run_tick(trace=tick_ctx) for shard in self.shards]
        if tick_span is not None:
            self.tracer.end(
                tick_span,
                completed=sum(len(batch) for batch in per_shard),
            )
        self._pending_traces.clear()
        self.tick += 1
        self._sync_departures()
        if self.rebalance is not None:
            for session_id, src, dst in self.rebalance.plan(self.shards):
                if self._shard_of.get(session_id) != src:
                    continue  # plan went stale (closed/evicted/moved)
                self.migrate_session(session_id, dst)
        return [request for batch in per_shard for request in batch]

    def _sync_departures(self) -> None:
        """Drop routing entries for sessions their shard evicted."""
        stale = [
            session_id
            for session_id, index in self._shard_of.items()
            if session_id not in self.shards[index].store
        ]
        for session_id in stale:
            del self._shard_of[session_id]

    def drain(self, max_ticks: int = 10_000) -> List[StepRequest]:
        """Run cluster ticks until every shard's queue is empty."""
        completed: List[StepRequest] = []
        for _ in range(max_ticks):
            if self.queue_depth == 0:
                return completed
            completed.extend(self.run_tick())
        raise ConfigError(
            f"drain did not empty the queues within {max_ticks} ticks"
        )

    def close(self) -> None:
        """Shut down the tick thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def cluster_metrics(self) -> ServerMetrics:
        """Exact merge of every shard's metrics (see ServerMetrics.merge)."""
        return ServerMetrics.merge(
            [self.metrics] + [shard.metrics for shard in self.shards]
        )

    def cluster_profile(self) -> Dict[str, Dict[str, float]]:
        """Merged per-phase engine profile across shards (empty if off)."""
        merged = PhaseTimer()
        for shard in self.shards:
            merged.merge(shard.phase_stats())
        return merged.stats()

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able cluster snapshot: merged metrics + topology."""
        snap = self.cluster_metrics().snapshot()
        snap["shards"] = len(self.shards)
        snap["cluster_ticks"] = self.tick
        snap["sessions_migrated"] = self.migrations
        snap["per_shard"] = [
            {
                "shard_id": shard.shard_id,
                "sessions": shard.load,
                "queue_depth": shard.queue_depth,
                "requests_completed": shard.metrics.requests_completed,
            }
            for shard in self.shards
        ]
        return snap


__all__ = ["ShardedServer"]
