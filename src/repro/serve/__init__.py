"""``repro.serve`` — micro-batching multi-session inference serving.

The serving layer turns the batched engine (PRs 1–2) into a multi-user
service: many independent, asynchronously arriving DNC sessions share
one :class:`~repro.core.engine.TiledEngine`, with per-session state
resident in a slot-pinned :class:`StateArena` (admission/eviction
bookkeeping in a capacity-bounded :class:`SessionStore`), scheduling by
a :class:`MicroBatcher`, and the whole loop driven by
:class:`SessionServer`.  :mod:`repro.serve.loadgen` generates
deterministic open-loop traffic and measures served throughput for
``BENCH_serve_load.json``.

Quickstart::

    from repro import HiMAConfig, TiledEngine
    from repro.serve import SessionServer

    server = SessionServer(TiledEngine(HiMAConfig(
        memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
        two_stage_sort=False,
    )))
    sid = server.open_session()
    request = server.submit(sid, x)      # x: (input_size,)
    server.run_tick()                    # one batched engine step
    print(request.y, request.wait_ticks)
"""

from repro.serve.arena import StateArena
from repro.serve.batcher import MicroBatcher, StepRequest
from repro.serve.loadgen import (
    ServeLoadResult,
    SessionScript,
    generate_scripts,
    measure_serve_ab,
    measure_serve_load,
    run_open_loop,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.server import SessionServer
from repro.serve.session import SessionRecord, SessionStore

__all__ = [
    "StateArena",
    "MicroBatcher",
    "StepRequest",
    "ServeLoadResult",
    "SessionScript",
    "generate_scripts",
    "measure_serve_ab",
    "measure_serve_load",
    "run_open_loop",
    "ServerMetrics",
    "SessionServer",
    "SessionRecord",
    "SessionStore",
]
