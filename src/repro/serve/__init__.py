"""``repro.serve`` — micro-batching multi-session inference serving.

The serving layer turns the batched engine (PRs 1–2) into a multi-user
service: many independent, asynchronously arriving DNC sessions share
an engine, with per-session state resident in a slot-pinned
:class:`StateArena` (admission/eviction bookkeeping in a
capacity-bounded :class:`SessionStore`), scheduling by a
:class:`MicroBatcher`, and the loop driven by an engine-owning worker.

Two server front doors share that worker (:class:`EngineShard`):

* :class:`SessionServer` — the single-engine server (the 1-shard
  special case, API unchanged since PR 3);
* :class:`ShardedServer` — a router + engine-shard cluster: N shards,
  pluggable session placement (:class:`LeastLoadedPlacement` /
  :class:`RoundRobinPlacement` / :class:`ConsistentHashPlacement`),
  optional rebalancing (:class:`HotSpotRebalance` /
  :class:`QueueDepthRebalance`) over the checkpoint-based migration
  path, thread-parallel ticks, and exact cluster-wide metrics via
  :meth:`ServerMetrics.merge`.

A third front door leaves the process: :class:`ProcCluster` hosts each
shard in its own worker *process* (length-prefixed framed RPC, true
parallel ticks, one failure domain per worker) with checkpoint/replay
crash recovery through a :class:`CheckpointSupervisor` — a SIGKILLed
worker's sessions are restored on a replacement process with their
trajectories intact.  :class:`AsyncFrontend` wraps any of the three in
an awaitable per-request asyncio API.

:mod:`repro.serve.loadgen` generates deterministic open-loop traffic —
uniform or Zipf-tenant-skewed (:func:`generate_zipf_scripts`, the
hot-shard mix) — and measures served throughput for
``BENCH_serve_load.json`` and ``BENCH_shard_scaling.json``.

Quickstart::

    from repro import HiMAConfig, TiledEngine
    from repro.serve import SessionServer

    server = SessionServer(TiledEngine(HiMAConfig(
        memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
        two_stage_sort=False,
    )))
    sid = server.open_session()
    request = server.submit(sid, x)      # x: (input_size,)
    server.run_tick()                    # one batched engine step
    print(request.y, request.wait_ticks)
"""

from repro.serve.arena import StateArena
from repro.serve.batcher import MicroBatcher, StepRequest
from repro.serve.cluster import ShardedServer
from repro.serve.frontend import AsyncFrontend
from repro.serve.loadgen import (
    ProcServeResult,
    ServeLoadResult,
    SessionScript,
    ShardScalingResult,
    generate_scripts,
    generate_zipf_scripts,
    large_n_sparse_config,
    measure_proc_serve,
    measure_serve_ab,
    measure_serve_backend_ab,
    measure_serve_load,
    measure_serve_memory_sweep,
    measure_serve_tracing_ab,
    measure_shard_scaling,
    run_open_loop,
    run_rolling_restart,
    tenant_of,
    timed_call,
    timed_reps,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.proc import ProcCluster, ProcWorker
from repro.serve.router import (
    ConsistentHashPlacement,
    HotSpotRebalance,
    LeastLoadedPlacement,
    PlacementPolicy,
    QueueDepthRebalance,
    RebalancePolicy,
    RoundRobinPlacement,
)
from repro.serve.server import SessionServer
from repro.serve.session import SessionRecord, SessionStore
from repro.serve.shard import EngineShard
from repro.serve.supervisor import CheckpointSupervisor

__all__ = [
    "StateArena",
    "MicroBatcher",
    "StepRequest",
    "ShardedServer",
    "AsyncFrontend",
    "ProcServeResult",
    "ServeLoadResult",
    "SessionScript",
    "ShardScalingResult",
    "generate_scripts",
    "generate_zipf_scripts",
    "measure_proc_serve",
    "large_n_sparse_config",
    "measure_serve_ab",
    "measure_serve_backend_ab",
    "measure_serve_load",
    "measure_serve_memory_sweep",
    "measure_serve_tracing_ab",
    "measure_shard_scaling",
    "run_open_loop",
    "run_rolling_restart",
    "tenant_of",
    "timed_call",
    "timed_reps",
    "ServerMetrics",
    "ProcCluster",
    "ProcWorker",
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "RoundRobinPlacement",
    "ConsistentHashPlacement",
    "RebalancePolicy",
    "HotSpotRebalance",
    "QueueDepthRebalance",
    "SessionServer",
    "SessionRecord",
    "SessionStore",
    "EngineShard",
    "CheckpointSupervisor",
]
