"""Resident-slot state arena: session state that never leaves the batch.

:class:`StateArena` is the serving layer's answer to the per-tick
gather/scatter tax: instead of packing K independent unbatched states
into a fresh batched state every scheduler tick (and unpacking them
right after), every session is pinned to one **slot** — one row of a
single preallocated ``(B_max, ...)`` batched
:class:`~repro.dnc.numpy_ref.NumpyDNCState` — at ``open_session`` time
and lives there until it closes or is evicted.  The engine's masked
step (:meth:`repro.core.engine.TiledEngine.step` with ``active=``)
then advances the dispatched slots *in place*, so per-session state is
copied exactly twice in its lifetime:

* **join** — one slot write (:meth:`bind` zeroes the row; a checkpoint
  restore goes through :meth:`write_slot`);
* **leave/drain** — one slot read (:meth:`read_slot`), which is also
  the checkpoint path.

``gather_states`` / ``scatter_states`` survive as the serving layer's
checkpoint/fallback path (``SessionServer(state_arena=False)``), not
its hot path.

Slot lifetime: a slot freed by :meth:`release` returns to the free list
and is reused by the next :meth:`bind` (lowest-numbered free slot
first, so occupancy stays dense at the front of the arena and the
engine's zero-copy dense fast path triggers whenever every slot is
dispatched).  Freed slots are *not* scrubbed — :meth:`bind` resets the
row, so a departed session's state is unreachable through the API.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.dnc.numpy_ref import NumpyDNCState
from repro.errors import CapacityError, ConfigError


class StateArena:
    """Slot-pinned resident batched state for up to ``capacity`` sessions.

    ``state_factory`` is :meth:`TiledEngine.initial_state` (or anything
    with the same ``batch_size=`` signature); the arena allocates the
    full ``(capacity, ...)`` batched state once, up front — admission
    control (the session store's capacity) is what bounds memory, so
    serving never allocates per-session linkage matrices on the fly.
    """

    def __init__(self, state_factory, capacity: int):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: The resident batched state.  The *object* is the stable handle
        #: (the engine's dense masked step rebinds its field arrays in
        #: place of a copy-back pass); slot ``i`` is row ``i`` of every
        #: field at any moment.
        self.state: NumpyDNCState = state_factory(batch_size=capacity)
        if self.state.batch_size != capacity:
            raise ConfigError(
                f"state_factory produced batch_size={self.state.batch_size}, "
                f"expected {capacity}"
            )
        self._slot_of: Dict[str, int] = {}
        #: Free slots, highest first, so ``pop()`` hands out the lowest.
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._slot_of

    @property
    def occupancy(self) -> int:
        """Number of bound slots."""
        return len(self._slot_of)

    @property
    def row_nbytes(self) -> int:
        """State bytes of one slot (one session's full recurrent context)."""
        return self.state.row_nbytes

    def slot_of(self, session_id: str) -> int:
        try:
            return self._slot_of[session_id]
        except KeyError:
            raise ConfigError(
                f"session {session_id!r} is not bound to a slot"
            ) from None

    def indices(self, session_ids: Sequence[str]) -> np.ndarray:
        """Slots for ``session_ids``, preserving the given order.

        Order preservation matters for numerics: the engine's compact
        masked path gathers rows in this order, so dispatch order — not
        slot numbering — determines batch row order, exactly like the
        gather/scatter fallback path.
        """
        return np.fromiter(
            (self.slot_of(sid) for sid in session_ids),
            dtype=np.intp, count=len(session_ids),
        )

    # ------------------------------------------------------------------
    def bind(self, session_id: str) -> int:
        """Pin a new session to a free slot; resets the row to zeros.

        Returns the slot index.  Raises
        :class:`~repro.errors.CapacityError` when the arena is full and
        :class:`~repro.errors.ConfigError` for a duplicate id.
        """
        if session_id in self._slot_of:
            raise ConfigError(
                f"session {session_id!r} is already bound to slot "
                f"{self._slot_of[session_id]}"
            )
        if not self._free:
            raise CapacityError(
                f"state arena full ({self.capacity} slots bound)"
            )
        slot = self._free.pop()
        for name in NumpyDNCState.FIELDS:
            getattr(self.state, name)[slot] = 0.0
        self._slot_of[session_id] = slot
        return slot

    def release(self, session_id: str) -> int:
        """Unpin a session; its slot returns to the free list."""
        slot = self.slot_of(session_id)
        del self._slot_of[session_id]
        self._free.append(slot)
        return slot

    # ------------------------------------------------------------------
    def read_slot(self, session_id: str) -> NumpyDNCState:
        """Copy a session's row out as an unbatched state (checkpoint read).

        The returned state owns its arrays — it survives the arena (and
        the session) and can be fed back through :meth:`write_slot` or
        the engine's unbatched step.
        """
        slot = self.slot_of(session_id)
        return NumpyDNCState(**{
            name: getattr(self.state, name)[slot].copy()
            for name in NumpyDNCState.FIELDS
        })

    def write_slot(self, session_id: str, state: NumpyDNCState) -> None:
        """Overwrite a session's row from an unbatched state (restore).

        Raises :class:`~repro.errors.ConfigError` for a batched input or
        mismatched field shapes/dtypes (a checkpoint from a different
        engine config cannot land in this arena).
        """
        slot = self.slot_of(session_id)
        if state.batch_size is not None:
            raise ConfigError("write_slot expects an unbatched state")
        for name in NumpyDNCState.FIELDS:
            dst = getattr(self.state, name)
            src = getattr(state, name)
            if src.shape != dst.shape[1:] or src.dtype != dst.dtype:
                raise ConfigError(
                    f"write_slot: field {name!r} has shape {src.shape} dtype "
                    f"{src.dtype}, expected {dst.shape[1:]} {dst.dtype}"
                )
            dst[slot] = src


__all__ = ["StateArena"]
