"""The micro-batching session server: many users, one batched engine.

:class:`SessionServer` is the serving layer's single-engine front door.
Clients open sessions, submit one timestep of input at a time, and the
server packs whatever sessions have pending work into a single batched
:meth:`~repro.core.engine.TiledEngine.step` per scheduler tick — so the
per-request cost approaches the engine's banked B=16 batched throughput
instead of the pay-full-price-per-user sequential path.

Since the sharding PR the implementation lives in
:class:`repro.serve.shard.EngineShard` — the engine-owning worker
(store + batcher + arena + masked-step dispatch) that
:class:`repro.serve.cluster.ShardedServer` composes N of.
``SessionServer`` *is* the 1-shard special case: a subclass pinning
``shard_id=0`` and keeping the original constructor signature, so
every pre-sharding call site and test runs unmodified.  See
:mod:`repro.serve.shard` for the state-residency and correctness
contracts, and :mod:`repro.serve.cluster` for multi-shard serving.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import TiledEngine
from repro.obs import PhaseTimer, Tracer
from repro.serve.metrics import ServerMetrics
from repro.serve.shard import EngineShard


class SessionServer(EngineShard):
    """Serve asynchronously arriving DNC sessions through one engine.

    The deterministic single-engine server: time advances only through
    :meth:`~repro.serve.shard.EngineShard.run_tick`, which makes the
    scheduling (and therefore every session's numerical trajectory)
    exactly reproducible.  An async I/O front-end would sit on top of
    this core, calling ``run_tick`` from its event loop (ROADMAP
    follow-up); horizontal scale sits beside it as
    :class:`repro.serve.cluster.ShardedServer`.
    """

    def __init__(
        self,
        engine: TiledEngine,
        max_batch: int = 16,
        max_wait_ticks: int = 2,
        queue_capacity: int = 1024,
        session_capacity: int = 64,
        session_ttl_ticks: Optional[int] = None,
        state_arena: bool = True,
        metrics: Optional[ServerMetrics] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseTimer] = None,
    ):
        super().__init__(
            engine,
            shard_id=0,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=queue_capacity,
            session_capacity=session_capacity,
            session_ttl_ticks=session_ttl_ticks,
            state_arena=state_arena,
            metrics=metrics,
            tracer=tracer,
            profiler=profiler,
        )


__all__ = ["SessionServer"]
