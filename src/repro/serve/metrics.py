"""Serving observability: latency, occupancy, and admission counters.

:class:`ServerMetrics` is the single metrics surface shared by the
:class:`~repro.serve.server.SessionServer`, its
:class:`~repro.serve.batcher.MicroBatcher`, and the
:class:`~repro.serve.session.SessionStore`.  Latency is measured in
*scheduler ticks* (submit tick -> completion tick), the natural unit of
the discrete-tick serving loop; wall-clock throughput lives in the load
benchmark, not here.

Wait times and batch occupancies are recorded as integer histograms, so
the metrics object stays O(distinct values) — not O(requests) — under
long-running serving, and the quantiles computed from them are exact
(:attr:`ServerMetrics.WAIT_QUANTILES` — p50/p95/p99 by default,
configurable per instance).

Export goes through the :mod:`repro.obs` registry:
:meth:`ServerMetrics.to_registry` adopts every counter, the exact
histograms, the per-tenant label dimension, and (optionally) per-phase
engine profile stats into one :class:`repro.obs.metrics.MetricsRegistry`,
which renders Prometheus text or structured JSON.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry


def tenant_of(session_id: str) -> str:
    """Tenant id of a session: the prefix before the first ``-``.

    The loadgen's session naming convention (``t03-copy-7`` → tenant
    ``t03``) — defined here (and re-exported by
    :mod:`repro.serve.loadgen`) so shards can attribute per-tenant
    metrics without importing the load generator.
    """
    return session_id.split("-", 1)[0]


def _quantile_key(q: float) -> str:
    """``0.95 -> "p95_wait_ticks"``, ``0.999 -> "p99.9_wait_ticks"``."""
    pct = q * 100.0
    text = f"{pct:g}"
    return f"p{text}_wait_ticks"


def _percentile_from_histogram(hist: Dict[int, int], q: float) -> Optional[float]:
    """Exact nearest-rank percentile of an integer-valued histogram."""
    total = sum(hist.values())
    if total == 0:
        return None
    rank = max(1, int(-(-q * total // 1)))  # ceil(q * total), rank is 1-based
    seen = 0
    for value in sorted(hist):
        seen += hist[value]
        if seen >= rank:
            return float(value)
    return float(max(hist))


class ServerMetrics:
    """Counters and histograms for one serving run.

    All counters are cumulative from construction (or the last
    :meth:`reset`); :meth:`snapshot` renders everything as a flat JSON-able
    dict, which the load benchmark embeds in ``BENCH_serve_load.json``.
    """

    #: Additive counters, the complete list: :meth:`merge` sums exactly
    #: these, so a new counter added here aggregates across shards
    #: without touching the merge logic.
    COUNTERS = (
        "requests_submitted",
        "requests_completed",
        "requests_failed",
        "admission_rejects",
        "sessions_opened",
        "sessions_closed",
        "evictions_ttl",
        "evictions_lru",
        "migrations_in",
        "migrations_out",
        "worker_restarts",
        "admission_spills",
        "ticks",
        "state_bytes_copied",
    )

    #: Integer histograms (value -> count), summed bin-wise by :meth:`merge`.
    HISTOGRAMS = (
        "wait_histogram",
        "occupancy_histogram",
        "slot_occupancy_histogram",
    )

    #: Labeled counter dicts (label value -> count), summed key-wise by
    #: :meth:`merge` — the per-tenant dimension of ROADMAP item 5.
    LABELED = ("tenant_completed",)

    #: Default wait-latency quantiles surfaced by :meth:`snapshot`.
    WAIT_QUANTILES = (0.50, 0.95, 0.99)

    def __init__(self, quantiles: Optional[Sequence[float]] = None):
        if quantiles is not None:
            bad = [q for q in quantiles if not 0.0 < q <= 1.0]
            if bad:
                raise ValueError(f"quantiles must lie in (0, 1], got {bad}")
            self.quantiles: Tuple[float, ...] = tuple(quantiles)
        else:
            self.quantiles = self.WAIT_QUANTILES
        self.reset()

    def reset(self) -> None:
        self.requests_submitted = 0
        self.requests_completed = 0
        self.requests_failed = 0
        self.admission_rejects = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.evictions_ttl = 0
        self.evictions_lru = 0
        #: Sessions that arrived from / left for another engine shard
        #: (checkpoint-based migration); a migration is not an open or a
        #: close, so the cluster-wide sessions_opened stays exact.
        self.migrations_in = 0
        self.migrations_out = 0
        #: Worker processes respawned after a crash (process cluster).
        self.worker_restarts = 0
        #: Sessions admitted on a non-first-choice shard after the
        #: placement pick refused (cluster-level admission spill).
        self.admission_spills = 0
        self.ticks = 0
        #: Cumulative bytes of session state copied (gathered, scattered,
        #: or slot-written) — the number the resident state arena drives
        #: toward zero.  Dense arena ticks contribute 0; gather/scatter
        #: fallback ticks contribute two full batch copies.
        self.state_bytes_copied = 0
        #: wait ticks (completion tick - submit tick) -> request count
        self.wait_histogram: Dict[int, int] = {}
        #: dispatched batch occupancy -> tick count (0 = idle tick)
        self.occupancy_histogram: Dict[int, int] = {}
        #: arena slots bound -> tick count (arena mode only; stays empty
        #: on the gather/scatter fallback path, which has no slots)
        self.slot_occupancy_histogram: Dict[int, int] = {}
        #: tenant id -> completed request count (see :func:`tenant_of`)
        self.tenant_completed: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def observe_wait(self, wait_ticks: int) -> None:
        self.wait_histogram[wait_ticks] = (
            self.wait_histogram.get(wait_ticks, 0) + 1
        )

    def observe_occupancy(self, batch_size: int) -> None:
        self.ticks += 1
        self.occupancy_histogram[batch_size] = (
            self.occupancy_histogram.get(batch_size, 0) + 1
        )

    def observe_state_copy(self, nbytes: int) -> None:
        """Account ``nbytes`` of session-state copy traffic."""
        self.state_bytes_copied += int(nbytes)

    def observe_slots(self, bound_slots: int) -> None:
        """Record the arena's bound-slot count for this tick."""
        self.slot_occupancy_histogram[bound_slots] = (
            self.slot_occupancy_histogram.get(bound_slots, 0) + 1
        )

    def observe_tenant(self, session_id: str) -> None:
        """Attribute one completed request to the session's tenant."""
        tenant = tenant_of(session_id)
        self.tenant_completed[tenant] = self.tenant_completed.get(tenant, 0) + 1

    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Iterable["ServerMetrics"]) -> "ServerMetrics":
        """Exact aggregation of per-shard metrics into one object.

        Counters add; histograms sum bin-wise — so every derived
        statistic (the exact histogram percentiles, means, bytes per
        tick) computed from the merged object equals the statistic of
        one metrics object that had observed every event itself.  Note
        ``ticks`` counts *shard* ticks: a cluster tick driving S shards
        contributes S, which keeps per-tick rates comparable with a
        single server doing the same engine work.
        """
        merged = cls()
        for part in parts:
            for name in cls.COUNTERS:
                setattr(merged, name, getattr(merged, name) + getattr(part, name))
            for name in cls.HISTOGRAMS + cls.LABELED:
                hist = getattr(merged, name)
                for value, count in getattr(part, name).items():
                    hist[value] = hist.get(value, 0) + count
        return merged

    def to_state(self) -> Dict[str, object]:
        """All counters + histograms as one picklable/JSON-able dict.

        The process cluster ships worker metrics across the RPC boundary
        in this form; :meth:`from_state` rebuilds an equivalent object,
        and round-tripping is exact (integer counters, integer bins).
        """
        state: Dict[str, object] = {
            name: getattr(self, name) for name in self.COUNTERS
        }
        for name in self.HISTOGRAMS:
            state[name] = dict(getattr(self, name))
        for name in self.LABELED:
            state[name] = dict(getattr(self, name))
        return state

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ServerMetrics":
        """Inverse of :meth:`to_state` (missing keys default to empty)."""
        metrics = cls()
        for name in cls.COUNTERS:
            setattr(metrics, name, int(state.get(name, 0)))
        for name in cls.HISTOGRAMS:
            hist = getattr(metrics, name)
            for value, count in dict(state.get(name, {})).items():
                hist[int(value)] = int(count)
        for name in cls.LABELED:
            labeled = getattr(metrics, name)
            for value, count in dict(state.get(name, {})).items():
                labeled[str(value)] = int(count)
        return metrics

    def wait_percentiles(self) -> Tuple[Optional[float], Optional[float]]:
        """``(p50, p95)`` request latency in scheduler ticks."""
        return (
            _percentile_from_histogram(self.wait_histogram, 0.50),
            _percentile_from_histogram(self.wait_histogram, 0.95),
        )

    def wait_quantile(self, q: float) -> Optional[float]:
        """Exact wait-latency quantile ``q`` in scheduler ticks."""
        return _percentile_from_histogram(self.wait_histogram, q)

    def wait_quantiles(self) -> Dict[str, Optional[float]]:
        """Configured quantiles as ``{"p50_wait_ticks": ..., ...}``."""
        return {
            _quantile_key(q): _percentile_from_histogram(self.wait_histogram, q)
            for q in self.quantiles
        }

    def mean_occupancy(self, include_idle: bool = False) -> Optional[float]:
        """Mean dispatched batch size; idle (occupancy-0) ticks optional."""
        items = [
            (occ, n) for occ, n in self.occupancy_histogram.items()
            if include_idle or occ > 0
        ]
        ticks = sum(n for _, n in items)
        if ticks == 0:
            return None
        return sum(occ * n for occ, n in items) / ticks

    def mean_slot_occupancy(self) -> Optional[float]:
        """Mean arena slots bound per tick (``None`` without arena ticks)."""
        ticks = sum(self.slot_occupancy_histogram.values())
        if ticks == 0:
            return None
        return sum(
            occ * n for occ, n in self.slot_occupancy_histogram.items()
        ) / ticks

    def state_bytes_per_tick(self) -> Optional[float]:
        """Mean session-state copy traffic per scheduler tick."""
        if self.ticks == 0:
            return None
        return self.state_bytes_copied / self.ticks

    def snapshot(self) -> Dict[str, object]:
        snap = {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "admission_rejects": self.admission_rejects,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "evictions_ttl": self.evictions_ttl,
            "evictions_lru": self.evictions_lru,
            "migrations_in": self.migrations_in,
            "migrations_out": self.migrations_out,
            "worker_restarts": self.worker_restarts,
            "admission_spills": self.admission_spills,
            "ticks": self.ticks,
            "mean_batch_occupancy": self.mean_occupancy(),
            "occupancy_histogram": {
                str(k): v for k, v in sorted(self.occupancy_histogram.items())
            },
            "state_bytes_copied": self.state_bytes_copied,
            "state_bytes_per_tick": self.state_bytes_per_tick(),
            "mean_slot_occupancy": self.mean_slot_occupancy(),
            "slot_occupancy_histogram": {
                str(k): v
                for k, v in sorted(self.slot_occupancy_histogram.items())
            },
            "tenant_completed": {
                k: v for k, v in sorted(self.tenant_completed.items())
            },
        }
        snap.update(self.wait_quantiles())
        return snap

    # ------------------------------------------------------------------
    def to_registry(
        self,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Mapping[str, object]] = None,
        phase_stats: Optional[Mapping[str, Mapping[str, float]]] = None,
    ) -> MetricsRegistry:
        """Adopt this object into a :class:`MetricsRegistry` view.

        Every counter becomes a ``serve_*`` counter, the exact
        histograms export as histogram series, the per-tenant dimension
        becomes a ``tenant``-labeled counter, and ``phase_stats`` (a
        :meth:`repro.obs.profiler.PhaseTimer.stats` dict) adds
        ``phase``-labeled seconds/bytes/count series.  ``labels`` are
        attached to every series (e.g. ``{"shard": 3}``), so cluster
        layers can export per-shard registries side by side.
        """
        reg = registry if registry is not None else MetricsRegistry()
        for name in self.COUNTERS:
            reg.counter(f"serve_{name}", getattr(self, name), labels=labels)
        for q in self.quantiles:
            value = _percentile_from_histogram(self.wait_histogram, q)
            if value is not None:
                reg.gauge(
                    "serve_wait_ticks_quantile",
                    value,
                    labels={**(dict(labels) if labels else {}), "quantile": f"{q:g}"},
                )
        reg.histogram("serve_wait_ticks", self.wait_histogram, labels=labels)
        reg.histogram(
            "serve_batch_occupancy", self.occupancy_histogram, labels=labels
        )
        reg.histogram(
            "serve_slot_occupancy", self.slot_occupancy_histogram, labels=labels
        )
        for tenant, count in sorted(self.tenant_completed.items()):
            reg.counter(
                "serve_tenant_requests_completed",
                count,
                labels={**(dict(labels) if labels else {}), "tenant": tenant},
            )
        if phase_stats:
            for phase, entry in sorted(phase_stats.items()):
                phase_labels = {
                    **(dict(labels) if labels else {}), "phase": phase,
                }
                reg.counter(
                    "engine_phase_seconds",
                    float(entry.get("seconds", 0.0)),
                    labels=phase_labels,
                )
                reg.counter(
                    "engine_phase_bytes",
                    int(entry.get("bytes", 0)),
                    labels=phase_labels,
                )
                reg.counter(
                    "engine_phase_count",
                    int(entry.get("count", 0)),
                    labels=phase_labels,
                )
        return reg

    def to_prometheus_text(self, **kwargs) -> str:
        """Prometheus text exposition of :meth:`to_registry`."""
        return self.to_registry(**kwargs).to_prometheus_text()

    def to_json(self, **kwargs) -> Dict[str, object]:
        """Structured-JSON export of :meth:`to_registry`."""
        return self.to_registry(**kwargs).to_json()


__all__ = ["ServerMetrics", "tenant_of"]
