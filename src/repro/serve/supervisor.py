"""Crash-recovery bookkeeping for process-level serving.

:class:`CheckpointSupervisor` is the front door's durable memory of every
session served by a :class:`~repro.serve.proc.ProcCluster`: the last
checkpoint each worker shipped (the versioned
:meth:`~repro.dnc.numpy_ref.NumpyDNCState.to_bytes` payload plus the
step count it captures) and the *replay log* — every input submitted
since that checkpoint, in per-session step order.  Together those two
pieces reconstruct any session on a fresh worker process after a crash:

1. restore the checkpoint (bitwise, by the wire-format contract), or
   open a fresh session when none was taken yet (a zeroed initial state
   is exactly what the original open produced);
2. re-submit the logged inputs in order.  Steps that had already
   completed recompute the same values (the engine is deterministic —
   bitwise at equal dispatch order, <= 1e-10 vs solo stepping in any
   interleaving), and steps that were still pending complete normally.

The supervisor is transport-agnostic and holds no process handles; the
cluster calls :meth:`on_submit` / :meth:`on_checkpoint` / :meth:`on_close`
as events happen and :meth:`recovery_plan` when a worker dies.  Log
memory is bounded by the checkpoint cadence: :meth:`on_checkpoint`
prunes every logged input the checkpoint already covers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError


class CheckpointSupervisor:
    """Per-session checkpoints + replay logs for worker crash recovery."""

    def __init__(self):
        #: session id -> (checkpoint payload, steps completed at capture)
        self._checkpoints: Dict[str, Tuple[bytes, int]] = {}
        #: session id -> FIFO of (step index, input) not yet checkpointed
        self._logs: Dict[str, Deque[Tuple[int, np.ndarray]]] = {}
        #: session id -> next step index to assign on submit
        self._next_step: Dict[str, int] = {}
        #: Checkpoint payloads accepted over this supervisor's lifetime.
        self.checkpoints_taken = 0
        #: Sessions rebuilt through :meth:`recovery_plan`.
        self.sessions_recovered = 0
        #: worker index -> flight-recorder dump (last-K tick records)
        #: captured at the moment the worker died.  Filled by
        #: :meth:`on_worker_death`; later deaths of the same worker slot
        #: overwrite earlier dumps (the newest crash is the one being
        #: debugged).
        self.postmortems: Dict[int, List[dict]] = {}
        #: Worker deaths reported via :meth:`on_worker_death`.
        self.worker_postmortems = 0

    # ------------------------------------------------------------------
    def __contains__(self, session_id: str) -> bool:
        return session_id in self._next_step

    def sessions(self) -> List[str]:
        """Tracked session ids, in open order."""
        return list(self._next_step)

    def log_depth(self, session_id: str) -> int:
        """Logged (not yet checkpointed) inputs for ``session_id``."""
        return len(self._logs.get(session_id, ()))

    def checkpoint_steps(self, session_id: str) -> int:
        """Steps baked into ``session_id``'s checkpoint (0 when none)."""
        checkpoint = self._checkpoints.get(session_id)
        return checkpoint[1] if checkpoint is not None else 0

    # ------------------------------------------------------------------
    def on_open(self, session_id: str) -> None:
        """A session opened fresh (zeroed state, step counter at 0)."""
        if session_id in self._next_step:
            raise ConfigError(
                f"supervisor already tracks session {session_id!r}"
            )
        self._next_step[session_id] = 0
        self._logs[session_id] = deque()

    def on_restore(self, session_id: str, payload: bytes) -> None:
        """A session opened *from* a checkpoint supplied by the caller.

        The payload becomes the session's recovery baseline and its step
        counter restarts at 0 — step indices are relative to the last
        checkpoint, not to the session's absolute lifetime.
        """
        if session_id in self._next_step:
            raise ConfigError(
                f"supervisor already tracks session {session_id!r}"
            )
        self._next_step[session_id] = 0
        self._logs[session_id] = deque()
        self._checkpoints[session_id] = (payload, 0)

    def on_submit(self, session_id: str, x: np.ndarray) -> int:
        """Log one submitted input; returns its per-session step index.

        The input is copied — clients commonly reuse one buffer per
        step, and the replay log must keep the submitted values.
        """
        try:
            step = self._next_step[session_id]
        except KeyError:
            raise ConfigError(
                f"supervisor does not track session {session_id!r}"
            ) from None
        self._next_step[session_id] = step + 1
        self._logs[session_id].append((step, np.array(x, copy=True)))
        return step

    def on_checkpoint(
        self, session_id: str, payload: bytes, steps_completed: int
    ) -> None:
        """Accept a fresh checkpoint; prune the log it supersedes.

        ``steps_completed`` counts the session's completed steps *in the
        supervisor's step index space* — every logged input with a lower
        index is baked into the checkpointed state and can be dropped.
        """
        if session_id not in self._next_step:
            raise ConfigError(
                f"supervisor does not track session {session_id!r}"
            )
        self._checkpoints[session_id] = (payload, steps_completed)
        log = self._logs[session_id]
        while log and log[0][0] < steps_completed:
            log.popleft()
        self.checkpoints_taken += 1

    def on_close(self, session_id: str) -> None:
        """Forget a closed/evicted session (idempotent)."""
        self._next_step.pop(session_id, None)
        self._logs.pop(session_id, None)
        self._checkpoints.pop(session_id, None)

    # ------------------------------------------------------------------
    def on_worker_death(self, worker: int, records: List[dict]) -> None:
        """Store a dead worker's flight-recorder dump for postmortem.

        ``records`` is the oldest-first last-K tick history the cluster's
        :class:`~repro.obs.recorder.FlightRecorder` kept for the worker
        (each entry: ``tick``, ``spans``, ``phase_stats``).  Stored even
        when empty so callers can distinguish "worker died with no
        recorded ticks" from "death never reported".
        """
        self.postmortems[worker] = list(records)
        self.worker_postmortems += 1

    # ------------------------------------------------------------------
    def recovery_plan(
        self, session_id: str
    ) -> Tuple[Optional[bytes], List[Tuple[int, np.ndarray]]]:
        """How to rebuild ``session_id`` on a fresh worker.

        Returns ``(checkpoint_payload_or_None, replay)`` where ``replay``
        is the logged ``(step index, input)`` list to re-submit in order
        after restoring the checkpoint (or after a fresh open when no
        checkpoint was ever taken — the new zeroed state matches the
        original open bitwise, so full replay is exact too).
        """
        if session_id not in self._next_step:
            raise ConfigError(
                f"supervisor does not track session {session_id!r}"
            )
        checkpoint = self._checkpoints.get(session_id)
        payload = checkpoint[0] if checkpoint is not None else None
        replay = [(step, x) for step, x in self._logs[session_id]]
        self.sessions_recovered += 1
        return payload, replay


__all__ = ["CheckpointSupervisor"]
