"""Synthetic open-loop load for the session server, plus its measurement.

The generator produces deterministic "Poisson-ish" traffic: session
arrival gaps and lengths are drawn from exponential/geometric
distributions through a seeded :mod:`numpy.random` generator, so a given
seed always replays the identical workload — load tests stay
reproducible while still exercising ragged, asynchronous arrival
patterns.  Two workload styles mix the per-step inputs:

* ``"copy"`` — a copy-task-shaped session: random sign patterns to
  store, then a zeroed recall phase;
* ``"recall"`` — an associative-recall-shaped session: alternating
  sparse key vectors and dense value vectors.

:func:`measure_serve_load` is the benchmark core: it drives the same
workload through the micro-batching :class:`~repro.serve.server.SessionServer`
and through a serve-one-session-at-a-time baseline, checks the two are
numerically identical, and returns a
:class:`ServeLoadResult` whose JSON form is the
``BENCH_serve_load.json`` contract registered in
:mod:`repro.eval.bench_schema`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.eval.bench_schema import (
    PROC_ENTRY_KEYS,
    SERVE_ENTRY_KEYS,
    SHARD_ENTRY_KEYS,
)
from repro.serve.batcher import StepRequest
from repro.serve.cluster import ShardedServer
from repro.serve.metrics import tenant_of
from repro.serve.server import SessionServer
from repro.utils.rng import SeedLike, new_rng

WORKLOAD_KINDS = ("copy", "recall")


def timed_call(fn: Callable[[], object]) -> Tuple[float, object]:
    """Run ``fn()`` under one wall-clock measurement.

    Returns ``(elapsed_seconds, payload)`` — the building block
    :func:`timed_reps` runners use when the whole call *is* the critical
    section.
    """
    start = time.perf_counter()
    payload = fn()
    return time.perf_counter() - start, payload


def timed_reps(
    runners: Dict[str, Callable[[], Tuple[float, object]]],
    repeats: int,
    cleanup: Optional[Callable[[], object]] = None,
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Best-of-``repeats`` interleaved timing rounds over named runners.

    Every runner runs once per round and reports its own
    ``(elapsed_seconds, payload)`` — self-timing lets a runner keep
    setup/teardown (server construction, worker-process spawns) out of
    its critical section; wrap the critical section in
    :func:`timed_call` when the whole call should be timed.  Rounds are
    interleaved and the visit order is re-shuffled every round from a
    fixed seed: on a busy box, background load drifts over seconds, and
    timing one runner as a block — or visiting runners in any *fixed*
    alternation — lets that drift (and allocator/cache warm-up)
    masquerade as a difference between runners.  ``cleanup`` runs after
    every timed call, outside its measurement (e.g. clearing engine
    traffic counters).

    Returns ``(best, first)``: the minimum elapsed seconds per runner,
    and each runner's round-0 payload — the measured workloads are
    deterministic, so round 0's results serve for correctness checks
    and metrics.
    """
    names = list(runners)
    best: Dict[str, float] = {name: float("inf") for name in names}
    first: Dict[str, object] = {}
    order_rng = np.random.default_rng(0x5EED)
    for round_index in range(max(1, repeats)):
        order = list(names)
        order_rng.shuffle(order)
        for name in order:
            elapsed, payload = runners[name]()
            if cleanup is not None:
                cleanup()
            best[name] = min(best[name], float(elapsed))
            if round_index == 0:
                first[name] = payload
    return best, first


@dataclass(frozen=True)
class SessionScript:
    """One scripted session: when it arrives and every input it will send."""

    session_id: str
    arrival_tick: int
    kind: str
    inputs: np.ndarray  # (T, input_size)

    @property
    def length(self) -> int:
        return int(self.inputs.shape[0])


def _copy_inputs(gen: np.random.Generator, length: int, input_size: int) -> np.ndarray:
    """Store random sign patterns, then recall over zero inputs."""
    store = max(1, length // 2)
    xs = np.zeros((length, input_size))
    xs[:store] = gen.integers(0, 2, size=(store, input_size)) * 2.0 - 1.0
    return xs

def _recall_inputs(gen: np.random.Generator, length: int, input_size: int) -> np.ndarray:
    """Alternate sparse key vectors with dense value vectors."""
    xs = gen.standard_normal((length, input_size))
    keys = np.zeros((length, input_size))
    hot = gen.integers(0, input_size, size=length)
    keys[np.arange(length), hot] = 2.0
    xs[::2] = keys[::2]
    return xs


_WORKLOADS = {"copy": _copy_inputs, "recall": _recall_inputs}


def generate_zipf_scripts(
    input_size: int,
    num_sessions: int = 32,
    num_tenants: int = 8,
    zipf_exponent: float = 1.2,
    mean_session_len: float = 8.0,
    mean_interarrival_ticks: float = 1.0,
    kinds: Sequence[str] = WORKLOAD_KINDS,
    rng: SeedLike = 0,
) -> List[SessionScript]:
    """Tenant-skewed open-loop traffic: the hot-shard generator.

    Like :func:`generate_scripts`, but every session belongs to a
    *tenant* drawn from a truncated Zipf distribution over
    ``num_tenants`` tenants (tenant ``k`` with weight ``(k+1) **
    -zipf_exponent``), and session ids carry the tenant as a routing
    prefix — ``t03-copy-7`` — that :func:`tenant_of` extracts.  Routed
    through tenant-keyed consistent hashing, the head tenants pile onto
    a few shards, which is precisely the imbalance a
    :class:`~repro.serve.router.RebalancePolicy` exists to fix; load
    tests use this mix to exercise migration under realistic skew.

    Determinism: one seed fixes the whole trace — tenants, arrival
    ticks, lengths, kinds, and every input value — exactly like the
    uniform generator (pinned in ``tests/test_serve_store.py``).
    """
    for kind in kinds:
        if kind not in _WORKLOADS:
            raise ConfigError(
                f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}"
            )
    if num_tenants < 1:
        raise ConfigError(f"num_tenants must be >= 1, got {num_tenants}")
    if zipf_exponent <= 0.0:
        raise ConfigError(
            f"zipf_exponent must be positive, got {zipf_exponent}"
        )
    gen = new_rng(rng)
    ranks = np.arange(1, num_tenants + 1, dtype=float)
    weights = ranks ** -zipf_exponent
    weights /= weights.sum()
    scripts: List[SessionScript] = []
    tick = 0.0
    for i in range(num_sessions):
        if mean_interarrival_ticks > 0 and i > 0:
            tick += gen.exponential(mean_interarrival_ticks)
        tenant = int(gen.choice(num_tenants, p=weights))
        length = 1 + int(gen.geometric(1.0 / max(mean_session_len - 1.0, 1.0)))
        kind = kinds[int(gen.integers(0, len(kinds)))]
        scripts.append(SessionScript(
            session_id=f"t{tenant:02d}-{kind}-{i}",
            arrival_tick=int(tick),
            kind=kind,
            inputs=_WORKLOADS[kind](gen, length, input_size),
        ))
    return scripts


def generate_scripts(
    input_size: int,
    num_sessions: int = 16,
    mean_session_len: float = 8.0,
    mean_interarrival_ticks: float = 1.0,
    kinds: Sequence[str] = WORKLOAD_KINDS,
    rng: SeedLike = 0,
) -> List[SessionScript]:
    """Deterministic open-loop arrival schedule (same seed, same traffic).

    Arrival gaps are exponential with mean ``mean_interarrival_ticks``
    (0 makes every session arrive at tick 0 — maximum concurrency);
    session lengths are ``1 + Geometric`` with mean ``mean_session_len``
    (min 2 steps, for ``mean_session_len >= 2``); workload kinds are
    drawn uniformly from ``kinds``.
    """
    for kind in kinds:
        if kind not in _WORKLOADS:
            raise ConfigError(
                f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}"
            )
    gen = new_rng(rng)
    scripts: List[SessionScript] = []
    tick = 0.0
    for i in range(num_sessions):
        if mean_interarrival_ticks > 0 and i > 0:
            tick += gen.exponential(mean_interarrival_ticks)
        length = 1 + int(gen.geometric(1.0 / max(mean_session_len - 1.0, 1.0)))
        kind = kinds[int(gen.integers(0, len(kinds)))]
        scripts.append(SessionScript(
            session_id=f"{kind}-{i}",
            arrival_tick=int(tick),
            kind=kind,
            inputs=_WORKLOADS[kind](gen, length, input_size),
        ))
    return scripts


def run_open_loop(
    server,
    scripts: Sequence[SessionScript],
    max_ticks: int = 100_000,
) -> Dict[str, List[StepRequest]]:
    """Replay scripted sessions against a server; returns per-session results.

    ``server`` is anything with the serving surface — a
    :class:`~repro.serve.server.SessionServer` /
    :class:`~repro.serve.shard.EngineShard` or a multi-shard
    :class:`~repro.serve.cluster.ShardedServer` (``open_session`` /
    ``submit`` / ``run_tick`` / ``queue_depth`` / ``tick``).

    Open-loop: sessions arrive on their scripted ticks whatever the
    server's backlog.  Each session submits its whole input stream at
    arrival (the batcher serializes steps within a session).  Admission
    control sheds whole *streams*, never a step out of the middle of
    one: a refused open leaves that session's id mapped to an empty
    result list, and a refused mid-stream submit (queue backpressure)
    drops the session's remaining steps — submitting step ``t+1`` after
    a lost step ``t`` would silently put the session on a different
    trajectory than its script.
    """
    results: Dict[str, List[StepRequest]] = {s.session_id: [] for s in scripts}
    pending = sorted(scripts, key=lambda s: (s.arrival_tick, s.session_id))
    arrivals = iter(pending)
    next_script = next(arrivals, None)
    for _ in range(max_ticks):
        while next_script is not None and next_script.arrival_tick <= server.tick:
            if server.open_session(next_script.session_id) is not None:
                for x in next_script.inputs:
                    request = server.submit(next_script.session_id, x)
                    if request is None:
                        break
                    results[next_script.session_id].append(request)
            next_script = next(arrivals, None)
        if next_script is None and server.queue_depth == 0:
            return results
        server.run_tick()
    raise ConfigError(f"load did not drain within {max_ticks} ticks")


def run_rolling_restart(
    cluster,
    scripts: Sequence[SessionScript],
    kill_every_ticks: int = 8,
    max_ticks: int = 100_000,
) -> Tuple[Dict[str, List[StepRequest]], int]:
    """Open-loop replay with a rolling SIGKILL drill against a ProcCluster.

    Identical traffic semantics to :func:`run_open_loop`, but every
    ``kill_every_ticks`` cluster ticks one worker — round-robin across
    the cluster — is SIGKILLed mid-stream while its sessions have live
    traffic.  The cluster's checkpoint/replay recovery must carry every
    affected session through on a replacement process; callers assert
    that the results match solo stepping exactly as in the never-killed
    run.  Returns ``(per-session results, workers killed)``.
    """
    if kill_every_ticks < 1:
        raise ConfigError(
            f"kill_every_ticks must be >= 1, got {kill_every_ticks}"
        )
    results: Dict[str, List[StepRequest]] = {s.session_id: [] for s in scripts}
    pending = sorted(scripts, key=lambda s: (s.arrival_tick, s.session_id))
    arrivals = iter(pending)
    next_script = next(arrivals, None)
    kills = 0
    for tick in range(max_ticks):
        while next_script is not None and next_script.arrival_tick <= cluster.tick:
            if cluster.open_session(next_script.session_id) is not None:
                for x in next_script.inputs:
                    request = cluster.submit(next_script.session_id, x)
                    if request is None:
                        break
                    results[next_script.session_id].append(request)
            next_script = next(arrivals, None)
        if next_script is None and cluster.queue_depth == 0:
            return results, kills
        if tick > 0 and tick % kill_every_ticks == 0 and cluster.queue_depth > 0:
            cluster.kill_worker(kills % cluster.num_workers)
            kills += 1
        cluster.run_tick()
    raise ConfigError(f"load did not drain within {max_ticks} ticks")


# ---------------------------------------------------------------------------
# Benchmark measurement
# ---------------------------------------------------------------------------


@dataclass
class ServeLoadResult:
    """Measured micro-batched serving vs one-session-at-a-time serving.

    ``requests_per_sec`` counts completed step requests per wall second;
    both paths process the identical scripted workload.  Field names
    match :data:`repro.eval.bench_schema.SERVE_ENTRY_KEYS` exactly —
    :meth:`to_json` is generated from that single source of truth.
    """

    concurrent_sessions: int
    steps_per_session: int
    max_batch: int
    max_wait_ticks: int
    requests_per_sec: float
    sequential_requests_per_sec: float
    speedup_vs_sequential: float
    microbatch_max_abs_diff: float
    p50_wait_ticks: float
    p95_wait_ticks: float
    p99_wait_ticks: float
    mean_batch_occupancy: float
    admission_rejects: int
    evictions: int
    dtype: str
    memory_size: int
    #: True when the run used the resident :class:`~repro.serve.arena.StateArena`
    #: hot path, False for the gather/scatter fallback.
    state_arena: bool
    #: Total session-state bytes copied during the served run (joins plus
    #: any gather/scatter or partial-mask traffic) — the quantity the
    #: arena collapses to one write per join.
    state_bytes_copied: int
    #: True when the run served with full observability attached (request
    #: tracing + per-phase engine profiling); the ``tracing_on`` /
    #: ``tracing_off`` artifact pair prices that overhead.
    tracing: bool = False
    #: Kernel backend the serving engine stepped with
    #: (:mod:`repro.core.backend`); the ``backend_*`` artifact pair
    #: prices swapping the hot-path kernels under the full stack.
    backend: str = "reference"

    def to_json(self) -> Dict[str, object]:
        """One ``BENCH_serve_load.json`` artifact entry."""
        return {key: getattr(self, key) for key in SERVE_ENTRY_KEYS}


def measure_serve_load(
    config=None,
    num_sessions: int = 16,
    steps_per_session: int = 8,
    max_batch: int = 16,
    max_wait_ticks: int = 1,
    repeats: int = 3,
    rng: SeedLike = 0,
    state_arena: bool = True,
) -> ServeLoadResult:
    """Time micro-batched serving against the one-at-a-time baseline.

    All ``num_sessions`` sessions are concurrent (arrival tick 0) with
    equal lengths, so the comparison is the clean serving analogue of
    :func:`repro.eval.runners.measure_batched_throughput`: the baseline
    steps each session to completion alone through the unbatched engine;
    the served path schedules them through the micro-batcher.  The best
    (minimum) wall time over ``repeats`` rounds scores each path, and the
    served outputs are checked element-wise against the baseline's.

    ``state_arena`` selects the server's state path: the resident
    slot-pinned arena (default) or the PR 3 gather/scatter fallback —
    measuring both on the identical workload is how the serve-load
    benchmark prices the per-tick state-copy tax.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        config = HiMAConfig(
            memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
            two_stage_sort=False,
        )
    engine = TiledEngine(config, rng=rng)
    input_size = engine.reference.config.input_size
    gen = new_rng(rng)
    kinds = [WORKLOAD_KINDS[i % len(WORKLOAD_KINDS)] for i in range(num_sessions)]
    scripts = [
        SessionScript(
            session_id=f"{kinds[i]}-{i}",
            arrival_tick=0,
            kind=kinds[i],
            inputs=_WORKLOADS[kinds[i]](gen, steps_per_session, input_size),
        )
        for i in range(num_sessions)
    ]
    total_requests = num_sessions * steps_per_session

    def serve_once():
        server = SessionServer(
            engine,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=max(total_requests, 1),
            session_capacity=max(num_sessions, 1),
            state_arena=state_arena,
        )
        results = run_open_loop(server, scripts)
        return server, results

    # Warm up both paths (BLAS pools, allocator), then time.
    server, _ = serve_once()
    engine.run(scripts[0].inputs[:2])
    engine.traffic.clear()

    best, first = timed_reps(
        {
            "served": lambda: timed_call(serve_once),
            "sequential": lambda: timed_call(
                lambda: {s.session_id: engine.run(s.inputs) for s in scripts}
            ),
        },
        repeats,
        cleanup=engine.traffic.clear,
    )
    server, results = first["served"]
    baseline = first["sequential"]
    served_time = best["served"]
    sequential_time = best["sequential"]

    diff = 0.0
    for script in scripts:
        served = np.stack([r.y for r in results[script.session_id]])
        diff = max(diff, float(np.max(np.abs(served - baseline[script.session_id]))))

    metrics = server.metrics
    p50, p95 = metrics.wait_percentiles()
    p99 = metrics.wait_quantile(0.99)
    return ServeLoadResult(
        concurrent_sessions=num_sessions,
        steps_per_session=steps_per_session,
        max_batch=max_batch,
        max_wait_ticks=max_wait_ticks,
        requests_per_sec=total_requests / served_time,
        sequential_requests_per_sec=total_requests / sequential_time,
        speedup_vs_sequential=sequential_time / served_time,
        microbatch_max_abs_diff=diff,
        p50_wait_ticks=float(p50 if p50 is not None else -1.0),
        p95_wait_ticks=float(p95 if p95 is not None else -1.0),
        p99_wait_ticks=float(p99 if p99 is not None else -1.0),
        mean_batch_occupancy=float(metrics.mean_occupancy() or 0.0),
        admission_rejects=metrics.admission_rejects,
        evictions=metrics.evictions_ttl + metrics.evictions_lru,
        dtype=config.dtype,
        memory_size=config.memory_size,
        state_arena=state_arena,
        state_bytes_copied=metrics.state_bytes_copied,
            backend=config.backend,
    )


def measure_serve_ab(
    config=None,
    num_sessions: int = 16,
    steps_per_session: int = 4,
    max_batch: int = 16,
    max_wait_ticks: int = 1,
    repeats: int = 5,
    rng: SeedLike = 0,
) -> Tuple[ServeLoadResult, ServeLoadResult]:
    """A/B the resident-arena and gather/scatter state paths, interleaved.

    Both paths serve the identical scripted workload through one shared
    engine.  Timing rounds are *interleaved* and alternate which path
    runs first: measuring one path to completion and then the other lets
    allocator and cache warm-up systematically favor whichever ran
    second, which at serving timescales is a bigger effect than the
    difference under test.  Returns ``(arena_result,
    gather_scatter_result)``; each is checked element-wise against the
    solo unbatched baseline exactly like :func:`measure_serve_load`.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        config = HiMAConfig(
            memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
            two_stage_sort=False,
        )
    engine = TiledEngine(config, rng=rng)
    input_size = engine.reference.config.input_size
    gen = new_rng(rng)
    kinds = [WORKLOAD_KINDS[i % len(WORKLOAD_KINDS)] for i in range(num_sessions)]
    scripts = [
        SessionScript(
            session_id=f"{kinds[i]}-{i}",
            arrival_tick=0,
            kind=kinds[i],
            inputs=_WORKLOADS[kinds[i]](gen, steps_per_session, input_size),
        )
        for i in range(num_sessions)
    ]
    total_requests = num_sessions * steps_per_session

    def serve_once(state_arena: bool):
        server = SessionServer(
            engine,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=max(total_requests, 1),
            session_capacity=max(num_sessions, 1),
            state_arena=state_arena,
        )
        results = run_open_loop(server, scripts)
        return server, results

    # Warm up both paths and the solo baseline.
    serve_once(True)
    serve_once(False)
    engine.run(scripts[0].inputs[:2])
    engine.traffic.clear()

    best, first = timed_reps(
        {
            "arena": lambda: timed_call(lambda: serve_once(True)),
            "gather_scatter": lambda: timed_call(lambda: serve_once(False)),
            "sequential": lambda: timed_call(
                lambda: {s.session_id: engine.run(s.inputs) for s in scripts}
            ),
        },
        repeats,
        cleanup=engine.traffic.clear,
    )
    times = {True: best["arena"], False: best["gather_scatter"]}
    runs: Dict[bool, tuple] = {
        True: first["arena"], False: first["gather_scatter"],
    }
    baseline = first["sequential"]
    sequential_time = best["sequential"]

    def build(state_arena: bool) -> ServeLoadResult:
        server, results = runs[state_arena]
        diff = 0.0
        for script in scripts:
            served = np.stack([r.y for r in results[script.session_id]])
            diff = max(
                diff,
                float(np.max(np.abs(served - baseline[script.session_id]))),
            )
        metrics = server.metrics
        p50, p95 = metrics.wait_percentiles()
        p99 = metrics.wait_quantile(0.99)
        served_time = times[state_arena]
        return ServeLoadResult(
            concurrent_sessions=num_sessions,
            steps_per_session=steps_per_session,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            requests_per_sec=total_requests / served_time,
            sequential_requests_per_sec=total_requests / sequential_time,
            speedup_vs_sequential=sequential_time / served_time,
            microbatch_max_abs_diff=diff,
            p50_wait_ticks=float(p50 if p50 is not None else -1.0),
            p95_wait_ticks=float(p95 if p95 is not None else -1.0),
            p99_wait_ticks=float(p99 if p99 is not None else -1.0),
            mean_batch_occupancy=float(metrics.mean_occupancy() or 0.0),
            admission_rejects=metrics.admission_rejects,
            evictions=metrics.evictions_ttl + metrics.evictions_lru,
            dtype=config.dtype,
            memory_size=config.memory_size,
            state_arena=state_arena,
            state_bytes_copied=metrics.state_bytes_copied,
            backend=config.backend,
        )

    return build(True), build(False)


def measure_serve_backend_ab(
    config=None,
    backends: Sequence[str] = ("reference", "tuned"),
    num_sessions: int = 16,
    steps_per_session: int = 4,
    max_batch: int = 16,
    max_wait_ticks: int = 1,
    repeats: int = 5,
    rng: SeedLike = 0,
) -> Dict[str, ServeLoadResult]:
    """A/B kernel backends under the full serving stack, interleaved.

    One engine per backend (``config.with_features(backend=name)``), all
    serving the identical scripted workload through the resident-arena
    :class:`~repro.serve.server.SessionServer` — this drives the masked
    in-place fused write, the path a serving deployment actually lives
    on.  Timing rounds are interleaved with a seeded shuffled visit
    order (:func:`timed_reps`) and each backend keeps its best round.

    Correctness: every backend's served outputs are checked against *its
    own* solo unbatched runs — the served-vs-solo determinism bar
    (``microbatch_max_abs_diff``), which must hold no matter which
    backend the engine steps with.  The timed sequential baseline runs
    on the first (control) backend so ``speedup_vs_sequential`` is
    comparable across entries.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        config = HiMAConfig(
            memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
            two_stage_sort=False,
        )
    engines = {
        name: TiledEngine(config.with_features(backend=name), rng=rng)
        for name in backends
    }
    control = backends[0]
    input_size = engines[control].reference.config.input_size
    gen = new_rng(rng)
    kinds = [WORKLOAD_KINDS[i % len(WORKLOAD_KINDS)] for i in range(num_sessions)]
    scripts = [
        SessionScript(
            session_id=f"{kinds[i]}-{i}",
            arrival_tick=0,
            kind=kinds[i],
            inputs=_WORKLOADS[kinds[i]](gen, steps_per_session, input_size),
        )
        for i in range(num_sessions)
    ]
    total_requests = num_sessions * steps_per_session

    def serve_once(name: str):
        server = SessionServer(
            engines[name],
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=max(total_requests, 1),
            session_capacity=max(num_sessions, 1),
            state_arena=True,
        )
        results = run_open_loop(server, scripts)
        return server, results

    def cleanup():
        for engine in engines.values():
            engine.traffic.clear()

    # Warm up every backend's served path plus the control's solo path.
    for name in backends:
        serve_once(name)
    engines[control].run(scripts[0].inputs[:2])
    cleanup()

    runners: Dict[str, Callable[[], Tuple[float, object]]] = {
        name: (lambda n=name: timed_call(lambda: serve_once(n)))
        for name in backends
    }
    runners["sequential"] = lambda: timed_call(
        lambda: {s.session_id: engines[control].run(s.inputs) for s in scripts}
    )
    best, first = timed_reps(runners, repeats, cleanup=cleanup)
    sequential_time = best["sequential"]

    results: Dict[str, ServeLoadResult] = {}
    for name in backends:
        server, served = first[name]
        if name == control:
            baseline = first["sequential"]
        else:
            baseline = {
                s.session_id: engines[name].run(s.inputs) for s in scripts
            }
            cleanup()
        diff = 0.0
        for script in scripts:
            got = np.stack([r.y for r in served[script.session_id]])
            diff = max(
                diff,
                float(np.max(np.abs(got - baseline[script.session_id]))),
            )
        metrics = server.metrics
        p50, p95 = metrics.wait_percentiles()
        p99 = metrics.wait_quantile(0.99)
        served_time = best[name]
        results[name] = ServeLoadResult(
            concurrent_sessions=num_sessions,
            steps_per_session=steps_per_session,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            requests_per_sec=total_requests / served_time,
            sequential_requests_per_sec=total_requests / sequential_time,
            speedup_vs_sequential=sequential_time / served_time,
            microbatch_max_abs_diff=diff,
            p50_wait_ticks=float(p50 if p50 is not None else -1.0),
            p95_wait_ticks=float(p95 if p95 is not None else -1.0),
            p99_wait_ticks=float(p99 if p99 is not None else -1.0),
            mean_batch_occupancy=float(metrics.mean_occupancy() or 0.0),
            admission_rejects=metrics.admission_rejects,
            evictions=metrics.evictions_ttl + metrics.evictions_lru,
            dtype=config.dtype,
            memory_size=config.memory_size,
            state_arena=True,
            state_bytes_copied=metrics.state_bytes_copied,
            backend=name,
        )
    return results


def measure_serve_tracing_ab(
    config=None,
    num_sessions: int = 16,
    steps_per_session: int = 4,
    max_batch: int = 16,
    max_wait_ticks: int = 1,
    repeats: int = 5,
    rng: SeedLike = 0,
) -> Tuple[ServeLoadResult, ServeLoadResult]:
    """A/B full observability (tracing + profiling) against a bare server.

    Both variants serve the identical scripted workload through one
    shared engine on the resident-arena path; the ``tracing_on`` run
    attaches a fresh :class:`~repro.obs.trace.Tracer` and
    :class:`~repro.obs.profiler.PhaseTimer` to its
    :class:`~repro.serve.server.SessionServer`, the ``tracing_off`` run
    attaches nothing.  Timing rounds are interleaved exactly like
    :func:`measure_serve_ab` so warm-up and background drift cannot
    masquerade as instrumentation cost.  Returns ``(tracing_on_result,
    tracing_off_result)``; the serve-load artifact's <3% overhead floor
    is asserted on this pair.

    The default configuration serves at ``memory_size=256`` — large
    enough that engine phases dominate the tick, which is the regime
    where the per-phase timers' overhead bound is meaningful.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine
    from repro.obs import PhaseTimer, Tracer

    if config is None:
        config = HiMAConfig(
            memory_size=256, word_size=16, num_reads=1, num_tiles=8,
            hidden_size=32, two_stage_sort=False,
        )
    engine = TiledEngine(config, rng=rng)
    input_size = engine.reference.config.input_size
    gen = new_rng(rng)
    kinds = [WORKLOAD_KINDS[i % len(WORKLOAD_KINDS)] for i in range(num_sessions)]
    scripts = [
        SessionScript(
            session_id=f"{kinds[i]}-{i}",
            arrival_tick=0,
            kind=kinds[i],
            inputs=_WORKLOADS[kinds[i]](gen, steps_per_session, input_size),
        )
        for i in range(num_sessions)
    ]
    total_requests = num_sessions * steps_per_session

    def serve_once(tracing: bool):
        server = SessionServer(
            engine,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=max(total_requests, 1),
            session_capacity=max(num_sessions, 1),
            tracer=Tracer() if tracing else None,
            profiler=PhaseTimer() if tracing else None,
        )
        results = run_open_loop(server, scripts)
        return server, results

    def cleanup():
        # The shard attaches its profiler to the shared engine and never
        # detaches it; without this reset the "off" rounds would keep
        # timing phases and the A/B would measure nothing.
        engine.profiler = None
        engine.traffic.clear()

    # Warm up both paths, then time.
    serve_once(True)
    serve_once(False)
    cleanup()

    best, first = timed_reps(
        {
            "tracing_on": lambda: timed_call(lambda: serve_once(True)),
            "tracing_off": lambda: timed_call(lambda: serve_once(False)),
            "sequential": lambda: timed_call(
                lambda: {s.session_id: engine.run(s.inputs) for s in scripts}
            ),
        },
        repeats,
        cleanup=cleanup,
    )
    sequential_time = best["sequential"]

    # Traced and untraced serving must be numerically identical —
    # observability is timing and counting only.  Compare the two
    # variants' round-0 outputs directly.
    on_results = first["tracing_on"][1]
    off_results = first["tracing_off"][1]
    diff = 0.0
    for script in scripts:
        on = np.stack([r.y for r in on_results[script.session_id]])
        off = np.stack([r.y for r in off_results[script.session_id]])
        diff = max(diff, float(np.max(np.abs(on - off))))

    def build(key: str, tracing: bool) -> ServeLoadResult:
        server, _ = first[key]
        served_time = best[key]
        metrics = server.metrics
        p50, p95 = metrics.wait_percentiles()
        p99 = metrics.wait_quantile(0.99)
        return ServeLoadResult(
            concurrent_sessions=num_sessions,
            steps_per_session=steps_per_session,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            requests_per_sec=total_requests / served_time,
            sequential_requests_per_sec=total_requests / sequential_time,
            speedup_vs_sequential=sequential_time / served_time,
            microbatch_max_abs_diff=diff,
            p50_wait_ticks=float(p50 if p50 is not None else -1.0),
            p95_wait_ticks=float(p95 if p95 is not None else -1.0),
            p99_wait_ticks=float(p99 if p99 is not None else -1.0),
            mean_batch_occupancy=float(metrics.mean_occupancy() or 0.0),
            admission_rejects=metrics.admission_rejects,
            evictions=metrics.evictions_ttl + metrics.evictions_lru,
            dtype=config.dtype,
            memory_size=config.memory_size,
            state_arena=True,
            state_bytes_copied=metrics.state_bytes_copied,
            backend=config.backend,
            tracing=tracing,
        )

    return build("tracing_on", True), build("tracing_off", False)


def large_n_sparse_config(
    memory_size: int = 1024,
    access_top_k: int = 64,
    word_size: int = 16,
    num_reads: int = 1,
    num_tiles: int = 8,
    hidden_size: int = 32,
    **overrides,
):
    """The canonical large-N sparse serving configuration.

    Sparse top-K access is what makes ``memory_size >= 1024`` servable —
    the dense O(N^2) write/linkage phases dominate the step there (see
    ``BENCH_sparse_access.json``) — so the large-N load scenarios build
    their engine from this one place.  ``access_top_k=0`` drops back to
    the dense policy (the sweep's baseline arm); any other
    :class:`~repro.core.config.HiMAConfig` field can be overridden.
    """
    from repro.core.config import HiMAConfig

    policy = "sparse" if access_top_k > 0 else "dense"
    return HiMAConfig(
        memory_size=memory_size, word_size=word_size, num_reads=num_reads,
        num_tiles=num_tiles, hidden_size=hidden_size, two_stage_sort=False,
        access_policy=policy, access_top_k=access_top_k, **overrides,
    )


def measure_serve_memory_sweep(
    memory_sizes: Sequence[int] = (384, 1024),
    access_top_k: int = 64,
    num_sessions: int = 12,
    max_batch: int = 8,
    max_wait_ticks: int = 1,
    repeats: int = 2,
    rng: int = 0,
    mean_session_len: float = 6.0,
) -> Dict[int, ServeLoadResult]:
    """Serve the same Zipf-tenant mix across a ``memory_size`` sweep.

    The memory-size knob for serving measurements: each sweep point
    builds a :func:`large_n_sparse_config` engine at that ``N``
    (``access_top_k=0`` sweeps the dense policy instead), replays one
    seeded :func:`generate_zipf_scripts` trace through a
    :class:`~repro.serve.server.SessionServer`, checks every served
    trajectory against solo unbatched stepping on a same-seed engine,
    and scores the best wall time over ``repeats`` rounds.  Returns
    ``{memory_size: ServeLoadResult}``; ``steps_per_session`` records
    the trace's mean session length (Zipf sessions are ragged).
    """
    from repro.core.engine import TiledEngine

    results: Dict[int, ServeLoadResult] = {}
    for memory_size in memory_sizes:
        config = large_n_sparse_config(
            memory_size=memory_size, access_top_k=access_top_k
        )
        engine = TiledEngine(config, rng=rng)
        input_size = engine.reference.config.input_size
        scripts = generate_zipf_scripts(
            input_size,
            num_sessions=num_sessions,
            mean_session_len=mean_session_len,
            rng=rng,
        )
        total_requests = sum(script.length for script in scripts)

        solo_engine = TiledEngine(config, rng=rng)
        baseline = {s.session_id: solo_engine.run(s.inputs) for s in scripts}
        solo_engine.traffic.clear()

        def serve_once():
            server = SessionServer(
                engine,
                max_batch=max_batch,
                max_wait_ticks=max_wait_ticks,
                queue_capacity=max(total_requests, 1),
                session_capacity=max(num_sessions, 1),
            )
            return server, run_open_loop(server, scripts)

        server, results_map = serve_once()  # warm-up + correctness run
        engine.traffic.clear()
        diff = 0.0
        for script in scripts:
            served = np.stack([r.y for r in results_map[script.session_id]])
            diff = max(
                diff,
                float(np.max(np.abs(served - baseline[script.session_id]))),
            )

        def run_sequential():
            for script in scripts:
                solo_engine.run(script.inputs)

        def cleanup():
            engine.traffic.clear()
            solo_engine.traffic.clear()

        best, timed_first = timed_reps(
            {
                "served": lambda: timed_call(serve_once),
                "sequential": lambda: timed_call(run_sequential),
            },
            repeats,
            cleanup=cleanup,
        )
        server, _ = timed_first["served"]
        served_time = best["served"]
        sequential_time = best["sequential"]

        metrics = server.metrics
        p50, p95 = metrics.wait_percentiles()
        p99 = metrics.wait_quantile(0.99)
        results[memory_size] = ServeLoadResult(
            concurrent_sessions=num_sessions,
            steps_per_session=max(1, total_requests // num_sessions),
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            requests_per_sec=total_requests / served_time,
            sequential_requests_per_sec=total_requests / sequential_time,
            speedup_vs_sequential=sequential_time / served_time,
            microbatch_max_abs_diff=diff,
            p50_wait_ticks=float(p50 if p50 is not None else -1.0),
            p95_wait_ticks=float(p95 if p95 is not None else -1.0),
            p99_wait_ticks=float(p99 if p99 is not None else -1.0),
            mean_batch_occupancy=float(metrics.mean_occupancy() or 0.0),
            admission_rejects=metrics.admission_rejects,
            evictions=metrics.evictions_ttl + metrics.evictions_lru,
            dtype=config.dtype,
            memory_size=config.memory_size,
            state_arena=True,
            state_bytes_copied=metrics.state_bytes_copied,
            backend=config.backend,
        )
    return results


# ---------------------------------------------------------------------------
# Shard-scaling measurement
# ---------------------------------------------------------------------------


@dataclass
class ShardScalingResult:
    """One shard-count point of the sharded-serving scaling curve.

    Field names match :data:`repro.eval.bench_schema.SHARD_ENTRY_KEYS`
    exactly — :meth:`to_json` is generated from that single source of
    truth.  ``requests_per_sec`` counts completed step requests per wall
    second over the identical workload at every shard count;
    ``speedup_vs_one_shard`` is relative to this sweep's 1-shard
    cluster, and ``session_server_requests_per_sec`` is the pre-sharding
    :class:`~repro.serve.server.SessionServer` on the same workload (the
    no-regression baseline for the 1-shard cluster).
    """

    shards: int
    concurrent_sessions: int
    steps_per_session: int
    max_batch: int
    requests_per_sec: float
    speedup_vs_one_shard: float
    session_server_requests_per_sec: float
    #: Served-vs-solo max abs error from the correctness pass, which for
    #: multi-shard counts includes one forced mid-stream migration.
    sharded_max_abs_diff: float
    sessions_migrated: int
    parallel: bool
    placement: str
    dtype: str
    memory_size: int

    def to_json(self) -> Dict[str, object]:
        """One ``BENCH_shard_scaling.json`` artifact entry."""
        return {key: getattr(self, key) for key in SHARD_ENTRY_KEYS}


def measure_shard_scaling(
    config=None,
    shard_counts: Sequence[int] = (1, 2, 4),
    num_sessions: int = 64,
    steps_per_session: int = 4,
    max_batch: int = 16,
    max_wait_ticks: int = 1,
    repeats: int = 3,
    rng: int = 0,
    parallel: bool = True,
) -> Dict[int, ShardScalingResult]:
    """Measure :class:`~repro.serve.cluster.ShardedServer` scaling.

    Every shard count serves the identical workload (``num_sessions``
    concurrent sessions, all arriving at tick 0) with per-shard arena
    capacity ``num_sessions / shards`` and the same per-engine
    ``max_batch``, so the engine-step budget is constant and the curve
    isolates what sharding buys: full-occupancy zero-copy arena steps on
    every shard (the 1-shard cluster runs at fractional occupancy and
    pays the masked-step state movement) plus thread-parallel shard
    ticks.  A :class:`~repro.serve.server.SessionServer` baseline runs
    the same workload for the no-regression bound, and a separate
    correctness pass — with one forced mid-stream migration when there
    is more than one shard — checks served outputs against solo
    unbatched stepping.

    ``rng`` must be an integer seed (not a live generator): it seeds
    every shard engine identically, the cluster's migration contract.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        config = HiMAConfig(
            memory_size=384, word_size=16, num_reads=1, num_tiles=8,
            hidden_size=32, two_stage_sort=False,
        )
    if 1 not in shard_counts:
        raise ConfigError(
            "shard_counts must include 1 (the speedup reference), got "
            f"{tuple(shard_counts)}"
        )
    for count in shard_counts:
        if num_sessions % count != 0:
            raise ConfigError(
                f"num_sessions ({num_sessions}) must divide evenly into "
                f"{count} shards"
            )
    input_size = config.word_size
    gen = new_rng(rng)
    kinds = [
        WORKLOAD_KINDS[i % len(WORKLOAD_KINDS)] for i in range(num_sessions)
    ]
    scripts = [
        SessionScript(
            session_id=f"{kinds[i]}-{i}",
            arrival_tick=0,
            kind=kinds[i],
            inputs=_WORKLOADS[kinds[i]](gen, steps_per_session, input_size),
        )
        for i in range(num_sessions)
    ]
    total_requests = num_sessions * steps_per_session

    # Solo unbatched reference trajectories (the correctness bar).
    solo_engine = TiledEngine(config, rng=rng)
    baseline = {s.session_id: solo_engine.run(s.inputs) for s in scripts}
    solo_engine.traffic.clear()

    # Pre-sharding SessionServer baseline on the identical workload.
    server_engine = TiledEngine(config, rng=rng)

    def run_session_server() -> Tuple[float, object]:
        # Construction stays outside the critical section: the point is
        # serving throughput, not arena allocation.
        server = SessionServer(
            server_engine,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=max(total_requests, 1),
            session_capacity=num_sessions,
        )
        return timed_call(lambda: run_open_loop(server, scripts))

    single_best, _ = timed_reps(
        {"session_server": run_session_server},
        repeats,
        cleanup=server_engine.traffic.clear,
    )
    session_server_rps = total_requests / single_best["session_server"]

    results: Dict[int, ShardScalingResult] = {}
    for count in shard_counts:
        capacity = num_sessions // count
        engines = [TiledEngine(config, rng=rng) for _ in range(count)]

        def make_cluster(slack: int = 0) -> ShardedServer:
            return ShardedServer(
                engines,
                max_batch=max_batch,
                max_wait_ticks=max_wait_ticks,
                queue_capacity=max(total_requests, 1),
                session_capacity=capacity + slack,
                parallel=parallel,
            )

        # Correctness pass (one free slot so a migration can land).
        migrated = 0
        results_map: Dict[str, List[StepRequest]] = {}
        with make_cluster(slack=1) as cluster:
            for script in scripts:
                if cluster.open_session(script.session_id) is None:
                    raise ConfigError(
                        f"shard cluster refused session "
                        f"{script.session_id!r} during the correctness pass"
                    )
                results_map[script.session_id] = [
                    cluster.submit(script.session_id, x)
                    for x in script.inputs
                ]
            cluster.run_tick()
            if count > 1:
                victim = scripts[0].session_id
                src = cluster.shard_of(victim)
                cluster.migrate_session(victim, (src + 1) % count)
                migrated = cluster.migrations
            cluster.drain()
        diff = 0.0
        for script in scripts:
            served = np.stack(
                [r.y for r in results_map[script.session_id]]
            )
            diff = max(
                diff,
                float(np.max(np.abs(served - baseline[script.session_id]))),
            )
        for engine in engines:
            engine.traffic.clear()

        # Timing rounds: fresh cluster per round, best wall time
        # (cluster construction and teardown stay outside the clock).
        def run_cluster() -> Tuple[float, object]:
            with make_cluster() as timing_cluster:
                return timed_call(
                    lambda: run_open_loop(timing_cluster, scripts)
                )

        def clear_engines():
            for engine in engines:
                engine.traffic.clear()

        cluster_best, _ = timed_reps(
            {"cluster": run_cluster}, repeats, cleanup=clear_engines
        )
        best = cluster_best["cluster"]
        results[count] = ShardScalingResult(
            shards=count,
            concurrent_sessions=num_sessions,
            steps_per_session=steps_per_session,
            max_batch=max_batch,
            requests_per_sec=total_requests / best,
            speedup_vs_one_shard=0.0,  # filled below once shards=1 is known
            session_server_requests_per_sec=session_server_rps,
            sharded_max_abs_diff=diff,
            sessions_migrated=migrated,
            parallel=parallel,
            placement=type(cluster.placement).__name__,
            dtype=config.dtype,
            memory_size=config.memory_size,
        )

    reference = results[1].requests_per_sec
    for result in results.values():
        result.speedup_vs_one_shard = result.requests_per_sec / reference
    return results


# ---------------------------------------------------------------------------
# Process-serving measurement (threads vs procs vs procs + restarts)
# ---------------------------------------------------------------------------


@dataclass
class ProcServeResult:
    """One topology point of the process-serving comparison.

    Field names match :data:`repro.eval.bench_schema.PROC_ENTRY_KEYS`
    exactly — :meth:`to_json` is generated from that single source of
    truth.  ``mode`` is ``"threads"`` (thread-sharded
    :class:`~repro.serve.cluster.ShardedServer`), ``"procs"``
    (:class:`~repro.serve.proc.ProcCluster`), or ``"procs_restart"``
    (the process cluster under the rolling SIGKILL drill);
    ``speedup_vs_threads`` is relative to this sweep's threads variant.
    """

    mode: str
    workers: int
    concurrent_sessions: int
    total_requests: int
    max_batch: int
    requests_per_sec: float
    speedup_vs_threads: float
    #: Served-vs-solo max abs error over every completed request — for
    #: ``procs_restart`` that bound holds *through* worker kills and
    #: checkpoint/replay recovery.
    max_abs_diff_vs_solo: float
    requests_failed: int
    worker_restarts: int
    sessions_recovered: int
    checkpoints_taken: int
    checkpoint_interval: int
    p95_wait_ticks: float
    p99_wait_ticks: float
    dtype: str
    memory_size: int

    def to_json(self) -> Dict[str, object]:
        """One ``BENCH_proc_serve.json`` artifact entry."""
        return {key: getattr(self, key) for key in PROC_ENTRY_KEYS}


def measure_proc_serve(
    config=None,
    num_workers: int = 4,
    num_sessions: int = 64,
    max_batch: int = 16,
    max_wait_ticks: int = 1,
    repeats: int = 3,
    rng: int = 0,
    checkpoint_interval: int = 8,
    kill_every_ticks: int = 8,
    mean_session_len: float = 6.0,
) -> Dict[str, ProcServeResult]:
    """Threads vs worker processes vs processes-under-restarts, one workload.

    All three topologies serve the identical ``num_sessions``-session
    Zipf-tenant mix (:func:`generate_zipf_scripts`): the thread cluster
    shares one GIL across its shard ticks, so at serving-heavy
    ``memory_size`` the process cluster's truly parallel ticks are the
    scaling story this measurement exists to record — and the
    ``procs_restart`` variant prices crash recovery by SIGKILLing a
    worker every ``kill_every_ticks`` ticks mid-traffic
    (:func:`run_rolling_restart`) while the checkpoint/replay path keeps
    every trajectory within 1e-10 of solo stepping.

    Each variant runs ``repeats`` rounds on a fresh cluster, with the
    rounds interleaved round-robin across the variants so drifting
    background load cannot bias one variant's block (best wall time
    scores each variant); correctness stats come from the first round.
    Returns ``{"threads": ..., "procs": ..., "procs_restart": ...}``
    with ``speedup_vs_threads`` filled relative to the threads variant.

    ``rng`` must be an integer seed: it seeds every shard and worker
    engine identically (the migration/recovery weight contract).
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine
    from repro.serve.proc import ProcCluster

    if config is None:
        config = HiMAConfig(
            memory_size=384, word_size=16, num_reads=1, num_tiles=8,
            hidden_size=32, two_stage_sort=False,
        )
    input_size = config.word_size
    scripts = generate_zipf_scripts(
        input_size,
        num_sessions=num_sessions,
        mean_session_len=mean_session_len,
        rng=rng,
    )
    total_requests = sum(script.length for script in scripts)

    # Solo unbatched reference trajectories (the correctness bar).
    solo_engine = TiledEngine(config, rng=rng)
    baseline = {s.session_id: solo_engine.run(s.inputs) for s in scripts}
    solo_engine.traffic.clear()

    def check_results(results_map) -> Tuple[float, int]:
        diff = 0.0
        failed = 0
        for script in scripts:
            for t, request in enumerate(results_map[script.session_id]):
                if request.error is not None or request.y is None:
                    failed += 1
                    continue
                diff = max(diff, float(np.max(np.abs(
                    request.y - baseline[script.session_id][t]
                ))))
        return diff, failed

    thread_engines = [TiledEngine(config, rng=rng) for _ in range(num_workers)]

    def run_threads():
        # Thread-per-shard: both sides of the comparison get one
        # execution context per shard (4 threads vs 4 processes).  The
        # pool's default ``min(shards, cpu_count)`` width would quietly
        # degenerate to a single worker thread on a small box — a
        # sequential cluster wearing a ``parallel=True`` label, which
        # measures neither the GIL cost threads actually pay nor the
        # topology this comparison exists to record.
        with ShardedServer(
            thread_engines,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=max(total_requests, 1),
            session_capacity=num_sessions,
            parallel=True,
            parallel_workers=num_workers,
        ) as cluster:
            elapsed, results_map = timed_call(
                lambda: run_open_loop(cluster, scripts)
            )
            metrics = cluster.cluster_metrics()
        for engine in thread_engines:
            engine.traffic.clear()
        return elapsed, (results_map, metrics)

    def run_procs(restart: bool):
        # The steady-state variant turns periodic checkpointing off so
        # the threads-vs-procs point compares pure serving topology —
        # neither side does durability work (the supervisor still logs
        # every input, so replay-from-open recovery stays available).
        # ``procs_restart`` keeps the interval and prices the full
        # checkpoint + SIGKILL + restore drill.
        with ProcCluster(
            config,
            seed=rng,
            num_workers=num_workers,
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=max(total_requests, 1),
            session_capacity=num_sessions,
            checkpoint_interval=checkpoint_interval if restart else None,
        ) as cluster:
            if restart:
                elapsed, (results_map, _) = timed_call(
                    lambda: run_rolling_restart(
                        cluster, scripts, kill_every_ticks=kill_every_ticks
                    )
                )
            else:
                elapsed, results_map = timed_call(
                    lambda: run_open_loop(cluster, scripts)
                )
            metrics = cluster.cluster_metrics()
            extra = {
                "sessions_recovered": cluster.supervisor.sessions_recovered,
                "checkpoints_taken": cluster.supervisor.checkpoints_taken,
            }
        return elapsed, (results_map, (metrics, extra))

    runners = {
        "threads": run_threads,
        "procs": lambda: run_procs(False),
        "procs_restart": lambda: run_procs(True),
    }
    # Interleaved rounds (see timed_reps): every variant sees the same
    # background-noise distribution, so best-of-``repeats`` compares
    # topologies, not measurement order.
    best, first = timed_reps(runners, repeats)

    def build(mode: str) -> ProcServeResult:
        results_map, stats = first[mode]
        if mode == "threads":
            metrics, extra = stats, {
                "sessions_recovered": 0, "checkpoints_taken": 0,
            }
        else:
            metrics, extra = stats
        diff, failed = check_results(results_map)
        p95 = metrics.wait_percentiles()[1]
        p99 = metrics.wait_quantile(0.99)
        return ProcServeResult(
            mode=mode,
            workers=num_workers,
            concurrent_sessions=num_sessions,
            total_requests=total_requests,
            max_batch=max_batch,
            requests_per_sec=total_requests / best[mode],
            speedup_vs_threads=0.0,  # filled below once threads is known
            max_abs_diff_vs_solo=diff,
            requests_failed=failed,
            worker_restarts=metrics.worker_restarts,
            sessions_recovered=extra["sessions_recovered"],
            checkpoints_taken=extra["checkpoints_taken"],
            checkpoint_interval=(
                checkpoint_interval if mode == "procs_restart" else 0
            ),
            p95_wait_ticks=float(p95 if p95 is not None else -1.0),
            p99_wait_ticks=float(p99 if p99 is not None else -1.0),
            dtype=config.dtype,
            memory_size=config.memory_size,
        )

    results = {mode: build(mode) for mode in runners}
    reference = results["threads"].requests_per_sec
    for result in results.values():
        result.speedup_vs_threads = result.requests_per_sec / reference
    return results


__all__ = [
    "WORKLOAD_KINDS",
    "SessionScript",
    "tenant_of",
    "timed_call",
    "timed_reps",
    "generate_scripts",
    "generate_zipf_scripts",
    "run_open_loop",
    "run_rolling_restart",
    "ServeLoadResult",
    "measure_serve_load",
    "measure_serve_ab",
    "measure_serve_tracing_ab",
    "large_n_sparse_config",
    "measure_serve_memory_sweep",
    "ShardScalingResult",
    "measure_shard_scaling",
    "ProcServeResult",
    "measure_proc_serve",
]
