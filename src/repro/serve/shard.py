"""The engine-owning serving worker: one shard of a (possibly sharded) cluster.

:class:`EngineShard` is the extracted core of the original
``SessionServer`` — one :class:`~repro.core.engine.TiledEngine` plus the
session store, micro-batcher, resident state arena, and masked-step
dispatch that serve it.  A single shard *is* the single-engine server
(:class:`repro.serve.server.SessionServer` is the thin 1-shard front
door, preserving the original API verbatim), and N shards compose into
a :class:`repro.serve.cluster.ShardedServer` that routes sessions
across them.

State residency: by default every session is pinned to one slot of a
preallocated :class:`~repro.serve.arena.StateArena` for its whole
lifetime, and each tick advances the dispatched slots through the
engine's masked in-place step — the per-tick ``gather_states`` /
``scatter_states`` copy pair of the original serving layer collapses to
one slot write on join and one slot read on leave/checkpoint.
``EngineShard(state_arena=False)`` keeps the gather/scatter path, which
also remains the checkpoint mechanism (:meth:`session_state` /
:meth:`restore_session_state`).

Checkpoint/migration surface (the sharded cluster's rebalancing
primitive): :meth:`checkpoint_session` / :meth:`restore_session` carry a
session's full recurrent state as the versioned
:meth:`~repro.dnc.numpy_ref.NumpyDNCState.to_bytes` byte string, and
:meth:`detach_session` / :meth:`attach_session` move a *live* session —
state bytes plus its pending request FIFO — between shards without
failing a single queued request.  Migration costs exactly one slot read
on the source and one slot write on the destination (the PR 4 slot
lifetime contract), so a migrated session's trajectory is bit-identical
to never having moved, given equal dispatch order.

Correctness contract (pinned by ``tests/test_serve_microbatch.py`` and
``tests/test_serve_arena.py``): stepping K sessions through the
micro-batcher is numerically identical (<= 1e-10 in float64) to
stepping each session alone through the unbatched engine, *including*
when sessions join and leave mid-stream — the batch membership may
differ on every tick — and the arena path matches the gather/scatter
path under arbitrary join/leave/evict churn.  Traffic accounting keeps
PR 1's batched-words convention: each dispatched tick logs the one-step
message pattern with every event's words scaled by that tick's batch
occupancy.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import TiledEngine, gather_states, scatter_states
from repro.dnc.numpy_ref import NumpyDNCState
from repro.errors import CapacityError, ConfigError
from repro.obs import PHASES, PhaseTimer, Tracer
from repro.serve.arena import StateArena
from repro.serve.batcher import MicroBatcher, StepRequest
from repro.serve.metrics import ServerMetrics
from repro.serve.session import SessionStore


class EngineShard:
    """Serve asynchronously arriving DNC sessions through one engine.

    The shard is deterministic and single-threaded by design: time
    advances only through :meth:`run_tick`, which makes the scheduling
    (and therefore every session's numerical trajectory) exactly
    reproducible — the property the correctness tests pin.  Because a
    shard owns its engine, store, and arena outright and shares nothing,
    a cluster may drive many shards' ticks concurrently (threads) with
    bit-identical results to driving them one after another.
    """

    def __init__(
        self,
        engine: TiledEngine,
        shard_id: int = 0,
        max_batch: int = 16,
        max_wait_ticks: int = 2,
        queue_capacity: int = 1024,
        session_capacity: int = 64,
        session_ttl_ticks: Optional[int] = None,
        state_arena: bool = True,
        metrics: Optional[ServerMetrics] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseTimer] = None,
    ):
        self.engine = engine
        self.shard_id = shard_id
        self.metrics = metrics if metrics is not None else ServerMetrics()
        #: Optional request tracer: when set, every submit/tick emits
        #: spans (``shard.submit`` / ``shard.tick`` / ``engine.step`` /
        #: per-request ``shard.dispatch``); ``None`` costs one check per
        #: hook.
        self.tracer = tracer
        #: Optional per-phase engine profiler — attached to the engine's
        #: ``profiler`` seam so each tick's step attributes its wall time
        #: to named phases; with a tracer too, the tick synthesizes
        #: ``engine.phase:*`` child spans from the stat deltas.
        self.profiler = profiler
        if profiler is not None:
            engine.profiler = profiler
        self.batcher = MicroBatcher(
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=queue_capacity,
        )
        #: Resident slot-pinned state (default), or ``None`` on the
        #: gather/scatter fallback path where each record owns its state.
        self.arena: Optional[StateArena] = (
            StateArena(engine.initial_state, capacity=session_capacity)
            if state_arena else None
        )
        self.store = SessionStore(
            state_factory=None if state_arena else engine.initial_state,
            capacity=session_capacity,
            ttl_ticks=session_ttl_ticks,
            on_evict=self._on_evict,
        )
        # Reused every tick (one row per arena slot, or per batch lane on
        # the fallback path) instead of a fresh np.stack allocation.
        input_size = engine.reference.config.input_size
        buf_rows = session_capacity if state_arena else max_batch
        self._x_buf = np.zeros(
            (buf_rows, input_size), dtype=engine.config.np_dtype
        )
        self.tick = 0
        self._session_counter = 0

    # ------------------------------------------------------------------
    @property
    def load(self) -> int:
        """Open sessions on this shard (the placement policies' signal)."""
        return len(self.store)

    @property
    def queue_depth(self) -> int:
        """Total queued step requests across this shard's sessions."""
        return len(self.batcher)

    @property
    def capacity(self) -> int:
        """Maximum resident sessions (the store's admission bound)."""
        return self.store.capacity

    @property
    def pending_counts(self):
        """Queued requests per session — see
        :meth:`MicroBatcher.pending_counts`."""
        return self.batcher.pending_counts()

    @property
    def p95_wait(self) -> Optional[float]:
        """p95 request wait in ticks (``None`` before any completion)."""
        return self.metrics.wait_percentiles()[1]

    def phase_stats(self):
        """Cumulative per-phase engine profile (empty without a
        profiler) — a :meth:`repro.obs.profiler.PhaseTimer.stats` dict."""
        return self.profiler.stats() if self.profiler is not None else {}

    # ------------------------------------------------------------------
    def _on_evict(self, session_id: str, reason: str) -> None:
        if reason == "ttl":
            self.metrics.evictions_ttl += 1
        else:
            self.metrics.evictions_lru += 1
        if self.arena is not None:
            self.arena.release(session_id)
        self._fail_queued(session_id, f"session evicted ({reason})")

    def _fail_queued(self, session_id: str, error: str) -> None:
        for request in self.batcher.drop_session(session_id):
            request.error = error
            request.completed_tick = self.tick
            self.metrics.requests_failed += 1

    # ------------------------------------------------------------------
    def open_session(self, session_id: Optional[str] = None) -> Optional[str]:
        """Admit a new session; returns its id, or ``None`` when refused.

        Admission may evict an idle session (TTL first, then LRU — never
        one with queued requests); when the store is full of protected
        sessions the open is refused and counted as an admission reject.
        """
        if session_id is None:
            # Skip over any ids the caller already claimed explicitly.
            while f"session-{self._session_counter}" in self.store:
                self._session_counter += 1
            session_id = f"session-{self._session_counter}"
            self._session_counter += 1
        try:
            self.store.create(
                session_id, self.tick, protect=self.batcher.pending_sessions()
            )
        except CapacityError:
            self.metrics.admission_rejects += 1
            return None
        if self.arena is not None:
            # Join: the session's single slot write (a zeroed initial
            # state); its state never moves again until it leaves.
            self.arena.bind(session_id)
            self.metrics.observe_state_copy(self.arena.row_nbytes)
        self.metrics.sessions_opened += 1
        return session_id

    def close_session(self, session_id: str) -> None:
        """Drop a session's state; queued requests fail with an error."""
        self._fail_queued(session_id, "session closed")
        self.store.remove(session_id)
        if self.arena is not None:
            self.arena.release(session_id)
        self.metrics.sessions_closed += 1

    # ------------------------------------------------------------------
    def session_state(self, session_id: str) -> NumpyDNCState:
        """Copy of a session's current recurrent state (checkpoint read).

        The arena path's "read one slot on leave/drain"; on the fallback
        path this copies the record's unbatched state.  The returned
        state owns its arrays and can be fed to
        :meth:`restore_session_state` (here or on another shard with
        the same engine config) or to the engine's unbatched step.
        """
        if self.arena is not None:
            state = self.arena.read_slot(session_id)
        else:
            state = self.store.get(session_id).state.copy()
        self.metrics.observe_state_copy(state.nbytes)
        return state

    def restore_session_state(
        self, session_id: str, state: NumpyDNCState
    ) -> None:
        """Overwrite a session's recurrent state from a checkpoint."""
        if self.arena is not None:
            self.arena.write_slot(session_id, state)
        else:
            record = self.store.get(session_id)
            if state.batch_size is not None:
                raise ConfigError(
                    "restore_session_state expects an unbatched state"
                )
            for name in NumpyDNCState.FIELDS:
                src = getattr(state, name)
                cur = getattr(record.state, name)
                if src.shape != cur.shape or src.dtype != cur.dtype:
                    raise ConfigError(
                        f"restore_session_state: field {name!r} has shape "
                        f"{src.shape} dtype {src.dtype}, expected "
                        f"{cur.shape} {cur.dtype}"
                    )
            record.state = state.copy()
        self.metrics.observe_state_copy(state.nbytes)

    # ------------------------------------------------------------------
    def checkpoint_session(self, session_id: str) -> bytes:
        """A session's state as a portable versioned byte string.

        One slot read rendered through
        :meth:`NumpyDNCState.to_bytes`; the payload restores bitwise on
        any shard whose engine shares this one's configuration
        (:meth:`restore_session`) and is the unit the cluster's
        session migration moves.
        """
        return self.session_state(session_id).to_bytes()

    def restore_session(self, session_id: str, payload: bytes) -> str:
        """Restore a :meth:`checkpoint_session` payload into a session.

        Opens ``session_id`` first when it does not exist (raising
        :class:`~repro.errors.CapacityError` if admission is refused),
        then overwrites its state — one slot write.  Returns the
        session id.
        """
        state = NumpyDNCState.from_bytes(payload)
        if session_id not in self.store:
            if self.open_session(session_id) is None:
                raise CapacityError(
                    f"shard {self.shard_id}: cannot admit session "
                    f"{session_id!r} for checkpoint restore"
                )
        self.restore_session_state(session_id, state)
        return session_id

    def detach_session(
        self, session_id: str
    ) -> Tuple[bytes, List[StepRequest]]:
        """Remove a live session for migration; nothing fails.

        Returns ``(checkpoint_bytes, pending_requests)``: the state as
        one slot read, plus the session's queued FIFO *unfailed* — the
        exact payload :meth:`attach_session` needs on the destination
        shard.  Unlike :meth:`close_session`, client-held requests stay
        pending and the session does not count as closed.
        """
        payload = self.checkpoint_session(session_id)
        pending = self.batcher.drop_session(session_id)
        self.store.remove(session_id)
        if self.arena is not None:
            self.arena.release(session_id)
        self.metrics.migrations_out += 1
        return payload, pending

    def attach_session(
        self,
        session_id: str,
        payload: bytes,
        pending: Sequence[StepRequest] = (),
    ) -> None:
        """Adopt a session detached from another shard.

        One slot write restores the checkpoint; the pending FIFO is
        re-enqueued in order with the original submit ticks, so the
        session resumes exactly where it left off.  Raises
        :class:`~repro.errors.ConfigError` for a duplicate id and
        :class:`~repro.errors.CapacityError` when the shard is full —
        migration never evicts a resident session to make room (the
        rebalancer must pick a destination with a free slot).
        """
        if session_id in self.store:
            raise ConfigError(
                f"shard {self.shard_id}: session {session_id!r} already exists"
            )
        if len(self.store) >= self.store.capacity:
            raise CapacityError(
                f"shard {self.shard_id} is full "
                f"({self.store.capacity} sessions); refusing migration"
            )
        state = NumpyDNCState.from_bytes(payload)
        self.store.create(
            session_id, self.tick, protect=self.batcher.pending_sessions()
        )
        if self.arena is not None:
            self.arena.bind(session_id)
        self.restore_session_state(session_id, state)
        if pending:
            self.batcher.adopt(session_id, list(pending))
        self.metrics.migrations_in += 1

    # ------------------------------------------------------------------
    def submit(
        self,
        session_id: str,
        x: np.ndarray,
        trace: Optional[tuple] = None,
    ) -> Optional[StepRequest]:
        """Queue one timestep for ``session_id``; ``None`` means refused.

        A refusal is backpressure (the global queue is full) and counts
        as an admission reject; the session itself stays open.  A
        malformed input is rejected here, at the offending client —
        never inside ``run_tick``, where it would poison a whole batch.

        ``trace`` is a propagated ``(trace_id, span_id)`` parent context
        (the router/frontend span, possibly from another process); with
        a tracer attached, the accepted request carries a
        ``shard.submit`` span's context for its dispatch span to parent
        on.
        """
        if session_id not in self.store:
            raise ConfigError(f"unknown session {session_id!r}")
        x = np.asarray(x)
        input_size = self.engine.reference.config.input_size
        if x.shape != (input_size,):
            raise ConfigError(
                f"submit expects x of shape ({input_size},), got {x.shape}"
            )
        tracer = self.tracer
        span = (
            tracer.start(
                "shard.submit",
                parent=trace,
                attrs={"session": session_id, "shard": self.shard_id},
            )
            if tracer is not None
            else None
        )
        request = self.batcher.submit(session_id, x, self.tick)
        if request is None:
            self.metrics.admission_rejects += 1
        else:
            self.metrics.requests_submitted += 1
            if span is not None:
                request.trace = span.context
            elif trace is not None:
                request.trace = tuple(trace)
        if span is not None:
            tracer.end(span, accepted=request is not None)
        return request

    # ------------------------------------------------------------------
    def _traced_engine_step(self, tick_span, call):
        """Run one engine step under an ``engine.step`` span, with
        ``engine.phase:*`` child spans synthesized from the profiler's
        stat delta (stitched sequentially across the step interval —
        the phases execute in order, so the stitching is faithful up to
        the unattributed slack between laps)."""
        tracer = self.tracer
        if tracer is None or tick_span is None:
            return call()
        prof = self.profiler
        before = prof.stats() if prof is not None else None
        span = tracer.start("engine.step", parent=tick_span)
        result = call()
        tracer.end(span)
        if prof is not None:
            delta = PhaseTimer.delta(before, prof.stats())
            t = span.t_start
            for phase in PHASES:
                entry = delta.get(phase)
                if not entry or entry["seconds"] <= 0.0:
                    continue
                t_end = min(t + entry["seconds"], span.t_end)
                tracer.emit(
                    f"engine.phase:{phase}",
                    span,
                    t,
                    t_end,
                    attrs={
                        "bytes": int(entry["bytes"]),
                        "count": int(entry["count"]),
                    },
                )
                t = t_end
        return result

    def run_tick(self, trace: Optional[tuple] = None) -> List[StepRequest]:
        """Advance one scheduler tick; returns the requests completed.

        One tick = at most one batched engine step: expire idle sessions,
        ask the batcher for a dispatchable batch, and run the shared
        engine once over the member sessions.  On the arena path the
        dispatched sessions' slots advance *in place* through the
        engine's masked step (zero state copies when every slot
        dispatches); on the fallback path the member states are gathered
        into a fresh batch and scattered back.  Either way the batch row
        order is dispatch order, so both paths compute bit-identical
        results.

        With a tracer attached the tick emits a ``shard.tick`` span —
        parented on ``trace`` (the cluster's tick context, possibly from
        another process) or, failing that, on the oldest traced request
        it dispatches — plus per-request ``shard.dispatch`` spans and
        the ``engine.step``/``engine.phase:*`` chain.
        """
        tracer = self.tracer
        t0_tick = time.perf_counter() if tracer is not None else 0.0
        tick = self.tick
        self.store.evict_expired(
            tick, protect=self.batcher.pending_sessions()
        )
        batch = self.batcher.next_batch(tick)
        # A session can only vanish between submit and dispatch through
        # close_session/eviction, both of which fail its queue — but a
        # stale request must degrade into an error, not a crash.
        live = [r for r in batch if r.session_id in self.store]
        for request in batch:
            if request.session_id not in self.store:
                request.error = "session state missing at dispatch"
                request.completed_tick = tick
                self.metrics.requests_failed += 1

        tick_span = None
        if tracer is not None:
            parent = trace
            if parent is None:
                for request in live:
                    if request.trace is not None:
                        parent = request.trace
                        break
            tick_span = tracer.start(
                "shard.tick",
                parent=parent,
                attrs={"shard": self.shard_id, "tick": tick},
            )
            tick_span.t_start = t0_tick

        if live and self.arena is not None:
            slots = self.arena.indices([r.session_id for r in live])
            for slot, request in zip(slots, live):
                self._x_buf[slot] = request.x  # casts to the dtype policy
            y, _ = self._traced_engine_step(
                tick_span,
                lambda: self.engine.step(
                    self._x_buf, self.arena.state, active=slots
                ),
            )
            self.metrics.observe_state_copy(
                self.engine.last_state_bytes_copied
            )
            for slot, request in zip(slots, live):
                record = self.store.touch(request.session_id, tick)
                record.steps_completed += 1
                # .copy(): each result must own its data, not alias the
                # shared batched output buffer.
                request.y = y[slot].copy()
                request.completed_tick = tick
                self.metrics.observe_wait(tick - request.submitted_tick)
                self.metrics.requests_completed += 1
                self.metrics.observe_tenant(request.session_id)
        elif live:
            records = [self.store.get(r.session_id) for r in live]
            batched_state = gather_states([rec.state for rec in records])
            xs = self._x_buf[: len(live)]
            for i, request in enumerate(live):
                xs[i] = request.x
            y, new_batched = self._traced_engine_step(
                tick_span, lambda: self.engine.step(xs, batched_state)
            )
            new_states = scatter_states(new_batched)
            self.metrics.observe_state_copy(
                batched_state.nbytes + new_batched.nbytes
            )
            for i, request in enumerate(live):
                record = self.store.touch(request.session_id, tick)
                record.state = new_states[i]
                record.steps_completed += 1
                # .copy(), not ascontiguousarray (a view of a contiguous
                # row): each result must own its data, not alias the
                # shared batched output buffer.
                request.y = y[i].copy()
                request.completed_tick = tick
                self.metrics.observe_wait(tick - request.submitted_tick)
                self.metrics.requests_completed += 1
                self.metrics.observe_tenant(request.session_id)

        if tracer is not None:
            t_done = time.perf_counter()
            for request in live:
                if request.trace is not None:
                    tracer.emit(
                        "shard.dispatch",
                        request.trace,
                        t0_tick,
                        t_done,
                        attrs={
                            "session": request.session_id,
                            "shard": self.shard_id,
                            "wait_ticks": request.wait_ticks,
                        },
                    )
            if tick_span is not None:
                tracer.end(tick_span, occupancy=len(live))

        self.metrics.observe_occupancy(len(live))
        if self.arena is not None:
            self.metrics.observe_slots(self.arena.occupancy)
        self.tick = tick + 1
        return batch

    def drain(self, max_ticks: int = 10_000) -> List[StepRequest]:
        """Run ticks until no request is queued; returns all completions.

        Raises :class:`~repro.errors.ConfigError` if the queue fails to
        empty within ``max_ticks`` (a scheduler bug would otherwise spin
        forever).
        """
        completed: List[StepRequest] = []
        for _ in range(max_ticks):
            if self.queue_depth == 0:
                return completed
            completed.extend(self.run_tick())
        raise ConfigError(
            f"drain did not empty the queue within {max_ticks} ticks"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release serving resources (idempotent).

        A lone shard owns no threads or processes — its arena and store
        are plain arrays the collector reclaims — so there is nothing to
        tear down here.  The method exists so every server object in the
        stack shares one context-manager surface: callers write
        ``with make_server() as server:`` without caring whether they
        got a shard, a thread cluster (executor shutdown), or a process
        cluster (child processes stopped).
        """

    def __enter__(self) -> "EngineShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["EngineShard"]
