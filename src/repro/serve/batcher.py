"""Dynamic micro-batching scheduler for asynchronously arriving requests.

The :class:`MicroBatcher` is the piece that turns many independent,
irregularly arriving per-session step requests into the dense ``(B, ...)``
batches the engine's vectorized hot path wants.  Scheduling is
discrete-tick and deterministic:

* requests queue FIFO **per session** (a session's step ``t+1`` depends
  on the state produced by step ``t``, so at most one request per session
  joins any batch);
* a batch dispatches when ``max_batch`` distinct sessions have work, or
  when the oldest pending request has waited ``max_wait_ticks`` — the
  latency bound that keeps a lone request from waiting forever for
  companions;
* total queued requests are capped at ``queue_capacity``; beyond that
  :meth:`submit` refuses (backpressure / admission control), and the
  caller decides whether to retry, shed, or slow the client.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set

import numpy as np

from repro.errors import ConfigError


@dataclass
class StepRequest:
    """One pending DNC timestep for one session.

    Filled in by the scheduler on completion: ``y`` (the model output),
    ``completed_tick``, or ``error`` when the session vanished before the
    request could run.
    """

    session_id: str
    x: np.ndarray
    submitted_tick: int
    seq: int  # global FIFO tiebreak among equal submit ticks
    y: Optional[np.ndarray] = None
    completed_tick: Optional[int] = None
    error: Optional[str] = None
    #: Propagated trace context ``(trace_id, span_id)`` of the submit
    #: span, or ``None`` when the request is untraced.  The owning shard
    #: parents its per-request dispatch span here.
    trace: Optional[tuple] = None

    @property
    def done(self) -> bool:
        return self.completed_tick is not None

    @property
    def wait_ticks(self) -> Optional[int]:
        if self.completed_tick is None:
            return None
        return self.completed_tick - self.submitted_tick


class MicroBatcher:
    """Gathers per-session FIFO queues into dispatchable micro-batches."""

    def __init__(
        self,
        max_batch: int = 16,
        max_wait_ticks: int = 2,
        queue_capacity: int = 1024,
    ):
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ticks < 0:
            raise ConfigError(
                f"max_wait_ticks must be >= 0, got {max_wait_ticks}"
            )
        if queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self.max_batch = max_batch
        self.max_wait_ticks = max_wait_ticks
        self.queue_capacity = queue_capacity
        # Insertion-ordered so dispatch order is deterministic; each
        # session's deque is its own FIFO.
        self._queues: "OrderedDict[str, Deque[StepRequest]]" = OrderedDict()
        self._depth = 0
        self._seq = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total queued requests across all sessions."""
        return self._depth

    def pending_sessions(self) -> Set[str]:
        """Sessions with at least one queued request (eviction shield)."""
        return set(self._queues)

    def pending_counts(self) -> Dict[str, int]:
        """Queued requests per session (insertion order) — the signal
        queue-depth rebalancing picks migration victims from."""
        return {sid: len(queue) for sid, queue in self._queues.items()}

    def submit(
        self, session_id: str, x: np.ndarray, tick: int
    ) -> Optional[StepRequest]:
        """Enqueue one step request; ``None`` means refused (queue full)."""
        if self._depth >= self.queue_capacity:
            return None
        # Copy: clients commonly reuse one input buffer per step, and a
        # queued request must keep the values it was submitted with.
        request = StepRequest(
            session_id=session_id,
            x=np.array(x, copy=True),
            submitted_tick=tick,
            seq=self._seq,
        )
        self._seq += 1
        self._queues.setdefault(session_id, deque()).append(request)
        self._depth += 1
        return request

    def drop_session(self, session_id: str) -> List[StepRequest]:
        """Remove a session's queue (it was closed/evicted); returns it."""
        queue = self._queues.pop(session_id, None)
        if queue is None:
            return []
        self._depth -= len(queue)
        return list(queue)

    def adopt(self, session_id: str, requests: List[StepRequest]) -> None:
        """Re-enqueue existing requests — a migrated session's pending FIFO.

        The *same* request objects land at the tail of ``session_id``'s
        queue in the given order, so client-held references complete
        normally after the session moves shards.  Each request keeps its
        ``submitted_tick`` (age-based dispatch honors the original
        submit time) but is re-stamped with this batcher's sequence
        counter, folding the adopted FIFO into the local tiebreak order.
        Capacity is deliberately not re-checked: migration is
        server-initiated, and the requests were already admitted once.
        """
        if not requests:
            return
        queue = self._queues.setdefault(session_id, deque())
        for request in requests:
            request.seq = self._seq
            self._seq += 1
            queue.append(request)
        self._depth += len(requests)

    # ------------------------------------------------------------------
    def _heads(self) -> List[StepRequest]:
        """Front request of every session queue, oldest submission first."""
        heads = [queue[0] for queue in self._queues.values()]
        heads.sort(key=lambda r: (r.submitted_tick, r.seq))
        return heads

    def should_dispatch(self, tick: int) -> bool:
        """Dispatch when the batch is full or the oldest head has aged out."""
        if not self._queues:
            return False
        if len(self._queues) >= self.max_batch:
            return True
        oldest = min(
            queue[0].submitted_tick for queue in self._queues.values()
        )
        return tick - oldest >= self.max_wait_ticks

    def next_batch(self, tick: int) -> List[StepRequest]:
        """Pop up to ``max_batch`` head requests, or ``[]`` to keep waiting.

        Returns at most one request per session (state dependency), oldest
        submissions first; an empty list means the latency bound allows
        waiting another tick for a fuller batch.
        """
        if not self.should_dispatch(tick):
            return []
        batch = self._heads()[: self.max_batch]
        for request in batch:
            queue = self._queues[request.session_id]
            queue.popleft()
            if not queue:
                del self._queues[request.session_id]
            self._depth -= 1
        return batch


__all__ = ["MicroBatcher", "StepRequest"]
