"""Asyncio front door over any serving topology.

:class:`AsyncFrontend` turns the discrete-tick serving loop into the
awaitable per-request API a network handler wants: ``await open()``,
``y = await submit(sid, x)``.  It wraps any server exposing the common
surface — :class:`~repro.serve.server.SessionServer`,
:class:`~repro.serve.cluster.ShardedServer`, or
:class:`~repro.serve.proc.ProcCluster` — without caring which topology
is underneath.

Concurrency model: the wrapped server is single-threaded by contract
(time advances only through ``run_tick``), so *all* server access — the
background tick driver and every open/submit/close — funnels through
one single-worker executor thread.  The event loop itself never blocks
on engine work, requests from any number of coroutines interleave
safely, and the serving side stays exactly as deterministic as the
server underneath.  Completion is observed on the
:class:`~repro.serve.batcher.StepRequest` objects themselves (the
``done`` flag both the in-process servers and the process cluster's
mirrors maintain), so one frontend works for both.

Backpressure is first-class: a refused open or submit raises
:class:`~repro.errors.CapacityError` immediately instead of queueing
forever — the caller (a websocket handler, a load shedder) decides
whether to retry, downgrade, or 503.  The tick driver is demand-driven:
it sleeps on an event while no request is pending, so an idle frontend
costs nothing.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import CapacityError, ServeError
from repro.obs import Tracer
from repro.serve.batcher import StepRequest


class AsyncFrontend:
    """Awaitable per-request facade over a tick-driven session server.

    Use as an async context manager::

        async with AsyncFrontend(ProcCluster(config, num_workers=4)) as fe:
            sid = await fe.open()
            y = await fe.submit(sid, x)

    The frontend owns the server's lifecycle: leaving the ``async with``
    block stops the tick driver and calls ``server.close()`` (worker
    processes, executor threads and all).  Any request still pending at
    shutdown fails with :class:`~repro.errors.ServeError` rather than
    hanging its awaiter.
    """

    def __init__(
        self,
        server,
        *,
        tick_interval: float = 0.0,
        tracer: Optional[Tracer] = None,
    ):
        self.server = server
        #: When set, every admitted request gets a root ``frontend.submit``
        #: span covering admission→completion, and its context is
        #: propagated into the server's submit path so the whole
        #: downstream tree (router, shard, engine phases — and for
        #: :class:`~repro.serve.proc.ProcCluster`, worker-process spans)
        #: hangs off one trace.
        self.tracer = tracer
        #: Optional wall-clock pause between ticks (0 = tick as fast as
        #: the engine allows).  Non-zero values trade latency for larger
        #: batches under trickling traffic.
        self.tick_interval = tick_interval
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-frontend"
        )
        #: id(request) -> (request, future awaiting it)
        self._pending: Dict[int, Tuple[StepRequest, asyncio.Future]] = {}
        self._work: Optional[asyncio.Event] = None
        self._driver: Optional[asyncio.Task] = None
        self._closed = False

    # ------------------------------------------------------------------
    async def _call(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    def start(self) -> None:
        """Start the background tick driver (idempotent)."""
        if self._driver is None or self._driver.done():
            self._work = asyncio.Event()
            self._driver = asyncio.get_running_loop().create_task(
                self._drive(), name="serve-frontend-driver"
            )

    async def __aenter__(self) -> "AsyncFrontend":
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def open(self, session_id: Optional[str] = None) -> str:
        """Open a session; raises :class:`CapacityError` when refused."""
        if self._closed:
            raise ServeError("frontend is closed")
        opened = await self._call(self.server.open_session, session_id)
        if opened is None:
            raise CapacityError(
                "server refused the session (at capacity on every shard)"
            )
        return opened

    async def close_session(self, session_id: str) -> None:
        await self._call(self.server.close_session, session_id)

    async def submit(self, session_id: str, x: np.ndarray) -> np.ndarray:
        """One DNC step: resolves to ``y`` when the server completes it.

        Raises :class:`CapacityError` on a queue-full refusal (the
        session stays open — retry after a completion drains the queue)
        and :class:`ServeError` when the step itself fails (session
        evicted, server shut down, worker-side rejection).
        """
        if self._closed:
            raise ServeError("frontend is closed")
        self.start()
        tracer = self.tracer
        if tracer is None:
            request = await self._call(self.server.submit, session_id, x)
        else:
            span = tracer.start(
                "frontend.submit", attrs={"session": session_id}
            )
            ctx = span.context
            request = await self._call(
                lambda: self.server.submit(session_id, x, trace=ctx)
            )
        if request is None:
            if tracer is not None:
                tracer.end(span, accepted=False)
            raise CapacityError("server queue is full (backpressure)")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[id(request)] = (request, future)
        self._work.set()
        try:
            result = await future
        finally:
            if tracer is not None:
                tracer.end(span, accepted=True)
        return result

    @property
    def pending(self) -> int:
        """Requests awaited on this frontend and not yet resolved."""
        return len(self._pending)

    # ------------------------------------------------------------------
    def _resolve_done(self) -> None:
        done = [
            key for key, (request, _) in self._pending.items() if request.done
        ]
        for key in done:
            request, future = self._pending.pop(key)
            if future.done():
                continue  # awaiter gave up (cancelled/timed out)
            if request.error is not None:
                future.set_exception(ServeError(request.error))
            else:
                future.set_result(request.y)

    async def _drive(self) -> None:
        """Demand-driven tick loop: tick while work is pending, then park."""
        while not self._closed:
            if not self._pending:
                self._work.clear()
                # Re-check before parking: a submit may have landed
                # between the emptiness check and the clear.
                if not self._pending:
                    await self._work.wait()
                continue
            try:
                await self._call(self.server.run_tick)
            except Exception as exc:
                # A tick that raises (e.g. unrecoverable worker loss)
                # must fail its awaiters, not strand them.
                for _, future in self._pending.values():
                    if not future.done():
                        future.set_exception(
                            ServeError(f"server tick failed: {exc}")
                        )
                self._pending.clear()
                raise
            self._resolve_done()
            if self.tick_interval > 0:
                await asyncio.sleep(self.tick_interval)
            else:
                await asyncio.sleep(0)  # yield to awaiters between ticks

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Stop the driver, fail leftover awaiters, close the server."""
        if self._closed:
            return
        self._closed = True
        if self._driver is not None:
            if self._work is not None:
                self._work.set()  # unpark so the loop sees _closed
            self._driver.cancel()
            try:
                await self._driver
            except (asyncio.CancelledError, Exception):
                pass
        for _, future in self._pending.values():
            if not future.done():
                future.set_exception(ServeError("frontend closed"))
        self._pending.clear()
        await self._call(self.server.close)
        self._executor.shutdown(wait=True)


__all__ = ["AsyncFrontend"]
