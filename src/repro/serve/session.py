"""Per-session DNC state management: create / touch / TTL+LRU evict.

A *session* is one user's independent DNC sequence: its entire recurrent
context is a single unbatched
:class:`~repro.dnc.numpy_ref.NumpyDNCState`, which the
:class:`~repro.serve.server.SessionServer` gathers into micro-batches and
scatters back after every shared engine step.  :class:`SessionStore`
owns those states and bounds their memory: the dominant cost is the
``N x N`` linkage matrix per session, so a capacity limit plus idle-state
eviction is what lets one engine serve an open-ended user population.

In the server's default resident-arena mode the recurrent state lives
in a :class:`~repro.serve.arena.StateArena` slot instead (records carry
``state=None``); the store then provides only the admission/eviction
bookkeeping, with the arena's preallocated batch bounding memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.dnc.numpy_ref import NumpyDNCState
from repro.errors import CapacityError, ConfigError


@dataclass
class SessionRecord:
    """One live session: its state plus bookkeeping for eviction.

    ``state`` is the session's unbatched recurrent context on the
    gather/scatter path, and ``None`` when the server pins state in a
    :class:`~repro.serve.arena.StateArena` slot instead (the arena, not
    the record, owns the arrays then).
    """

    session_id: str
    state: Optional[NumpyDNCState]
    created_tick: int
    last_active_tick: int
    steps_completed: int = 0


class SessionStore:
    """Capacity-bounded mapping of session id -> :class:`SessionRecord`.

    Eviction policy, in order:

    1. **TTL** — sessions idle for more than ``ttl_ticks`` scheduler
       ticks are dropped by :meth:`evict_expired` (the server runs this
       every tick).
    2. **LRU** — when :meth:`create` finds the store full after expiring
       TTL victims, it drops the least-recently-active session if
       ``lru_evict`` is enabled, else raises
       :class:`~repro.errors.CapacityError`.

    Sessions named in a ``protect`` set (the server passes the sessions
    with queued requests) are never evicted — dropping state out from
    under an in-flight request would corrupt that user's sequence.
    """

    def __init__(
        self,
        state_factory: Optional[Callable[[], NumpyDNCState]],
        capacity: int = 64,
        ttl_ticks: Optional[int] = None,
        lru_evict: bool = True,
        on_evict: Optional[Callable[[str, str], None]] = None,
    ):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if ttl_ticks is not None and ttl_ticks < 1:
            raise ConfigError(f"ttl_ticks must be >= 1 or None, got {ttl_ticks}")
        self._state_factory = state_factory
        self.capacity = capacity
        self.ttl_ticks = ttl_ticks
        self.lru_evict = lru_evict
        #: Called as ``on_evict(session_id, reason)`` with reason ``"ttl"``
        #: or ``"lru"`` whenever the store drops a session on its own
        #: (never for an explicit :meth:`remove`).  The server uses this
        #: to count evictions and drop any stale queue.
        self.on_evict = on_evict
        #: LRU order: first entry is the least recently active.
        self._records: "OrderedDict[str, SessionRecord]" = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._records

    def ids(self) -> List[str]:
        """Session ids, least recently active first."""
        return list(self._records)

    def get(self, session_id: str) -> SessionRecord:
        try:
            return self._records[session_id]
        except KeyError:
            raise ConfigError(f"unknown session {session_id!r}") from None

    # ------------------------------------------------------------------
    def create(
        self,
        session_id: str,
        tick: int,
        protect: Optional[Set[str]] = None,
    ) -> SessionRecord:
        """Admit a new session, evicting (TTL, then LRU) to make room.

        Returns the new record; raises
        :class:`~repro.errors.CapacityError` when the store is full and
        no evictable victim exists, and
        :class:`~repro.errors.ConfigError` for a duplicate id.
        """
        if session_id in self._records:
            raise ConfigError(f"session {session_id!r} already exists")
        if len(self._records) >= self.capacity:
            self.evict_expired(tick, protect=protect)
        if len(self._records) >= self.capacity:
            victim = self._lru_victim(protect) if self.lru_evict else None
            if victim is None:
                raise CapacityError(
                    f"session store full ({self.capacity} sessions, none evictable)"
                )
            self.remove(victim)
            if self.on_evict is not None:
                self.on_evict(victim, "lru")
        record = SessionRecord(
            session_id=session_id,
            state=(
                self._state_factory() if self._state_factory is not None
                else None
            ),
            created_tick=tick,
            last_active_tick=tick,
        )
        self._records[session_id] = record
        return record

    def touch(self, session_id: str, tick: int) -> SessionRecord:
        """Mark activity: refreshes TTL and moves to the LRU tail."""
        record = self.get(session_id)
        record.last_active_tick = tick
        self._records.move_to_end(session_id)
        return record

    def remove(self, session_id: str) -> SessionRecord:
        record = self.get(session_id)
        del self._records[session_id]
        return record

    # ------------------------------------------------------------------
    def evict_expired(
        self, tick: int, protect: Optional[Set[str]] = None
    ) -> List[str]:
        """Drop sessions idle for more than ``ttl_ticks``; returns their ids."""
        if self.ttl_ticks is None:
            return []
        protect = protect or set()
        expired = [
            sid
            for sid, record in self._records.items()
            if sid not in protect
            and tick - record.last_active_tick > self.ttl_ticks
        ]
        for sid in expired:
            del self._records[sid]
            if self.on_evict is not None:
                self.on_evict(sid, "ttl")
        return expired

    def _lru_victim(self, protect: Optional[Set[str]]) -> Optional[str]:
        protect = protect or set()
        for sid in self._records:  # OrderedDict: least recent first
            if sid not in protect:
                return sid
        return None


__all__ = ["SessionRecord", "SessionStore"]
