"""Session routing policies for the sharded serving cluster.

Two pluggable policy surfaces, both consumed by
:class:`repro.serve.cluster.ShardedServer`:

* :class:`PlacementPolicy` — where a **new** session opens.
  :class:`LeastLoadedPlacement` (the default) packs onto the
  emptiest shard; :class:`RoundRobinPlacement` cycles;
  :class:`ConsistentHashPlacement` routes by a stable hash of the
  session id (or a routing key extracted from it, e.g. a tenant
  prefix), so co-keyed sessions land together and placement survives
  process restarts — the property a distributed front-end tier needs.

* :class:`RebalancePolicy` — which **live** sessions migrate between
  shards after a tick.  :class:`HotSpotRebalance` drains the
  most-loaded shard toward the least-loaded one whenever the session
  spread exceeds a threshold, which is exactly the corrective a
  hash-placed Zipf-skewed workload needs (see
  :func:`repro.serve.loadgen.generate_zipf_scripts`).

Every policy is deterministic: the same inputs produce the same
decisions, so a cluster trace replays exactly — the serving layer's
reproducibility contract extends through routing.  Hashes come from
:mod:`hashlib` (``blake2b``), never Python's salted ``hash()``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError


def _stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class PlacementPolicy:
    """Chooses the shard a new session opens on."""

    def place(self, session_id: str, shards: Sequence) -> int:
        """Index into ``shards`` for ``session_id``.

        ``shards`` are :class:`~repro.serve.shard.EngineShard` objects;
        policies may read their ``load`` / ``queue_depth`` but must not
        mutate them.
        """
        raise NotImplementedError


class LeastLoadedPlacement(PlacementPolicy):
    """Fewest open sessions wins; ties break on queue depth, then index."""

    def place(self, session_id: str, shards: Sequence) -> int:
        return min(
            range(len(shards)),
            key=lambda i: (shards[i].load, shards[i].queue_depth, i),
        )


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through the shards in order, ignoring load."""

    def __init__(self):
        self._next = 0

    def place(self, session_id: str, shards: Sequence) -> int:
        index = self._next % len(shards)
        self._next += 1
        return index


class ConsistentHashPlacement(PlacementPolicy):
    """Stable hash-ring placement with virtual nodes.

    ``key_of`` extracts the routing key from the session id (default:
    the id itself); sessions sharing a key always land on the same
    shard, and the ring's ``replicas`` virtual nodes per shard keep the
    key space split evenly.  Because the ring is built from stable
    hashes, placement is identical across processes and runs — and
    changing the shard count remaps only the keys whose ring arc moved,
    not the whole population.
    """

    def __init__(
        self,
        replicas: int = 64,
        key_of: Optional[Callable[[str], str]] = None,
    ):
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self.key_of = key_of
        #: shard count -> (sorted ring point hashes, shard index per point)
        self._rings: Dict[int, Tuple[List[int], List[int]]] = {}

    def _ring(self, num_shards: int) -> Tuple[List[int], List[int]]:
        ring = self._rings.get(num_shards)
        if ring is None:
            points = sorted(
                (_stable_hash(f"shard-{shard}-vnode-{replica}"), shard)
                for shard in range(num_shards)
                for replica in range(self.replicas)
            )
            ring = ([p for p, _ in points], [s for _, s in points])
            self._rings[num_shards] = ring
        return ring

    def place(self, session_id: str, shards: Sequence) -> int:
        key = session_id if self.key_of is None else self.key_of(session_id)
        hashes, owners = self._ring(len(shards))
        index = bisect.bisect_right(hashes, _stable_hash(key))
        return owners[index % len(owners)]


class RebalancePolicy:
    """Plans checkpoint-based session migrations after each cluster tick."""

    def plan(self, shards: Sequence) -> List[Tuple[str, int, int]]:
        """``(session_id, src_shard, dst_shard)`` moves to apply now.

        Called by :meth:`ShardedServer.run_tick` between ticks, when no
        batch is in flight; the cluster executes the moves in order and
        skips any that turned stale (session closed meanwhile).
        """
        raise NotImplementedError


class HotSpotRebalance(RebalancePolicy):
    """Move sessions off the hottest shard when the spread grows too wide.

    Each tick, while the most-loaded shard holds more than
    ``max_spread`` sessions above the least-loaded one (and the
    destination has a free slot), the hottest shard's least-recently
    active session migrates — up to ``max_moves`` per tick, so
    rebalancing trickles instead of thundering.  LRU-first victims make
    the move cheapest in expectation: the idlest session is the least
    likely to have a request in flight next tick.
    """

    def __init__(self, max_spread: int = 2, max_moves: int = 1):
        if max_spread < 1:
            raise ConfigError(f"max_spread must be >= 1, got {max_spread}")
        if max_moves < 1:
            raise ConfigError(f"max_moves must be >= 1, got {max_moves}")
        self.max_spread = max_spread
        self.max_moves = max_moves

    def plan(self, shards: Sequence) -> List[Tuple[str, int, int]]:
        moves: List[Tuple[str, int, int]] = []
        loads = [shard.load for shard in shards]
        planned = set()
        for _ in range(self.max_moves):
            hot = max(range(len(shards)), key=lambda i: (loads[i], -i))
            cold = min(range(len(shards)), key=lambda i: (loads[i], i))
            if loads[hot] - loads[cold] <= self.max_spread:
                break
            if loads[cold] >= shards[cold].store.capacity:
                break
            victim = next(
                (
                    sid for sid in shards[hot].store.ids()  # LRU first
                    if sid not in planned
                ),
                None,
            )
            if victim is None:
                break
            planned.add(victim)
            moves.append((victim, hot, cold))
            loads[hot] -= 1
            loads[cold] += 1
        return moves


class QueueDepthRebalance(RebalancePolicy):
    """Move *queued work* — not just sessions — off the busiest shard.

    :class:`HotSpotRebalance` balances resident session counts, which is
    the right signal under uniform traffic but blind to skew *within*
    the residents: a shard holding few but chatty sessions can run a
    deep queue (and a fat wait p95) while its neighbours idle.  This
    policy watches the queues instead: when the deepest shard's queue
    exceeds the shallowest's by more than ``max_spread`` requests — or
    when its wait p95 exceeds the cluster's best by more than
    ``max_p95_spread`` ticks while it also has the deepest queue — it
    migrates the hot shard's session with the *most* queued requests to
    the shallowest shard (up to ``max_moves`` per tick).  Busiest-victim
    is the opposite of HotSpot's LRU pick on purpose: moving the session
    that owns the most queued work transfers the most depth per
    migration, and the pending FIFO rides the checkpoint so nothing is
    refused or reordered within the session.

    Duck-typed over anything exposing ``load``, ``queue_depth``,
    ``capacity``, ``pending_counts`` and ``p95_wait`` — i.e. both
    :class:`~repro.serve.shard.EngineShard` (in-process threads) and
    :class:`~repro.serve.proc.ProcWorker` (whose stats cache mirrors the
    worker's last reply), so one policy serves both topologies.
    """

    def __init__(
        self,
        max_spread: int = 8,
        max_p95_spread: Optional[float] = 4.0,
        max_moves: int = 1,
    ):
        if max_spread < 1:
            raise ConfigError(f"max_spread must be >= 1, got {max_spread}")
        if max_p95_spread is not None and max_p95_spread <= 0:
            raise ConfigError(
                f"max_p95_spread must be > 0 or None, got {max_p95_spread}"
            )
        if max_moves < 1:
            raise ConfigError(f"max_moves must be >= 1, got {max_moves}")
        self.max_spread = max_spread
        self.max_p95_spread = max_p95_spread
        self.max_moves = max_moves

    def _should_move(self, shards: Sequence, hot: int, cold: int) -> bool:
        spread = shards[hot].queue_depth - shards[cold].queue_depth
        if spread > self.max_spread:
            return True
        if self.max_p95_spread is None or spread <= 0:
            return False
        p95s = [s.p95_wait for s in shards if s.p95_wait is not None]
        hot_p95 = shards[hot].p95_wait
        if hot_p95 is None or not p95s:
            return False
        return hot_p95 - min(p95s) > self.max_p95_spread

    def plan(self, shards: Sequence) -> List[Tuple[str, int, int]]:
        moves: List[Tuple[str, int, int]] = []
        depths = [shard.queue_depth for shard in shards]
        loads = [shard.load for shard in shards]
        planned = set()
        for _ in range(self.max_moves):
            hot = max(range(len(shards)), key=lambda i: (depths[i], -i))
            cold = min(range(len(shards)), key=lambda i: (depths[i], i))
            if hot == cold or not self._should_move(shards, hot, cold):
                break
            if loads[cold] >= shards[cold].capacity:
                break
            pending = {
                sid: n
                for sid, n in shards[hot].pending_counts.items()
                if sid not in planned
            }
            if not pending:
                break
            # Deepest per-session queue first; session id breaks ties so
            # the plan is deterministic across runs.
            victim = max(pending, key=lambda sid: (pending[sid], sid))
            planned.add(victim)
            moves.append((victim, hot, cold))
            depths[hot] -= pending[victim]
            depths[cold] += pending[victim]
            loads[hot] -= 1
            loads[cold] += 1
        return moves


__all__ = [
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "RoundRobinPlacement",
    "ConsistentHashPlacement",
    "RebalancePolicy",
    "HotSpotRebalance",
    "QueueDepthRebalance",
]
