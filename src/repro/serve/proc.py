"""Process-level serving: engine shards in worker processes, crash-safe.

This is the production topology the ROADMAP's millions-of-users story
needs: :class:`~repro.serve.cluster.ShardedServer`'s shards are threads
sharing one GIL and one failure domain, while :class:`ProcCluster` hosts
each :class:`~repro.serve.shard.EngineShard` in its own *process*
(:class:`ProcWorker`), so shard ticks overlap on real cores and a dead
worker takes down only its own sessions — which the cluster then
restores on a replacement process.

**Wire protocol.** Parent and worker speak length-prefixed frames over a
``socketpair``: ``b"HP" | uint32 length | uint32 crc32 | uint64
trace_id | uint64 span_id | payload`` (pickled message).  The two
fixed trace-context words carry the distributed-tracing parent across
the process boundary — ``(0, 0)`` means untraced — and the crc32
covers them together with the payload, so a corrupted trace context is
rejected like any other corruption.  :func:`read_frame` raises
:class:`~repro.errors.FrameError` for a truncated, corrupted, or
oversized frame — never hangs, never guesses — and the parent converts
any transport failure (EOF, reset, RPC timeout) into
:class:`~repro.errors.WorkerCrashed`, the signal that triggers recovery.
Checkpoint payloads ride inside frames as the versioned
:meth:`~repro.dnc.numpy_ref.NumpyDNCState.to_bytes` byte strings, the
same host-portable format the thread cluster migrates sessions with.

**Crash recovery.** The cluster pairs every worker with the
:class:`~repro.serve.supervisor.CheckpointSupervisor`: workers ship
periodic per-session checkpoints (every ``checkpoint_interval`` ticks),
and the supervisor keeps each session's last checkpoint plus the replay
log of inputs submitted since.  When a worker dies — SIGKILL included —
the cluster spawns a fresh process (same config, same seed, therefore
bit-identical weights), restores every resident session from its last
checkpoint, and re-submits the logged inputs in order.  Checkpoint
restoration is bitwise (wire-format contract), the engine is
deterministic, so a restored session's continued trajectory is
bit-identical at equal dispatch order from the checkpoint and <= 1e-10
vs solo stepping end-to-end whatever the batch interleaving — pinned by
``tests/test_serve_proc.py`` and demonstrated under traffic by the load
generator's rolling-restart scenario.

**Scheduling.** One :meth:`ProcCluster.run_tick` drives every worker's
tick concurrently: buffered submits flush in the tick RPC (one frame per
worker per tick), all ticks are issued before any reply is awaited, and
completed requests come back with worker stats (load, queue depth,
pending counts, wait p95) that feed placement, admission spill, and
queue-depth rebalancing without extra round trips.  Admission control is
enforced at the front door (the parent mirrors every worker's queue
bound), so a submit refusal is synchronous even though dispatch is not.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import socket
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import (
    CapacityError,
    ConfigError,
    FrameError,
    ServeError,
    WorkerCrashed,
)
from repro.obs import FlightRecorder, PhaseTimer, Tracer
from repro.serve.batcher import StepRequest
from repro.serve.metrics import ServerMetrics
from repro.serve.router import (
    LeastLoadedPlacement,
    PlacementPolicy,
    RebalancePolicy,
)
from repro.serve.supervisor import CheckpointSupervisor

# ---------------------------------------------------------------------------
# Length-prefixed frame protocol
# ---------------------------------------------------------------------------

FRAME_MAGIC = b"HP"
_FRAME_LEN = struct.Struct(">I")  # payload length
_FRAME_REST = struct.Struct(">IQQ")  # crc32, trace_id, span_id
#: Frames above this size are rejected as corrupt before any allocation:
#: a garbage length field must not make the reader try to buffer 4 GiB.
MAX_FRAME_BYTES = 1 << 30


def write_frame(
    sock: socket.socket,
    message: object,
    trace: Optional[Tuple[int, int]] = None,
) -> None:
    """Send one framed message: magic, length, crc32, trace context,
    pickled payload.  ``trace`` is an optional ``(trace_id, span_id)``
    span context to propagate across the process boundary; ``None``
    writes the all-zero untraced context."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    trace_id, span_id = trace if trace is not None else (0, 0)
    trace_bytes = struct.pack(">QQ", trace_id, span_id)
    crc = zlib.crc32(payload, zlib.crc32(trace_bytes))
    sock.sendall(
        FRAME_MAGIC
        + _FRAME_LEN.pack(len(payload))
        + struct.pack(">I", crc)
        + trace_bytes
        + payload
    )


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        read = sock.recv_into(view[got:], n - got)
        if read == 0:
            raise FrameError(
                f"connection closed mid-frame ({what}: got {got} of "
                f"{n} bytes)"
            )
        got += read
    return bytes(buf)


def read_frame_traced(
    sock: socket.socket,
) -> Tuple[object, Optional[Tuple[int, int]]]:
    """Read one framed message plus its trace context.

    Returns ``(message, trace)`` where ``trace`` is the frame header's
    ``(trace_id, span_id)`` span context, or ``None`` for the all-zero
    untraced context.  Raises :class:`EOFError` on a clean close at a
    frame boundary and :class:`~repro.errors.FrameError` for anything
    malformed: wrong magic, a length field beyond
    :data:`MAX_FRAME_BYTES`, a header or payload cut short, or a crc32
    mismatch (the crc covers trace context + payload).  A corrupted
    stream cannot be resynced — callers must treat :class:`FrameError`
    as fatal for the connection.
    """
    # Magic + length first: the length bound must be checked before the
    # reader commits to buffering anything else.
    first = sock.recv(1)
    if not first:
        raise EOFError("connection closed")
    head = first + _recv_exact(
        sock, len(FRAME_MAGIC) + _FRAME_LEN.size - 1, "header"
    )
    if head[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise FrameError(
            f"bad frame magic {head[:len(FRAME_MAGIC)]!r} "
            f"(expected {FRAME_MAGIC!r})"
        )
    (length,) = _FRAME_LEN.unpack(head[len(FRAME_MAGIC):])
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    rest = _recv_exact(sock, _FRAME_REST.size, "header")
    crc, trace_id, span_id = _FRAME_REST.unpack(rest)
    payload = _recv_exact(sock, length, "payload")
    if zlib.crc32(payload, zlib.crc32(rest[_FRAME_LEN.size:])) != crc:
        raise FrameError("frame crc32 mismatch (payload corrupted)")
    try:
        message = pickle.loads(payload)
    except Exception as exc:  # corrupt pickle inside a well-formed frame
        raise FrameError(f"frame payload failed to unpickle: {exc}") from exc
    trace = (trace_id, span_id) if trace_id or span_id else None
    return message, trace


def read_frame(sock: socket.socket) -> object:
    """Read one framed message (see :func:`read_frame_traced`), dropping
    the trace context — the call every non-tracing reader keeps using."""
    return read_frame_traced(sock)[0]


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_completions(
    inflight: Dict[int, StepRequest], by_obj: Dict[int, int]
) -> List[Tuple[int, Optional[np.ndarray], Optional[str], int, int]]:
    """Drain every finished request from the in-flight table.

    Completion is observed rather than inferred from ``run_tick``'s
    return value so that requests failed out-of-band — a session evicted
    or closed with work queued — are reported on the very next reply.
    """
    done = [
        (rid, request) for rid, request in inflight.items() if request.done
    ]
    out = []
    for rid, request in sorted(done):
        del inflight[rid]
        by_obj.pop(id(request), None)
        out.append((
            rid,
            request.y,
            request.error,
            request.submitted_tick,
            int(request.completed_tick),
        ))
    return out


def _worker_stats(shard) -> Dict[str, object]:
    p50, p95 = shard.metrics.wait_percentiles()
    stats: Dict[str, object] = {
        "load": shard.load,
        "queue_depth": shard.queue_depth,
        "pending_counts": shard.pending_counts,
        "p95_wait": p95,
        "tick": shard.tick,
    }
    # Observability piggybacks on every reply: finished spans drain to
    # the parent (worker rings stay near-empty) and the cumulative
    # per-phase engine profile rides along for cluster_profile() and
    # the flight recorder.
    if shard.tracer is not None:
        spans = shard.tracer.drain()
        if spans:
            stats["spans"] = spans
    if shard.profiler is not None:
        stats["phase"] = shard.profiler.stats()
    return stats


def _proc_worker_main(
    sock: socket.socket,
    config,
    seed,
    shard_id: int,
    shard_kwargs: Dict[str, object],
) -> None:
    """Child-process entry point: serve one EngineShard over framed RPC."""
    from repro.core.engine import TiledEngine
    from repro.serve.shard import EngineShard

    # The parent owns lifecycle: a terminal Ctrl-C must not tear the
    # worker down mid-frame (the parent will send "stop" or kill us).
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Observability flags ride in on shard_kwargs; the worker builds its
    # own Tracer/PhaseTimer (span ids are pid-salted, so worker spans
    # stay unique when the parent adopts them).
    shard_kwargs = dict(shard_kwargs)
    obs_trace = bool(shard_kwargs.pop("obs_trace", False))
    obs_profile = bool(shard_kwargs.pop("obs_profile", False))

    engine = TiledEngine(config, rng=seed)
    shard = EngineShard(
        engine,
        shard_id=shard_id,
        tracer=Tracer() if obs_trace else None,
        profiler=PhaseTimer() if obs_profile else None,
        **shard_kwargs,
    )
    inflight: Dict[int, StepRequest] = {}
    by_obj: Dict[int, int] = {}
    known: Set[str] = set()
    #: session -> steps_completed at its last shipped checkpoint; lets
    #: ``checkpoint_all`` ship only sessions that advanced (a finished
    #: but still-resident session costs nothing per round).
    ckpt_steps: Dict[str, int] = {}

    def submit_all(
        submits: Sequence[Tuple[int, str, np.ndarray, Optional[tuple]]]
    ) -> List[Tuple[int, Optional[np.ndarray], Optional[str], int, int]]:
        """Enqueue parent-admitted submits; a local refusal fails fast.

        Each submit carries the parent-side trace context (or ``None``),
        so the worker's ``shard.submit`` span — and the per-request
        dispatch span after it — parent into the originating trace.
        """
        refused = []
        for rid, session_id, x, ctx in submits:
            try:
                request = shard.submit(session_id, x, trace=ctx)
            except ConfigError as exc:
                refused.append((rid, None, str(exc), shard.tick, shard.tick))
                continue
            if request is None:
                refused.append((
                    rid, None, "worker queue refused the submit",
                    shard.tick, shard.tick,
                ))
            else:
                inflight[rid] = request
                by_obj[id(request)] = rid
        return refused

    def dispatch(
        msg: Dict[str, object], frame_trace: Optional[tuple] = None
    ) -> Dict[str, object]:
        cmd = msg["cmd"]
        # Fast-path admissions ride any frame, ahead of the command
        # proper (their submits may be in this very tick frame).  The
        # parent only buffers an open when it counted headroom, so a
        # refusal here is a bookkeeping bug, not a capacity condition.
        for open_sid in msg.get("opens", ()):
            if shard.open_session(open_sid) is None:
                raise ConfigError(
                    f"worker store refused pre-admitted session {open_sid!r}"
                )
            known.add(open_sid)
        extra: List = []
        if cmd == "ping":
            ok: object = "pong"
        elif cmd == "open":
            ok = shard.open_session(msg["session_id"])
        elif cmd == "close":
            shard.close_session(msg["session_id"])
            ok = True
        elif cmd == "tick":
            extra = submit_all(msg.get("submits", ()))
            # The parent's cluster.tick span context rides the frame
            # header, so the worker-side shard.tick span crosses the
            # process boundary into the same trace.
            shard.run_tick(trace=frame_trace)
            ok = True
        elif cmd == "enqueue":
            # Recovery/attach replay: queue work without advancing time.
            extra = submit_all(msg.get("submits", ()))
            if msg.get("drain"):
                # Crash-recovery catch-up: replayed steps are not user
                # traffic, so re-step them at engine speed now instead
                # of rationing them through the tick budget — otherwise
                # a kill storm arriving faster than one replay-step per
                # tick per session could outpace recovery forever.
                guard = 0
                bound = 10 * (len(inflight) + 1)
                while (
                    any(not r.done for r in inflight.values())
                    and guard < bound
                ):
                    shard.run_tick()
                    guard += 1
            ok = True
        elif cmd == "checkpoint":
            session_id = msg["session_id"]
            steps = shard.store.get(session_id).steps_completed
            ckpt_steps[session_id] = steps
            ok = (shard.checkpoint_session(session_id), steps)
        elif cmd == "checkpoint_all":
            # Dirty-only: serializing a full DNC state per resident
            # session per round would dominate the tick at scale, and
            # an unchanged session's checkpoint is already upstream.
            # The parent may further narrow the round to the sessions
            # whose replay logs are worth truncating ("sessions").
            resident = set(shard.store.ids())
            for stale in set(ckpt_steps) - resident:
                del ckpt_steps[stale]
            wanted = msg.get("sessions")
            targets = (
                resident if wanted is None
                else [s for s in wanted if s in resident]
            )
            ok = {}
            for session_id in targets:
                steps = shard.store.get(session_id).steps_completed
                if ckpt_steps.get(session_id) == steps:
                    continue
                ckpt_steps[session_id] = steps
                ok[session_id] = (
                    shard.checkpoint_session(session_id), steps
                )
        elif cmd == "restore":
            shard.restore_session(msg["session_id"], msg["payload"])
            ok = True
        elif cmd == "detach":
            session_id = msg["session_id"]
            steps = shard.store.get(session_id).steps_completed
            payload, pending = shard.detach_session(session_id)
            moved = []
            for request in pending:
                rid = by_obj.pop(id(request), None)
                if rid is not None:
                    del inflight[rid]
                moved.append((rid, request.x, request.submitted_tick))
            # A detach is a parent-initiated handoff, not an eviction:
            # drop it from ``known`` so it is not reported as departed
            # (which would make the parent forget the migrating session).
            known.discard(session_id)
            ok = (payload, moved, steps)
        elif cmd == "attach":
            pending = []
            for rid, x, submitted_tick in msg.get("pending", ()):
                request = StepRequest(
                    session_id=msg["session_id"], x=x,
                    submitted_tick=submitted_tick, seq=0,
                )
                if rid is not None:
                    inflight[rid] = request
                    by_obj[id(request)] = rid
                pending.append(request)
            shard.attach_session(msg["session_id"], msg["payload"], pending)
            ok = True
        elif cmd == "metrics":
            ok = shard.metrics.to_state()
        elif cmd == "stop":
            ok = True
        else:
            raise ConfigError(f"unknown worker command {cmd!r}")
        completed = extra + _worker_completions(inflight, by_obj)
        departed = sorted(known - set(shard.store.ids()))
        known.clear()
        known.update(shard.store.ids())
        return {
            "ok": ok,
            "completed": completed,
            "departed": departed,
            "stats": _worker_stats(shard),
        }

    while True:
        try:
            msg, frame_trace = read_frame_traced(sock)
        except (EOFError, FrameError, OSError):
            return  # parent went away or the stream is unrecoverable
        try:
            reply = dispatch(msg, frame_trace)
        except Exception as exc:  # report, don't die: the shard is intact
            # Completions are NOT drained on the error path: the parent
            # raises before folding an error reply in, so anything done
            # stays queued here and rides the next successful reply.
            reply = {
                "error": f"{type(exc).__name__}: {exc}",
                "completed": [],
                "departed": [],
                "stats": _worker_stats(shard),
            }
        try:
            write_frame(sock, reply)
        except OSError:
            return
        if msg.get("cmd") == "stop":
            sock.close()
            return


class ProcWorker:
    """Parent-side handle on one engine-shard worker process.

    Wraps the framed-RPC connection plus the per-worker stats cache the
    cluster's placement and rebalance policies read (refreshed from
    every reply, so policy decisions cost no extra round trips).  Any
    transport failure — EOF, reset, a reply timing out — surfaces as
    :class:`~repro.errors.WorkerCrashed`; a worker that times out is
    killed first, so recovery never races a wedged process.
    """

    def __init__(
        self,
        index: int,
        config,
        seed,
        shard_kwargs: Dict[str, object],
        rpc_timeout: float = 60.0,
    ):
        self.index = index
        self.capacity = int(shard_kwargs["session_capacity"])
        self.rpc_timeout = rpc_timeout
        # fork (not spawn): the child inherits the socketpair fd and the
        # already-imported numpy/repro modules; workers are spawned from
        # the cluster constructor, before any tick threads exist.
        ctx = multiprocessing.get_context("fork")
        self.sock, child_sock = socket.socketpair()
        self.process = ctx.Process(
            target=_proc_worker_main,
            args=(child_sock, config, seed, index, dict(shard_kwargs)),
            daemon=True,
            name=f"engine-shard-proc-{index}",
        )
        self.process.start()
        child_sock.close()
        self.sock.settimeout(rpc_timeout)
        #: Stats cache from the latest reply (see ``_worker_stats``).
        self.load = 0
        self.queue_depth = 0
        self.pending_counts: Dict[str, int] = {}
        self.p95_wait: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> int:
        return int(self.process.pid)

    def send(
        self,
        message: Dict[str, object],
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Write one request frame (no reply yet) — the cluster's tick
        fan-out sends to every worker before reading any reply.
        ``trace`` rides the frame header (see :func:`write_frame`)."""
        try:
            write_frame(self.sock, message, trace=trace)
        except socket.timeout as exc:
            self.kill()
            raise WorkerCrashed(
                f"worker {self.index} timed out after {self.rpc_timeout}s "
                f"sending {message.get('cmd')!r}"
            ) from exc
        except (FrameError, OSError) as exc:
            raise WorkerCrashed(
                f"worker {self.index} connection failed sending "
                f"{message.get('cmd')!r}: {exc}"
            ) from exc

    def recv_reply(self, cmd: object = None) -> Dict[str, object]:
        """Read one reply frame; raises :class:`WorkerCrashed` on any
        transport failure and :class:`~repro.errors.ServeError` on a
        worker-side error reply."""
        try:
            reply = read_frame(self.sock)
        except socket.timeout as exc:
            # A wedged worker must not hold the front door hostage: kill
            # it so the crash path (respawn + restore) takes over.
            self.kill()
            raise WorkerCrashed(
                f"worker {self.index} timed out after {self.rpc_timeout}s "
                f"on {cmd!r}"
            ) from exc
        except (EOFError, FrameError, OSError) as exc:
            raise WorkerCrashed(
                f"worker {self.index} connection failed on {cmd!r}: {exc}"
            ) from exc
        stats = reply.get("stats")
        if isinstance(stats, dict):
            self.load = int(stats.get("load", self.load))
            self.queue_depth = int(stats.get("queue_depth", self.queue_depth))
            self.pending_counts = dict(stats.get("pending_counts", {}))
            self.p95_wait = stats.get("p95_wait")
        if reply.get("error") is not None:
            raise ServeError(
                f"worker {self.index}: {reply['error']}"
            )
        return reply

    def call(
        self,
        message: Dict[str, object],
        trace: Optional[Tuple[int, int]] = None,
    ) -> Dict[str, object]:
        """One RPC round trip (:meth:`send` + :meth:`recv_reply`)."""
        self.send(message, trace=trace)
        return self.recv_reply(message.get("cmd"))

    def kill(self) -> None:
        """SIGKILL the worker process (the crash-drill primitive)."""
        if self.process.is_alive():
            os.kill(self.pid, signal.SIGKILL)
        self.process.join()

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker cleanly; escalate to SIGKILL if it lingers."""
        if self.process.is_alive():
            try:
                self.sock.settimeout(timeout)
                write_frame(self.sock, {"cmd": "stop"})
                read_frame(self.sock)
            except (OSError, EOFError, FrameError, WorkerCrashed):
                pass
            self.process.join(timeout)
            if self.process.is_alive():
                self.kill()
        else:
            self.process.join()
        self.sock.close()


# ---------------------------------------------------------------------------
# The process cluster
# ---------------------------------------------------------------------------


class ProcCluster:
    """Worker-process shards behind the ShardedServer serving surface.

    Construct from one ``(config, seed)`` pair — every worker builds its
    :class:`~repro.core.engine.TiledEngine` from exactly these, so all
    shards carry bit-identical weights (the thread cluster enforces the
    same invariant by comparing arrays; here it holds by construction,
    which is also what makes a *replacement* worker's engine exact).

    The serving surface matches :class:`ShardedServer` — ``open_session``
    / ``submit`` / ``run_tick`` / ``drain`` / ``close`` plus checkpoint,
    restore, and migration — so :func:`repro.serve.loadgen.run_open_loop`
    and the async front door drive either interchangeably.  ``submit``
    returns a parent-side :class:`StepRequest` mirror completed when the
    owning worker reports the step (same object contract as the
    in-process servers).

    Fault tolerance: ``checkpoint_interval`` cluster ticks between
    checkpoint rounds (``None`` disables the cadence; recovery then
    replays each session's whole input log).  A periodic round only
    ships sessions whose replay log holds at least
    ``checkpoint_min_log`` steps — a full DNC state is megabytes at
    large ``memory_size`` while replaying a handful of steps is
    milliseconds, so short logs are cheaper to replay than to
    checkpoint (explicit :meth:`checkpoint_now` calls ship every dirty
    session regardless).  ``kill_worker`` + automatic recovery on any
    detected crash implement the rolling restart the load generator
    drills.
    """

    def __init__(
        self,
        config,
        *,
        seed=0,
        num_workers: int = 2,
        max_batch: int = 16,
        max_wait_ticks: int = 2,
        queue_capacity: int = 1024,
        session_capacity: int = 64,
        session_ttl_ticks: Optional[int] = None,
        state_arena: bool = True,
        placement: Optional[PlacementPolicy] = None,
        rebalance: Optional[RebalancePolicy] = None,
        checkpoint_interval: Optional[int] = 16,
        checkpoint_min_log: int = 8,
        rpc_timeout: float = 60.0,
        admission_spill: bool = True,
        tracer: Optional[Tracer] = None,
        profile: bool = False,
        flight_recorder: int = 0,
    ):
        if num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ConfigError(
                "checkpoint_interval must be >= 1 or None, got "
                f"{checkpoint_interval}"
            )
        if checkpoint_min_log < 0:
            raise ConfigError(
                f"checkpoint_min_log must be >= 0, got {checkpoint_min_log}"
            )
        if flight_recorder < 0:
            raise ConfigError(
                f"flight_recorder must be >= 0, got {flight_recorder}"
            )
        self.config = config
        self.seed = seed
        #: Parent-side span collector; worker spans are adopted into it
        #: from every reply, so one traced request's tree spans processes.
        self.tracer = tracer
        self.profile = profile
        #: Last-K tick history per worker (spans + phase stats), dumped
        #: into the supervisor's postmortems when a worker dies.
        self.flight = (
            FlightRecorder(flight_recorder) if flight_recorder > 0 else None
        )
        # Workers trace whenever anything consumes their spans: a parent
        # tracer wants the distributed tree, a flight recorder wants the
        # last-K history even with no tracer attached.
        trace_enabled = tracer is not None or flight_recorder > 0
        self._shard_kwargs: Dict[str, object] = dict(
            max_batch=max_batch,
            max_wait_ticks=max_wait_ticks,
            queue_capacity=queue_capacity,
            session_capacity=session_capacity,
            session_ttl_ticks=session_ttl_ticks,
            state_arena=state_arena,
            obs_trace=trace_enabled,
            obs_profile=profile,
        )
        self.queue_capacity = queue_capacity
        self.session_capacity = session_capacity
        self.rpc_timeout = rpc_timeout
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_min_log = checkpoint_min_log
        self.admission_spill = admission_spill
        self.placement = placement if placement is not None else LeastLoadedPlacement()
        self.rebalance = rebalance
        self.supervisor = CheckpointSupervisor()
        #: Front-door-local counters (worker restarts, spills, parent-side
        #: admission rejects); merged with worker metrics in snapshots.
        self.metrics = ServerMetrics()
        self.workers: List[ProcWorker] = [
            self._spawn(index) for index in range(num_workers)
        ]
        self.restarts: List[int] = [0] * num_workers
        self.tick = 0
        self.migrations = 0
        self._closed = False
        self._shard_of: Dict[str, int] = {}
        #: Parent step index corresponding to each session's step 0 on
        #: its *current* worker (shifts on recovery-restore and attach).
        self._base_steps: Dict[str, int] = {}
        self._session_counter = 0
        self._rid_counter = 0
        self._mirrors: Dict[int, StepRequest] = {}
        #: rid -> (session id, supervisor step index, worker index)
        self._rid_info: Dict[int, Tuple[str, int, int]] = {}
        #: session id -> {supervisor step index -> rid} for inflight steps
        self._inflight_rids: Dict[str, Dict[int, int]] = {}
        #: Replay-ghost rids: recomputed steps whose results were already
        #: delivered before a crash; excluded from run_tick's return.
        self._ghosts: Set[int] = set()
        #: Mirrors resolved since the last run_tick returned (run_tick
        #: drains this — completions can also arrive on open/close/
        #: checkpoint replies, and none may be dropped).
        self._completed_stash: List[StepRequest] = []
        self._buffers: List[
            List[Tuple[int, str, np.ndarray, Optional[tuple]]]
        ] = [[] for _ in range(num_workers)]
        #: Fast-path admitted sessions not yet announced to their worker;
        #: flushed with the next frame to that worker (any command).
        self._pending_opens: List[List[str]] = [[] for _ in range(num_workers)]
        self._worker_inflight: List[int] = [0] * num_workers
        #: Oldest-first router.submit contexts of traced requests not yet
        #: dispatched: the next cluster tick parents its span on the
        #: oldest one, attributing the tick to the request it serves.
        self._pending_traces: List[tuple] = []
        #: Latest cumulative per-phase profile reported by each worker
        #: (reset on respawn — the dead process's history is gone).
        self._worker_phase: List[Dict[str, Dict[str, float]]] = [
            {} for _ in range(num_workers)
        ]

    def _spawn(self, index: int) -> ProcWorker:
        return ProcWorker(
            index, self.config, self.seed, self._shard_kwargs,
            rpc_timeout=self.rpc_timeout,
        )

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def queue_depth(self) -> int:
        """Submitted-but-uncompleted requests across the cluster."""
        return sum(self._worker_inflight)

    @property
    def session_count(self) -> int:
        return len(self._shard_of)

    @property
    def worker_restarts(self) -> int:
        return sum(self.restarts)

    def shard_of(self, session_id: str) -> int:
        try:
            return self._shard_of[session_id]
        except KeyError:
            raise ConfigError(f"unknown session {session_id!r}") from None

    # ------------------------------------------------------------------
    def _process_reply(self, index: int, reply: Dict[str, object]) -> None:
        """Fold a worker reply's completions and departures into the
        parent's mirrors, logs, and routing table — and its spans and
        phase profile into the parent's tracer and flight recorder."""
        stats = reply.get("stats")
        if isinstance(stats, dict):
            spans = stats.get("spans") or []
            phase = stats.get("phase")
            if phase is not None:
                self._worker_phase[index] = phase
            if spans and self.tracer is not None:
                self.tracer.adopt(spans)
            if self.flight is not None and spans:
                self.flight.record(
                    index, int(stats.get("tick", 0)), spans, phase
                )
        for rid, y, error, submitted_tick, completed_tick in reply.get(
            "completed", ()
        ):
            info = self._rid_info.pop(rid, None)
            if info is None:
                continue
            session_id, step, worker_index = info
            steps = self._inflight_rids.get(session_id)
            if steps is not None and steps.get(step) == rid:
                del steps[step]
            self._worker_inflight[worker_index] -= 1
            mirror = self._mirrors.pop(rid, None)
            if mirror is not None:
                mirror.y = y
                mirror.error = error
                mirror.completed_tick = self.tick
                if rid in self._ghosts:
                    # A replayed, already-delivered step: recomputed to
                    # rebuild state, never handed out a second time.
                    self._ghosts.discard(rid)
                else:
                    self._completed_stash.append(mirror)
        for session_id in reply.get("departed", ()):
            self._forget_session(session_id)

    def _forget_session(self, session_id: str) -> None:
        self._shard_of.pop(session_id, None)
        self._base_steps.pop(session_id, None)
        self._inflight_rids.pop(session_id, None)
        self.supervisor.on_close(session_id)

    def _attach_opens(self, index: int, message: Dict[str, object]) -> None:
        """Piggyback any fast-path-admitted opens on this frame (the
        worker processes ``opens`` before the command proper)."""
        if self._pending_opens[index]:
            message["opens"] = self._pending_opens[index]
            self._pending_opens[index] = []

    def _rpc(self, index: int, message: Dict[str, object]) -> Dict[str, object]:
        """One RPC with reply bookkeeping; crashes propagate to callers
        (each call site owns its recovery strategy)."""
        self._attach_opens(index, message)
        reply = self.workers[index].call(message)
        self._process_reply(index, reply)
        return reply

    # ------------------------------------------------------------------
    def open_session(self, session_id: Optional[str] = None) -> Optional[str]:
        """Place and admit a new session; spill on refusal when enabled.

        The placement policy nominates a worker from cached stats; if
        that worker refuses (capacity) and ``admission_spill`` is on,
        the open is retried on the remaining workers in next-best order
        (fewest sessions, shallowest queue) before giving up — a full
        shard no longer turns away traffic the cluster still has room
        for.  Returns the session id, or ``None`` when every candidate
        refused.
        """
        if session_id is None:
            while f"session-{self._session_counter}" in self._shard_of:
                self._session_counter += 1
            session_id = f"session-{self._session_counter}"
            self._session_counter += 1
        elif session_id in self._shard_of:
            raise ConfigError(f"session {session_id!r} already exists")
        first = self.placement.place(session_id, self.workers)
        if not 0 <= first < len(self.workers):
            raise ConfigError(
                f"placement policy returned worker {first}, cluster has "
                f"{len(self.workers)}"
            )
        # Fast path: the parent's routing table is a superset of every
        # worker's store (departures arrive with reply lag, buffered
        # opens are counted here first), so when the parent counts open
        # headroom the worker is guaranteed to admit — no RPC needed,
        # the open rides the next frame to that worker.
        parent_load = sum(
            1 for widx in self._shard_of.values() if widx == first
        )
        if parent_load < self.session_capacity:
            self._pending_opens[first].append(session_id)
            self.workers[first].load += 1  # placement sees it immediately
            self._shard_of[session_id] = first
            self._base_steps[session_id] = 0
            self._inflight_rids[session_id] = {}
            self.supervisor.on_open(session_id)
            return session_id
        candidates = [first]
        if self.admission_spill:
            candidates += sorted(
                (i for i in range(len(self.workers)) if i != first),
                key=lambda i: (
                    self.workers[i].load, self.workers[i].queue_depth, i
                ),
            )
        for attempt, index in enumerate(candidates):
            try:
                reply = self._rpc(
                    index, {"cmd": "open", "session_id": session_id}
                )
            except WorkerCrashed:
                self._recover_worker(index)
                reply = self._rpc(
                    index, {"cmd": "open", "session_id": session_id}
                )
            if reply["ok"] is not None:
                if attempt > 0:
                    self.metrics.admission_spills += 1
                self._shard_of[session_id] = index
                self._base_steps[session_id] = 0
                self._inflight_rids[session_id] = {}
                self.supervisor.on_open(session_id)
                return session_id
        self.metrics.admission_rejects += 1
        return None

    def close_session(self, session_id: str) -> None:
        index = self.shard_of(session_id)
        try:
            self._rpc(index, {"cmd": "close", "session_id": session_id})
        except WorkerCrashed:
            self._recover_worker(index)
            self._rpc(index, {"cmd": "close", "session_id": session_id})
        self._forget_session(session_id)

    def submit(
        self,
        session_id: str,
        x: np.ndarray,
        trace: Optional[tuple] = None,
    ) -> Optional[StepRequest]:
        """Queue one timestep; returns a mirror request, or ``None`` when
        the owning worker's queue bound is reached (backpressure).

        The mirror is buffered and flushed with the next :meth:`run_tick`
        RPC; admission is checked here, synchronously, against the
        parent's own count of that worker's in-flight requests (it
        mirrors the worker's bound exactly, so the refusal semantics
        match the in-process servers).  With a tracer attached the
        routing hop is a ``router.submit`` span and its context ships to
        the worker with the buffered submit, so the worker-side spans
        join the same trace.
        """
        index = self.shard_of(session_id)
        x = np.asarray(x)
        input_size = self.config.word_size
        if x.shape != (input_size,):
            raise ConfigError(
                f"submit expects x of shape ({input_size},), got {x.shape}"
            )
        span = None
        ctx = tuple(trace) if trace is not None else None
        if self.tracer is not None:
            span = self.tracer.start(
                "router.submit", parent=trace, attrs={"session": session_id}
            )
            ctx = span.context
        if self._worker_inflight[index] >= self.queue_capacity:
            self.metrics.admission_rejects += 1
            if span is not None:
                self.tracer.end(span, accepted=False)
            return None
        step = self.supervisor.on_submit(session_id, x)
        rid = self._rid_counter
        self._rid_counter += 1
        mirror = StepRequest(
            session_id=session_id,
            x=np.array(x, copy=True),
            submitted_tick=self.tick,
            seq=rid,
            trace=ctx,
        )
        self._mirrors[rid] = mirror
        self._rid_info[rid] = (session_id, step, index)
        self._inflight_rids[session_id][step] = rid
        self._buffers[index].append((rid, session_id, mirror.x, ctx))
        self._worker_inflight[index] += 1
        if span is not None:
            self.tracer.end(span, accepted=True)
        if ctx is not None:
            self._pending_traces.append(ctx)
        return mirror

    # ------------------------------------------------------------------
    def run_tick(self) -> List[StepRequest]:
        """Drive every worker one tick, concurrently; collect completions.

        Buffered submits flush inside each worker's tick frame; all tick
        frames are written before any reply is read, so the workers'
        engine steps overlap across processes.  A worker that crashed
        (or was SIGKILLed) since the last interaction is detected here,
        respawned, and restored from checkpoints + replay logs before
        the tick proceeds.  Completed mirrors return in submit order;
        replay ghosts (recomputed steps whose results were already
        delivered) are resolved but not returned.
        """
        tick_ctx: Optional[Tuple[int, int]] = None
        tick_span = None
        if self.tracer is not None:
            parent = self._pending_traces[0] if self._pending_traces else None
            tick_span = self.tracer.start(
                "cluster.tick", parent=parent, attrs={"tick": self.tick}
            )
            tick_ctx = tick_span.context
        self._pending_traces.clear()
        pending_reply: List[int] = []
        for index in range(len(self.workers)):
            submits = self._buffers[index]
            if not submits and self._worker_inflight[index] == 0:
                # Idle worker: nothing buffered and nothing in flight, so
                # a tick RPC could only burn a round trip.  Skipping it
                # means an idle worker's local clock (and therefore its
                # session-TTL expiry) only advances on active ticks —
                # capacity pressure still evicts via LRU on open.
                continue
            self._buffers[index] = []
            message = {"cmd": "tick", "submits": submits}
            self._attach_opens(index, message)
            try:
                self.workers[index].send(message, trace=tick_ctx)
            except WorkerCrashed:
                # The buffered submits are in the supervisor's logs (and
                # buffered opens in its session set); recovery re-opens
                # and re-enqueues them on the replacement worker.
                self._recover_worker(index)
                self.workers[index].send(
                    {"cmd": "tick", "submits": []}, trace=tick_ctx
                )
            pending_reply.append(index)
        for index in pending_reply:
            try:
                reply = self.workers[index].recv_reply("tick")
            except WorkerCrashed:
                self._recover_worker(index)
                reply = self.workers[index].call(
                    {"cmd": "tick", "submits": []}
                )
            self._process_reply(index, reply)
        if tick_span is not None:
            self.tracer.end(tick_span, workers=len(pending_reply))
        self.tick += 1
        if (
            self.checkpoint_interval is not None
            and self.tick % self.checkpoint_interval == 0
        ):
            self.checkpoint_now(min_log=self.checkpoint_min_log)
        if self.rebalance is not None:
            for session_id, src, dst in self.rebalance.plan(self.workers):
                if self._shard_of.get(session_id) != src:
                    continue
                if self.workers[dst].load >= self.workers[dst].capacity:
                    continue
                self.migrate_session(session_id, dst)
        completed = self._completed_stash
        self._completed_stash = []
        completed.sort(key=lambda request: request.seq)  # submit order
        return completed

    def checkpoint_now(self, min_log: int = 0) -> int:
        """One checkpoint round; returns sessions checkpointed.

        Ships every session whose supervisor replay log holds at least
        ``min_log`` steps — and at least one (0, the default for
        explicit calls, means every session with anything to replay).  Workers whose sessions
        are all below the bar are skipped entirely — at steady state a
        periodic round with nothing worth shipping costs no RPC.
        """
        count = 0
        wanted: List[List[str]] = [[] for _ in self.workers]
        for session_id, index in self._shard_of.items():
            depth = self.supervisor.log_depth(session_id)
            if depth > 0 and depth >= min_log:
                wanted[index].append(session_id)
        for index, sessions in enumerate(wanted):
            if not sessions:
                continue
            try:
                reply = self._rpc(
                    index, {"cmd": "checkpoint_all", "sessions": sessions}
                )
            except WorkerCrashed:
                self._recover_worker(index)
                continue  # the recovered worker was just restored
            for session_id, (payload, steps) in reply["ok"].items():
                if session_id not in self._shard_of:
                    continue
                parent_steps = self._base_steps[session_id] + int(steps)
                self.supervisor.on_checkpoint(
                    session_id, payload, parent_steps
                )
                count += 1
        return count

    # ------------------------------------------------------------------
    def session_state(self, session_id: str):
        """Copy of a session's current recurrent state (checkpoint read,
        decoded from the worker's wire-format payload)."""
        from repro.dnc.numpy_ref import NumpyDNCState

        return NumpyDNCState.from_bytes(self.checkpoint_session(session_id))

    def checkpoint_session(self, session_id: str) -> bytes:
        """One session's current state as checkpoint bytes (also feeds
        the supervisor, so recovery baselines advance)."""
        index = self.shard_of(session_id)
        try:
            reply = self._rpc(
                index, {"cmd": "checkpoint", "session_id": session_id}
            )
        except WorkerCrashed:
            self._recover_worker(index)
            reply = self._rpc(
                index, {"cmd": "checkpoint", "session_id": session_id}
            )
        payload, steps = reply["ok"]
        self.supervisor.on_checkpoint(
            session_id, payload, self._base_steps[session_id] + int(steps)
        )
        return payload

    def restore_session(self, session_id: str, payload: bytes) -> str:
        """Open a session from externally supplied checkpoint bytes."""
        if session_id in self._shard_of:
            raise ConfigError(f"session {session_id!r} already exists")
        index = self.placement.place(session_id, self.workers)
        try:
            self._rpc(
                index,
                {"cmd": "restore", "session_id": session_id, "payload": payload},
            )
        except WorkerCrashed:
            self._recover_worker(index)
            self._rpc(
                index,
                {"cmd": "restore", "session_id": session_id, "payload": payload},
            )
        self._shard_of[session_id] = index
        self._base_steps[session_id] = 0
        self._inflight_rids[session_id] = {}
        self.supervisor.on_restore(session_id, payload)
        return session_id

    def migrate_session(self, session_id: str, dst: int) -> None:
        """Move a live session (state + pending FIFO) to worker ``dst``.

        The detach's checkpoint bytes double as a fresh supervisor
        baseline, so a migration also advances the session's recovery
        point for free.  If the destination dies mid-attach, the session
        is restored onto the source from that same baseline — a crashed
        migration never loses the session.
        """
        src = self.shard_of(session_id)
        if not 0 <= dst < len(self.workers):
            raise ConfigError(
                f"destination worker {dst} out of range "
                f"(cluster has {len(self.workers)})"
            )
        if dst == src:
            return
        if self.workers[dst].load >= self.workers[dst].capacity:
            raise CapacityError(
                f"worker {dst} is full; cannot migrate {session_id!r}"
            )
        try:
            reply = self._rpc(src, {"cmd": "detach", "session_id": session_id})
        except WorkerCrashed:
            # The source died before handing the session over; recovery
            # rebuilds it in place and the move is abandoned this round.
            self._recover_worker(src)
            return
        payload, pending, steps = reply["ok"]
        parent_steps = self._base_steps[session_id] + int(steps)
        self.supervisor.on_checkpoint(session_id, payload, parent_steps)
        self._base_steps[session_id] = parent_steps
        for rid, _x, _t in pending:
            if rid in self._rid_info:
                sid, step, _w = self._rid_info[rid]
                self._rid_info[rid] = (sid, step, dst)
        moved = len(pending)
        self._worker_inflight[src] -= moved
        try:
            self._rpc(dst, {
                "cmd": "attach", "session_id": session_id,
                "payload": payload, "pending": pending,
            })
        except WorkerCrashed:
            self._recover_worker(dst)  # replays dst's own sessions
            self._shard_of[session_id] = src
            self._restore_session_on(src, session_id)
            return
        self._worker_inflight[dst] += moved
        self._shard_of[session_id] = dst
        self.migrations += 1

    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> None:
        """SIGKILL a worker (crash drill); recovery runs on next contact."""
        self.workers[index].kill()

    def _recover_worker(self, index: int) -> None:
        """Respawn worker ``index`` and restore every resident session.

        Each session is rebuilt from the supervisor's plan: restore the
        last checkpoint (or re-open fresh when none exists) and re-submit
        the logged inputs in order.  Pending steps keep their original
        mirrors — client-held requests complete normally after the
        restart; already-delivered steps replay as ghosts.
        """
        old = self.workers[index]
        old.kill()
        old.sock.close()
        if self.flight is not None:
            # Hand the dead worker's last-K tick history (spans + phase
            # stats) to the supervisor before anything overwrites it —
            # the postmortem a crash investigation starts from.
            self.supervisor.on_worker_death(index, self.flight.dump(index))
            self.flight.clear(index)
        self._worker_phase[index] = {}
        self.workers[index] = self._spawn(index)
        self.restarts[index] += 1
        self.metrics.worker_restarts += 1
        # In-flight counts are rebuilt from the replayed queue below;
        # buffered opens died with the process and are re-opened by the
        # per-session restore (their sessions are still in _shard_of).
        self._worker_inflight[index] = 0
        self._buffers[index] = []
        self._pending_opens[index] = []
        sessions = [
            sid for sid, widx in self._shard_of.items() if widx == index
        ]
        for session_id in sessions:
            self._restore_session_on(index, session_id)

    def _restore_session_on(self, index: int, session_id: str) -> None:
        payload, replay = self.supervisor.recovery_plan(session_id)
        if payload is not None:
            self._rpc(index, {
                "cmd": "restore", "session_id": session_id, "payload": payload,
            })
            self._base_steps[session_id] = self.supervisor.checkpoint_steps(
                session_id
            )
        else:
            reply = self._rpc(index, {"cmd": "open", "session_id": session_id})
            if reply["ok"] is None:
                raise ServeError(
                    f"worker {index} refused session {session_id!r} "
                    "during crash recovery"
                )
            self._base_steps[session_id] = 0
        inflight = self._inflight_rids.setdefault(session_id, {})
        # Replay submits are untraced: the original request's spans were
        # already recorded (or died with the worker's ring).
        submits: List[Tuple[int, str, np.ndarray, Optional[tuple]]] = []
        for step, x in replay:
            rid = inflight.get(step)
            if rid is None:
                # Already delivered before the crash: recompute to rebuild
                # state, but don't hand the result to anyone twice.
                rid = self._rid_counter
                self._rid_counter += 1
                self._ghosts.add(rid)
                self._mirrors[rid] = StepRequest(
                    session_id=session_id, x=np.array(x, copy=True),
                    submitted_tick=self.tick, seq=rid,
                )
                self._rid_info[rid] = (session_id, step, index)
                inflight[step] = rid
            else:
                self._rid_info[rid] = (session_id, step, index)
            submits.append((rid, session_id, x, None))
            self._worker_inflight[index] += 1
        if submits:
            self._rpc(
                index, {"cmd": "enqueue", "submits": submits, "drain": True}
            )

    # ------------------------------------------------------------------
    def drain(self, max_ticks: int = 10_000) -> List[StepRequest]:
        """Run cluster ticks until no request is in flight."""
        completed: List[StepRequest] = []
        for _ in range(max_ticks):
            if self.queue_depth == 0:
                return completed
            completed.extend(self.run_tick())
        raise ConfigError(
            f"drain did not empty the queues within {max_ticks} ticks"
        )

    def close(self) -> None:
        """Stop every worker process (idempotent; SIGKILL stragglers)."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ProcCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # last-resort: never leak child processes
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def cluster_metrics(self) -> ServerMetrics:
        """Merged worker metrics plus the front door's local counters.

        A restarted worker reports metrics from its respawn onward (the
        dead process's history is gone), and replayed steps are counted
        again by the worker that recomputed them — the merged object
        reports work actually performed, which is the honest accounting
        under restarts.
        """
        parts = [self.metrics]
        for index in range(len(self.workers)):
            try:
                reply = self._rpc(index, {"cmd": "metrics"})
            except WorkerCrashed:
                self._recover_worker(index)
                reply = self._rpc(index, {"cmd": "metrics"})
            parts.append(ServerMetrics.from_state(reply["ok"]))
        return ServerMetrics.merge(parts)

    def cluster_profile(self) -> Dict[str, Dict[str, float]]:
        """Merged per-phase engine profile across workers (empty unless
        constructed with ``profile=True``).  Built from the cumulative
        stats each worker piggybacks on its replies — no extra RPC."""
        merged = PhaseTimer()
        for phase in self._worker_phase:
            merged.merge(phase)
        return merged.stats()

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able cluster snapshot: merged metrics + liveness."""
        snap = self.cluster_metrics().snapshot()
        snap["workers"] = len(self.workers)
        snap["cluster_ticks"] = self.tick
        snap["sessions_migrated"] = self.migrations
        snap["worker_restarts"] = self.worker_restarts
        snap["checkpoints_taken"] = self.supervisor.checkpoints_taken
        snap["sessions_recovered"] = self.supervisor.sessions_recovered
        snap["per_worker"] = [
            {
                "worker": worker.index,
                "pid": worker.pid,
                "alive": worker.alive,
                "restarts": self.restarts[index],
                "sessions": worker.load,
                "queue_depth": worker.queue_depth,
            }
            for index, worker in enumerate(self.workers)
        ]
        return snap


__all__ = [
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "write_frame",
    "read_frame",
    "read_frame_traced",
    "ProcWorker",
    "ProcCluster",
]
