"""Copy and repeat-copy bit-sequence tasks.

The copy task is the canonical MANN probe (Graves et al., 2014): the model
receives a random bit sequence followed by an end marker and must
reproduce the sequence from memory.  Input layout per timestep:

    ``[bit_0 .. bit_{B-1}, start_marker, end_marker]``

Targets carry the bits only; a mask selects the recall phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import RngMixin, SeedLike, new_rng


@dataclass
class BitSequenceSample:
    """One sampled episode: inputs ``(T, B+2)``, targets ``(T, B)``,
    and a ``(T,)`` mask that is 1 during the recall phase."""

    inputs: np.ndarray
    targets: np.ndarray
    mask: np.ndarray


class CopyTask(RngMixin):
    """Random bit-sequence copy task.

    Parameters
    ----------
    num_bits:
        Width ``B`` of each pattern.
    min_length / max_length:
        Sequence length range (inclusive), sampled uniformly per episode.
    """

    def __init__(
        self,
        num_bits: int = 4,
        min_length: int = 2,
        max_length: int = 6,
        rng: SeedLike = None,
    ):
        if min_length < 1 or max_length < min_length:
            raise ConfigError(
                f"invalid length range [{min_length}, {max_length}]"
            )
        self.num_bits = num_bits
        self.min_length = min_length
        self.max_length = max_length
        self.seed(rng)

    @property
    def input_size(self) -> int:
        return self.num_bits + 2

    @property
    def output_size(self) -> int:
        return self.num_bits

    def sample(self) -> BitSequenceSample:
        """One episode: present -> end marker -> silent recall phase."""
        length = int(self.rng.integers(self.min_length, self.max_length + 1))
        bits = (self.rng.random((length, self.num_bits)) > 0.5).astype(float)
        total = 2 * length + 2
        inputs = np.zeros((total, self.input_size))
        targets = np.zeros((total, self.num_bits))
        mask = np.zeros(total)

        inputs[0, self.num_bits] = 1.0  # start marker
        inputs[1 : length + 1, : self.num_bits] = bits
        inputs[length + 1, self.num_bits + 1] = 1.0  # end marker
        targets[length + 2 :, :] = bits
        mask[length + 2 :] = 1.0
        return BitSequenceSample(inputs, targets, mask)


class RepeatCopyTask(RngMixin):
    """Repeat-copy: reproduce the pattern ``k`` times.

    The repeat count is presented (normalized) on the end-marker channel.
    """

    def __init__(
        self,
        num_bits: int = 4,
        min_length: int = 2,
        max_length: int = 4,
        min_repeats: int = 1,
        max_repeats: int = 3,
        rng: SeedLike = None,
    ):
        if min_repeats < 1 or max_repeats < min_repeats:
            raise ConfigError(
                f"invalid repeat range [{min_repeats}, {max_repeats}]"
            )
        self.num_bits = num_bits
        self.min_length = min_length
        self.max_length = max_length
        self.min_repeats = min_repeats
        self.max_repeats = max_repeats
        self.seed(rng)

    @property
    def input_size(self) -> int:
        return self.num_bits + 2

    @property
    def output_size(self) -> int:
        return self.num_bits

    def sample(self) -> BitSequenceSample:
        length = int(self.rng.integers(self.min_length, self.max_length + 1))
        repeats = int(self.rng.integers(self.min_repeats, self.max_repeats + 1))
        bits = (self.rng.random((length, self.num_bits)) > 0.5).astype(float)
        total = 2 + length + repeats * length
        inputs = np.zeros((total, self.input_size))
        targets = np.zeros((total, self.num_bits))
        mask = np.zeros(total)

        inputs[0, self.num_bits] = 1.0
        inputs[1 : length + 1, : self.num_bits] = bits
        inputs[length + 1, self.num_bits + 1] = repeats / self.max_repeats
        recall = np.tile(bits, (repeats, 1))
        targets[length + 2 :, :] = recall
        mask[length + 2 :] = 1.0
        return BitSequenceSample(inputs, targets, mask)


__all__ = ["CopyTask", "RepeatCopyTask", "BitSequenceSample"]
