"""Vocabulary and one-hot encoding for token-sequence tasks."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigError


class Vocabulary:
    """Bidirectional token <-> id map with deterministic ordering."""

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Add ``token`` if new; return its id."""
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def id_of(self, token: str) -> int:
        if token not in self._token_to_id:
            raise ConfigError(f"token {token!r} not in vocabulary")
        return self._token_to_id[token]

    def token_of(self, index: int) -> str:
        return self._id_to_token[index]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def tokens(self) -> List[str]:
        return list(self._id_to_token)


def encode_tokens(tokens: Sequence[str], vocab: Vocabulary) -> np.ndarray:
    """One-hot encode a token sequence: ``(T, len(vocab))``."""
    out = np.zeros((len(tokens), len(vocab)))
    for t, token in enumerate(tokens):
        out[t, vocab.id_of(token)] = 1.0
    return out


__all__ = ["Vocabulary", "encode_tokens"]
