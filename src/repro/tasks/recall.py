"""Associative recall: query an item, answer the item that followed it.

A sequence of delimiter-separated bit items is presented; then one item is
shown again as a query, and the model must emit the item that came after
it (Graves et al., 2014, Section 4.2).  Exercises content-based lookup
*and* the temporal linkage (forward weighting) — the history-based kernel
HiMA accelerates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tasks.copy import BitSequenceSample
from repro.utils.rng import RngMixin, SeedLike


class AssociativeRecallTask(RngMixin):
    """Item-chain recall task.

    Parameters
    ----------
    num_bits:
        Bit width of one item row.
    item_length:
        Rows per item.
    min_items / max_items:
        Number of items per episode (>= 2 so a successor always exists).
    """

    def __init__(
        self,
        num_bits: int = 4,
        item_length: int = 2,
        min_items: int = 2,
        max_items: int = 4,
        rng: SeedLike = None,
    ):
        if min_items < 2 or max_items < min_items:
            raise ConfigError(f"invalid item range [{min_items}, {max_items}]")
        self.num_bits = num_bits
        self.item_length = item_length
        self.min_items = min_items
        self.max_items = max_items
        self.seed(rng)

    @property
    def input_size(self) -> int:
        # bits + item delimiter + query delimiter
        return self.num_bits + 2

    @property
    def output_size(self) -> int:
        return self.num_bits

    def sample(self) -> BitSequenceSample:
        num_items = int(self.rng.integers(self.min_items, self.max_items + 1))
        items = (
            self.rng.random((num_items, self.item_length, self.num_bits)) > 0.5
        ).astype(float)
        query_index = int(self.rng.integers(0, num_items - 1))
        answer = items[query_index + 1]

        present = num_items * (self.item_length + 1)
        query = self.item_length + 1
        total = present + query + self.item_length
        inputs = np.zeros((total, self.input_size))
        targets = np.zeros((total, self.num_bits))
        mask = np.zeros(total)

        row = 0
        for item in items:
            inputs[row, self.num_bits] = 1.0  # item delimiter
            row += 1
            inputs[row : row + self.item_length, : self.num_bits] = item
            row += self.item_length
        inputs[row, self.num_bits + 1] = 1.0  # query delimiter
        row += 1
        inputs[row : row + self.item_length, : self.num_bits] = items[query_index]
        row += self.item_length
        targets[row:, :] = answer
        mask[row:] = 1.0
        return BitSequenceSample(inputs, targets, mask)


__all__ = ["AssociativeRecallTask"]
