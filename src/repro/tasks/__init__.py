"""Synthetic workloads for the DNC.

* :mod:`repro.tasks.copy` — copy / repeat-copy bit-sequence tasks (the
  classic NTM probes; used to validate that training works end to end).
* :mod:`repro.tasks.recall` — associative recall.
* :mod:`repro.tasks.babi` — a deterministic, offline 20-task bAbI-like QA
  generator standing in for the bAbI download (see DESIGN.md,
  substitutions table).
* :mod:`repro.tasks.encoding` — vocabulary and one-hot sequence encoding.
"""

from repro.tasks.encoding import Vocabulary, encode_tokens
from repro.tasks.copy import CopyTask, RepeatCopyTask
from repro.tasks.recall import AssociativeRecallTask
from repro.tasks.babi import BabiTaskSuite, QAExample, encode_example, TASK_NAMES

__all__ = [
    "Vocabulary",
    "encode_tokens",
    "CopyTask",
    "RepeatCopyTask",
    "AssociativeRecallTask",
    "BabiTaskSuite",
    "QAExample",
    "encode_example",
    "TASK_NAMES",
]
