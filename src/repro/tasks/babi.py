"""Synthetic 20-task bAbI-like QA generator.

The paper profiles and evaluates DNC on the bAbI dataset (Weston et al.,
2015): 20 independent tasks, each testing one aspect of QA behaviour.
The dataset cannot be downloaded offline, so this module generates a
structurally faithful substitute: 20 template task families over a shared
small-world vocabulary (people, places, objects), each producing a story
(token sequence), a question, and a single-token answer.  Generation is
deterministic given a seed.

Every story exercises the DNC memory: facts must be written at
presentation time and retrieved (possibly through multi-hop chains) at
question time, so the access pattern — the thing HiMA accelerates — is
preserved even though the surface text is synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.tasks.encoding import Vocabulary, encode_tokens
from repro.utils.rng import RngMixin, SeedLike

PEOPLE = ["mary", "john", "sandra", "daniel", "fred", "bill"]
PLACES = ["bathroom", "office", "kitchen", "garden", "hallway", "bedroom", "park", "school"]
OBJECTS = ["football", "milk", "apple", "cake", "box", "key"]
ANIMALS = ["wolf", "sheep", "mouse", "cat", "swan", "frog"]
COLORS = ["white", "green", "gray", "yellow"]
DIRECTIONS = ["north", "south", "east", "west"]
SHAPES = ["triangle", "square", "circle", "rectangle"]
MOTIVES = ["thirsty", "hungry", "tired", "bored"]

#: Names of the 20 task families, mirroring the bAbI task list.
TASK_NAMES = [
    "single-supporting-fact",
    "two-supporting-facts",
    "three-supporting-facts",
    "two-arg-relations",
    "three-arg-relations",
    "yes-no-questions",
    "counting",
    "lists-sets",
    "simple-negation",
    "indefinite-knowledge",
    "basic-coreference",
    "conjunction",
    "compound-coreference",
    "time-reasoning",
    "basic-deduction",
    "basic-induction",
    "positional-reasoning",
    "size-reasoning",
    "path-finding",
    "agents-motivations",
]


@dataclass
class QAExample:
    """One QA episode: story+question tokens and the answer token."""

    task_id: int
    tokens: List[str]
    answer: str


class BabiTaskSuite(RngMixin):
    """Deterministic generator for the 20 synthetic QA task families.

    Task ids are 1-based (matching bAbI conventions).  All tasks share one
    :meth:`vocabulary`, so a single model can train across tasks.
    """

    NUM_TASKS = 20

    def __init__(self, rng: SeedLike = 0):
        self.seed(rng)
        self._generators: Dict[int, Callable[[], QAExample]] = {
            i + 1: getattr(self, f"_task_{i + 1:02d}") for i in range(self.NUM_TASKS)
        }

    # ------------------------------------------------------------------
    def generate(self, task_id: int, num_examples: int) -> List[QAExample]:
        """Generate ``num_examples`` episodes of task ``task_id`` (1..20)."""
        if task_id not in self._generators:
            raise ConfigError(f"task_id must be 1..{self.NUM_TASKS}, got {task_id}")
        return [self._generators[task_id]() for _ in range(num_examples)]

    def generate_all(self, per_task: int) -> Dict[int, List[QAExample]]:
        """Generate ``per_task`` episodes for every task family."""
        return {tid: self.generate(tid, per_task) for tid in range(1, self.NUM_TASKS + 1)}

    def vocabulary(self) -> Vocabulary:
        """The closed vocabulary covering every task family."""
        vocab = Vocabulary(["?", ".", "yes", "no", "maybe", "nothing"])
        for group in (
            PEOPLE, PLACES, OBJECTS, ANIMALS, COLORS, DIRECTIONS, SHAPES, MOTIVES,
        ):
            for token in group:
                vocab.add(token)
        for token in (
            "moved", "went", "to", "the", "took", "dropped", "grabbed", "where",
            "is", "was", "what", "who", "how", "many", "in", "of", "gave", "she",
            "he", "they", "and", "then", "not", "either", "or", "are", "afraid",
            "a", "color", "above", "below", "bigger", "than", "fit", "does",
            "do", "you", "go", "from", "why", "did", "carrying", "one", "two",
            "three", "zero", "morning", "afternoon", "evening", "this",
        ):
            vocab.add(token)
        return vocab

    # ------------------------------------------------------------------
    # Shared world helpers
    # ------------------------------------------------------------------
    def _pick(self, pool: Sequence[str], count: int) -> List[str]:
        idx = self.rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in idx]

    def _one(self, pool: Sequence[str]) -> str:
        return pool[int(self.rng.integers(0, len(pool)))]

    # ------------------------------------------------------------------
    # Task families 1..20
    # ------------------------------------------------------------------
    def _task_01(self) -> QAExample:
        """Single supporting fact: track one person through moves."""
        people = self._pick(PEOPLE, 3)
        tokens: List[str] = []
        locations = {}
        for person in people:
            place = self._one(PLACES)
            locations[person] = place
            tokens += [person, "moved", "to", "the", place, "."]
        target = self._one(people)
        tokens += ["where", "is", target, "?"]
        return QAExample(1, tokens, locations[target])

    def _task_02(self) -> QAExample:
        """Two supporting facts: object follows its holder."""
        person = self._one(PEOPLE)
        obj = self._one(OBJECTS)
        place1, place2 = self._pick(PLACES, 2)
        tokens = [person, "took", "the", obj, "."]
        tokens += [person, "went", "to", "the", place1, "."]
        tokens += [person, "went", "to", "the", place2, "."]
        tokens += ["where", "is", "the", obj, "?"]
        return QAExample(2, tokens, place2)

    def _task_03(self) -> QAExample:
        """Three supporting facts: object dropped mid-journey."""
        person = self._one(PEOPLE)
        obj = self._one(OBJECTS)
        place1, place2, place3 = self._pick(PLACES, 3)
        tokens = [person, "took", "the", obj, "."]
        tokens += [person, "went", "to", "the", place1, "."]
        tokens += [person, "went", "to", "the", place2, "."]
        tokens += [person, "dropped", "the", obj, "."]
        tokens += [person, "went", "to", "the", place3, "."]
        tokens += ["where", "is", "the", obj, "?"]
        return QAExample(3, tokens, place2)

    def _task_04(self) -> QAExample:
        """Two-argument relations: directional facts."""
        place1, place2 = self._pick(PLACES, 2)
        direction = self._one(DIRECTIONS)
        tokens = ["the", place1, "is", direction, "of", "the", place2, "."]
        tokens += ["what", "is", direction, "of", "the", place2, "?"]
        return QAExample(4, tokens, place1)

    def _task_05(self) -> QAExample:
        """Three-argument relations: giver / object / receiver."""
        giver, receiver = self._pick(PEOPLE, 2)
        obj = self._one(OBJECTS)
        tokens = [giver, "gave", "the", obj, "to", receiver, "."]
        tokens += ["who", "gave", "the", obj, "?"]
        return QAExample(5, tokens, giver)

    def _task_06(self) -> QAExample:
        """Yes/no questions about location."""
        person = self._one(PEOPLE)
        place_true, place_other = self._pick(PLACES, 2)
        tokens = [person, "went", "to", "the", place_true, "."]
        asked = place_true if self.rng.random() < 0.5 else place_other
        tokens += ["is", person, "in", "the", asked, "?"]
        return QAExample(6, tokens, "yes" if asked == place_true else "no")

    def _task_07(self) -> QAExample:
        """Counting objects carried."""
        person = self._one(PEOPLE)
        count = int(self.rng.integers(0, 4))
        objs = self._pick(OBJECTS, max(count, 1))
        tokens: List[str] = []
        for i in range(count):
            tokens += [person, "grabbed", "the", objs[i], "."]
        if count == 0:
            place = self._one(PLACES)
            tokens += [person, "went", "to", "the", place, "."]
        tokens += ["how", "many", "is", person, "carrying", "?"]
        answer = ["zero", "one", "two", "three"][count]
        return QAExample(7, tokens, answer)

    def _task_08(self) -> QAExample:
        """Lists/sets: report (the first) carried object, or nothing."""
        person = self._one(PEOPLE)
        carrying = self.rng.random() < 0.75
        tokens: List[str] = []
        answer = "nothing"
        if carrying:
            obj = self._one(OBJECTS)
            answer = obj
            tokens += [person, "grabbed", "the", obj, "."]
        else:
            tokens += [person, "went", "to", "the", self._one(PLACES), "."]
        tokens += ["what", "is", person, "carrying", "?"]
        return QAExample(8, tokens, answer)

    def _task_09(self) -> QAExample:
        """Simple negation."""
        person = self._one(PEOPLE)
        place = self._one(PLACES)
        negated = self.rng.random() < 0.5
        if negated:
            tokens = [person, "is", "not", "in", "the", place, "."]
        else:
            tokens = [person, "is", "in", "the", place, "."]
        tokens += ["is", person, "in", "the", place, "?"]
        return QAExample(9, tokens, "no" if negated else "yes")

    def _task_10(self) -> QAExample:
        """Indefinite knowledge: either/or."""
        person = self._one(PEOPLE)
        place1, place2, place3 = self._pick(PLACES, 3)
        tokens = [person, "is", "either", "in", "the", place1, "or", "the",
                  place2, "."]
        choice = self.rng.random()
        if choice < 1 / 3:
            asked, answer = place1, "maybe"
        elif choice < 2 / 3:
            asked, answer = place2, "maybe"
        else:
            asked, answer = place3, "no"
        tokens += ["is", person, "in", "the", asked, "?"]
        return QAExample(10, tokens, answer)

    def _task_11(self) -> QAExample:
        """Basic coreference: pronoun refers to the last-named person."""
        person = self._one(PEOPLE)
        place1, place2 = self._pick(PLACES, 2)
        pronoun = "she" if person in ("mary", "sandra") else "he"
        tokens = [person, "went", "to", "the", place1, "."]
        tokens += [pronoun, "then", "went", "to", "the", place2, "."]
        tokens += ["where", "is", person, "?"]
        return QAExample(11, tokens, place2)

    def _task_12(self) -> QAExample:
        """Conjunction: two subjects move together."""
        person1, person2 = self._pick(PEOPLE, 2)
        place = self._one(PLACES)
        tokens = [person1, "and", person2, "went", "to", "the", place, "."]
        target = person1 if self.rng.random() < 0.5 else person2
        tokens += ["where", "is", target, "?"]
        return QAExample(12, tokens, place)

    def _task_13(self) -> QAExample:
        """Compound coreference: 'they' refers to the pair."""
        person1, person2 = self._pick(PEOPLE, 2)
        place1, place2 = self._pick(PLACES, 2)
        tokens = [person1, "and", person2, "went", "to", "the", place1, "."]
        tokens += ["they", "then", "went", "to", "the", place2, "."]
        target = person1 if self.rng.random() < 0.5 else person2
        tokens += ["where", "is", target, "?"]
        return QAExample(13, tokens, place2)

    def _task_14(self) -> QAExample:
        """Time reasoning: facts presented out of chronological order."""
        person = self._one(PEOPLE)
        place1, place2, place3 = self._pick(PLACES, 3)
        times = ["morning", "afternoon", "evening"]
        places = [place1, place2, place3]
        order = self.rng.permutation(3)
        tokens: List[str] = []
        for idx in order:
            tokens += ["in", "the", times[idx], person, "went", "to", "the",
                       places[idx], "."]
        asked = int(self.rng.integers(0, 3))
        tokens += ["where", "was", person, "in", "the", times[asked], "?"]
        return QAExample(14, tokens, places[asked])

    def _task_15(self) -> QAExample:
        """Basic deduction: species-level fear transfers to individuals."""
        predator, prey = self._pick(ANIMALS, 2)
        name = self._one(PEOPLE)
        tokens = [prey, "are", "afraid", "of", predator, "."]
        tokens += [name, "is", "a", prey, "."]
        tokens += ["what", "is", name, "afraid", "of", "?"]
        return QAExample(15, tokens, predator)

    def _task_16(self) -> QAExample:
        """Basic induction: color generalizes within a species."""
        animal = self._one(ANIMALS)
        color = self._one(COLORS)
        name1, name2 = self._pick(PEOPLE, 2)
        tokens = [name1, "is", "a", animal, "."]
        tokens += [name1, "is", color, "."]
        tokens += [name2, "is", "a", animal, "."]
        tokens += ["what", "color", "is", name2, "?"]
        return QAExample(16, tokens, color)

    def _task_17(self) -> QAExample:
        """Positional reasoning: above/below consistency."""
        shape1, shape2 = self._pick(SHAPES, 2)
        tokens = ["the", shape1, "is", "above", "the", shape2, "."]
        ask_below = self.rng.random() < 0.5
        if ask_below:
            tokens += ["is", "the", shape2, "below", "the", shape1, "?"]
            answer = "yes"
        else:
            tokens += ["is", "the", shape1, "below", "the", shape2, "?"]
            answer = "no"
        return QAExample(17, tokens, answer)

    def _task_18(self) -> QAExample:
        """Size reasoning: bigger-than implies does-not-fit."""
        obj1, obj2 = self._pick(OBJECTS, 2)
        tokens = ["the", obj1, "is", "bigger", "than", "the", obj2, "."]
        ask_big_in_small = self.rng.random() < 0.5
        if ask_big_in_small:
            tokens += ["does", "the", obj1, "fit", "in", "the", obj2, "?"]
            answer = "no"
        else:
            tokens += ["does", "the", obj2, "fit", "in", "the", obj1, "?"]
            answer = "yes"
        return QAExample(18, tokens, answer)

    def _task_19(self) -> QAExample:
        """Path finding: one-hop direction between places."""
        place1, place2 = self._pick(PLACES, 2)
        direction = self._one(DIRECTIONS)
        tokens = ["the", place1, "is", direction, "of", "the", place2, "."]
        tokens += ["how", "do", "you", "go", "from", place2, "to", place1, "?"]
        return QAExample(19, tokens, direction)

    def _task_20(self) -> QAExample:
        """Agents' motivations: why did X go somewhere."""
        person = self._one(PEOPLE)
        motive = self._one(MOTIVES)
        place = self._one(PLACES)
        tokens = [person, "is", motive, "."]
        tokens += [person, "went", "to", "the", place, "."]
        tokens += ["why", "did", person, "go", "to", "the", place, "?"]
        return QAExample(20, tokens, motive)


def encode_example(
    example: QAExample, vocab: Vocabulary
) -> Tuple[np.ndarray, int]:
    """One-hot inputs ``(T, |V|)`` and the answer token id.

    The model is trained to emit the answer at the final timestep (the
    ``?`` token position), the standard bAbI readout convention.
    """
    inputs = encode_tokens(example.tokens, vocab)
    return inputs, vocab.id_of(example.answer)


__all__ = ["BabiTaskSuite", "QAExample", "encode_example", "TASK_NAMES"]
