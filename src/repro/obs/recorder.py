"""Flight recorder: last-K ticks of spans + phase stats per worker.

The parent :class:`~repro.serve.proc.ProcCluster` records every tick
reply's drained spans and phase-stat snapshot into a bounded per-worker
ring.  When a worker dies (SIGKILL, crash) the recorder's ring for that
worker is exactly "what the worker was doing for its last K ticks" —
:meth:`repro.serve.supervisor.CheckpointSupervisor.on_worker_death`
receives the dump, so a post-mortem is available even though the worker
process took its own tracer with it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.obs.profiler import StatDict


class FlightRecorder:
    """Per-worker bounded rings of tick records."""

    def __init__(self, last_k: int = 64):
        if last_k < 1:
            raise ValueError(f"last_k must be >= 1, got {last_k}")
        self.last_k = int(last_k)
        self._rings: Dict[int, "deque[Dict[str, object]]"] = {}

    def record(
        self,
        worker: int,
        tick: int,
        spans: List[Dict[str, object]],
        phase_stats: Optional[StatDict] = None,
    ) -> None:
        """Append one tick's observability payload for ``worker``."""
        ring = self._rings.get(worker)
        if ring is None:
            ring = self._rings[worker] = deque(maxlen=self.last_k)
        ring.append(
            {
                "tick": int(tick),
                "spans": list(spans),
                "phase_stats": dict(phase_stats) if phase_stats else {},
            }
        )

    def dump(self, worker: int) -> List[Dict[str, object]]:
        """The last-K tick records for ``worker``, oldest first."""
        return list(self._rings.get(worker, ()))

    def clear(self, worker: int) -> None:
        """Drop ``worker``'s ring (after a post-mortem is taken, the
        replacement process starts with a clean record)."""
        self._rings.pop(worker, None)

    def workers(self) -> List[int]:
        return sorted(self._rings)


__all__ = ["FlightRecorder"]
