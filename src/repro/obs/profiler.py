"""Per-phase engine profiling: the ``PhaseTimer`` seam.

:class:`~repro.core.engine.TiledEngine` carries a ``profiler`` attribute
that is ``None`` by default; when a server enables profiling it attaches
a :class:`PhaseTimer` and the engine's step loop brackets each named
phase with :meth:`PhaseTimer.lap`:

    prof = self.profiler
    if prof is not None:
        tp = prof.now()
    ...content addressing...
    if prof is not None:
        tp = prof.lap("content_addressing", tp, nbytes)

so the disabled path costs one attribute load and a ``None`` check per
phase — the <3% tracing/profiling overhead floor in
``benchmarks/bench_obs_smoke.py`` holds the enabled path to near-zero
too.  Each lap attributes the elapsed wall time (one
``time.perf_counter`` call) plus an estimated bytes-touched figure
(:meth:`repro.core.access.AccessPolicy.bytes_touched`) to its phase.

Phase stats are mergeable across engines/workers (`merge`), serialize
exactly (`to_state`/`from_state` — they ride process-cluster tick
replies), and diff cleanly (`delta`) so a serving tick can attribute
its step time to phases and synthesize per-phase child spans.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional

#: The named phases the engine step attributes time to, in execution
#: order.  ``gather_scatter`` covers masked-step state staging (compact
#: gather/scatter and workspace scatter); the rest are the DNC phase
#: sequence of ``TiledEngine._step_dnc``.  Exactly one of ``read`` /
#: ``read_phase`` fires per step — which one is the backend's
#: ``read_phase_label`` (``read`` for the classic forward/backward +
#: gather path, ``read_phase`` for backends with a fused read kernel);
#: use :func:`engine_phases` for the label set one engine emits.
PHASES = (
    "controller",
    "content_addressing",
    "sort_allocation",
    "erase_write_linkage",
    "read",
    "read_phase",
    "output",
    "gather_scatter",
)


def engine_phases(read_label: str = "read"):
    """The phase labels an engine with the given read label emits.

    ``read_label`` is the backend's ``read_phase_label``; the result is
    :data:`PHASES` minus the unused read label, in order — the expected
    key/span set for that engine's profiles and ``engine.phase:*``
    spans.
    """
    drop = {"read", "read_phase"} - {read_label}
    return tuple(p for p in PHASES if p not in drop)

StatDict = Dict[str, Dict[str, float]]


class PhaseTimer:
    """Accumulates per-phase counts, cumulative seconds, bytes touched."""

    __slots__ = ("_counts", "_seconds", "_bytes")

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}
        self._bytes: Dict[str, int] = {}

    # -- hot path ----------------------------------------------------

    @staticmethod
    def now() -> float:
        return time.perf_counter()

    def lap(self, phase: str, t0: float, nbytes: int = 0) -> float:
        """Attribute the time since ``t0`` to ``phase``; returns the new
        timestamp so laps chain: ``tp = prof.lap("read", tp, nbytes)``."""
        t1 = time.perf_counter()
        self._counts[phase] = self._counts.get(phase, 0) + 1
        self._seconds[phase] = self._seconds.get(phase, 0.0) + (t1 - t0)
        if nbytes:
            self._bytes[phase] = self._bytes.get(phase, 0) + int(nbytes)
        return t1

    # -- aggregation -------------------------------------------------

    def stats(self) -> StatDict:
        """``{phase: {count, seconds, bytes}}`` for all seen phases."""
        out: StatDict = {}
        for phase, count in self._counts.items():
            out[phase] = {
                "count": count,
                "seconds": self._seconds.get(phase, 0.0),
                "bytes": self._bytes.get(phase, 0),
            }
        return out

    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def reset(self) -> None:
        self._counts.clear()
        self._seconds.clear()
        self._bytes.clear()

    def merge(self, stats: Optional[StatDict]) -> None:
        """Fold another timer's :meth:`stats` into this one (cluster
        roll-up across shards/workers)."""
        if not stats:
            return
        for phase, entry in stats.items():
            self._counts[phase] = self._counts.get(phase, 0) + int(entry.get("count", 0))
            self._seconds[phase] = self._seconds.get(phase, 0.0) + float(
                entry.get("seconds", 0.0)
            )
            nbytes = int(entry.get("bytes", 0))
            if nbytes:
                self._bytes[phase] = self._bytes.get(phase, 0) + nbytes

    # -- serialization -----------------------------------------------

    def to_state(self) -> StatDict:
        return self.stats()

    @classmethod
    def from_state(cls, state: Optional[StatDict]) -> "PhaseTimer":
        timer = cls()
        timer.merge(state)
        return timer

    @staticmethod
    def delta(before: Optional[StatDict], after: Optional[StatDict]) -> StatDict:
        """Per-phase ``after - before`` (phases with no change omitted).

        Used by a serving tick to attribute one engine step: snapshot
        stats around ``engine.step`` and synthesize phase spans from the
        diff.
        """
        before = before or {}
        after = after or {}
        out: StatDict = {}
        for phase, entry in after.items():
            prev: Mapping[str, float] = before.get(phase, {})
            count = int(entry.get("count", 0)) - int(prev.get("count", 0))
            seconds = float(entry.get("seconds", 0.0)) - float(prev.get("seconds", 0.0))
            nbytes = int(entry.get("bytes", 0)) - int(prev.get("bytes", 0))
            if count or seconds or nbytes:
                out[phase] = {"count": count, "seconds": seconds, "bytes": nbytes}
        return out


__all__ = ["PHASES", "PhaseTimer", "engine_phases"]
