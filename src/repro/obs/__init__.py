"""``repro.obs`` — observability for the engine and serving stack.

Three cooperating layers (see ISSUE 8 / ROADMAP items 4–5):

* **Request tracing** (:mod:`repro.obs.trace`): :class:`Tracer` collects
  lightweight :class:`Span` records in a bounded ring.  Spans start at
  :class:`~repro.serve.frontend.AsyncFrontend` admission and propagate
  through router/shard dispatch and across
  :class:`~repro.serve.proc.ProcCluster`'s framed RPC (the trace
  context rides the frame header), so one request yields a complete
  frontend→router→shard→worker→engine span tree exportable as JSONL.

* **Per-phase engine profiling** (:mod:`repro.obs.profiler`):
  :class:`PhaseTimer` attaches to ``TiledEngine.profiler`` (``None`` by
  default) and attributes each tick to named phases — content
  addressing, sort/allocation, erase+write+linkage, read, output,
  gather/scatter — with counts, cumulative seconds, and bytes touched
  (:meth:`repro.core.access.AccessPolicy.bytes_touched`).

* **Metrics registry + exporters** (:mod:`repro.obs.metrics`):
  :class:`MetricsRegistry` unifies counters/gauges/exact histograms
  with per-tenant and per-phase labels behind Prometheus-text and
  structured-JSON exporters; :class:`~repro.serve.metrics.ServerMetrics`
  adopts it via ``to_registry()``.  The :class:`FlightRecorder`
  (:mod:`repro.obs.recorder`) keeps the last-K ticks of spans + phase
  stats per worker so a SIGKILL post-mortem shows what the dead worker
  was doing.

Everything is dependency-free, off by default, and bounded: tracing and
profiling cost one ``None`` check per hook when disabled, and <3%
end-to-end when enabled (asserted in ``benchmarks/bench_obs_smoke.py``).
"""

from repro.obs.metrics import MetricsRegistry, validate_metrics_json
from repro.obs.profiler import PHASES, PhaseTimer, engine_phases
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import (
    SPAN_KEYS,
    Span,
    SpanContext,
    Tracer,
    render_span_tree,
    validate_trace_jsonl,
)

__all__ = [
    "SPAN_KEYS",
    "PHASES",
    "Span",
    "SpanContext",
    "Tracer",
    "PhaseTimer",
    "engine_phases",
    "MetricsRegistry",
    "FlightRecorder",
    "render_span_tree",
    "validate_trace_jsonl",
    "validate_metrics_json",
]
