"""Metrics registry + exporters (Prometheus text, structured JSON).

One :class:`MetricsRegistry` unifies the three metric kinds the serving
stack produces — monotone counters, point-in-time gauges, and *exact*
integer-bin histograms (``{bin_value: count}``, the
:class:`~repro.serve.metrics.ServerMetrics` representation) — behind a
single namespace with optional label dimensions (per-tenant, per-phase,
per-shard).  :meth:`repro.serve.metrics.ServerMetrics.to_registry`
adopts it as the export surface, so every layer (shard, cluster,
process cluster) emits the same two formats:

* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (exact histograms become cumulative ``_bucket``
  series plus ``_sum``/``_count``);
* :meth:`MetricsRegistry.to_json` — a structured dump,
  schema-checked by :func:`validate_metrics_json` (the obs-smoke CI
  step validates the dump of a traced serve).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]

_KINDS = ("counter", "gauge", "histogram")


def _label_pairs(labels: Optional[Mapping[str, object]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(pairs: LabelPairs, extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(pairs)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


class MetricsRegistry:
    """Named metrics with label dimensions, built per export.

    The registry is a *view builder*: producers call
    :meth:`counter`/:meth:`gauge`/:meth:`histogram` with current values
    (repeat calls with the same name+labels overwrite), then an exporter
    renders the whole namespace.  This keeps the hot path free of
    registry bookkeeping — servers accumulate in their own structures
    and adopt the registry only at export time.
    """

    def __init__(self) -> None:
        # name -> (kind, help); name -> {label_pairs: value}
        self._meta: Dict[str, Tuple[str, str]] = {}
        self._values: Dict[str, Dict[LabelPairs, object]] = {}

    def _set(
        self,
        kind: str,
        name: str,
        value: object,
        labels: Optional[Mapping[str, object]],
        help: str,
    ) -> None:
        known = self._meta.get(name)
        if known is not None and known[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {known[0]}, not {kind}"
            )
        if known is None or (help and not known[1]):
            self._meta[name] = (kind, help)
        self._values.setdefault(name, {})[_label_pairs(labels)] = value

    def counter(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
    ) -> None:
        self._set("counter", name, float(value), labels, help)

    def gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
    ) -> None:
        self._set("gauge", name, float(value), labels, help)

    def histogram(
        self,
        name: str,
        bins: Mapping[int, int],
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
    ) -> None:
        """Register an exact histogram: ``{bin_value: count}``."""
        self._set(
            "histogram", name, {int(k): int(v) for k, v in bins.items()}, labels, help
        )

    # -- exporters ---------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._meta):
            kind, help_text = self._meta[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            series = self._values.get(name, {})
            for pairs in sorted(series):
                value = series[pairs]
                if kind != "histogram":
                    lines.append(f"{name}{_label_text(pairs)} {_fmt(value)}")
                    continue
                bins: Mapping[int, int] = value  # type: ignore[assignment]
                cumulative = 0
                total = 0.0
                for edge in sorted(bins):
                    cumulative += bins[edge]
                    total += edge * bins[edge]
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_text(pairs, ('le', _fmt(float(edge))))} {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_label_text(pairs, ('le', '+Inf'))} {cumulative}"
                )
                lines.append(f"{name}_sum{_label_text(pairs)} {_fmt(total)}")
                lines.append(f"{name}_count{_label_text(pairs)} {cumulative}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, object]:
        """Structured dump: ``{metrics: [{name, kind, help, series}]}``
        where each series entry carries ``labels`` and ``value`` (or
        ``bins`` for histograms, keys stringified for JSON)."""
        metrics: List[Dict[str, object]] = []
        for name in sorted(self._meta):
            kind, help_text = self._meta[name]
            series: List[Dict[str, object]] = []
            for pairs in sorted(self._values.get(name, {})):
                value = self._values[name][pairs]
                entry: Dict[str, object] = {"labels": dict(pairs)}
                if kind == "histogram":
                    entry["bins"] = {
                        str(k): v
                        for k, v in sorted(value.items())  # type: ignore[union-attr]
                    }
                else:
                    entry["value"] = value
                series.append(entry)
            metrics.append(
                {"name": name, "kind": kind, "help": help_text, "series": series}
            )
        return {"metrics": metrics}

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def validate_metrics_json(data: object) -> List[str]:
    """Problems with a :meth:`MetricsRegistry.to_json` payload."""
    problems: List[str] = []
    if not isinstance(data, dict) or not isinstance(data.get("metrics"), list):
        return ["top-level: expected {'metrics': [...]}"]
    for i, metric in enumerate(data["metrics"]):
        where = f"metrics[{i}]"
        if not isinstance(metric, dict):
            problems.append(f"{where}: expected an object")
            continue
        name = metric.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing/empty name")
        kind = metric.get("kind")
        if kind not in _KINDS:
            problems.append(f"{where}: kind must be one of {_KINDS}, got {kind!r}")
        series = metric.get("series")
        if not isinstance(series, list):
            problems.append(f"{where}: series must be a list")
            continue
        for j, entry in enumerate(series):
            swhere = f"{where}.series[{j}]"
            if not isinstance(entry, dict):
                problems.append(f"{swhere}: expected an object")
                continue
            if not isinstance(entry.get("labels"), dict):
                problems.append(f"{swhere}: labels must be an object")
            if kind == "histogram":
                bins = entry.get("bins")
                if not isinstance(bins, dict):
                    problems.append(f"{swhere}: histogram entry needs 'bins'")
                else:
                    for key, count in bins.items():
                        try:
                            int(key)
                        except (TypeError, ValueError):
                            problems.append(
                                f"{swhere}: bin key {key!r} is not an integer"
                            )
                        if not isinstance(count, int) or count < 0:
                            problems.append(
                                f"{swhere}: bin count must be a non-negative "
                                f"int, got {count!r}"
                            )
            elif "value" not in entry or not isinstance(
                entry.get("value"), (int, float)
            ):
                problems.append(f"{swhere}: entry needs a numeric 'value'")
    return problems


__all__ = ["MetricsRegistry", "validate_metrics_json"]
