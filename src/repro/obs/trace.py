"""Request tracing: lightweight spans, a bounded ring, JSONL export.

One traced request through the serving stack yields a *span tree*:

* ``frontend.submit`` — root, opened at :class:`~repro.serve.frontend.
  AsyncFrontend` admission, closed when the awaited reply resolves;
* ``router.submit`` — the front door's enqueue (``ShardedServer`` /
  ``ProcCluster``), child of the frontend span;
* ``shard.submit`` — the owning :class:`~repro.serve.shard.EngineShard`
  accepting the request (for ``ProcCluster`` this is created in the
  *worker process*: the trace context rides the framed-RPC header, so
  the tree crosses the process boundary);
* ``shard.dispatch`` — per-request span covering queueing through
  completion on the shard;
* ``cluster.tick`` / ``shard.tick`` / ``engine.step`` /
  ``engine.phase:*`` — the tick that served the request.  A tick serves
  a whole micro-batch, so it is attributed to the *oldest traced
  request* it dispatches (its parent is that request's submit span);
  engine phases are synthesized from :class:`~repro.obs.profiler.
  PhaseTimer` deltas and stitched sequentially across the step
  interval.

Spans are plain records (trace id, span id, parent id, name,
``t_start``/``t_end`` on the ``time.perf_counter`` clock, pid, attrs)
collected in a bounded ring buffer — tracing an unbounded run cannot
grow memory without bound.  Worker processes ``drain()`` their rings
into tick replies; the parent :meth:`Tracer.adopt`\\ s the records, so
one process's ring ends up holding the full cross-process tree.

Span/trace ids are monotonic counters salted with the pid (no RNG: the
serving stack is deterministic and stays that way under tracing), so
ids never collide across the worker processes of one cluster.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Keys every exported span record must carry (the JSONL schema).
SPAN_KEYS = (
    "trace_id",
    "span_id",
    "parent_id",
    "name",
    "t_start",
    "t_end",
    "pid",
    "attrs",
)

#: A propagated trace context: ``(trace_id, span_id)`` of the parent.
SpanContext = Tuple[int, int]

# Process-wide id counter: unique within a process, and salted with the
# pid below so ids are unique across a cluster's worker processes too.
_IDS = itertools.count(1)


def _new_id() -> int:
    return ((os.getpid() & 0xFFFFFF) << 32) | (next(_IDS) & 0xFFFFFFFF)


@dataclass
class Span:
    """One timed operation; ``t_end`` is set by :meth:`Tracer.end`."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    t_start: float
    t_end: Optional[float] = None
    pid: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        """The ``(trace_id, span_id)`` pair children parent on."""
        return (self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return (self.t_end if self.t_end is not None else self.t_start) - self.t_start

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Bounded collector of finished spans.

    ``start``/``end`` are the whole hot-path API; everything else
    (drain/adopt/export) runs off the tick path.  Appends go through a
    ``collections.deque`` with ``maxlen``, so concurrent shard threads
    (``ShardedServer`` parallel ticks) can share one tracer without a
    lock — each append is atomic and the ring simply drops the oldest
    record when full (counted in :attr:`dropped`).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: "deque[Dict[str, object]]" = deque(maxlen=self.capacity)
        self.dropped = 0
        self.started = 0
        self.finished = 0

    # -- hot path ----------------------------------------------------

    def start(
        self,
        name: str,
        parent: Union[Span, SpanContext, None] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a span.  ``parent`` is a :class:`Span`, a propagated
        ``(trace_id, span_id)`` context, or ``None`` for a new root."""
        if parent is None:
            trace_id = _new_id()
            parent_id = None
        elif isinstance(parent, Span):
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id, parent_id = int(parent[0]), int(parent[1])
        self.started += 1
        return Span(
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            name=name,
            t_start=time.perf_counter(),
            pid=os.getpid(),
            attrs=dict(attrs) if attrs else {},
        )

    def end(self, span: Span, **attrs: object) -> Span:
        """Close ``span`` and commit it to the ring."""
        span.t_end = time.perf_counter()
        if attrs:
            span.attrs.update(attrs)
        self.finished += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span.to_dict())
        return span

    def emit(
        self,
        name: str,
        parent: Union[Span, SpanContext, None],
        t_start: float,
        t_end: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Commit an already-timed interval (e.g. a synthesized engine
        phase) as a finished span without touching the clock."""
        span = self.start(name, parent=parent, attrs=attrs)
        span.t_start = t_start
        span.t_end = t_end
        self.finished += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span.to_dict())
        return span

    # -- collection --------------------------------------------------

    def records(self) -> List[Dict[str, object]]:
        """Finished span records, oldest first (ring left intact)."""
        return list(self._ring)

    def drain(self) -> List[Dict[str, object]]:
        """Pop and return all finished records (used by worker
        processes to ship spans in tick replies)."""
        records = list(self._ring)
        self._ring.clear()
        return records

    def adopt(self, records: Iterable[Dict[str, object]]) -> int:
        """Fold records drained from another tracer (a worker process)
        into this ring.  Returns the number adopted."""
        count = 0
        for record in records:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(dict(record))
            count += 1
        return count

    def clear(self) -> None:
        self._ring.clear()

    # -- export ------------------------------------------------------

    def export_jsonl(self, path: Union[str, pathlib.Path]) -> int:
        """Write one JSON object per span record; returns the count."""
        records = self.records()
        text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        pathlib.Path(path).write_text(text)
        return len(records)


def validate_trace_jsonl(
    source: Union[str, pathlib.Path, Sequence[str]],
) -> List[str]:
    """Problems with an exported span JSONL (path or iterable of lines).

    Schema-checks every record (keys, types, ``t_end >= t_start``) and
    the link structure: a non-null ``parent_id`` must reference a span
    in the same trace when the parent is present in the export at all
    (rings are bounded, so a dropped parent is not an error — a parent
    present under a *different* trace id is).
    """
    if isinstance(source, (str, pathlib.Path)):
        lines = pathlib.Path(source).read_text().splitlines()
    else:
        lines = list(source)
    problems: List[str] = []
    by_span: Dict[int, Dict[str, object]] = {}
    records: List[Dict[str, object]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: expected an object")
            continue
        for key in SPAN_KEYS:
            if key not in record:
                problems.append(f"line {lineno}: missing key {key!r}")
        for key in ("trace_id", "span_id", "pid"):
            value = record.get(key)
            if key in record and (not isinstance(value, int) or value < 0):
                problems.append(
                    f"line {lineno}: {key} must be a non-negative int, "
                    f"got {value!r}"
                )
        parent = record.get("parent_id")
        if "parent_id" in record and parent is not None and not isinstance(parent, int):
            problems.append(
                f"line {lineno}: parent_id must be an int or null, got {parent!r}"
            )
        if "name" in record and not isinstance(record.get("name"), str):
            problems.append(f"line {lineno}: name must be a string")
        t0, t1 = record.get("t_start"), record.get("t_end")
        for key, value in (("t_start", t0), ("t_end", t1)):
            if key in record and not isinstance(value, (int, float)):
                problems.append(f"line {lineno}: {key} must be a number")
        if isinstance(t0, (int, float)) and isinstance(t1, (int, float)) and t1 < t0:
            problems.append(f"line {lineno}: t_end < t_start")
        if "attrs" in record and not isinstance(record.get("attrs"), dict):
            problems.append(f"line {lineno}: attrs must be an object")
        if isinstance(record.get("span_id"), int):
            by_span[record["span_id"]] = record
        records.append(record)
    for record in records:
        parent = record.get("parent_id")
        if isinstance(parent, int) and parent in by_span:
            if by_span[parent].get("trace_id") != record.get("trace_id"):
                problems.append(
                    f"span {record.get('span_id')}: parent {parent} belongs "
                    f"to a different trace"
                )
    return problems


def render_span_tree(
    records: Iterable[Dict[str, object]],
    indent: str = "  ",
) -> str:
    """ASCII span tree, one trace per block, children indented.

    Spans whose parent is absent from ``records`` (bounded rings drop
    oldest-first) are rendered as roots.  Siblings sort by start time,
    so the rendering reads as a timeline.
    """
    records = [dict(r) for r in records]
    by_span = {r["span_id"]: r for r in records if isinstance(r.get("span_id"), int)}
    children: Dict[Optional[int], List[Dict[str, object]]] = {}
    roots: List[Dict[str, object]] = []
    for record in records:
        parent = record.get("parent_id")
        if isinstance(parent, int) and parent in by_span:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    lines: List[str] = []

    def walk(record: Dict[str, object], depth: int) -> None:
        t0 = record.get("t_start") or 0.0
        t1 = record.get("t_end") or t0
        duration_ms = (t1 - t0) * 1e3
        attrs = record.get("attrs") or {}
        attr_text = "".join(f" {k}={v}" for k, v in sorted(attrs.items()))
        lines.append(
            f"{indent * depth}{record.get('name')} "
            f"{duration_ms:.3f}ms pid={record.get('pid')}{attr_text}"
        )
        kids = children.get(record.get("span_id"), [])
        for kid in sorted(kids, key=lambda r: r.get("t_start") or 0.0):
            walk(kid, depth + 1)

    roots.sort(key=lambda r: (r.get("trace_id") or 0, r.get("t_start") or 0.0))
    last_trace = None
    for root in roots:
        trace = root.get("trace_id")
        if trace != last_trace:
            lines.append(f"trace {trace:x}" if isinstance(trace, int) else f"trace {trace}")
            last_trace = trace
        walk(root, 1)
    return "\n".join(lines)


__all__ = [
    "SPAN_KEYS",
    "Span",
    "SpanContext",
    "Tracer",
    "render_span_tree",
    "validate_trace_jsonl",
]
