"""HiMA reproduction: a history-based memory access engine for the DNC.

Full Python reproduction of *HiMA: A Fast and Scalable History-based
Memory Access Engine for Differentiable Neural Computer* (Tao & Zhang,
MICRO 2021), including:

* a trainable DNC / DNC-D model stack on a from-scratch autodiff engine
  (:mod:`repro.autodiff`, :mod:`repro.nn`, :mod:`repro.dnc`),
* synthetic workloads standing in for bAbI (:mod:`repro.tasks`),
* a cycle-level NoC simulator with all compared topologies
  (:mod:`repro.noc`),
* hardware component models — sorters, compute fabric, calibrated 40 nm
  area/power libraries (:mod:`repro.hw`),
* the HiMA engine itself: partition optimizer, tiled functional execution
  with traffic accounting, and the end-to-end performance model
  (:mod:`repro.core`),
* experiment runners regenerating every table and figure of the paper's
  evaluation (:mod:`repro.eval`).

Quickstart::

    from repro.core import HiMAConfig, HiMAPerformanceModel
    model = HiMAPerformanceModel(HiMAConfig.hima_dnc())
    print(model.inference_time_us(), "us per test")
"""

from repro.core.config import HiMAConfig
from repro.core.perf_model import HiMAPerformanceModel
from repro.core.engine import TiledEngine, gather_states, scatter_states
from repro.dnc import DNC, DNCConfig, DNCD, DNCDConfig
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig
from repro.eval.runners import BatchedThroughput, measure_batched_throughput
from repro.hw.area_model import AreaModel
from repro.hw.power_model import PowerModel
from repro.serve import (
    MicroBatcher,
    ServeLoadResult,
    ServerMetrics,
    SessionServer,
    SessionStore,
    measure_serve_load,
)

__version__ = "1.2.0"

__all__ = [
    "HiMAConfig",
    "HiMAPerformanceModel",
    "TiledEngine",
    "gather_states",
    "scatter_states",
    "DNC",
    "DNCConfig",
    "DNCD",
    "DNCDConfig",
    "NumpyDNC",
    "NumpyDNCConfig",
    "BatchedThroughput",
    "measure_batched_throughput",
    "MicroBatcher",
    "ServeLoadResult",
    "ServerMetrics",
    "SessionServer",
    "SessionStore",
    "measure_serve_load",
    "AreaModel",
    "PowerModel",
    "__version__",
]
