"""Deterministic random-number-generation helpers.

Every stochastic component in the library accepts either an integer seed or
an existing :class:`numpy.random.Generator`.  ``new_rng`` normalizes both
forms, so experiments are reproducible end to end from a single seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a freshly seeded generator, an ``int`` a deterministic
    one, and an existing generator is passed through unchanged so that a
    caller can thread one RNG through many components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Split ``rng`` into ``count`` independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``self.rng``."""

    _rng: Optional[np.random.Generator] = None

    def seed(self, seed: SeedLike) -> None:
        """(Re)seed this component's private generator."""
        self._rng = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(None)
        return self._rng
