"""Plain-text rendering of tables, ratios, and percentage breakdowns.

The benchmark harness prints every reproduced table/figure as text; these
helpers keep the rendering consistent across experiments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_ratio(value: float, reference: float) -> str:
    """Render ``value`` relative to ``reference`` as an ``N.NNx`` factor."""
    if reference == 0:
        return "inf x"
    return f"{value / reference:.3g}x"


def format_breakdown(parts: Mapping[str, float], title: str = "") -> str:
    """Render a name->value mapping as percentages of the total."""
    total = sum(parts.values())
    lines = [title] if title else []
    for name, value in parts.items():
        pct = 100.0 * value / total if total else 0.0
        lines.append(f"  {name:<32s} {pct:5.1f}%  ({value:.4g})")
    lines.append(f"  {'total':<32s} 100.0%  ({total:.4g})")
    return "\n".join(lines)
