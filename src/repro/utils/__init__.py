"""Shared utilities: seeded RNG helpers, table formatting, validation."""

from repro.utils.rng import RngMixin, new_rng
from repro.utils.formatting import format_table, format_ratio, format_breakdown
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_power_of_two,
    check_in,
)

__all__ = [
    "RngMixin",
    "new_rng",
    "format_table",
    "format_ratio",
    "format_breakdown",
    "check_positive",
    "check_probability",
    "check_power_of_two",
    "check_in",
]
