"""Small argument-validation helpers raising :class:`repro.errors.ConfigError`."""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigError

#: Engine-wide numeric dtype policy choices (single source of truth for
#: HiMAConfig, NumpyDNCConfig, and the bench schema).  ``float64`` is the
#: exact reference mode; ``float32`` halves state-memory bandwidth at
#: reduced precision.  Lives here so config (core) and the reference
#: model (dnc) can share it without a cross-layer import.
DTYPE_CHOICES = ("float64", "float32")

#: Reduced-precision compute dtypes.  These are *compute* dtypes only —
#: numpy has no bfloat16 and float16 underflows the normalization
#: epsilon, so the engine's numpy state stores them as float32 (see
#: :data:`STORAGE_DTYPES`) while a capable kernel backend (the ``torch``
#: backend) computes the hot path in the true half precision.  Valid in
#: ``HiMAConfig`` only with such a backend.
REDUCED_DTYPE_CHOICES = ("float16", "bfloat16")

#: Every dtype-policy name accepted anywhere (configs, bench schema).
EXTENDED_DTYPE_CHOICES = DTYPE_CHOICES + REDUCED_DTYPE_CHOICES

#: Numpy storage dtype backing each dtype-policy name.
STORAGE_DTYPES = {
    "float64": "float64",
    "float32": "float32",
    "float16": "float32",
    "bfloat16": "float32",
}


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Require ``value`` to be a positive power of two."""
    if value < 1 or (value & (value - 1)) != 0:
        raise ConfigError(f"{name} must be a power of two, got {value!r}")


def check_in(name: str, value: object, allowed: Iterable) -> None:
    """Require ``value`` to be one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigError(f"{name} must be one of {allowed}, got {value!r}")
