"""Small argument-validation helpers raising :class:`repro.errors.ConfigError`."""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigError

#: Engine-wide numeric dtype policy choices (single source of truth for
#: HiMAConfig, NumpyDNCConfig, and the bench schema).  ``float64`` is the
#: exact reference mode; ``float32`` halves state-memory bandwidth at
#: reduced precision.  Lives here so config (core) and the reference
#: model (dnc) can share it without a cross-layer import.
DTYPE_CHOICES = ("float64", "float32")


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Require ``value`` to be a positive power of two."""
    if value < 1 or (value & (value - 1)) != 0:
        raise ConfigError(f"{name} must be a power of two, got {value!r}")


def check_in(name: str, value: object, allowed: Iterable) -> None:
    """Require ``value`` to be one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigError(f"{name} must be one of {allowed}, got {value!r}")
