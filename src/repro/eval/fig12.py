"""Figure 12 — scalability and comparison with state-of-the-art designs.

(a) area/power scaling of HiMA-DNC and HiMA-DNC-D over Nt = 4..32 —
DNC power grows super-linearly with tile count (traffic-driven) while
DNC-D stays near the ideal linear scaling.

(b)-(d) speed / area / power comparison of HiMA (Nt=16) against Farm,
MANNA, the GPU, and the CPU, with speedups normalized to the GPU and
area/power to Farm, exactly as the paper plots them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.baselines import (
    CPU_SECONDS_PER_TEST,
    FARM,
    GPU_SECONDS_PER_TEST,
    MANNA,
)
from repro.core.config import HiMAConfig
from repro.core.metrics import EfficiencyMetrics, compare_designs
from repro.core.perf_model import HiMAPerformanceModel
from repro.eval.runners import ExperimentResult, register
from repro.hw.area_model import AreaModel
from repro.hw.power_model import PowerModel

#: Paper headline ratios (Section 7.4).
PAPER_TARGETS = {
    "speedup_vs_gpu_dnc": 437.0,
    "speedup_vs_gpu_dncd": 2646.0,
    "speed_vs_manna_dnc": 6.47,
    "speed_vs_manna_dncd": 39.1,
    "area_eff_vs_manna_dnc": 22.8,
    "area_eff_vs_manna_dncd": 164.3,
    "energy_eff_vs_manna_dnc": 6.1,
    "energy_eff_vs_manna_dncd": 61.2,
}


def _prototype_metrics(config: HiMAConfig, name: str) -> EfficiencyMetrics:
    perf = HiMAPerformanceModel(config)
    area = AreaModel(
        config.memory_size, config.word_size, config.num_reads,
        config.num_tiles,
        distributed=config.distributed,
        two_stage_sort=config.two_stage_sort,
        multimode_noc=(config.noc == "hima"),
    ).breakdown()
    power = PowerModel().estimate(perf.activity()).total
    return EfficiencyMetrics(
        name=name,
        seconds_per_test=perf.inference_time_s(),
        area_mm2=area.total,
        power_w=power,
    )


@register("fig12a")
def run_scalability(
    tile_counts: Sequence[int] = (4, 8, 16, 32), rows_per_tile: int = 64
) -> ExperimentResult:
    """Scaling up tiles to support a *larger external memory* (the
    paper's Fig. 12(a) scenario): ``N = rows_per_tile * Nt``, so the
    Nt=16 point is the 1024-row prototype."""
    rows = []
    base: Dict[str, float] = {}
    for distributed in (False, True):
        label = "HiMA-DNC-D" if distributed else "HiMA-DNC"
        for nt in tile_counts:
            config = HiMAConfig(
                memory_size=rows_per_tile * nt, num_tiles=nt,
                distributed=distributed,
            )
            area = AreaModel(
                config.memory_size, config.word_size, config.num_reads, nt,
                distributed=distributed,
            ).breakdown()
            power = PowerModel().estimate(
                HiMAPerformanceModel(config).activity()
            ).total
            base.setdefault(f"{label}-area", area.total)
            base.setdefault(f"{label}-power", power)
            rows.append([
                label, nt,
                f"{area.total:.1f}",
                f"{area.total / base[f'{label}-area']:.2f}x",
                f"{power:.2f}",
                f"{power / base[f'{label}-power']:.2f}x",
                f"{nt / tile_counts[0]:.0f}x",
            ])
    return ExperimentResult(
        experiment_id="fig12a",
        title="Area and power scalability over tile count (Figure 12(a))",
        headers=["prototype", "Nt", "area mm^2", "area scale", "power W",
                 "power scale", "ideal scale"],
        rows=rows,
        notes=[
            "paper: HiMA-DNC power grows super-linearly with Nt (traffic); "
            "DNC-D stays near the ideal linear scaling",
        ],
    )


@register("fig12bcd")
def run_comparison(**overrides) -> ExperimentResult:
    """Speed / area / power vs Farm, MANNA, GPU, CPU (Figure 12(b)-(d))."""
    hima_dnc = _prototype_metrics(HiMAConfig.hima_dnc(**overrides), "HiMA-DNC")
    hima_dncd = _prototype_metrics(
        HiMAConfig.hima_dncd(skim_fraction=0.2, **overrides), "HiMA-DNC-D"
    )
    baseline = _prototype_metrics(HiMAConfig.baseline(**overrides), "HiMA-baseline")

    farm = EfficiencyMetrics("Farm", FARM.seconds_per_test,
                             FARM.area_mm2_normalized, FARM.power_w)
    manna = EfficiencyMetrics("MANNA", MANNA.seconds_per_test,
                              MANNA.area_mm2_normalized, MANNA.power_w)

    designs = [farm, manna, baseline, hima_dnc, hima_dncd]
    rows = []
    for design in designs:
        speedup_gpu = GPU_SECONDS_PER_TEST / design.seconds_per_test
        rows.append([
            design.name,
            f"{design.seconds_per_test * 1e6:.1f}",
            f"{speedup_gpu:.0f}x",
            f"{design.area_mm2 / farm.area_mm2:.2f}x",
            f"{design.power_w / farm.power_w:.2f}x",
            f"{design.area_efficiency / manna.area_efficiency:.1f}x",
            f"{design.energy_efficiency / manna.energy_efficiency:.1f}x",
        ])
    rows.append([
        "GPU (3080Ti)", f"{GPU_SECONDS_PER_TEST * 1e6:.0f}", "1x",
        "-", "-", "-", "-",
    ])
    rows.append([
        "CPU (i7-9700K)", f"{CPU_SECONDS_PER_TEST * 1e6:.0f}",
        f"{GPU_SECONDS_PER_TEST / CPU_SECONDS_PER_TEST:.2f}x",
        "-", "-", "-", "-",
    ])
    notes = [
        "paper targets: HiMA-DNC 437x GPU / 6.47x MANNA speed / 22.8x "
        "MANNA area-eff / 6.1x MANNA energy-eff; HiMA-DNC-D 2646x GPU / "
        "39.1x / 164.3x / 61.2x",
        "GPU/CPU latencies are the paper's published reference points "
        "(no GPU offline); HiMA rows use our measured cycle model + "
        "area/power models",
        "areas normalized to 40 nm (MANNA published at 15 nm)",
    ]
    return ExperimentResult(
        experiment_id="fig12bcd",
        title="Comparison with state-of-the-art designs (Figure 12(b)-(d))",
        headers=["design", "us/test", "speed vs GPU", "area vs Farm",
                 "power vs Farm", "area-eff vs MANNA", "energy-eff vs MANNA"],
        rows=rows,
        notes=notes,
    )
