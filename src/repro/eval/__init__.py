"""Experiment harness: one runner per paper table/figure.

Each module exposes a ``run(...)`` returning an
:class:`~repro.eval.runners.ExperimentResult` whose ``render()`` prints
the same rows/series the paper reports, side by side with the published
values where available.  The ``benchmarks/`` directory wraps these in
pytest-benchmark targets.
"""

from repro.eval.runners import (
    ExperimentResult,
    EXPERIMENTS,
    register,
    BatchedThroughput,
    measure_batched_throughput,
)
from repro.eval import table1, fig4, fig5, fig6, fig7, fig10, fig11, fig12

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "register",
    "BatchedThroughput",
    "measure_batched_throughput",
    "table1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig10",
    "fig11",
    "fig12",
]
