"""Schema contract for the ``BENCH_batched_throughput.json`` trajectory.

Perf PRs extend/update the repo-root artifact rather than inventing new
formats (ROADMAP convention); this module is the authoritative list of
what the file must contain so CI can fail fast when an entry drifts.

Top level: one base :class:`~repro.eval.runners.BatchedThroughput`
entry (flat keys, B=16 trajectory config) plus a ``variants`` mapping
that must carry the sort-enabled and dtype A/B entries.
"""

from __future__ import annotations

from typing import Dict, List

from repro.utils.validation import DTYPE_CHOICES

#: Keys every trajectory entry (top level and each variant) must carry.
ENTRY_KEYS = (
    "batch_size",
    "steps_per_sec",
    "speedup_vs_seq",
    "seq_len",
    "sequential_steps_per_sec",
    "batch1_max_abs_diff",
    "dtype",
    "memory_size",
    "two_stage_sort",
    "skim_fraction",
)

#: Variant entries the artifact must include: the sort-enabled hot paths
#: and the float64/float32 A/B pair at memory_size >= 256.
REQUIRED_VARIANTS = ("two_stage_sort", "skim", "float64_n256", "float32_n256")


def _check_entry(entry: object, where: str) -> List[str]:
    problems: List[str] = []
    if not isinstance(entry, dict):
        return [f"{where}: expected an object, got {type(entry).__name__}"]
    for key in ENTRY_KEYS:
        if key not in entry:
            problems.append(f"{where}: missing key {key!r}")
    dtype = entry.get("dtype")
    if "dtype" in entry and dtype not in DTYPE_CHOICES:
        problems.append(
            f"{where}: dtype must be one of {DTYPE_CHOICES}, got {dtype!r}"
        )
    for key in ("steps_per_sec", "speedup_vs_seq", "sequential_steps_per_sec"):
        value = entry.get(key)
        if key in entry and (not isinstance(value, (int, float)) or value <= 0):
            problems.append(f"{where}: {key} must be a positive number, got {value!r}")
    return problems


def validate_trajectory(data: object) -> List[str]:
    """Return a list of schema problems (empty when the artifact is valid)."""
    problems = _check_entry(data, "top-level")
    if not isinstance(data, dict):
        return problems
    variants = data.get("variants")
    if not isinstance(variants, dict):
        problems.append("missing or non-object 'variants' mapping")
        return problems
    for name in REQUIRED_VARIANTS:
        if name not in variants:
            problems.append(f"variants: missing required entry {name!r}")
        else:
            problems.extend(_check_entry(variants[name], f"variants[{name!r}]"))
    sort_variant = variants.get("two_stage_sort")
    if isinstance(sort_variant, dict) and sort_variant.get("two_stage_sort") is not True:
        problems.append("variants['two_stage_sort']: entry must have two_stage_sort=true")
    f32 = variants.get("float32_n256")
    if isinstance(f32, dict):
        if f32.get("dtype") != "float32":
            problems.append("variants['float32_n256']: entry must have dtype='float32'")
        if isinstance(f32.get("memory_size"), int) and f32["memory_size"] < 256:
            problems.append("variants['float32_n256']: memory_size must be >= 256")
    return problems


__all__ = ["ENTRY_KEYS", "REQUIRED_VARIANTS", "validate_trajectory"]
