"""Schema contracts for the repo-root ``BENCH_*.json`` trajectory artifacts.

Perf PRs extend/update these artifacts rather than inventing new formats
(ROADMAP convention); this module is the single source of truth for what
each file must contain, consumed by:

* the result dataclasses (:class:`repro.eval.runners.BatchedThroughput`,
  :class:`repro.serve.loadgen.ServeLoadResult`) — their ``to_json``
  methods are generated from the key tuples here, so the writers cannot
  drift from the validators;
* the bench harnesses (``benchmarks/bench_batched_throughput.py``,
  ``benchmarks/bench_serve_load.py``) and the tier-1 artifact tests;
* the CI CLI ``benchmarks/validate_bench_schema.py``, which validates any
  number of artifacts by dispatching on filename through
  :data:`ARTIFACT_VALIDATORS`.

``BENCH_batched_throughput.json``: one base
:class:`~repro.eval.runners.BatchedThroughput` entry (flat keys, B=16
trajectory config) plus a ``variants`` mapping carrying the
sort-enabled, dtype, and fused-write-kernel A/B entries.
``BENCH_serve_load.json``: one flat
:class:`~repro.serve.loadgen.ServeLoadResult` entry (the state-arena
hot path) plus a ``variants`` mapping with the ``state_arena`` /
``gather_scatter`` A/B pair and the ``tracing_on`` / ``tracing_off``
observability-overhead A/B pair.
``BENCH_shard_scaling.json``: one flat
:class:`~repro.serve.loadgen.ShardScalingResult` entry (the headline
multi-shard point) plus ``shards_1`` / ``shards_2`` / ``shards_4``
variants tracing the sharded-serving scaling curve.
``BENCH_proc_serve.json``: one flat
:class:`~repro.serve.loadgen.ProcServeResult` entry (the headline
process-cluster point) plus ``threads`` / ``procs`` / ``procs_restart``
variants comparing topologies — and pricing crash recovery — on the
identical 64-session Zipf mix.
``BENCH_sparse_access.json``: one flat
:class:`~repro.eval.runners.SparseAccessResult` entry (the headline
N=2048 sparse point) plus ``dense_n{384,1024,2048}`` /
``sparse_k<K>_n<N>`` variants A/B'ing the access policies with explicit
accuracy deltas vs dense float64.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Callable, Dict, List, Union

from repro.utils.validation import EXTENDED_DTYPE_CHOICES


def merge_artifact(path: Union[str, pathlib.Path], update: Dict) -> None:
    """Read-modify-write a ``BENCH_*.json`` artifact, preserving entries.

    Shared by the bench harnesses (each of their tests contributes part
    of one artifact): top-level keys from ``update`` overwrite, and its
    ``variants`` mapping merges entry-wise into the existing one.  An
    unreadable/corrupt artifact is replaced rather than crashing the
    bench — a regressing run must still record what it measured.
    """
    path = pathlib.Path(path)
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    if not isinstance(data, dict):
        data = {}
    update = dict(update)
    variants = data.get("variants")
    if not isinstance(variants, dict):
        variants = {}
    variants.update(update.pop("variants", {}))
    data.update(update)
    if variants:
        data["variants"] = variants
    path.write_text(json.dumps(data, indent=2) + "\n")

# ---------------------------------------------------------------------------
# BENCH_batched_throughput.json
# ---------------------------------------------------------------------------

#: Keys every trajectory entry (top level and each variant) must carry.
#: Also the exact field list of ``BatchedThroughput`` — its ``to_json``
#: iterates this tuple.
ENTRY_KEYS = (
    "batch_size",
    "steps_per_sec",
    "speedup_vs_seq",
    "seq_len",
    "sequential_steps_per_sec",
    "batch1_max_abs_diff",
    "dtype",
    "memory_size",
    "two_stage_sort",
    "skim_fraction",
    "fused_write_linkage",
    "masked_dense_min_occupancy",
    "read_phase_fused",
    "backend",
)

#: Variant entries the artifact must include: the sort-enabled hot paths,
#: the float64/float32 A/B pair at memory_size >= 256, the fused
#: write/linkage kernel A/B pair (fused single-sweep vs the three-pass
#: legacy path, same config otherwise), and the partial-occupancy
#: masked-step A/B (dense-capacity in-place write phase vs the compact
#: gather path, same half-occupancy workload), and the kernel-backend
#: A/B pair (reference vs tuned on the identical bandwidth-bound
#: float64 N>=256 config; a ``backend_torch`` entry additionally
#: appears when torch is importable but is never required), and the
#: read-phase kernel A/B pair (tuned backend with the fused
#: single-sweep forward/backward read kernel vs the same backend with
#: ``read_phase_fused=false`` — two separate linkage sweeps — on the
#: same float64 N>=256 config as the backend pair).
REQUIRED_VARIANTS = (
    "two_stage_sort",
    "skim",
    "float64_n256",
    "float32_n256",
    "fused_write_linkage",
    "unfused_write_linkage",
    "masked_dense_occupancy",
    "masked_gather_occupancy",
    "backend_reference",
    "backend_tuned",
    "read_fused",
    "read_unfused",
)


def _check_entry(
    entry: object,
    where: str,
    required_keys,
    positive_keys,
) -> List[str]:
    problems: List[str] = []
    if not isinstance(entry, dict):
        return [f"{where}: expected an object, got {type(entry).__name__}"]
    for key in required_keys:
        if key not in entry:
            problems.append(f"{where}: missing key {key!r}")
    dtype = entry.get("dtype")
    if "dtype" in entry and dtype not in EXTENDED_DTYPE_CHOICES:
        problems.append(
            f"{where}: dtype must be one of {EXTENDED_DTYPE_CHOICES}, "
            f"got {dtype!r}"
        )
    backend = entry.get("backend")
    if "backend" in entry and (
        not isinstance(backend, str) or not backend
    ):
        problems.append(
            f"{where}: backend must be a non-empty string, got {backend!r}"
        )
    for key in positive_keys:
        value = entry.get(key)
        if key in entry and (not isinstance(value, (int, float)) or value <= 0):
            problems.append(f"{where}: {key} must be a positive number, got {value!r}")
    return problems


_THROUGHPUT_POSITIVE = ("steps_per_sec", "speedup_vs_seq", "sequential_steps_per_sec")


def validate_trajectory(data: object) -> List[str]:
    """Problems with a ``BENCH_batched_throughput.json`` payload."""
    problems = _check_entry(data, "top-level", ENTRY_KEYS, _THROUGHPUT_POSITIVE)
    if not isinstance(data, dict):
        return problems
    variants = data.get("variants")
    if not isinstance(variants, dict):
        problems.append("missing or non-object 'variants' mapping")
        return problems
    for name in REQUIRED_VARIANTS:
        if name not in variants:
            problems.append(f"variants: missing required entry {name!r}")
        else:
            problems.extend(_check_entry(
                variants[name], f"variants[{name!r}]",
                ENTRY_KEYS, _THROUGHPUT_POSITIVE,
            ))
    sort_variant = variants.get("two_stage_sort")
    if isinstance(sort_variant, dict) and sort_variant.get("two_stage_sort") is not True:
        problems.append("variants['two_stage_sort']: entry must have two_stage_sort=true")
    f32 = variants.get("float32_n256")
    if isinstance(f32, dict):
        if f32.get("dtype") != "float32":
            problems.append("variants['float32_n256']: entry must have dtype='float32'")
        if isinstance(f32.get("memory_size"), int) and f32["memory_size"] < 256:
            problems.append("variants['float32_n256']: memory_size must be >= 256")
    fused = variants.get("fused_write_linkage")
    if isinstance(fused, dict) and fused.get("fused_write_linkage") is not True:
        problems.append(
            "variants['fused_write_linkage']: entry must have "
            "fused_write_linkage=true"
        )
    unfused = variants.get("unfused_write_linkage")
    if isinstance(unfused, dict) and unfused.get("fused_write_linkage") is not False:
        problems.append(
            "variants['unfused_write_linkage']: entry must have "
            "fused_write_linkage=false"
        )
    dense = variants.get("masked_dense_occupancy")
    if isinstance(dense, dict) and dense.get("masked_dense_min_occupancy") != 0.0:
        problems.append(
            "variants['masked_dense_occupancy']: entry must have "
            "masked_dense_min_occupancy=0.0 (dense path forced on)"
        )
    gather = variants.get("masked_gather_occupancy")
    if isinstance(gather, dict) and gather.get("masked_dense_min_occupancy") != 1.0:
        problems.append(
            "variants['masked_gather_occupancy']: entry must have "
            "masked_dense_min_occupancy=1.0 (compact gather path forced)"
        )
    for name, backend in (
        ("backend_reference", "reference"),
        ("backend_tuned", "tuned"),
        ("backend_torch", "torch"),  # optional; checked only when present
    ):
        entry = variants.get(name)
        if isinstance(entry, dict) and entry.get("backend") != backend:
            problems.append(
                f"variants[{name!r}]: entry must have backend={backend!r}"
            )
    for name, fused in (("read_fused", True), ("read_unfused", False)):
        entry = variants.get(name)
        if not isinstance(entry, dict):
            continue
        if entry.get("read_phase_fused") is not fused:
            problems.append(
                f"variants[{name!r}]: entry must have "
                f"read_phase_fused={'true' if fused else 'false'}"
            )
        if entry.get("backend") != "tuned":
            problems.append(
                f"variants[{name!r}]: entry must have backend='tuned' "
                "(only the tuned backend honours the read-phase flag)"
            )
    return problems


# ---------------------------------------------------------------------------
# BENCH_serve_load.json
# ---------------------------------------------------------------------------

#: Keys of every serve-load entry (top level and each variant); also the
#: exact field list of ``ServeLoadResult`` — its ``to_json`` iterates
#: this tuple.
SERVE_ENTRY_KEYS = (
    "concurrent_sessions",
    "steps_per_session",
    "max_batch",
    "max_wait_ticks",
    "requests_per_sec",
    "sequential_requests_per_sec",
    "speedup_vs_sequential",
    "microbatch_max_abs_diff",
    "p50_wait_ticks",
    "p95_wait_ticks",
    "p99_wait_ticks",
    "mean_batch_occupancy",
    "admission_rejects",
    "evictions",
    "dtype",
    "memory_size",
    "state_arena",
    "state_bytes_copied",
    "tracing",
    "backend",
)

#: Variant entries the serve artifact must include: the resident
#: state-arena hot path and the gather/scatter fallback it replaced,
#: measured on the identical workload so the copy tax is visible as a
#: throughput ratio (and in ``state_bytes_copied``) — plus the
#: observability A/B (full tracing + per-phase profiling vs none, same
#: workload), where the ``tracing_on`` entry is held to a <3% overhead
#: floor by the obs-smoke bench — plus the kernel-backend A/B pair
#: (reference vs tuned serving the identical arena workload at the
#: state-heavy N=384 config).
SERVE_REQUIRED_VARIANTS = (
    "state_arena",
    "gather_scatter",
    "tracing_on",
    "tracing_off",
    "backend_reference",
    "backend_tuned",
)

_SERVE_POSITIVE = (
    "concurrent_sessions",
    "steps_per_session",
    "max_batch",
    "requests_per_sec",
    "sequential_requests_per_sec",
    "speedup_vs_sequential",
    "mean_batch_occupancy",
)


def _check_serve_entry(entry: object, where: str) -> List[str]:
    problems = _check_entry(entry, where, SERVE_ENTRY_KEYS, _SERVE_POSITIVE)
    if not isinstance(entry, dict):
        return problems
    diff = entry.get("microbatch_max_abs_diff")
    if "microbatch_max_abs_diff" in entry and (
        not isinstance(diff, (int, float)) or diff < 0
    ):
        problems.append(
            f"{where}: microbatch_max_abs_diff must be a non-negative "
            f"number, got {diff!r}"
        )
    for key in ("admission_rejects", "evictions", "state_bytes_copied"):
        value = entry.get(key)
        if key in entry and (not isinstance(value, int) or value < 0):
            problems.append(
                f"{where}: {key} must be a non-negative integer, got {value!r}"
            )
    for key in ("state_arena", "tracing"):
        if key in entry and not isinstance(entry.get(key), bool):
            problems.append(
                f"{where}: {key} must be a boolean, got {entry.get(key)!r}"
            )
    return problems


def validate_serve_load(data: object) -> List[str]:
    """Problems with a ``BENCH_serve_load.json`` payload."""
    problems = _check_serve_entry(data, "top-level")
    if not isinstance(data, dict):
        return problems
    variants = data.get("variants")
    if not isinstance(variants, dict):
        problems.append("missing or non-object 'variants' mapping")
        return problems
    for name in SERVE_REQUIRED_VARIANTS:
        if name not in variants:
            problems.append(f"variants: missing required entry {name!r}")
        else:
            problems.extend(
                _check_serve_entry(variants[name], f"variants[{name!r}]")
            )
    arena = variants.get("state_arena")
    if isinstance(arena, dict) and arena.get("state_arena") is not True:
        problems.append("variants['state_arena']: entry must have state_arena=true")
    fallback = variants.get("gather_scatter")
    if isinstance(fallback, dict) and fallback.get("state_arena") is not False:
        problems.append(
            "variants['gather_scatter']: entry must have state_arena=false"
        )
    traced = variants.get("tracing_on")
    if isinstance(traced, dict) and traced.get("tracing") is not True:
        problems.append("variants['tracing_on']: entry must have tracing=true")
    untraced = variants.get("tracing_off")
    if isinstance(untraced, dict) and untraced.get("tracing") is not False:
        problems.append(
            "variants['tracing_off']: entry must have tracing=false"
        )
    for name, backend in (
        ("backend_reference", "reference"),
        ("backend_tuned", "tuned"),
        ("backend_torch", "torch"),  # optional; checked only when present
    ):
        entry = variants.get(name)
        if isinstance(entry, dict) and entry.get("backend") != backend:
            problems.append(
                f"variants[{name!r}]: entry must have backend={backend!r}"
            )
    return problems


# ---------------------------------------------------------------------------
# BENCH_shard_scaling.json
# ---------------------------------------------------------------------------

#: Keys of every shard-scaling entry (top level and each variant); also
#: the exact field list of ``ShardScalingResult`` — its ``to_json``
#: iterates this tuple.
SHARD_ENTRY_KEYS = (
    "shards",
    "concurrent_sessions",
    "steps_per_session",
    "max_batch",
    "requests_per_sec",
    "speedup_vs_one_shard",
    "session_server_requests_per_sec",
    "sharded_max_abs_diff",
    "sessions_migrated",
    "parallel",
    "placement",
    "dtype",
    "memory_size",
)

#: The scaling curve the artifact must carry: 1/2/4-shard clusters over
#: the identical workload (the 1-shard point doubles as the
#: no-regression bound against the single ``SessionServer``).
SHARD_REQUIRED_VARIANTS = ("shards_1", "shards_2", "shards_4")

_SHARD_POSITIVE = (
    "shards",
    "concurrent_sessions",
    "steps_per_session",
    "max_batch",
    "requests_per_sec",
    "speedup_vs_one_shard",
    "session_server_requests_per_sec",
)


def _check_shard_entry(entry: object, where: str) -> List[str]:
    problems = _check_entry(entry, where, SHARD_ENTRY_KEYS, _SHARD_POSITIVE)
    if not isinstance(entry, dict):
        return problems
    diff = entry.get("sharded_max_abs_diff")
    if "sharded_max_abs_diff" in entry and (
        not isinstance(diff, (int, float)) or diff < 0
    ):
        problems.append(
            f"{where}: sharded_max_abs_diff must be a non-negative number, "
            f"got {diff!r}"
        )
    migrated = entry.get("sessions_migrated")
    if "sessions_migrated" in entry and (
        not isinstance(migrated, int) or migrated < 0
    ):
        problems.append(
            f"{where}: sessions_migrated must be a non-negative integer, "
            f"got {migrated!r}"
        )
    if "parallel" in entry and not isinstance(entry.get("parallel"), bool):
        problems.append(
            f"{where}: parallel must be a boolean, got {entry.get('parallel')!r}"
        )
    if "placement" in entry and not isinstance(entry.get("placement"), str):
        problems.append(
            f"{where}: placement must be a string, got {entry.get('placement')!r}"
        )
    return problems


def validate_shard_scaling(data: object) -> List[str]:
    """Problems with a ``BENCH_shard_scaling.json`` payload."""
    problems = _check_shard_entry(data, "top-level")
    if not isinstance(data, dict):
        return problems
    variants = data.get("variants")
    if not isinstance(variants, dict):
        problems.append("missing or non-object 'variants' mapping")
        return problems
    for name in SHARD_REQUIRED_VARIANTS:
        if name not in variants:
            problems.append(f"variants: missing required entry {name!r}")
            continue
        problems.extend(_check_shard_entry(variants[name], f"variants[{name!r}]"))
        expected = int(name.rsplit("_", 1)[1])
        entry = variants[name]
        if isinstance(entry, dict) and entry.get("shards") != expected:
            problems.append(
                f"variants[{name!r}]: entry must have shards={expected}"
            )
    one = variants.get("shards_1")
    if isinstance(one, dict) and isinstance(
        one.get("speedup_vs_one_shard"), (int, float)
    ) and abs(one["speedup_vs_one_shard"] - 1.0) > 1e-9:
        problems.append(
            "variants['shards_1']: speedup_vs_one_shard must be 1.0 "
            "(it is the reference point)"
        )
    return problems


# ---------------------------------------------------------------------------
# BENCH_proc_serve.json
# ---------------------------------------------------------------------------

#: Keys of every process-serving entry (top level and each variant); also
#: the exact field list of ``ProcServeResult`` — its ``to_json`` iterates
#: this tuple.
PROC_ENTRY_KEYS = (
    "mode",
    "workers",
    "concurrent_sessions",
    "total_requests",
    "max_batch",
    "requests_per_sec",
    "speedup_vs_threads",
    "max_abs_diff_vs_solo",
    "requests_failed",
    "worker_restarts",
    "sessions_recovered",
    "checkpoints_taken",
    "checkpoint_interval",
    "p95_wait_ticks",
    "p99_wait_ticks",
    "dtype",
    "memory_size",
)

#: The topology comparison the artifact must carry, all on the identical
#: 64-session Zipf mix: thread-sharded cluster, process cluster, and the
#: process cluster under rolling SIGKILL restarts (the crash-recovery
#: cost, measured rather than asserted).
PROC_REQUIRED_VARIANTS = ("threads", "procs", "procs_restart")

#: Legal ``mode`` value per required variant name.
PROC_VARIANT_MODES = {
    "threads": "threads",
    "procs": "procs",
    "procs_restart": "procs_restart",
}

_PROC_POSITIVE = (
    "workers",
    "concurrent_sessions",
    "total_requests",
    "max_batch",
    "requests_per_sec",
    "speedup_vs_threads",
)


def _check_proc_entry(entry: object, where: str) -> List[str]:
    problems = _check_entry(entry, where, PROC_ENTRY_KEYS, _PROC_POSITIVE)
    if not isinstance(entry, dict):
        return problems
    mode = entry.get("mode")
    if "mode" in entry and mode not in PROC_VARIANT_MODES:
        problems.append(
            f"{where}: mode must be one of "
            f"{tuple(PROC_VARIANT_MODES)}, got {mode!r}"
        )
    diff = entry.get("max_abs_diff_vs_solo")
    if "max_abs_diff_vs_solo" in entry and (
        not isinstance(diff, (int, float)) or diff < 0
    ):
        problems.append(
            f"{where}: max_abs_diff_vs_solo must be a non-negative number, "
            f"got {diff!r}"
        )
    for key in (
        "requests_failed",
        "worker_restarts",
        "sessions_recovered",
        "checkpoints_taken",
    ):
        value = entry.get(key)
        if key in entry and (not isinstance(value, int) or value < 0):
            problems.append(
                f"{where}: {key} must be a non-negative integer, got {value!r}"
            )
    return problems


def validate_proc_serve(data: object) -> List[str]:
    """Problems with a ``BENCH_proc_serve.json`` payload."""
    problems = _check_proc_entry(data, "top-level")
    if not isinstance(data, dict):
        return problems
    variants = data.get("variants")
    if not isinstance(variants, dict):
        problems.append("missing or non-object 'variants' mapping")
        return problems
    for name in PROC_REQUIRED_VARIANTS:
        if name not in variants:
            problems.append(f"variants: missing required entry {name!r}")
            continue
        problems.extend(_check_proc_entry(variants[name], f"variants[{name!r}]"))
        entry = variants[name]
        if isinstance(entry, dict) and entry.get("mode") != PROC_VARIANT_MODES[name]:
            problems.append(
                f"variants[{name!r}]: entry must have "
                f"mode={PROC_VARIANT_MODES[name]!r}"
            )
    restart = variants.get("procs_restart")
    if isinstance(restart, dict):
        restarts = restart.get("worker_restarts")
        if isinstance(restarts, int) and restarts < 1:
            problems.append(
                "variants['procs_restart']: worker_restarts must be >= 1 "
                "(the rolling-restart drill must actually kill workers)"
            )
    threads = variants.get("threads")
    if isinstance(threads, dict):
        restarts = threads.get("worker_restarts")
        if isinstance(restarts, int) and restarts != 0:
            problems.append(
                "variants['threads']: worker_restarts must be 0 "
                "(threads have no worker processes to restart)"
            )
    return problems


# ---------------------------------------------------------------------------
# BENCH_sparse_access.json
# ---------------------------------------------------------------------------

#: Keys of every sparse-access entry (top level and each variant); also
#: the exact field list of ``SparseAccessResult`` — its ``to_json``
#: iterates this tuple.  Each entry is one (memory_size, access policy)
#: point: masked full-occupancy stepping throughput A/B'd against the
#: dense policy at the same N, plus the explicit accuracy deltas of a
#: same-seed sparse-vs-dense float64 trajectory.
SPARSE_ENTRY_KEYS = (
    "memory_size",
    "access_policy",
    "access_top_k",
    "batch_size",
    "steps",
    "steps_per_sec",
    "dense_steps_per_sec",
    "speedup_vs_dense",
    "max_abs_delta_vs_dense",
    "mean_abs_delta_vs_dense",
    "dtype",
)

#: The memory sizes the dense/sparse A/B must cover.
SPARSE_MEMORY_SIZES = (384, 1024, 2048)

#: Dense reference variants the artifact must carry; additionally, every
#: covered N needs at least one ``sparse_k<K>_n<N>`` variant (wildcard K:
#: the chosen top-K may evolve without a schema change).
SPARSE_REQUIRED_VARIANTS = tuple(
    f"dense_n{n}" for n in SPARSE_MEMORY_SIZES
)

_SPARSE_POSITIVE = (
    "memory_size",
    "batch_size",
    "steps",
    "steps_per_sec",
    "dense_steps_per_sec",
    "speedup_vs_dense",
)

_SPARSE_VARIANT_RE = re.compile(r"^(dense|sparse_k(\d+))_n(\d+)$")


def _check_sparse_entry(entry: object, where: str) -> List[str]:
    problems = _check_entry(entry, where, SPARSE_ENTRY_KEYS, _SPARSE_POSITIVE)
    if not isinstance(entry, dict):
        return problems
    policy = entry.get("access_policy")
    if "access_policy" in entry and policy not in ("dense", "sparse"):
        problems.append(
            f"{where}: access_policy must be 'dense' or 'sparse', "
            f"got {policy!r}"
        )
    top_k = entry.get("access_top_k")
    if "access_top_k" in entry and (
        not isinstance(top_k, int) or top_k < 0
    ):
        problems.append(
            f"{where}: access_top_k must be a non-negative integer, "
            f"got {top_k!r}"
        )
    if policy == "sparse" and isinstance(top_k, int) and top_k < 1:
        problems.append(
            f"{where}: sparse entries must have access_top_k >= 1"
        )
    if policy == "dense" and top_k not in (0, None):
        problems.append(
            f"{where}: dense entries must have access_top_k=0"
        )
    for key in ("max_abs_delta_vs_dense", "mean_abs_delta_vs_dense"):
        value = entry.get(key)
        if key in entry and (
            not isinstance(value, (int, float)) or value < 0
        ):
            problems.append(
                f"{where}: {key} must be a non-negative number, got {value!r}"
            )
    return problems


def validate_sparse_access(data: object) -> List[str]:
    """Problems with a ``BENCH_sparse_access.json`` payload."""
    problems = _check_sparse_entry(data, "top-level")
    if not isinstance(data, dict):
        return problems
    variants = data.get("variants")
    if not isinstance(variants, dict):
        problems.append("missing or non-object 'variants' mapping")
        return problems
    sparse_sizes = set()
    for name, entry in variants.items():
        match = _SPARSE_VARIANT_RE.match(name)
        if match is None:
            problems.append(
                f"variants[{name!r}]: name must look like 'dense_n<N>' "
                f"or 'sparse_k<K>_n<N>'"
            )
            continue
        problems.extend(_check_sparse_entry(entry, f"variants[{name!r}]"))
        if not isinstance(entry, dict):
            continue
        n = int(match.group(3))
        if entry.get("memory_size") != n:
            problems.append(
                f"variants[{name!r}]: entry must have memory_size={n}"
            )
        if match.group(2) is not None:  # sparse_k<K>_n<N>
            k = int(match.group(2))
            sparse_sizes.add(n)
            if entry.get("access_policy") != "sparse":
                problems.append(
                    f"variants[{name!r}]: entry must have access_policy='sparse'"
                )
            if entry.get("access_top_k") != k:
                problems.append(
                    f"variants[{name!r}]: entry must have access_top_k={k}"
                )
        else:
            if entry.get("access_policy") != "dense":
                problems.append(
                    f"variants[{name!r}]: entry must have access_policy='dense'"
                )
            speedup = entry.get("speedup_vs_dense")
            if isinstance(speedup, (int, float)) and abs(speedup - 1.0) > 1e-9:
                problems.append(
                    f"variants[{name!r}]: speedup_vs_dense must be 1.0 "
                    f"(it is the reference point)"
                )
    for name in SPARSE_REQUIRED_VARIANTS:
        if name not in variants:
            problems.append(f"variants: missing required entry {name!r}")
    for n in SPARSE_MEMORY_SIZES:
        if n not in sparse_sizes:
            problems.append(
                f"variants: missing a 'sparse_k*_n{n}' entry "
                f"(every covered N needs a sparse point)"
            )
    return problems


# ---------------------------------------------------------------------------
# Artifact registry
# ---------------------------------------------------------------------------

#: Repo-root artifact filename -> validator.  The CLI and CI dispatch
#: through this mapping, so registering a new ``BENCH_*.json`` here is
#: the one step that makes it validatable everywhere.
ARTIFACT_VALIDATORS: Dict[str, Callable[[object], List[str]]] = {
    "BENCH_batched_throughput.json": validate_trajectory,
    "BENCH_serve_load.json": validate_serve_load,
    "BENCH_shard_scaling.json": validate_shard_scaling,
    "BENCH_proc_serve.json": validate_proc_serve,
    "BENCH_sparse_access.json": validate_sparse_access,
}


def validate_artifact(filename: str, data: object) -> List[str]:
    """Validate a payload against the schema registered for ``filename``."""
    validator = ARTIFACT_VALIDATORS.get(filename)
    if validator is None:
        return [
            f"{filename}: no schema registered "
            f"(known: {sorted(ARTIFACT_VALIDATORS)})"
        ]
    return validator(data)


__all__ = [
    "merge_artifact",
    "ENTRY_KEYS",
    "REQUIRED_VARIANTS",
    "SERVE_ENTRY_KEYS",
    "SERVE_REQUIRED_VARIANTS",
    "SHARD_ENTRY_KEYS",
    "SHARD_REQUIRED_VARIANTS",
    "PROC_ENTRY_KEYS",
    "PROC_REQUIRED_VARIANTS",
    "SPARSE_ENTRY_KEYS",
    "SPARSE_MEMORY_SIZES",
    "SPARSE_REQUIRED_VARIANTS",
    "ARTIFACT_VALIDATORS",
    "validate_trajectory",
    "validate_serve_load",
    "validate_shard_scaling",
    "validate_proc_serve",
    "validate_sparse_access",
    "validate_artifact",
]
