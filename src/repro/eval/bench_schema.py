"""Schema contracts for the repo-root ``BENCH_*.json`` trajectory artifacts.

Perf PRs extend/update these artifacts rather than inventing new formats
(ROADMAP convention); this module is the single source of truth for what
each file must contain, consumed by:

* the result dataclasses (:class:`repro.eval.runners.BatchedThroughput`,
  :class:`repro.serve.loadgen.ServeLoadResult`) — their ``to_json``
  methods are generated from the key tuples here, so the writers cannot
  drift from the validators;
* the bench harnesses (``benchmarks/bench_batched_throughput.py``,
  ``benchmarks/bench_serve_load.py``) and the tier-1 artifact tests;
* the CI CLI ``benchmarks/validate_bench_schema.py``, which validates any
  number of artifacts by dispatching on filename through
  :data:`ARTIFACT_VALIDATORS`.

``BENCH_batched_throughput.json``: one base
:class:`~repro.eval.runners.BatchedThroughput` entry (flat keys, B=16
trajectory config) plus a ``variants`` mapping carrying the sort-enabled
and dtype A/B entries.  ``BENCH_serve_load.json``: one flat
:class:`~repro.serve.loadgen.ServeLoadResult` entry.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.utils.validation import DTYPE_CHOICES

# ---------------------------------------------------------------------------
# BENCH_batched_throughput.json
# ---------------------------------------------------------------------------

#: Keys every trajectory entry (top level and each variant) must carry.
#: Also the exact field list of ``BatchedThroughput`` — its ``to_json``
#: iterates this tuple.
ENTRY_KEYS = (
    "batch_size",
    "steps_per_sec",
    "speedup_vs_seq",
    "seq_len",
    "sequential_steps_per_sec",
    "batch1_max_abs_diff",
    "dtype",
    "memory_size",
    "two_stage_sort",
    "skim_fraction",
)

#: Variant entries the artifact must include: the sort-enabled hot paths
#: and the float64/float32 A/B pair at memory_size >= 256.
REQUIRED_VARIANTS = ("two_stage_sort", "skim", "float64_n256", "float32_n256")


def _check_entry(
    entry: object,
    where: str,
    required_keys,
    positive_keys,
) -> List[str]:
    problems: List[str] = []
    if not isinstance(entry, dict):
        return [f"{where}: expected an object, got {type(entry).__name__}"]
    for key in required_keys:
        if key not in entry:
            problems.append(f"{where}: missing key {key!r}")
    dtype = entry.get("dtype")
    if "dtype" in entry and dtype not in DTYPE_CHOICES:
        problems.append(
            f"{where}: dtype must be one of {DTYPE_CHOICES}, got {dtype!r}"
        )
    for key in positive_keys:
        value = entry.get(key)
        if key in entry and (not isinstance(value, (int, float)) or value <= 0):
            problems.append(f"{where}: {key} must be a positive number, got {value!r}")
    return problems


_THROUGHPUT_POSITIVE = ("steps_per_sec", "speedup_vs_seq", "sequential_steps_per_sec")


def validate_trajectory(data: object) -> List[str]:
    """Problems with a ``BENCH_batched_throughput.json`` payload."""
    problems = _check_entry(data, "top-level", ENTRY_KEYS, _THROUGHPUT_POSITIVE)
    if not isinstance(data, dict):
        return problems
    variants = data.get("variants")
    if not isinstance(variants, dict):
        problems.append("missing or non-object 'variants' mapping")
        return problems
    for name in REQUIRED_VARIANTS:
        if name not in variants:
            problems.append(f"variants: missing required entry {name!r}")
        else:
            problems.extend(_check_entry(
                variants[name], f"variants[{name!r}]",
                ENTRY_KEYS, _THROUGHPUT_POSITIVE,
            ))
    sort_variant = variants.get("two_stage_sort")
    if isinstance(sort_variant, dict) and sort_variant.get("two_stage_sort") is not True:
        problems.append("variants['two_stage_sort']: entry must have two_stage_sort=true")
    f32 = variants.get("float32_n256")
    if isinstance(f32, dict):
        if f32.get("dtype") != "float32":
            problems.append("variants['float32_n256']: entry must have dtype='float32'")
        if isinstance(f32.get("memory_size"), int) and f32["memory_size"] < 256:
            problems.append("variants['float32_n256']: memory_size must be >= 256")
    return problems


# ---------------------------------------------------------------------------
# BENCH_serve_load.json
# ---------------------------------------------------------------------------

#: Keys of the serve-load artifact; also the exact field list of
#: ``ServeLoadResult`` — its ``to_json`` iterates this tuple.
SERVE_ENTRY_KEYS = (
    "concurrent_sessions",
    "steps_per_session",
    "max_batch",
    "max_wait_ticks",
    "requests_per_sec",
    "sequential_requests_per_sec",
    "speedup_vs_sequential",
    "microbatch_max_abs_diff",
    "p50_wait_ticks",
    "p95_wait_ticks",
    "mean_batch_occupancy",
    "admission_rejects",
    "evictions",
    "dtype",
    "memory_size",
)

_SERVE_POSITIVE = (
    "concurrent_sessions",
    "steps_per_session",
    "max_batch",
    "requests_per_sec",
    "sequential_requests_per_sec",
    "speedup_vs_sequential",
    "mean_batch_occupancy",
)


def validate_serve_load(data: object) -> List[str]:
    """Problems with a ``BENCH_serve_load.json`` payload."""
    problems = _check_entry(data, "top-level", SERVE_ENTRY_KEYS, _SERVE_POSITIVE)
    if not isinstance(data, dict):
        return problems
    diff = data.get("microbatch_max_abs_diff")
    if "microbatch_max_abs_diff" in data and (
        not isinstance(diff, (int, float)) or diff < 0
    ):
        problems.append(
            f"top-level: microbatch_max_abs_diff must be a non-negative "
            f"number, got {diff!r}"
        )
    for key in ("admission_rejects", "evictions"):
        value = data.get(key)
        if key in data and (not isinstance(value, int) or value < 0):
            problems.append(
                f"top-level: {key} must be a non-negative integer, got {value!r}"
            )
    return problems


# ---------------------------------------------------------------------------
# Artifact registry
# ---------------------------------------------------------------------------

#: Repo-root artifact filename -> validator.  The CLI and CI dispatch
#: through this mapping, so registering a new ``BENCH_*.json`` here is
#: the one step that makes it validatable everywhere.
ARTIFACT_VALIDATORS: Dict[str, Callable[[object], List[str]]] = {
    "BENCH_batched_throughput.json": validate_trajectory,
    "BENCH_serve_load.json": validate_serve_load,
}


def validate_artifact(filename: str, data: object) -> List[str]:
    """Validate a payload against the schema registered for ``filename``."""
    validator = ARTIFACT_VALIDATORS.get(filename)
    if validator is None:
        return [
            f"{filename}: no schema registered "
            f"(known: {sorted(ARTIFACT_VALIDATORS)})"
        ]
    return validator(data)


__all__ = [
    "ENTRY_KEYS",
    "REQUIRED_VARIANTS",
    "SERVE_ENTRY_KEYS",
    "ARTIFACT_VALIDATORS",
    "validate_trajectory",
    "validate_serve_load",
    "validate_artifact",
]
