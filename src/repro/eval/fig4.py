"""Figure 4 — Kernel runtime breakdown on CPU/GPU for the bAbI workload.

The CPU column is *measured live* on this machine: the instrumented numpy
DNC (paper configuration ``N x W = 1024 x 64``, LSTM 256) runs synthetic
bAbI episodes and reports per-category wall-clock shares.  The GPU column
is the paper's published breakdown (no GPU is available offline; see
DESIGN.md substitutions).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.dnc.instrumentation import KernelCategory
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig
from repro.eval.runners import ExperimentResult, register
from repro.tasks.babi import BabiTaskSuite, encode_example

#: Paper Figure 4 category shares (percent).
PAPER_GPU_PERCENT: Dict[KernelCategory, float] = {
    KernelCategory.HIST_WRITE_WEIGHTING: 72.0,
    KernelCategory.HIST_READ_WEIGHTING: 9.0,
    KernelCategory.CONTENT_WEIGHTING: 12.0,
    KernelCategory.MEMORY_ACCESS: 4.0,
    KernelCategory.NN_LSTM: 3.0,
}
PAPER_CPU_PERCENT: Dict[KernelCategory, float] = {
    KernelCategory.HIST_WRITE_WEIGHTING: 11.0,
    KernelCategory.HIST_READ_WEIGHTING: 10.0,
    KernelCategory.CONTENT_WEIGHTING: 22.0,
    KernelCategory.MEMORY_ACCESS: 53.0,
    KernelCategory.NN_LSTM: 4.0,
}
PAPER_GPU_MS_PER_TEST = 5.16
PAPER_CPU_MS_PER_TEST = 10.94


@register("fig4")
def run(
    num_episodes: int = 3,
    memory_size: int = 1024,
    word_size: int = 64,
    hidden_size: int = 256,
    seed: int = 0,
) -> ExperimentResult:
    """Measure the CPU kernel breakdown on synthetic bAbI episodes."""
    suite = BabiTaskSuite(rng=seed)
    vocab = suite.vocabulary()
    config = NumpyDNCConfig(
        input_size=len(vocab),
        output_size=len(vocab),
        memory_size=memory_size,
        word_size=word_size,
        num_reads=4,
        hidden_size=hidden_size,
    )
    model = NumpyDNC(config, rng=seed)

    total_steps = 0
    for episode in range(num_episodes):
        task_id = (episode % 20) + 1
        example = suite.generate(task_id, 1)[0]
        inputs, _ = encode_example(example, vocab)
        model.run(inputs)
        total_steps += inputs.shape[0]

    fractions = model.recorder.category_fractions("seconds")
    seconds = model.recorder.total("seconds")
    ms_per_test = seconds / num_episodes * 1e3

    rows = []
    for cat in KernelCategory:
        rows.append([
            cat.value,
            f"{100.0 * fractions[cat]:.1f}%",
            f"{PAPER_CPU_PERCENT[cat]:.0f}%",
            f"{PAPER_GPU_PERCENT[cat]:.0f}%",
        ])
    memory_unit_share = 100.0 * (1.0 - fractions[KernelCategory.NN_LSTM])
    notes = [
        f"measured {ms_per_test:.2f} ms/test over {num_episodes} episodes "
        f"({total_steps} timesteps); paper CPU {PAPER_CPU_MS_PER_TEST} "
        f"ms/test, GPU {PAPER_GPU_MS_PER_TEST} ms/test",
        f"memory unit share of runtime: {memory_unit_share:.1f}% measured "
        "(paper: >95% on both CPU and GPU)",
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Kernel runtime breakdown (bAbI, N x W = 1024 x 64, LSTM 256)",
        headers=["category", "measured CPU", "paper CPU", "paper GPU"],
        rows=rows,
        notes=notes,
    )
