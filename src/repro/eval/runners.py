"""Experiment registry, result container, and throughput measurement."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.eval.bench_schema import ENTRY_KEYS, SPARSE_ENTRY_KEYS
from repro.utils.formatting import format_table


@dataclass
class ExperimentResult:
    """One reproduced table/figure.

    ``headers``/``rows`` hold the tabular data; ``notes`` records
    paper-vs-measured commentary that EXPERIMENTS.md consumes.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        text = format_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text


#: Registry of experiment runners keyed by experiment id.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering a runner under ``experiment_id``."""

    def wrap(fn):
        EXPERIMENTS[experiment_id] = fn
        return fn

    return wrap


# ---------------------------------------------------------------------------
# Batched-engine throughput
# ---------------------------------------------------------------------------


@dataclass
class BatchedThroughput:
    """Measured batched-vs-sequential engine throughput.

    ``steps_per_sec`` counts *sequence timesteps* processed per wall
    second: a batched run advancing ``B`` sequences for ``T`` steps
    performs ``B * T`` steps, the same work as ``B`` sequential
    :meth:`~repro.core.engine.TiledEngine.run` calls.  The trailing
    fields record the engine configuration the measurement ran under so
    trajectory entries are self-describing.
    """

    batch_size: int
    seq_len: int
    steps_per_sec: float  # batched path
    sequential_steps_per_sec: float
    speedup_vs_seq: float
    batch1_max_abs_diff: float  # run_batch(B=1) vs run, same inputs
    dtype: str = "float64"
    memory_size: int = 0
    two_stage_sort: bool = False
    skim_fraction: float = 0.0
    fused_write_linkage: bool = True
    #: The engine's partial-occupancy masked-step threshold (0.0 forces
    #: the dense-capacity in-place path, 1.0 forces the compact gather
    #: path) — what the masked-occupancy A/B variants toggle.
    masked_dense_min_occupancy: float = 0.75
    #: Whether the backend was allowed to fuse the read phase's
    #: forward/backward linkage sweeps into one blocked pass — what the
    #: ``read_fused``/``read_unfused`` A/B variants toggle.
    read_phase_fused: bool = True
    #: Kernel backend the measurement ran under (see
    #: :mod:`repro.core.backend`) — what the backend A/B variants toggle.
    backend: str = "reference"

    def to_json(self) -> Dict[str, object]:
        """One ``BENCH_batched_throughput.json`` trajectory entry.

        Generated from :data:`repro.eval.bench_schema.ENTRY_KEYS` so the
        writer and the validator share one key list by construction.
        """
        return {key: getattr(self, key) for key in ENTRY_KEYS}


def measure_batched_throughput(
    config=None,
    batch_size: int = 16,
    seq_len: int = 16,
    repeats: int = 3,
    rng: int = 0,
) -> BatchedThroughput:
    """Time ``TiledEngine.run_batch`` against sequential ``run`` calls.

    Both paths process the identical ``(T, B, input)`` workload; the best
    (minimum) wall time over ``repeats`` rounds is used for each.  Also
    measures the batch-of-1 equivalence gap as evidence the batched hot
    path computes the same function.

    The engine's :class:`~repro.core.engine.TrafficLog` is cleared at
    every phase boundary (after warm-up, between timing repeats, and
    after the equivalence check), so timing repeats never pay for an
    ever-growing event list and the engine is handed back with an empty
    log.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        # Small enough that per-step engine overhead (the thing batching
        # amortizes) dominates and the measured ratio stays stable on
        # loaded machines; larger configs shift toward memory bandwidth.
        config = HiMAConfig(
            memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
            two_stage_sort=False,
        )
    engine = TiledEngine(config, rng=rng)
    gen = np.random.default_rng(rng)
    inputs = gen.standard_normal(
        (seq_len, batch_size, engine.reference.config.input_size)
    ).astype(config.np_dtype)

    # Warm up both paths (BLAS thread pools, allocator).
    engine.run_batch(inputs[:2])
    engine.run(inputs[:2, 0])
    engine.traffic.clear()

    batched_time = float("inf")
    sequential_time = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        engine.run_batch(inputs)
        batched_time = min(batched_time, time.perf_counter() - start)
        engine.traffic.clear()

        start = time.perf_counter()
        for i in range(batch_size):
            engine.run(inputs[:, i])
        sequential_time = min(sequential_time, time.perf_counter() - start)
        engine.traffic.clear()

    total_steps = seq_len * batch_size
    batch1 = engine.run_batch(inputs[:, :1])
    single = engine.run(inputs[:, 0])
    diff = float(np.max(np.abs(batch1[:, 0] - single)))
    engine.traffic.clear()

    return BatchedThroughput(
        batch_size=batch_size,
        seq_len=seq_len,
        steps_per_sec=total_steps / batched_time,
        sequential_steps_per_sec=total_steps / sequential_time,
        speedup_vs_seq=sequential_time / batched_time,
        batch1_max_abs_diff=diff,
        dtype=config.dtype,
        memory_size=config.memory_size,
        two_stage_sort=config.two_stage_sort,
        skim_fraction=config.skim_fraction,
        fused_write_linkage=config.fused_write_linkage,
        masked_dense_min_occupancy=config.masked_dense_min_occupancy,
        read_phase_fused=config.read_phase_fused,
        backend=config.backend,
    )


def measure_backend_ab(
    config=None,
    backends: Sequence[str] = ("reference", "tuned"),
    batch_size: int = 16,
    seq_len: int = 8,
    repeats: int = 9,
    rng: int = 0,
    variants: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, BatchedThroughput]:
    """Interleaved A/B of kernel-backend variants on one batched workload.

    Each contestant is a *variant*: a label mapped to the
    ``config.with_features(...)`` overrides that define it.  By default
    the variants are one plain entry per name in ``backends``
    (``{name: {"backend": name}}``), which keeps the classic
    backend-vs-backend A/B; pass ``variants`` explicitly to race other
    feature axes on the same workload — e.g. the tuned backend with and
    without the fused read-phase kernel::

        measure_backend_ab(variants={
            "reference": {"backend": "reference"},
            "read_unfused": {"backend": "tuned", "read_phase_fused": False},
            "read_fused": {"backend": "tuned"},
        })

    One engine per variant, all fed the identical ``(T, B, input)``
    inputs.  Timing rounds are interleaved and the visit order is
    re-shuffled every round from a seeded generator (the ``variants``
    convention, hardened): timing one variant to completion and then
    the next — or visiting them in any *fixed* alternation — lets
    allocator/cache warm-up and background-load drift masquerade as a
    variant difference, which at the >=1.25x floor this A/B gates
    would be a real hazard.  Each variant keeps its best (minimum)
    round, the standard noise-robust estimator on a shared machine.

    The sequential baseline shared by every entry runs the *first*
    variant (the control) on a **separate engine instance**, so
    ``speedup_vs_seq`` ratios are comparable across entries without the
    baseline's unbatched rounds re-warming the control contestant's
    buffers between timed rounds (which would systematically favour the
    control in the A/B itself).  Each variant's ``batch1_max_abs_diff``
    compares its batch-of-1 run against that baseline engine's unbatched
    run — expected exactly 0.0 for ``reference``, and bounded by the
    dtype's ``VERIFY_TOLERANCES`` entry for ``tuned`` (single-rounding
    BLAS rank-1 linkage accumulation) and ``torch``.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        config = HiMAConfig(
            memory_size=256, word_size=32, num_reads=2, num_tiles=8,
            hidden_size=64, two_stage_sort=False,
        )
    if variants is None:
        variants = {name: {"backend": name} for name in backends}
    if not variants:
        raise ValueError("measure_backend_ab needs at least one variant")
    configs = {
        name: config.with_features(**features)
        for name, features in variants.items()
    }
    engines = {
        name: TiledEngine(configs[name], rng=rng) for name in variants
    }
    control = next(iter(variants))
    # The sequential baseline gets its own engine (control variant) so
    # its unbatched rounds never touch — and never re-warm — the
    # control contestant's scratch between timed batched rounds.
    seq_engine = TiledEngine(configs[control], rng=rng)
    gen = np.random.default_rng(rng)
    inputs = gen.standard_normal(
        (seq_len, batch_size, seq_engine.reference.config.input_size)
    ).astype(config.np_dtype)

    # Full-workload warm-up: steady-state scratch, allocator arenas and
    # caches all settle before any timed round.
    for engine in engines.values():
        engine.run_batch(inputs)
        engine.traffic.clear()
    seq_engine.run(inputs[:2, 0])
    seq_engine.traffic.clear()

    best = {name: float("inf") for name in variants}
    sequential_time = float("inf")
    names = list(variants) + ["__sequential__"]
    order_rng = np.random.default_rng(rng + 0x5EED)
    for round_index in range(max(1, repeats)):
        order = list(names)
        order_rng.shuffle(order)
        for name in order:
            start = time.perf_counter()
            if name == "__sequential__":
                for i in range(batch_size):
                    seq_engine.run(inputs[:, i])
                sequential_time = min(
                    sequential_time, time.perf_counter() - start
                )
                seq_engine.traffic.clear()
            else:
                engines[name].run_batch(inputs)
                best[name] = min(best[name], time.perf_counter() - start)
                engines[name].traffic.clear()

    single = seq_engine.run(inputs[:, 0])
    seq_engine.traffic.clear()
    total_steps = seq_len * batch_size
    results: Dict[str, BatchedThroughput] = {}
    for name in variants:
        cfg = configs[name]
        batch1 = engines[name].run_batch(inputs[:, :1])
        engines[name].traffic.clear()
        results[name] = BatchedThroughput(
            batch_size=batch_size,
            seq_len=seq_len,
            steps_per_sec=total_steps / best[name],
            sequential_steps_per_sec=total_steps / sequential_time,
            speedup_vs_seq=sequential_time / best[name],
            batch1_max_abs_diff=float(np.max(np.abs(batch1[:, 0] - single))),
            dtype=cfg.dtype,
            memory_size=cfg.memory_size,
            two_stage_sort=cfg.two_stage_sort,
            skim_fraction=cfg.skim_fraction,
            fused_write_linkage=cfg.fused_write_linkage,
            masked_dense_min_occupancy=cfg.masked_dense_min_occupancy,
            read_phase_fused=cfg.read_phase_fused,
            backend=cfg.backend,
        )
    return results


def measure_masked_occupancy(
    config=None,
    capacity: int = 16,
    active: int = 8,
    seq_len: int = 8,
    repeats: int = 3,
    rng: int = 0,
) -> BatchedThroughput:
    """Time arena-style masked stepping at partial occupancy.

    ``active`` of ``capacity`` resident slots advance each tick through
    :meth:`TiledEngine.step(active=...)` — the serving layer's
    steady-state shape whenever the arena is not full.  The config's
    ``masked_dense_min_occupancy`` decides the path under test (0.0
    forces the dense-capacity in-place write phase, 1.0 forces the
    compact gather/scatter), which is exactly the A/B the occupancy
    variants of ``BENCH_batched_throughput.json`` record.

    ``steps_per_sec`` counts *active-slot* steps per wall second; the
    sequential baseline runs the same ``active`` sessions one at a time
    through the unbatched engine, and ``batch1_max_abs_diff`` compares
    slot 0's masked trajectory against its solo run.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        config = HiMAConfig(
            memory_size=256, word_size=32, num_reads=1, num_tiles=8,
            hidden_size=64, two_stage_sort=False,
        )
    if not 0 < active < capacity:
        raise ValueError(
            f"active must be in (0, capacity), got {active} of {capacity}"
        )
    engine = TiledEngine(config, rng=rng)
    gen = np.random.default_rng(rng)
    inputs = gen.standard_normal(
        (seq_len, capacity, engine.reference.config.input_size)
    ).astype(config.np_dtype)
    idx = np.arange(active)

    def serve_masked():
        state = engine.initial_state(batch_size=capacity)
        outputs = np.empty(
            (seq_len, capacity, engine.reference.config.output_size),
            dtype=config.np_dtype,
        )
        for t in range(seq_len):
            outputs[t], state = engine.step(inputs[t], state, active=idx)
        return outputs

    # Warm up both paths, then time (best of repeats), clearing the
    # cumulative traffic log at every phase boundary.
    masked_out = serve_masked()
    engine.run(inputs[:2, 0])
    engine.traffic.clear()

    masked_time = float("inf")
    sequential_time = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        serve_masked()
        masked_time = min(masked_time, time.perf_counter() - start)
        engine.traffic.clear()

        start = time.perf_counter()
        for i in range(active):
            engine.run(inputs[:, i])
        sequential_time = min(sequential_time, time.perf_counter() - start)
        engine.traffic.clear()

    solo = engine.run(inputs[:, 0])
    diff = float(np.max(np.abs(masked_out[:, 0] - solo)))
    engine.traffic.clear()

    total_steps = seq_len * active
    return BatchedThroughput(
        batch_size=capacity,
        seq_len=seq_len,
        steps_per_sec=total_steps / masked_time,
        sequential_steps_per_sec=total_steps / sequential_time,
        speedup_vs_seq=sequential_time / masked_time,
        batch1_max_abs_diff=diff,
        dtype=config.dtype,
        memory_size=config.memory_size,
        two_stage_sort=config.two_stage_sort,
        skim_fraction=config.skim_fraction,
        fused_write_linkage=config.fused_write_linkage,
        masked_dense_min_occupancy=config.masked_dense_min_occupancy,
        read_phase_fused=config.read_phase_fused,
        backend=config.backend,
    )


# ---------------------------------------------------------------------------
# Sparse-access A/B (dense vs top-K content addressing)
# ---------------------------------------------------------------------------


@dataclass
class SparseAccessResult:
    """One dense-vs-sparse access-policy measurement at a fixed ``N``.

    ``steps_per_sec`` counts masked full-occupancy engine steps per wall
    second for *this* variant; ``dense_steps_per_sec`` is the dense
    baseline measured at the same ``memory_size`` so
    ``speedup_vs_dense`` is self-describing (1.0 for the dense reference
    entry itself).  The ``*_delta_vs_dense`` fields report the output
    divergence of an unbatched same-seed, same-input trajectory stepped
    under this policy against the dense float64 trajectory — the
    accuracy cost of truncating content addressing to K slots (0.0 for
    the dense entry).
    """

    memory_size: int
    access_policy: str
    access_top_k: int
    batch_size: int
    steps: int
    steps_per_sec: float
    dense_steps_per_sec: float
    speedup_vs_dense: float
    max_abs_delta_vs_dense: float
    mean_abs_delta_vs_dense: float
    dtype: str = "float64"

    def to_json(self) -> Dict[str, object]:
        """One ``BENCH_sparse_access.json`` variant entry.

        Generated from
        :data:`repro.eval.bench_schema.SPARSE_ENTRY_KEYS` so the writer
        and the validator share one key list by construction.
        """
        return {key: getattr(self, key) for key in SPARSE_ENTRY_KEYS}


def measure_sparse_access(
    memory_size: int,
    top_ks: Sequence[int] = (64,),
    batch_size: int = 4,
    steps: int = 4,
    repeats: int = 2,
    accuracy_steps: int = 12,
    rng: int = 0,
    num_tiles: int = 8,
    backend: Optional[str] = None,
) -> Dict[str, "SparseAccessResult"]:
    """A/B dense vs sparse top-K access at one memory size.

    Returns a variants map — ``dense_n{N}`` plus one ``sparse_k{K}_n{N}``
    per requested K — matching the ``BENCH_sparse_access.json`` naming
    scheme, so callers can merge the result straight into the artifact.
    ``backend`` selects the kernel backend both sides run under (the
    dense baseline and every sparse K), so a tuned-backend lane measures
    the same dense-vs-sparse ratio with the fused kernels engaged; the
    default (``None``) keeps the config's own default, which honours
    ``REPRO_BACKEND`` — how the CI sparse-tuned bench lane runs.

    Timing exercises the serving hot path: masked stepping at full
    occupancy (``TiledEngine.step(active=arange(B))``), warm-up first,
    best-of-``repeats`` wall time, with the cumulative
    :class:`~repro.core.engine.TrafficLog` cleared at every phase
    boundary.  Accuracy deltas come from a separate unbatched
    ``accuracy_steps``-long trajectory: both engines are seeded
    identically (same controller/interface weights) and fed the same
    inputs, so any divergence is attributable to the access policy
    alone.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    backend_kwargs = {} if backend is None else {"backend": backend}

    def make_config(policy: str, top_k: int) -> "HiMAConfig":
        return HiMAConfig(
            memory_size=memory_size, word_size=16, num_reads=1,
            num_tiles=num_tiles, hidden_size=32, two_stage_sort=False,
            access_policy=policy, access_top_k=top_k, **backend_kwargs,
        )

    def time_masked(config) -> float:
        """Best-of-repeats full-occupancy masked steps per second."""
        engine = TiledEngine(config, rng=rng)
        gen = np.random.default_rng(rng)
        inputs = gen.standard_normal(
            (steps, batch_size, engine.reference.config.input_size)
        ).astype(config.np_dtype)
        idx = np.arange(batch_size)
        state = engine.initial_state(batch_size=batch_size)
        for t in range(min(2, steps)):  # warm-up: allocator + BLAS pools
            _, state = engine.step(inputs[t], state, active=idx)
        engine.traffic.clear()
        best = float("inf")
        for _ in range(max(1, repeats)):
            state = engine.initial_state(batch_size=batch_size)
            start = time.perf_counter()
            for t in range(steps):
                _, state = engine.step(inputs[t], state, active=idx)
            best = min(best, time.perf_counter() - start)
            engine.traffic.clear()
        return (steps * batch_size) / best

    def solo_trajectory(config) -> np.ndarray:
        engine = TiledEngine(config, rng=rng)
        gen = np.random.default_rng(rng + 1)
        inputs = gen.standard_normal(
            (accuracy_steps, engine.reference.config.input_size)
        ).astype(config.np_dtype)
        out = engine.run(inputs)
        engine.traffic.clear()
        return out

    dense_config = make_config("dense", 0)
    dense_sps = time_masked(dense_config)
    dense_out = solo_trajectory(dense_config)

    results: Dict[str, SparseAccessResult] = {}
    results[f"dense_n{memory_size}"] = SparseAccessResult(
        memory_size=memory_size,
        access_policy="dense",
        access_top_k=0,
        batch_size=batch_size,
        steps=steps,
        steps_per_sec=dense_sps,
        dense_steps_per_sec=dense_sps,
        speedup_vs_dense=1.0,
        max_abs_delta_vs_dense=0.0,
        mean_abs_delta_vs_dense=0.0,
        dtype=dense_config.dtype,
    )
    for top_k in top_ks:
        sparse_config = make_config("sparse", int(top_k))
        sparse_sps = time_masked(sparse_config)
        sparse_out = solo_trajectory(sparse_config)
        delta = np.abs(sparse_out - dense_out)
        results[f"sparse_k{int(top_k)}_n{memory_size}"] = SparseAccessResult(
            memory_size=memory_size,
            access_policy="sparse",
            access_top_k=int(top_k),
            batch_size=batch_size,
            steps=steps,
            steps_per_sec=sparse_sps,
            dense_steps_per_sec=dense_sps,
            speedup_vs_dense=sparse_sps / dense_sps,
            max_abs_delta_vs_dense=float(np.max(delta)),
            mean_abs_delta_vs_dense=float(np.mean(delta)),
            dtype=sparse_config.dtype,
        )
    return results


@register("batched_throughput")
def batched_throughput_experiment(
    config=None, batch_sizes: Sequence[int] = (4, 16), seq_len: int = 16
) -> ExperimentResult:
    """Batched-engine scaling table (not a paper figure; repo capability)."""
    rows = []
    notes = []
    for batch in batch_sizes:
        m = measure_batched_throughput(
            config, batch_size=batch, seq_len=seq_len
        )
        rows.append([
            batch,
            f"{m.steps_per_sec:,.0f}",
            f"{m.sequential_steps_per_sec:,.0f}",
            f"{m.speedup_vs_seq:.2f}x",
        ])
        notes.append(
            f"B={batch}: batch-of-1 max abs diff {m.batch1_max_abs_diff:.2e}"
        )
    return ExperimentResult(
        experiment_id="batched_throughput",
        title="Batched engine throughput (run_batch vs sequential run)",
        headers=["batch", "batched steps/s", "sequential steps/s", "speedup"],
        rows=rows,
        notes=notes,
    )


__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "register",
    "BatchedThroughput",
    "measure_batched_throughput",
    "measure_backend_ab",
    "measure_masked_occupancy",
    "SparseAccessResult",
    "measure_sparse_access",
]
