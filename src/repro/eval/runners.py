"""Experiment registry and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.utils.formatting import format_table


@dataclass
class ExperimentResult:
    """One reproduced table/figure.

    ``headers``/``rows`` hold the tabular data; ``notes`` records
    paper-vs-measured commentary that EXPERIMENTS.md consumes.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        text = format_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text


#: Registry of experiment runners keyed by experiment id.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering a runner under ``experiment_id``."""

    def wrap(fn):
        EXPERIMENTS[experiment_id] = fn
        return fn

    return wrap


__all__ = ["ExperimentResult", "EXPERIMENTS", "register"]
