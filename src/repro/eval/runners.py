"""Experiment registry, result container, and throughput measurement."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.eval.bench_schema import ENTRY_KEYS
from repro.utils.formatting import format_table


@dataclass
class ExperimentResult:
    """One reproduced table/figure.

    ``headers``/``rows`` hold the tabular data; ``notes`` records
    paper-vs-measured commentary that EXPERIMENTS.md consumes.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        text = format_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text


#: Registry of experiment runners keyed by experiment id.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering a runner under ``experiment_id``."""

    def wrap(fn):
        EXPERIMENTS[experiment_id] = fn
        return fn

    return wrap


# ---------------------------------------------------------------------------
# Batched-engine throughput
# ---------------------------------------------------------------------------


@dataclass
class BatchedThroughput:
    """Measured batched-vs-sequential engine throughput.

    ``steps_per_sec`` counts *sequence timesteps* processed per wall
    second: a batched run advancing ``B`` sequences for ``T`` steps
    performs ``B * T`` steps, the same work as ``B`` sequential
    :meth:`~repro.core.engine.TiledEngine.run` calls.  The trailing
    fields record the engine configuration the measurement ran under so
    trajectory entries are self-describing.
    """

    batch_size: int
    seq_len: int
    steps_per_sec: float  # batched path
    sequential_steps_per_sec: float
    speedup_vs_seq: float
    batch1_max_abs_diff: float  # run_batch(B=1) vs run, same inputs
    dtype: str = "float64"
    memory_size: int = 0
    two_stage_sort: bool = False
    skim_fraction: float = 0.0
    fused_write_linkage: bool = True
    #: The engine's partial-occupancy masked-step threshold (0.0 forces
    #: the dense-capacity in-place path, 1.0 forces the compact gather
    #: path) — what the masked-occupancy A/B variants toggle.
    masked_dense_min_occupancy: float = 0.75

    def to_json(self) -> Dict[str, object]:
        """One ``BENCH_batched_throughput.json`` trajectory entry.

        Generated from :data:`repro.eval.bench_schema.ENTRY_KEYS` so the
        writer and the validator share one key list by construction.
        """
        return {key: getattr(self, key) for key in ENTRY_KEYS}


def measure_batched_throughput(
    config=None,
    batch_size: int = 16,
    seq_len: int = 16,
    repeats: int = 3,
    rng: int = 0,
) -> BatchedThroughput:
    """Time ``TiledEngine.run_batch`` against sequential ``run`` calls.

    Both paths process the identical ``(T, B, input)`` workload; the best
    (minimum) wall time over ``repeats`` rounds is used for each.  Also
    measures the batch-of-1 equivalence gap as evidence the batched hot
    path computes the same function.

    The engine's :class:`~repro.core.engine.TrafficLog` is cleared at
    every phase boundary (after warm-up, between timing repeats, and
    after the equivalence check), so timing repeats never pay for an
    ever-growing event list and the engine is handed back with an empty
    log.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        # Small enough that per-step engine overhead (the thing batching
        # amortizes) dominates and the measured ratio stays stable on
        # loaded machines; larger configs shift toward memory bandwidth.
        config = HiMAConfig(
            memory_size=32, word_size=16, num_tiles=4, hidden_size=32,
            two_stage_sort=False,
        )
    engine = TiledEngine(config, rng=rng)
    gen = np.random.default_rng(rng)
    inputs = gen.standard_normal(
        (seq_len, batch_size, engine.reference.config.input_size)
    ).astype(config.np_dtype)

    # Warm up both paths (BLAS thread pools, allocator).
    engine.run_batch(inputs[:2])
    engine.run(inputs[:2, 0])
    engine.traffic.clear()

    batched_time = float("inf")
    sequential_time = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        engine.run_batch(inputs)
        batched_time = min(batched_time, time.perf_counter() - start)
        engine.traffic.clear()

        start = time.perf_counter()
        for i in range(batch_size):
            engine.run(inputs[:, i])
        sequential_time = min(sequential_time, time.perf_counter() - start)
        engine.traffic.clear()

    total_steps = seq_len * batch_size
    batch1 = engine.run_batch(inputs[:, :1])
    single = engine.run(inputs[:, 0])
    diff = float(np.max(np.abs(batch1[:, 0] - single)))
    engine.traffic.clear()

    return BatchedThroughput(
        batch_size=batch_size,
        seq_len=seq_len,
        steps_per_sec=total_steps / batched_time,
        sequential_steps_per_sec=total_steps / sequential_time,
        speedup_vs_seq=sequential_time / batched_time,
        batch1_max_abs_diff=diff,
        dtype=config.dtype,
        memory_size=config.memory_size,
        two_stage_sort=config.two_stage_sort,
        skim_fraction=config.skim_fraction,
        fused_write_linkage=config.fused_write_linkage,
        masked_dense_min_occupancy=config.masked_dense_min_occupancy,
    )


def measure_masked_occupancy(
    config=None,
    capacity: int = 16,
    active: int = 8,
    seq_len: int = 8,
    repeats: int = 3,
    rng: int = 0,
) -> BatchedThroughput:
    """Time arena-style masked stepping at partial occupancy.

    ``active`` of ``capacity`` resident slots advance each tick through
    :meth:`TiledEngine.step(active=...)` — the serving layer's
    steady-state shape whenever the arena is not full.  The config's
    ``masked_dense_min_occupancy`` decides the path under test (0.0
    forces the dense-capacity in-place write phase, 1.0 forces the
    compact gather/scatter), which is exactly the A/B the occupancy
    variants of ``BENCH_batched_throughput.json`` record.

    ``steps_per_sec`` counts *active-slot* steps per wall second; the
    sequential baseline runs the same ``active`` sessions one at a time
    through the unbatched engine, and ``batch1_max_abs_diff`` compares
    slot 0's masked trajectory against its solo run.
    """
    from repro.core.config import HiMAConfig
    from repro.core.engine import TiledEngine

    if config is None:
        config = HiMAConfig(
            memory_size=256, word_size=32, num_reads=1, num_tiles=8,
            hidden_size=64, two_stage_sort=False,
        )
    if not 0 < active < capacity:
        raise ValueError(
            f"active must be in (0, capacity), got {active} of {capacity}"
        )
    engine = TiledEngine(config, rng=rng)
    gen = np.random.default_rng(rng)
    inputs = gen.standard_normal(
        (seq_len, capacity, engine.reference.config.input_size)
    ).astype(config.np_dtype)
    idx = np.arange(active)

    def serve_masked():
        state = engine.initial_state(batch_size=capacity)
        outputs = np.empty(
            (seq_len, capacity, engine.reference.config.output_size),
            dtype=config.np_dtype,
        )
        for t in range(seq_len):
            outputs[t], state = engine.step(inputs[t], state, active=idx)
        return outputs

    # Warm up both paths, then time (best of repeats), clearing the
    # cumulative traffic log at every phase boundary.
    masked_out = serve_masked()
    engine.run(inputs[:2, 0])
    engine.traffic.clear()

    masked_time = float("inf")
    sequential_time = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        serve_masked()
        masked_time = min(masked_time, time.perf_counter() - start)
        engine.traffic.clear()

        start = time.perf_counter()
        for i in range(active):
            engine.run(inputs[:, i])
        sequential_time = min(sequential_time, time.perf_counter() - start)
        engine.traffic.clear()

    solo = engine.run(inputs[:, 0])
    diff = float(np.max(np.abs(masked_out[:, 0] - solo)))
    engine.traffic.clear()

    total_steps = seq_len * active
    return BatchedThroughput(
        batch_size=capacity,
        seq_len=seq_len,
        steps_per_sec=total_steps / masked_time,
        sequential_steps_per_sec=total_steps / sequential_time,
        speedup_vs_seq=sequential_time / masked_time,
        batch1_max_abs_diff=diff,
        dtype=config.dtype,
        memory_size=config.memory_size,
        two_stage_sort=config.two_stage_sort,
        skim_fraction=config.skim_fraction,
        fused_write_linkage=config.fused_write_linkage,
        masked_dense_min_occupancy=config.masked_dense_min_occupancy,
    )


@register("batched_throughput")
def batched_throughput_experiment(
    config=None, batch_sizes: Sequence[int] = (4, 16), seq_len: int = 16
) -> ExperimentResult:
    """Batched-engine scaling table (not a paper figure; repo capability)."""
    rows = []
    notes = []
    for batch in batch_sizes:
        m = measure_batched_throughput(
            config, batch_size=batch, seq_len=seq_len
        )
        rows.append([
            batch,
            f"{m.steps_per_sec:,.0f}",
            f"{m.sequential_steps_per_sec:,.0f}",
            f"{m.speedup_vs_seq:.2f}x",
        ])
        notes.append(
            f"B={batch}: batch-of-1 max abs diff {m.batch1_max_abs_diff:.2e}"
        )
    return ExperimentResult(
        experiment_id="batched_throughput",
        title="Batched engine throughput (run_batch vs sequential run)",
        headers=["batch", "batched steps/s", "sequential steps/s", "speedup"],
        rows=rows,
        notes=notes,
    )


__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "register",
    "BatchedThroughput",
    "measure_batched_throughput",
    "measure_masked_occupancy",
]
