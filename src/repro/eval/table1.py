"""Table 1 — Analysis of DNC kernels.

Regenerates the kernel taxonomy with concrete access counts for the
configured ``(N, W, R, Nt)`` and *validates* the registry's access
formulas against counts measured by the instrumented reference DNC.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import HiMAConfig
from repro.core.kernels import KERNEL_REGISTRY
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig
from repro.eval.runners import ExperimentResult, register


@register("table1")
def run(config: Optional[HiMAConfig] = None, measure_steps: int = 2) -> ExperimentResult:
    """Render Table 1 and cross-check formulas against measurement."""
    config = config or HiMAConfig()
    ref = NumpyDNC(
        NumpyDNCConfig(
            input_size=config.word_size,
            output_size=config.word_size,
            memory_size=config.memory_size,
            word_size=config.word_size,
            num_reads=config.num_reads,
            hidden_size=config.hidden_size,
        ),
        rng=0,
    )
    inputs = np.random.default_rng(0).standard_normal(
        (measure_steps, config.word_size)
    )
    ref.run(inputs)

    rows = []
    notes = []
    for name, spec in KERNEL_REGISTRY.items():
        measured = ref.recorder.stats.get(name)
        measured_ext = measured.ext_mem_accesses // measured.calls if measured else 0
        measured_state = (
            measured.state_mem_accesses // measured.calls if measured else 0
        )
        rows.append([
            spec.kernel_type,
            name,
            ", ".join(spec.primitives),
            spec.ext_mem_order,
            spec.state_mem_order,
            spec.noc_order,
            f"{spec.ext_mem_accesses(config):,}",
            f"{measured_ext:,}",
            f"{spec.state_mem_accesses(config):,}",
            f"{measured_state:,}",
            f"{spec.noc_words(config):,.0f}",
        ])
    notes.append(
        "model columns are the registry formulas; measured columns are "
        "per-step access counts from the instrumented reference DNC "
        f"(N={config.memory_size}, W={config.word_size}, "
        f"R={config.num_reads}, Nt={config.num_tiles})"
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Analysis of DNC kernels",
        headers=[
            "type", "kernel", "primitives", "ext O()", "state O()", "NoC O()",
            "ext model", "ext meas", "state model", "state meas", "NoC words",
        ],
        rows=rows,
        notes=notes,
    )
