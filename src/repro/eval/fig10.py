"""Figure 10 — DNC-D inference error over DNC across the 20 QA tasks.

For each task family: train a (laptop-scale) DNC with our autodiff engine
on that task's episodes, construct DNC-D models at several tile counts by
warm-starting from the trained DNC and fine-tuning the per-tile interface
and merge heads, then measure the error-rate increase over the DNC.  The
usage-skimming sweep evaluates the fine-tuned DNC-D with skimming applied
at inference only, as in the paper.

Methodology notes
-----------------
* **Per-task vocabulary and model** — bAbI tasks are independent (paper
  Section 3.2), so each family trains its own model on its own closed
  vocabulary.
* **Batched training** — episodes within a family share template lengths,
  so same-length minibatches train the numpy autodiff DNC ~5x faster in
  wall-clock than single-episode steps.
* **Scale substitution** (DESIGN.md) — the paper trains 1024 x 64
  memories on real bAbI; pure-numpy training at that scale is infeasible,
  so memory and tile counts are scaled proportionally.  Shape targets:
  error grows with ``Nt``; a moderate skim rate (K=20%) adds little;
  K=50% degrades sharply.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad
from repro.dnc.distributed import DNCD, DNCDConfig
from repro.dnc.memory import AddressingOptions
from repro.dnc.model import DNC, DNCConfig
from repro.eval.runners import ExperimentResult, register
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import Adam, clip_grad_norm
from repro.tasks.babi import BabiTaskSuite, QAExample, encode_example
from repro.tasks.encoding import Vocabulary
from repro.utils.rng import new_rng


@dataclass
class Fig10Settings:
    """Scaled-down Figure 10 experiment parameters."""

    task_ids: Sequence[int] = tuple(range(1, 21))
    train_steps: int = 800  # batched minibatch steps
    finetune_steps: int = 250
    batch_size: int = 8
    train_examples: int = 200
    eval_examples: int = 48
    memory_size: int = 32
    word_size: int = 16
    num_reads: int = 2
    hidden_size: int = 128
    tile_counts: Sequence[int] = (2, 4)  # scaled analog of Nt=4/16(/32)
    skim_rates: Sequence[float] = (0.0, 0.2, 0.5)
    skim_tiles: int = 2  # tile count whose DNC-D gets the skim sweep
    learning_rate: float = 3e-3
    seed: int = 0


def _task_vocabulary(examples: Sequence[QAExample]) -> Vocabulary:
    """Closed per-task vocabulary covering every token and answer."""
    vocab = Vocabulary()
    for example in examples:
        for token in example.tokens:
            vocab.add(token)
        vocab.add(example.answer)
    return vocab


def _length_groups(
    examples: Sequence[QAExample], vocab: Vocabulary
) -> List[List[Tuple[np.ndarray, int]]]:
    """Group encoded episodes by sequence length for batched training."""
    groups: Dict[int, List[Tuple[np.ndarray, int]]] = defaultdict(list)
    for example in examples:
        encoded = encode_example(example, vocab)
        groups[encoded[0].shape[0]].append(encoded)
    return list(groups.values())


def _train_model(model, examples, vocab, steps, lr, seed, batch_size=8) -> None:
    """Train (or fine-tune) with same-length minibatches and Adam."""
    optimizer = Adam(model.parameters(), lr=lr)
    rng = new_rng(seed)
    groups = _length_groups(examples, vocab)
    vocab_size = len(vocab)
    for _ in range(steps):
        group = groups[int(rng.integers(0, len(groups)))]
        idx = rng.integers(0, len(group), size=batch_size)
        inputs = np.stack([group[i][0] for i in idx], axis=1)  # (T, B, V)
        answers = [group[i][1] for i in idx]
        optimizer.zero_grad()
        outputs, _ = model(Tensor(inputs))
        targets = np.zeros((batch_size, vocab_size))
        targets[np.arange(batch_size), answers] = 1.0
        loss = softmax_cross_entropy(outputs[-1], targets)
        loss.backward()
        clip_grad_norm(model.parameters(), 10.0)
        optimizer.step()


def _error_rate(model, examples, vocab) -> float:
    """Fraction of episodes whose final-step argmax misses the answer."""
    errors = 0
    with no_grad():
        for group in _length_groups(examples, vocab):
            inputs = np.stack([x for x, _ in group], axis=1)
            answers = np.asarray([aid for _, aid in group])
            outputs, _ = model(Tensor(inputs))
            predictions = np.argmax(outputs.data[-1], axis=-1)
            errors += int(np.sum(predictions != answers))
    return errors / len(examples)


def _make_dncd(
    settings: Fig10Settings,
    vocab_size: int,
    num_tiles: int,
    dnc: DNC,
    options: Optional[AddressingOptions] = None,
) -> DNCD:
    config = DNCDConfig(
        input_size=vocab_size,
        output_size=vocab_size,
        memory_size=settings.memory_size,
        word_size=settings.word_size,
        num_reads=settings.num_reads,
        hidden_size=settings.hidden_size,
        num_tiles=num_tiles,
    )
    model = DNCD(config, options=options, rng=settings.seed)
    model.init_from_dnc(dnc)
    return model


@register("fig10")
def run(settings: Optional[Fig10Settings] = None) -> ExperimentResult:
    settings = settings or Fig10Settings()
    suite = BabiTaskSuite(rng=settings.seed)

    headers = (
        ["task", "DNC err"]
        + [f"DNC-D Nt={nt} (+pp)" for nt in settings.tile_counts]
        + [f"K={int(k * 100)}% (+pp)" for k in settings.skim_rates]
    )
    rows: List[List[object]] = []
    deltas_by_nt: Dict[int, List[float]] = {nt: [] for nt in settings.tile_counts}
    deltas_by_k: Dict[float, List[float]] = {k: [] for k in settings.skim_rates}

    for task_id in settings.task_ids:
        train_examples = suite.generate(task_id, settings.train_examples)
        eval_examples = suite.generate(task_id, settings.eval_examples)
        vocab = _task_vocabulary(list(train_examples) + list(eval_examples))
        vocab_size = len(vocab)

        dnc = DNC(
            DNCConfig(
                input_size=vocab_size,
                output_size=vocab_size,
                memory_size=settings.memory_size,
                word_size=settings.word_size,
                num_reads=settings.num_reads,
                hidden_size=settings.hidden_size,
            ),
            rng=settings.seed,
        )
        _train_model(dnc, train_examples, vocab, settings.train_steps,
                     settings.learning_rate, settings.seed + task_id,
                     batch_size=settings.batch_size)
        # Snapshot for DNC-D warm starts, then give the DNC the same extra
        # budget the DNC-D fine-tune gets (matched total training steps,
        # so the deltas isolate the *distribution* penalty).
        snapshot = dnc.state_dict()
        _train_model(dnc, train_examples, vocab, settings.finetune_steps,
                     settings.learning_rate, settings.seed + task_id + 999,
                     batch_size=settings.batch_size)
        err_dnc = _error_rate(dnc, eval_examples, vocab)
        warm_start = DNC(dnc.config, rng=settings.seed)
        warm_start.load_state_dict(snapshot)

        row: List[object] = [task_id, f"{100 * err_dnc:.1f}%"]
        finetuned: Dict[int, DNCD] = {}
        for nt in settings.tile_counts:
            dncd = _make_dncd(settings, vocab_size, nt, warm_start)
            _train_model(dncd, train_examples, vocab, settings.finetune_steps,
                         settings.learning_rate, settings.seed + task_id + nt,
                         batch_size=settings.batch_size)
            finetuned[nt] = dncd
            err = _error_rate(dncd, eval_examples, vocab)
            delta = 100.0 * (err - err_dnc)
            deltas_by_nt[nt].append(delta)
            row.append(f"{delta:+.1f}")

        skim_base = finetuned.get(settings.skim_tiles)
        for k in settings.skim_rates:
            if skim_base is None:
                row.append("-")
                continue
            options = AddressingOptions(skim_fraction=k)
            for unit in skim_base.tiles:
                unit.options = options
            err = _error_rate(skim_base, eval_examples, vocab)
            for unit in skim_base.tiles:
                unit.options = AddressingOptions()
            delta = 100.0 * (err - err_dnc)
            deltas_by_k[k].append(delta)
            row.append(f"{delta:+.1f}")
        rows.append(row)

    summary: List[object] = ["mean", "-"]
    for nt in settings.tile_counts:
        summary.append(f"{np.mean(deltas_by_nt[nt]):+.1f}")
    for k in settings.skim_rates:
        values = deltas_by_k[k]
        summary.append(f"{np.mean(values):+.1f}" if values else "-")
    rows.append(summary)

    notes = [
        "values are error-rate increases over the DNC in percentage points",
        f"scaled substitution: memory {settings.memory_size}x"
        f"{settings.word_size}, tiles {tuple(settings.tile_counts)} stand in "
        "for the paper's 1024x64 with Nt=4/16/32 (see DESIGN.md); skim "
        f"sweep applied to the Nt={settings.skim_tiles} DNC-D",
        "paper shape: error grows with Nt (avg <6% up to Nt=32); "
        "K=20% adds ~5.8pp at Nt=16; K=50% exceeds +15pp",
    ]
    return ExperimentResult(
        experiment_id="fig10",
        title="DNC-D inference error over DNC (synthetic bAbI tasks)",
        headers=headers,
        rows=rows,
        notes=notes,
    )
