"""Section 4.3 / Figure 7 — two-stage usage sort latency.

Reproduces the paper's worked example — ``N=1024, Nt=4`` sorts in
``6*(16+5) + 256 + 7 = 389`` cycles against ``N log2 N = 10240`` for the
naive centralized merge sort — and sweeps N and Nt.  The functional
sorters are cross-checked against ``numpy.sort`` on random vectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.eval.runners import ExperimentResult, register
from repro.hw.sorters import CentralizedMergeSorter, TwoStageSorter


@register("fig7")
def run(
    lengths: Sequence[int] = (256, 1024, 4096),
    tile_counts: Sequence[int] = (4, 16),
    verify: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    central = CentralizedMergeSorter()
    rng = np.random.default_rng(seed)
    rows = []
    notes = []
    for n in lengths:
        for nt in tile_counts:
            if n % nt:
                continue
            two_stage = TwoStageSorter(n, nt)
            stage1, stage2 = two_stage.stage_cycles()
            cycles = two_stage.cycle_count()
            naive = central.cycle_count(n)
            pipelined = central.pipelined_cycle_count(n, num_streams=nt)
            if verify:
                values = rng.random(n)
                sorted_vals, order = two_stage.sort(values)
                assert np.allclose(sorted_vals, np.sort(values))
                assert np.allclose(values[order], sorted_vals)
            rows.append([
                n, nt, stage1, stage2, cycles, pipelined, naive,
                f"{naive / cycles:.1f}x",
            ])
    notes.append(
        "paper reference point: N=1024, Nt=4 -> 126 + 263 = 389 cycles "
        "vs N log2 N = 10240 (26.3x)"
    )
    notes.append(
        "functional two-stage output verified equal to numpy.sort on "
        "random vectors"
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Two-stage usage sort latency (Section 4.3)",
        headers=[
            "N", "Nt", "stage1 (MDSA)", "stage2 (PMS)", "two-stage total",
            "centralized pipelined", "centralized N log N", "vs naive",
        ],
        rows=rows,
        notes=notes,
    )
