"""Figure 5 — NoC hop analysis and speedup scalability.

(a)-(c): worst-case hop counts per topology (H-tree/binary tree 8 hops at
16 PTs, HiMA 5x5 4 hops).

(d): normalized speedup versus PT count for DNC mapped onto each NoC,
plus HiMA running DNC-D — speedup(Nt) = T(1 tile) / T(Nt tiles) from the
cycle model, with the exact kernel message sets simulated on each
topology.  The paper's qualitative result: trees saturate beyond ~8
tiles, HiMA-NoC scales further, and DNC-D tracks the ideal line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import HiMAConfig
from repro.core.perf_model import HiMAPerformanceModel
from repro.eval.runners import ExperimentResult, register
from repro.noc import build_topology, hop_statistics

DEFAULT_NOCS = ("htree", "bintree", "mesh", "star", "hima")
DEFAULT_PT_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def hop_table(pt_count: int = 16) -> ExperimentResult:
    """Figure 5(a)-(c): hop statistics per topology."""
    rows = []
    for name in ("htree", "bintree", "mesh", "star", "ring", "hima"):
        stats = hop_statistics(build_topology(name, pt_count))
        rows.append([
            name, stats.num_pts, stats.worst_case,
            f"{stats.average:.2f}", stats.ct_worst_case,
        ])
    return ExperimentResult(
        experiment_id="fig5abc",
        title=f"NoC hop analysis ({pt_count} PTs)",
        headers=["topology", "PTs", "worst PT-PT", "avg PT-PT", "worst CT-PT"],
        rows=rows,
        notes=[
            "paper: H-tree/binary tree worst case 8 hops (16 PTs); "
            "HiMA 5x5 worst case 4 hops"
        ],
    )


@register("fig5")
def run(
    nocs: Sequence[str] = DEFAULT_NOCS,
    pt_counts: Sequence[int] = DEFAULT_PT_COUNTS,
    memory_size: int = 1024,
    word_size: int = 64,
) -> ExperimentResult:
    """Figure 5(d): speedup scalability across NoCs."""
    series: Dict[str, List[float]] = {}

    def model_time(noc: str, num_tiles: int, distributed: bool) -> float:
        config = HiMAConfig(
            memory_size=memory_size,
            word_size=word_size,
            num_tiles=num_tiles,
            noc=noc,
            distributed=distributed,
        )
        return HiMAPerformanceModel(config).inference_time_s()

    for noc in nocs:
        base = model_time(noc, 1, False)
        series[f"{noc}, DNC"] = [
            base / model_time(noc, nt, False) for nt in pt_counts
        ]
    base_d = model_time("hima", 1, True)
    series["hima, DNC-D"] = [
        base_d / model_time("hima", nt, True) for nt in pt_counts
    ]
    series["ideal"] = [float(nt) for nt in pt_counts]

    rows = []
    for name, values in series.items():
        rows.append([name] + [f"{v:.2f}x" for v in values])
    return ExperimentResult(
        experiment_id="fig5",
        title="Speedup scalability vs PT count (Figure 5(d))",
        headers=["series"] + [f"Nt={nt}" for nt in pt_counts],
        rows=rows,
        notes=[
            "paper: H-tree and binary tree saturate beyond 8 tiles; "
            "HiMA-NoC scales further; DNC-D is near-ideal",
        ],
    )
