"""Run every registered experiment and render a consolidated report.

``python -m repro.eval.report`` regenerates every table/figure (Figure 10
runs in its reduced default configuration; pass ``--full`` for all 20
tasks at the full training budget).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval import fig10
from repro.eval.runners import EXPERIMENTS

#: Experiments cheap enough to always run.
FAST_EXPERIMENTS = (
    "table1", "fig5", "fig6c", "fig6d", "fig7",
    "fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f",
    "fig12a", "fig12bcd",
)


def generate_report(include_slow: bool = False, full_fig10: bool = False) -> str:
    """Render all experiments to one text report."""
    sections: List[str] = []
    for experiment_id in FAST_EXPERIMENTS:
        sections.append(EXPERIMENTS[experiment_id]().render())
    if include_slow:
        sections.append(EXPERIMENTS["fig4"]().render())
        settings = None
        if not full_fig10:
            settings = fig10.Fig10Settings(
                task_ids=(6, 15), train_steps=700, finetune_steps=200,
                eval_examples=40, tile_counts=(2, 4), skim_tiles=2,
            )
        sections.append(EXPERIMENTS["fig10"](settings).render())
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slow", action="store_true",
                        help="include fig4 (profiling) and fig10 (training)")
    parser.add_argument("--full", action="store_true",
                        help="run fig10 on all 20 tasks at full budget")
    args = parser.parse_args(argv)
    print(generate_report(include_slow=args.slow, full_fig10=args.full))
    return 0


if __name__ == "__main__":
    sys.exit(main())
