"""Figure 11 — HiMA speed, silicon area and power (Nt = 16).

* (a) inference-speedup ladder across the feature stack,
* (b) kernel runtime breakdown for HiMA-DNC and HiMA-DNC-D,
* (c) power ladder,
* (d) kernel (category) power breakdown,
* (e) silicon area / total power table,
* (f) module power breakdown.

Every sub-figure prints model-vs-paper columns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import HiMAConfig
from repro.core.perf_model import HiMAPerformanceModel
from repro.dnc.instrumentation import KernelCategory
from repro.eval.runners import ExperimentResult, register
from repro.hw.area_model import AreaModel
from repro.hw.power_model import PowerModel

#: Paper Figure 11(a): speedups over HiMA-baseline.
PAPER_SPEEDUP_LADDER = {
    "baseline": 1.0,
    "+two-stage sort": 1.12,
    "+HiMA-NoC": 1.23,
    "+submatrix (HiMA-DNC)": 1.39,
    "DNC-D (Nt=16)": 8.29,
    "DNC-D +K=20%": 8.42,
}
#: Paper Figure 11(c): power relative to baseline.
PAPER_POWER_LADDER = {
    "baseline": 1.0,
    "+two-stage sort": 1.091,
    "+HiMA-NoC": 1.13,
    "+submatrix (HiMA-DNC)": 0.991,
    "DNC-D (Nt=16)": 0.612,
    "DNC-D +K=20%": 0.603,
}
#: Paper Figure 11(b): kernel runtime shares (percent).
PAPER_RUNTIME_BREAKDOWN = {
    "dnc": {
        KernelCategory.HIST_WRITE_WEIGHTING: 24.0,
        KernelCategory.HIST_READ_WEIGHTING: 33.0,
        KernelCategory.CONTENT_WEIGHTING: 20.0,
        KernelCategory.MEMORY_ACCESS: 21.0,
        KernelCategory.NN_LSTM: 2.0,
    },
    "dncd": {
        KernelCategory.HIST_WRITE_WEIGHTING: 19.0,
        KernelCategory.HIST_READ_WEIGHTING: 21.0,
        KernelCategory.CONTENT_WEIGHTING: 28.0,
        KernelCategory.MEMORY_ACCESS: 20.0,
        KernelCategory.NN_LSTM: 12.0,
    },
}
#: Paper Figure 11(d): kernel power (W).
PAPER_KERNEL_POWER = {
    "dnc": {
        KernelCategory.HIST_WRITE_WEIGHTING: 3.10,
        KernelCategory.CONTENT_WEIGHTING: 5.29,
        KernelCategory.MEMORY_ACCESS: 3.15,
        KernelCategory.HIST_READ_WEIGHTING: 3.74,
        KernelCategory.NN_LSTM: 1.66,
    },
    "dncd": {
        KernelCategory.HIST_WRITE_WEIGHTING: 0.66,
        KernelCategory.CONTENT_WEIGHTING: 2.79,
        KernelCategory.MEMORY_ACCESS: 2.59,
        KernelCategory.HIST_READ_WEIGHTING: 2.58,
        KernelCategory.NN_LSTM: 1.67,
    },
}
#: Paper Figure 11(e).
PAPER_AREA = {
    "baseline": {"pt": 4.92, "pt_mem": 2.07, "ct": 0.43, "total": 79.14, "power": 16.80},
    "dnc": {"pt": 5.01, "pt_mem": 2.07, "ct": 0.52, "total": 80.69, "power": 16.96},
    "dncd": {"pt": 4.22, "pt_mem": 1.53, "ct": 0.18, "total": 67.71, "power": 10.28},
}
#: Paper Figure 11(f): module power (W), HiMA-DNC / HiMA-DNC-D.
PAPER_MODULE_POWER = {
    "dnc": {"pt_memory": 4.86, "pt_mm_engine": 8.10, "pt_router": 1.56,
            "pt_other": 2.30, "ct": 0.15},
    "dncd": {"pt_memory": 3.15, "pt_mm_engine": 5.38, "pt_router": 0.0247,
             "pt_other": 1.69, "ct": 0.036},
}

PAPER_DNC_US_PER_TEST = 11.8
PAPER_DNCD_US_PER_TEST = 1.95


def ladder_configs(**overrides) -> Dict[str, HiMAConfig]:
    """The Figure 11(a)/(c) feature stack."""
    return {
        "baseline": HiMAConfig.baseline(**overrides),
        "+two-stage sort": HiMAConfig.baseline(**overrides).with_features(
            two_stage_sort=True
        ),
        "+HiMA-NoC": HiMAConfig.baseline(**overrides).with_features(
            two_stage_sort=True, noc="hima"
        ),
        "+submatrix (HiMA-DNC)": HiMAConfig.hima_dnc(**overrides),
        "DNC-D (Nt=16)": HiMAConfig.hima_dncd(**overrides),
        "DNC-D +K=20%": HiMAConfig.hima_dncd(skim_fraction=0.2, **overrides),
    }


def _models(**overrides) -> Dict[str, HiMAPerformanceModel]:
    return {
        name: HiMAPerformanceModel(cfg)
        for name, cfg in ladder_configs(**overrides).items()
    }


@register("fig11a")
def run_speed_ladder(**overrides) -> ExperimentResult:
    models = _models(**overrides)
    base_time = models["baseline"].inference_time_s()
    rows = []
    for name, model in models.items():
        t_us = model.inference_time_us()
        rows.append([
            name,
            f"{t_us:.2f}",
            f"{base_time / model.inference_time_s():.2f}x",
            f"{PAPER_SPEEDUP_LADDER[name]:.2f}x",
        ])
    return ExperimentResult(
        experiment_id="fig11a",
        title="Inference speedup ladder (Nt=16)",
        headers=["configuration", "us/test", "speedup (model)", "speedup (paper)"],
        rows=rows,
        notes=[
            f"paper absolute times: HiMA-DNC {PAPER_DNC_US_PER_TEST} us/test, "
            f"HiMA-DNC-D (K=20%) {PAPER_DNCD_US_PER_TEST} us/test",
        ],
    )


@register("fig11b")
def run_runtime_breakdown(**overrides) -> ExperimentResult:
    rows = []
    for key, name in (("dnc", "+submatrix (HiMA-DNC)"), ("dncd", "DNC-D (Nt=16)")):
        model = HiMAPerformanceModel(ladder_configs(**overrides)[name])
        fractions = model.category_fractions()
        for cat in KernelCategory:
            rows.append([
                "HiMA-DNC" if key == "dnc" else "HiMA-DNC-D",
                cat.value,
                f"{100 * fractions[cat]:.1f}%",
                f"{PAPER_RUNTIME_BREAKDOWN[key][cat]:.0f}%",
            ])
    return ExperimentResult(
        experiment_id="fig11b",
        title="Kernel runtime breakdown (Figure 11(b))",
        headers=["prototype", "category", "model", "paper"],
        rows=rows,
    )


@register("fig11c")
def run_power_ladder(**overrides) -> ExperimentResult:
    power_model = PowerModel()
    models = _models(**overrides)
    baseline_power = power_model.estimate(models["baseline"].activity()).total
    rows = []
    for name, model in models.items():
        total = power_model.estimate(model.activity()).total
        rows.append([
            name,
            f"{total:.2f}",
            f"{total / baseline_power:.3f}x",
            f"{PAPER_POWER_LADDER[name]:.3f}x",
        ])
    return ExperimentResult(
        experiment_id="fig11c",
        title="Power across the feature ladder (Figure 11(c))",
        headers=["configuration", "watts (model)", "vs baseline", "paper"],
        rows=rows,
    )


@register("fig11d")
def run_kernel_power(**overrides) -> ExperimentResult:
    power_model = PowerModel()
    rows = []
    for key, name in (("dnc", "+submatrix (HiMA-DNC)"), ("dncd", "DNC-D (Nt=16)")):
        model = HiMAPerformanceModel(ladder_configs(**overrides)[name])
        per_kernel = power_model.kernel_power(
            model.kernel_activity(), model.timestep_cycles(),
            clock_hz=model.config.clock_hz,
        )
        by_category: Dict[KernelCategory, float] = {c: 0.0 for c in KernelCategory}
        from repro.dnc.instrumentation import KERNEL_CATEGORIES

        for kernel, watts in per_kernel.items():
            by_category[KERNEL_CATEGORIES[kernel]] += watts
        for cat in KernelCategory:
            rows.append([
                "HiMA-DNC" if key == "dnc" else "HiMA-DNC-D",
                cat.value,
                f"{by_category[cat]:.2f}",
                f"{PAPER_KERNEL_POWER[key][cat]:.2f}",
            ])
    return ExperimentResult(
        experiment_id="fig11d",
        title="Kernel power breakdown (W, Figure 11(d))",
        headers=["prototype", "category", "model W", "paper W"],
        rows=rows,
    )


@register("fig11e")
def run_area_power_table(**overrides) -> ExperimentResult:
    power_model = PowerModel()
    specs = {
        "baseline": dict(two_stage_sort=False, multimode_noc=False, distributed=False),
        "dnc": dict(two_stage_sort=True, multimode_noc=True, distributed=False),
        "dncd": dict(two_stage_sort=True, multimode_noc=True, distributed=True),
    }
    model_names = {
        "baseline": "baseline",
        "dnc": "+submatrix (HiMA-DNC)",
        "dncd": "DNC-D (Nt=16)",
    }
    configs = ladder_configs(**overrides)
    rows = []
    for key, area_kwargs in specs.items():
        cfg = configs[model_names[key]]
        area = AreaModel(
            cfg.memory_size, cfg.word_size, cfg.num_reads, cfg.num_tiles,
            **area_kwargs,
        ).breakdown()
        power = power_model.estimate(
            HiMAPerformanceModel(cfg).activity()
        ).total
        paper = PAPER_AREA[key]
        rows.append([
            key,
            f"{area.pt_total:.2f} / {paper['pt']:.2f}",
            f"{area.pt_memory:.2f} / {paper['pt_mem']:.2f}",
            f"{area.ct_total:.2f} / {paper['ct']:.2f}",
            f"{area.total:.2f} / {paper['total']:.2f}",
            f"{power:.2f} / {paper['power']:.2f}",
        ])
    return ExperimentResult(
        experiment_id="fig11e",
        title="Silicon area (mm^2) and power (W), model / paper (Figure 11(e))",
        headers=["prototype", "PT", "PT mem", "CT", "total", "power W"],
        rows=rows,
        notes=[
            "DNC-D PT memory: our principled inventory shrinks the linkage "
            "to the local (N/Nt)^2 shard; the paper's prototype retains "
            "larger buffers it does not break down (see EXPERIMENTS.md)",
        ],
    )


@register("fig11f")
def run_module_power(**overrides) -> ExperimentResult:
    power_model = PowerModel()
    configs = ladder_configs(**overrides)
    rows = []
    for key, name in (("dnc", "+submatrix (HiMA-DNC)"), ("dncd", "DNC-D (Nt=16)")):
        breakdown = power_model.estimate(
            HiMAPerformanceModel(configs[name]).activity()
        )
        for module, watts in breakdown.modules.items():
            rows.append([
                "HiMA-DNC" if key == "dnc" else "HiMA-DNC-D",
                module,
                f"{watts:.3f}",
                f"{PAPER_MODULE_POWER[key].get(module, float('nan')):.3f}",
            ])
    return ExperimentResult(
        experiment_id="fig11f",
        title="Module power breakdown (W, Figure 11(f))",
        headers=["prototype", "module", "model W", "paper W"],
        rows=rows,
    )
