"""Figure 6(c)/(d) — partition choice vs inter-tile traffic.

(c): memory-read kernel traffic (Eq. 2) over the external-memory
partition sweep — row-wise is (near-)optimal, column-wise is
quadratically worse.

(d): forward-backward kernel traffic (Eq. 3) over the linkage partition
sweep — both extremes are suboptimal; the optimum is the near-square grid
(4x4 at Nt=16).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.partition import (
    forward_backward_traffic,
    memory_read_traffic,
    optimal_linkage_partition,
)
from repro.eval.runners import ExperimentResult, register

DEFAULT_TILE_COUNTS = (4, 16, 32, 48, 64)


def _power_of_two_widths(num_tiles: int) -> Sequence[int]:
    """Nt_w sweep values: powers of two dividing ``num_tiles``."""
    return [w for w in (1, 2, 4, 8, 16, 32, 64) if num_tiles % w == 0 and w <= num_tiles]


@register("fig6c")
def run_memory_read(
    memory_size: int = 1024,
    word_size: int = 64,
    tile_counts: Sequence[int] = DEFAULT_TILE_COUNTS,
) -> ExperimentResult:
    """Figure 6(c): memory-read traffic vs external partition."""
    widths = (1, 2, 4, 8, 16, 32)
    rows = []
    for nt in tile_counts:
        cells = []
        baseline = None
        for nt_w in widths:
            if nt % nt_w != 0:
                cells.append("-")
                continue
            nt_h = nt // nt_w
            traffic = memory_read_traffic(memory_size, word_size, nt, nt_h, nt_w)
            if baseline is None:
                baseline = traffic if traffic > 0 else 1.0
            cells.append(f"{traffic / baseline:.2f}x")
        rows.append([f"Nt={nt}"] + cells)
    return ExperimentResult(
        experiment_id="fig6c",
        title="Memory-read kernel traffic vs external-memory partition (Eq. 2)",
        headers=["tiles"] + [f"Nt_w={w}" for w in widths],
        rows=rows,
        notes=[
            "normalized to the row-wise partition (Nt_w=1); paper: keep "
            "Nt_w low — row-wise is advantageous",
        ],
    )


@register("fig6d")
def run_forward_backward(
    tile_counts: Sequence[int] = DEFAULT_TILE_COUNTS,
) -> ExperimentResult:
    """Figure 6(d): forward-backward traffic vs linkage partition."""
    widths = (1, 2, 4, 8, 16, 32, 64)
    rows = []
    optima = []
    for nt in tile_counts:
        cells = []
        best = None
        for nt_w in widths:
            if nt % nt_w != 0 or nt_w > nt:
                cells.append("-")
                continue
            nt_h = nt // nt_w
            traffic = forward_backward_traffic(nt, nt_h, nt_w)
            best = traffic if best is None else min(best, traffic)
            cells.append(f"{traffic:.2f}")
        normalized = [
            c if c == "-" else f"{float(c) / best:.2f}x" for c in cells
        ]
        rows.append([f"Nt={nt}"] + normalized)
        if nt == 16:
            optima.append(optimal_linkage_partition(1024, 16))
    notes = [
        "normalized to each row's optimum; both row-wise (left) and "
        "column-wise (right) extremes are suboptimal",
    ]
    if optima:
        notes.append(
            f"optimizer result at Nt=16: {optima[0][0]}x{optima[0][1]} "
            "(paper: 4x4)"
        )
    return ExperimentResult(
        experiment_id="fig6d",
        title="Forward-backward kernel traffic vs linkage partition (Eq. 3)",
        headers=["tiles"] + [f"Nt_w={w}" for w in widths],
        rows=rows,
        notes=notes,
    )
