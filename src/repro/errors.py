"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch
everything raised by this package with a single ``except`` clause while
still being able to distinguish configuration problems from runtime
simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class ShapeError(ReproError):
    """A tensor or matrix argument has an incompatible shape."""


class GradientError(ReproError):
    """Backpropagation was requested through an invalid graph state."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class RoutingError(SimulationError):
    """No route exists between two nodes under the current NoC mode."""


class CapacityError(SimulationError):
    """A hardware resource (buffer, memory bank, sorter) overflowed."""


class ServeError(ReproError):
    """A serving-layer request or worker operation failed."""


class FrameError(ServeError):
    """A length-prefixed RPC frame was truncated, corrupted, or oversized."""


class WorkerCrashed(ServeError):
    """A worker process died (or stopped answering) mid-conversation."""
