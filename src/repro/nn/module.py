"""``Module``/``Parameter`` base classes (a small torch-like API).

Modules register :class:`Parameter` attributes and child modules
automatically, so ``module.parameters()`` yields every trainable tensor in
the tree — which is all the optimizers need.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` leaf)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; this class tracks them for :meth:`parameters`,
    :meth:`named_parameters`, :meth:`state_dict`, and
    :meth:`load_state_dict`.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters in the module tree."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, array in state.items():
            param = own[name]
            if param.data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {array.shape}"
                )
            param.data = np.array(array, dtype=np.float64, copy=True)

    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
