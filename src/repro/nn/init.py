"""Weight initializers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def xavier_uniform(shape, rng: SeedLike = None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a 2-D weight."""
    rng = new_rng(rng)
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(shape, rng: SeedLike = None, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization (recommended for recurrent weights)."""
    rng = new_rng(rng)
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def normal(shape, rng: SeedLike = None, std: float = 0.1) -> np.ndarray:
    rng = new_rng(rng)
    return std * rng.standard_normal(shape)


__all__ = ["xavier_uniform", "orthogonal", "zeros", "normal"]
