"""Optimizers and gradient clipping.

The DNC paper trains with RMSProp; Adam converges faster on the small
synthetic tasks used for the Figure 10 study, so both are provided.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_positive


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    check_positive("max_norm", max_norm)
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        check_positive("lr", lr)
        self.parameters: List[Parameter] = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class RMSProp(Optimizer):
    """RMSProp as used in the original DNC paper (Graves et al., 2016)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-4,
        decay: float = 0.9,
        momentum: float = 0.9,
        eps: float = 1e-10,
    ):
        super().__init__(parameters, lr)
        self.decay, self.momentum, self.eps = decay, momentum, eps
        self._mean_square = [np.zeros_like(p.data) for p in self.parameters]
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, ms, v in zip(self.parameters, self._mean_square, self._velocity):
            if p.grad is None:
                continue
            ms *= self.decay
            ms += (1.0 - self.decay) * p.grad**2
            v *= self.momentum
            v += self.lr * p.grad / np.sqrt(ms + self.eps)
            p.data -= v
