"""Fully connected layer."""

from __future__ import annotations

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


class Linear(Module):
    """Affine map ``y = x W + b`` with ``W`` of shape ``(in, out)``.

    Accepts inputs of shape ``(..., in_features)``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        super().__init__()
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"
