"""LSTM cell and multi-step wrapper — the DNC controller network.

The paper's prototypes use a 1-layer LSTM of size 256 as the controller
(Figure 4 caption); here the size is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


@dataclass
class LSTMState:
    """Hidden and cell state of one LSTM layer (shape ``(..., hidden)``)."""

    hidden: Tensor
    cell: Tensor

    def detach(self) -> "LSTMState":
        """Truncate backpropagation at this state (for TBPTT)."""
        return LSTMState(self.hidden.detach(), self.cell.detach())


class LSTMCell(Module):
    """Single LSTM cell with fused gate weights.

    Gates are computed as ``[i, f, g, o] = x W_x + h W_h + b`` and split;
    a unit forget-gate bias is applied at initialization, the standard
    trick for learning long-term dependencies.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None):
        super().__init__()
        rng = new_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(
            init.xavier_uniform((input_size, 4 * hidden_size), rng), name="w_x"
        )
        self.w_h = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)],
                axis=1,
            ),
            name="w_h",
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, name="bias")

    def initial_state(self, batch_size: Optional[int] = None) -> LSTMState:
        """Zero state; batched when ``batch_size`` is given."""
        shape = (self.hidden_size,) if batch_size is None else (batch_size, self.hidden_size)
        return LSTMState(Tensor(np.zeros(shape)), Tensor(np.zeros(shape)))

    def forward(self, x: Tensor, state: LSTMState) -> Tuple[Tensor, LSTMState]:
        gates = ops.add(
            ops.add(ops.matmul(x, self.w_x), ops.matmul(state.hidden, self.w_h)),
            self.bias,
        )
        h = self.hidden_size
        i_gate = ops.sigmoid(gates[..., 0 * h : 1 * h])
        f_gate = ops.sigmoid(gates[..., 1 * h : 2 * h])
        g_gate = ops.tanh(gates[..., 2 * h : 3 * h])
        o_gate = ops.sigmoid(gates[..., 3 * h : 4 * h])
        new_cell = ops.add(ops.mul(f_gate, state.cell), ops.mul(i_gate, g_gate))
        new_hidden = ops.mul(o_gate, ops.tanh(new_cell))
        return new_hidden, LSTMState(new_hidden, new_cell)


class LSTM(Module):
    """Unrolls an :class:`LSTMCell` over a sequence.

    Input shape ``(T, ..., input_size)``; returns outputs of shape
    ``(T, ..., hidden_size)`` and the final state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def initial_state(self, batch_size: Optional[int] = None) -> LSTMState:
        return self.cell.initial_state(batch_size)

    def forward(
        self, inputs: Tensor, state: Optional[LSTMState] = None
    ) -> Tuple[Tensor, LSTMState]:
        if state is None:
            batch = inputs.shape[1] if inputs.ndim == 3 else None
            state = self.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(inputs.shape[0]):
            hidden, state = self.cell(inputs[t], state)
            outputs.append(hidden)
        return ops.stack(outputs, axis=0), state
