"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    diff = ops.sub(prediction, as_tensor(target))
    return ops.mean(ops.mul(diff, diff))


def softmax_cross_entropy(logits: Tensor, target_probs, axis: int = -1) -> Tensor:
    """Cross entropy between a softmax over ``logits`` and target probs.

    ``target_probs`` is a constant distribution (e.g. one-hot labels);
    the mean is taken over all leading dimensions.
    """
    target = as_tensor(target_probs)
    log_probs = ops.log_softmax(logits, axis=axis)
    per_example = ops.neg(ops.sum(ops.mul(target, log_probs), axis=axis))
    return ops.mean(per_example)


def sigmoid_binary_cross_entropy(logits: Tensor, targets) -> Tensor:
    """Numerically stable elementwise BCE with logits, averaged.

    Uses ``max(x, 0) - x*t + log(1 + exp(-|x|))``, the standard stable
    form; this is the loss for bit-vector tasks (copy / repeat-copy).
    """
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    zeros = Tensor(np.zeros(logits.shape))
    relu_term = ops.maximum(logits, zeros)
    linear_term = ops.mul(logits, targets)
    abs_term = ops.softplus(ops.neg(ops.abs(logits)))
    return ops.mean(ops.add(ops.sub(relu_term, linear_term), abs_term))


__all__ = ["mse_loss", "softmax_cross_entropy", "sigmoid_binary_cross_entropy"]
