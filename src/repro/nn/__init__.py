"""Neural-network building blocks on top of :mod:`repro.autodiff`.

Provides the LSTM controller used by the DNC, plus the optimizers and
losses needed to train DNC/DNC-D for the Figure 10 accuracy study.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell, LSTM, LSTMState
from repro.nn.optim import SGD, Adam, RMSProp, clip_grad_norm
from repro.nn.losses import (
    mse_loss,
    softmax_cross_entropy,
    sigmoid_binary_cross_entropy,
)
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "LSTMCell",
    "LSTM",
    "LSTMState",
    "SGD",
    "Adam",
    "RMSProp",
    "clip_grad_norm",
    "mse_loss",
    "softmax_cross_entropy",
    "sigmoid_binary_cross_entropy",
    "init",
]
