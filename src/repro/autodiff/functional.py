"""Composite differentiable functions used by the DNC model.

These build on the primitives in :mod:`repro.autodiff.ops` and implement
the handful of special functions the DNC interface requires (Graves et
al., 2016, "Hybrid computing using a neural network with dynamic external
memory", Methods section).
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor

_EPSILON = 1e-8


def oneplus(x) -> Tensor:
    """``oneplus(x) = 1 + log(1 + e^x)`` — maps reals to ``[1, inf)``.

    Used for the read/write strengths ``beta`` in the DNC interface.
    """
    return ops.softplus(x) + 1.0


def l2_norm(x, axis: int = -1, keepdims: bool = True) -> Tensor:
    """Euclidean norm with an epsilon floor for differentiability at 0."""
    squared = ops.sum(ops.mul(x, x), axis=axis, keepdims=keepdims)
    return ops.sqrt(squared + _EPSILON)


def normalize(x, axis: int = -1) -> Tensor:
    """Scale ``x`` to unit L2 norm along ``axis``."""
    return ops.div(x, l2_norm(x, axis=axis, keepdims=True))


def cosine_similarity(memory, key, axis: int = -1) -> Tensor:
    """Cosine similarity between each memory row and a key.

    ``memory`` has shape ``(..., N, W)`` and ``key`` shape ``(..., W)``;
    the result has shape ``(..., N)``.  This is the DNC kernel pair
    *Normalize* + *Similarity* (CW.(1)/(2) and CR.(1)/(2) in the paper's
    Figure 2).
    """
    memory = as_tensor(memory)
    key = as_tensor(key)
    mem_unit = normalize(memory, axis=axis)
    key_unit = normalize(key, axis=axis)
    # (..., N, W) @ (..., W) -> (..., N)
    return ops.matmul(mem_unit, key_unit)


def content_weighting(memory, key, strength) -> Tensor:
    """Content-based addressing: ``softmax(strength * cos_sim(M, k))``.

    ``strength`` is a positive scalar tensor (typically ``oneplus`` of a
    controller output).
    """
    similarity = cosine_similarity(memory, key)
    return ops.softmax(ops.mul(similarity, strength), axis=-1)


def weighted_softmax(scores, strength, axis: int = -1) -> Tensor:
    """Softmax of ``strength * scores`` (DNC similarity sharpening)."""
    return ops.softmax(ops.mul(scores, strength), axis=axis)


def batch_outer(a, b) -> Tensor:
    """Batched outer product: ``(..., n) x (..., m) -> (..., n, m)``."""
    a = as_tensor(a)
    b = as_tensor(b)
    a_col = ops.reshape(a, a.shape + (1,))
    b_row = ops.reshape(b, b.shape[:-1] + (1, b.shape[-1]))
    return ops.mul(a_col, b_row)


def one_hot(indices: np.ndarray, depth: int) -> Tensor:
    """Constant one-hot encoding tensor (no gradient; labels are data)."""
    indices = np.asarray(indices, dtype=np.int64)
    eye = np.eye(depth, dtype=np.float64)
    return Tensor(eye[indices])


__all__ = [
    "oneplus",
    "l2_norm",
    "normalize",
    "cosine_similarity",
    "content_weighting",
    "weighted_softmax",
    "batch_outer",
    "one_hot",
]
