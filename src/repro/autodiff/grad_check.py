"""Numerical gradient checking.

``check_gradients`` compares reverse-mode gradients against central finite
differences; the test suite uses it to validate every primitive op and the
full DNC cell.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.errors import GradientError


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - epsilon
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    epsilon: float = 1e-6,
) -> None:
    """Assert analytic and numerical gradients agree for every input.

    Raises :class:`~repro.errors.GradientError` with a diagnostic message
    on the first mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    output.backward(np.ones_like(output.data))
    for idx, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, idx, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise GradientError(
                f"gradient mismatch on input {idx}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )


__all__ = ["numerical_gradient", "check_gradients"]
