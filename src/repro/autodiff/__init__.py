"""Minimal reverse-mode automatic differentiation over numpy arrays.

The DNC and DNC-D models (``repro.dnc``) are trained end to end; since no
deep-learning framework is available offline, this subpackage provides a
small but complete tape-based autodiff engine:

* :class:`~repro.autodiff.tensor.Tensor` — array wrapper building the tape,
* :mod:`~repro.autodiff.ops` — differentiable primitives (matmul, softmax,
  gather, cumprod, ...),
* :mod:`~repro.autodiff.functional` — composite NN functions,
* :mod:`~repro.autodiff.grad_check` — numerical gradient verification used
  heavily in the test suite.
"""

from repro.autodiff.tensor import Tensor, no_grad, is_grad_enabled
from repro.autodiff import ops
from repro.autodiff import functional
from repro.autodiff.grad_check import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "functional",
    "check_gradients",
    "numerical_gradient",
]
