"""Differentiable primitive operations.

Each op computes a forward numpy result and registers one vjp closure per
input on the result tensor.  Broadcasting arithmetic reduces gradients back
to the input shapes with :func:`~repro.autodiff.tensor.unbroadcast`.
"""

from __future__ import annotations

import builtins
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor, as_tensor, make_result, unbroadcast

# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data + b.data
    return make_result(
        out,
        [
            (a, lambda g: unbroadcast(g, a.shape)),
            (b, lambda g: unbroadcast(g, b.shape)),
        ],
    )


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data - b.data
    return make_result(
        out,
        [
            (a, lambda g: unbroadcast(g, a.shape)),
            (b, lambda g: unbroadcast(-g, b.shape)),
        ],
    )


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data * b.data
    return make_result(
        out,
        [
            (a, lambda g: unbroadcast(g * b.data, a.shape)),
            (b, lambda g: unbroadcast(g * a.data, b.shape)),
        ],
    )


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data / b.data
    return make_result(
        out,
        [
            (a, lambda g: unbroadcast(g / b.data, a.shape)),
            (b, lambda g: unbroadcast(-g * a.data / (b.data**2), b.shape)),
        ],
    )


def neg(a) -> Tensor:
    a = as_tensor(a)
    return make_result(-a.data, [(a, lambda g: -g)])


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a constant scalar exponent."""
    a = as_tensor(a)
    out = a.data**exponent
    return make_result(
        out, [(a, lambda g: g * exponent * a.data ** (exponent - 1))]
    )


def exp(a) -> Tensor:
    a = as_tensor(a)
    out = np.exp(a.data)
    return make_result(out, [(a, lambda g: g * out)])


def log(a) -> Tensor:
    a = as_tensor(a)
    return make_result(np.log(a.data), [(a, lambda g: g / a.data)])


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)
    return make_result(out, [(a, lambda g: g / (2.0 * out))])


def abs(a) -> Tensor:  # noqa: A001 - mirrors numpy naming
    a = as_tensor(a)
    return make_result(np.abs(a.data), [(a, lambda g: g * np.sign(a.data))])


def maximum(a, b) -> Tensor:
    """Elementwise maximum; gradient splits ties equally."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)
    a_mask = (a.data > b.data) + 0.5 * (a.data == b.data)
    b_mask = 1.0 - a_mask
    return make_result(
        out,
        [
            (a, lambda g: unbroadcast(g * a_mask, a.shape)),
            (b, lambda g: unbroadcast(g * b_mask, b.shape)),
        ],
    )


def clip(a, low: float, high: float) -> Tensor:
    """Clamp values into ``[low, high]``; gradient is zero outside."""
    a = as_tensor(a)
    out = np.clip(a.data, low, high)
    mask = ((a.data >= low) & (a.data <= high)).astype(np.float64)
    return make_result(out, [(a, lambda g: g * mask)])


# ---------------------------------------------------------------------------
# Nonlinearities
# ---------------------------------------------------------------------------


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out = np.tanh(a.data)
    return make_result(out, [(a, lambda g: g * (1.0 - out**2))])


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    out = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))
    return make_result(out, [(a, lambda g: g * out * (1.0 - out))])


def relu(a) -> Tensor:
    a = as_tensor(a)
    mask = (a.data > 0).astype(np.float64)
    return make_result(a.data * mask, [(a, lambda g: g * mask)])


def softplus(a) -> Tensor:
    """Numerically stable ``log(1 + exp(a))``."""
    a = as_tensor(a)
    x = a.data
    out = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))
    sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
    return make_result(out, [(a, lambda g: g * sig)])


# ---------------------------------------------------------------------------
# Linear algebra & shape
# ---------------------------------------------------------------------------


def matmul(a, b) -> Tensor:
    """Matrix product with numpy batching semantics."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data @ b.data

    def vjp_a(g):
        if b.data.ndim == 1:
            # (..., n) @ (n,) -> (...): outer product restores the matrix grad.
            grad = np.expand_dims(g, -1) * b.data
        elif a.data.ndim == 1:
            grad = g @ np.swapaxes(b.data, -1, -2)
        else:
            grad = g @ np.swapaxes(b.data, -1, -2)
        return unbroadcast(grad.reshape(grad.shape), a.shape)

    def vjp_b(g):
        if a.data.ndim == 1:
            grad = np.expand_dims(a.data, -1) * g
        elif b.data.ndim == 1:
            grad = np.swapaxes(a.data, -1, -2) @ np.expand_dims(g, -1)
            grad = grad[..., 0]
            # Sum over any batch dims broadcast away.
            while grad.ndim > b.data.ndim:
                grad = grad.sum(axis=0)
            return grad
        else:
            grad = np.swapaxes(a.data, -1, -2) @ g
        return unbroadcast(grad, b.shape)

    return make_result(out, [(a, vjp_a), (b, vjp_b)])


def outer(a, b) -> Tensor:
    """Outer product of two vectors: ``out[i, j] = a[i] * b[j]``."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.outer(a.data, b.data)
    return make_result(
        out,
        [
            (a, lambda g: g @ b.data),
            (b, lambda g: a.data @ g),
        ],
    )


def transpose(a, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    a = as_tensor(a)
    out = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))
    return make_result(out, [(a, lambda g: np.transpose(g, inverse))])


def reshape(a, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out = a.data.reshape(shape)
    return make_result(out, [(a, lambda g: g.reshape(a.shape))])


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    parents = []
    for i, t in enumerate(tensors):
        lo, hi = offsets[i], offsets[i + 1]

        def vjp(g, lo=lo, hi=hi):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(lo, hi)
            return g[tuple(slicer)]

        parents.append((t, vjp))
    return make_result(out, parents)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)
    parents = []
    for i, t in enumerate(tensors):
        def vjp(g, i=i):
            return np.take(g, i, axis=axis)

        parents.append((t, vjp))
    return make_result(out, parents)


def getitem(a, index) -> Tensor:
    """Basic/advanced indexing with scatter-add gradient."""
    a = as_tensor(a)
    out = a.data[index]

    def vjp(g):
        grad = np.zeros_like(a.data)
        np.add.at(grad, index, g)
        return grad

    return make_result(np.array(out, copy=True), [(a, vjp)])


# ---------------------------------------------------------------------------
# Reductions & scans
# ---------------------------------------------------------------------------


def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def vjp(g):
        if axis is None:
            return np.broadcast_to(g, a.shape).copy()
        g_expanded = g if keepdims else np.expand_dims(g, axis)
        return np.broadcast_to(g_expanded, a.shape).copy()

    return make_result(out, [(a, vjp)])


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    if axis is None:
        count = a.data.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        count = int(np.prod([a.shape[ax] for ax in axes]))
    return mul(sum(a, axis=axis, keepdims=keepdims), 1.0 / count)


def cumsum(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    out = np.cumsum(a.data, axis=axis)

    def vjp(g):
        return np.flip(np.cumsum(np.flip(g, axis=axis), axis=axis), axis=axis)

    return make_result(out, [(a, vjp)])


def cumprod(a, axis: int = -1, exclusive: bool = False) -> Tensor:
    """Cumulative product along ``axis``.

    ``exclusive=True`` returns ``[1, x0, x0*x1, ...]`` — exactly the form
    needed by the DNC allocation weighting.  The gradient uses the
    reverse-cumsum identity when all inputs are nonzero and falls back to
    an exact quadratic computation when zeros are present.
    """
    a = as_tensor(a)
    x = a.data
    inclusive = np.cumprod(x, axis=axis)
    if exclusive:
        ones_shape = list(x.shape)
        ones_shape[axis] = 1
        shifted = np.concatenate(
            [np.ones(ones_shape), np.take(inclusive, range(x.shape[axis] - 1), axis=axis)],
            axis=axis,
        )
        out = shifted
    else:
        out = inclusive

    def vjp(g):
        if np.all(x != 0):
            # d out_i / d x_j = out_i / x_j for j contributing to out_i.
            prod_grad = g * out
            flipped = np.flip(np.cumsum(np.flip(prod_grad, axis=axis), axis=axis), axis=axis)
            if exclusive:
                # out_i depends on x_j only for j < i.
                rolled = np.roll(flipped, -1, axis=axis)
                index = [slice(None)] * x.ndim
                index[axis] = -1
                rolled[tuple(index)] = 0.0
                return rolled / x
            return flipped / x
        return _cumprod_grad_dense(x, g, axis, exclusive)

    return make_result(out, [(a, vjp)])


def _cumprod_grad_dense(x: np.ndarray, g: np.ndarray, axis: int, exclusive: bool) -> np.ndarray:
    """Exact O(n^2) cumprod gradient that tolerates zeros in ``x``."""
    x_moved = np.moveaxis(x, axis, -1)
    g_moved = np.moveaxis(g, axis, -1)
    n = x_moved.shape[-1]
    grad = np.zeros_like(x_moved)
    flat_x = x_moved.reshape(-1, n)
    flat_g = g_moved.reshape(-1, n)
    flat_grad = grad.reshape(-1, n)
    for row in range(flat_x.shape[0]):
        xs, gs = flat_x[row], flat_g[row]
        for j in range(n):
            start = j + 1 if exclusive else j
            for i in range(start, n):
                members = list(range(i)) if exclusive else list(range(i + 1))
                members.remove(j)
                flat_grad[row, j] += gs[i] * np.prod(xs[members]) if members else gs[i]
    return np.moveaxis(flat_grad.reshape(x_moved.shape), -1, axis)


# ---------------------------------------------------------------------------
# Gather / scatter
# ---------------------------------------------------------------------------


def take_along_axis(a, indices: np.ndarray, axis: int) -> Tensor:
    """Differentiable :func:`numpy.take_along_axis` (indices are constant)."""
    a = as_tensor(a)
    indices = np.asarray(indices)
    axis = axis % a.data.ndim  # normalize so the vjp index matches dims
    out = np.take_along_axis(a.data, indices, axis=axis)

    def vjp(g):
        grad = np.zeros_like(a.data)
        np.add.at(
            grad,
            _along_axis_index(indices, a.data.shape, axis),
            g,
        )
        return grad

    return make_result(out, [(a, vjp)])


def _along_axis_index(indices: np.ndarray, shape: Tuple[int, ...], axis: int):
    """Build a fancy index equivalent to take_along_axis semantics."""
    index = []
    for dim in range(len(shape)):
        if dim == axis:
            index.append(indices)
        else:
            view = [1] * indices.ndim
            view[dim] = indices.shape[dim]
            index.append(np.arange(indices.shape[dim]).reshape(view))
    return tuple(index)


# ---------------------------------------------------------------------------
# Softmax (fused, numerically stable)
# ---------------------------------------------------------------------------


def softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    out = exped / exped.sum(axis=axis, keepdims=True)

    def vjp(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return make_result(out, [(a, vjp)])


def log_softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z
    soft = np.exp(out)

    def vjp(g):
        return g - soft * g.sum(axis=axis, keepdims=True)

    return make_result(out, [(a, vjp)])


__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "exp", "log", "sqrt", "abs",
    "maximum", "clip", "tanh", "sigmoid", "relu", "softplus", "matmul",
    "outer", "transpose", "reshape", "concat", "stack", "getitem", "sum",
    "mean", "cumsum", "cumprod", "take_along_axis", "softmax", "log_softmax",
]
