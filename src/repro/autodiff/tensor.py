"""The :class:`Tensor` class and reverse-mode backpropagation tape.

A ``Tensor`` wraps a ``numpy.ndarray`` plus the information needed to run
reverse-mode differentiation: the parent tensors it was computed from and,
for each parent, a vector-Jacobian-product (vjp) closure.  Calling
:meth:`Tensor.backward` topologically sorts the graph and accumulates
gradients into every reachable tensor with ``requires_grad=True``.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects (no higher-order grads).
* Broadcasting in arithmetic ops is supported; vjps reduce gradients back
  to the parent shape via :func:`unbroadcast`.
* A global :func:`no_grad` context manager disables tape construction for
  inference-heavy code paths (e.g. accuracy evaluation loops).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GradientError

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether tape construction is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction inside its body."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in the autodiff graph.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    parents:
        Internal — ``(parent, vjp)`` pairs recorded by ops.
    name:
        Optional label used in error messages and debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Optional[Sequence[Tuple["Tensor", Callable]]] = None,
        name: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.parents: List[Tuple[Tensor, Callable]] = (
            list(parents) if (parents and _GRAD_ENABLED) else []
        )
        self.grad: Optional[np.ndarray] = None
        self.name = name

    # ------------------------------------------------------------------
    # Shape & representation
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------
    def _needs_tape(self) -> bool:
        return self.requires_grad or bool(self.parents)

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).  Raises
        :class:`~repro.errors.GradientError` when called on a non-scalar
        without an explicit output gradient.
        """
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() on a non-scalar tensor requires an explicit "
                    f"gradient (shape {self.shape})"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise GradientError(
                f"output gradient shape {grad.shape} does not match tensor "
                f"shape {self.data.shape}"
            )

        order = self._topological_order()
        grads = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            for parent, vjp in node.parents:
                contribution = vjp(node_grad)
                if contribution is None:
                    continue
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = contribution
                else:
                    grads[id(parent)] = existing + contribution

    def _topological_order(self) -> List["Tensor"]:
        """Return tensors reachable from ``self`` in reverse topological order."""
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node.parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Operator overloads (delegate to repro.autodiff.ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.autodiff import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.autodiff import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.autodiff import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from repro.autodiff import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.autodiff import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.autodiff import ops

        return ops.div(other, self)

    def __neg__(self):
        from repro.autodiff import ops

        return ops.neg(self)

    def __pow__(self, exponent: float):
        from repro.autodiff import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):
        from repro.autodiff import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from repro.autodiff import ops

        return ops.getitem(self, index)

    # Convenience methods mirroring numpy style -------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from repro.autodiff import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.autodiff import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.autodiff import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, *axes):
        from repro.autodiff import ops

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.transpose(self, axes or None)

    @property
    def T(self):
        from repro.autodiff import ops

        return ops.transpose(self, None)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` (Tensor, array, or scalar) into a Tensor leaf."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def make_result(
    data: np.ndarray,
    parents: Sequence[Tuple[Tensor, Callable]],
) -> Tensor:
    """Build an op-result tensor, dropping the tape when grads are disabled.

    Parents whose subtree contains no gradient-requiring tensor are pruned
    so inference builds no graph at all.
    """
    if not _GRAD_ENABLED:
        return Tensor(data)
    live = [(p, vjp) for p, vjp in parents if p._needs_tape()]
    return Tensor(data, parents=live)
