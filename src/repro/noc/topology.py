"""NoC topology builders.

A :class:`Topology` is an undirected graph of router nodes.  Processing
tiles (PTs) are numbered ``0 .. num_pts-1``; the controller tile (CT) and
any internal tree routers get higher ids.  All builders take the PT count
and return the same dataclass, so simulators and experiments are
topology-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import ConfigError
from repro.utils.validation import check_positive


@dataclass
class Topology:
    """An NoC: graph, tile roles, and (optional) grid positions.

    ``graph`` nodes are ints; ``pt_nodes`` lists processing tiles in tile
    order; ``ct_node`` is the controller tile.  ``positions`` maps grid
    topologies' nodes to ``(row, col)`` for diagonal/transpose patterns.
    """

    name: str
    graph: nx.Graph
    pt_nodes: List[int]
    ct_node: int
    positions: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def num_pts(self) -> int:
        return len(self.pt_nodes)

    def degree(self, node: int) -> int:
        return self.graph.degree[node]


def _grid_dims(num_tiles: int) -> Tuple[int, int]:
    """Near-square grid (rows x cols) with ``rows*cols >= num_tiles``.

    Trailing grid cells may stay unused; a 17-tile design (16 PTs + CT)
    becomes a 4x5 grid, and 25 tiles the paper's 5x5 example.
    """
    rows = max(int(round(math.sqrt(num_tiles))), 1)
    cols = int(math.ceil(num_tiles / rows))
    return rows, cols


def build_mesh(num_pts: int, diagonal: bool = False, name: str = "mesh") -> Topology:
    """2-D mesh of ``num_pts + 1`` tiles (PTs + CT), optionally with
    diagonal links (the HiMA-NoC).  The CT sits at the grid center, as in
    the paper's 5x5 example (Figure 5(c))."""
    check_positive("num_pts", num_pts)
    total = num_pts + 1
    rows, cols = _grid_dims(total)
    graph = nx.Graph()
    positions: Dict[int, Tuple[int, int]] = {}

    center = min((rows // 2) * cols + (cols // 2), total - 1)

    def node_id(cell: int) -> int:
        # The CT occupies the central grid cell; PTs fill the remaining
        # cells in row-major order, keeping ids 0..num_pts-1.
        if cell == center:
            return num_pts
        return cell if cell < center else cell - 1

    for cell in range(total):
        r, c = divmod(cell, cols)
        node = node_id(cell)
        graph.add_node(node)
        positions[node] = (r, c)

    def present(r: int, c: int) -> bool:
        return 0 <= r < rows and 0 <= c < cols and r * cols + c < total

    for cell in range(total):
        r, c = divmod(cell, cols)
        u = node_id(cell)
        neighbors = [(r, c + 1), (r + 1, c)]
        if diagonal:
            neighbors += [(r + 1, c + 1), (r + 1, c - 1)]
        for nr, nc in neighbors:
            if present(nr, nc):
                graph.add_edge(u, node_id(nr * cols + nc))
    return Topology(name, graph, list(range(num_pts)), num_pts, positions)


def build_hima(num_pts: int) -> Topology:
    """HiMA-NoC: mesh plus diagonal links (paper Figure 5(c))."""
    return build_mesh(num_pts, diagonal=True, name="hima")


def build_star(num_pts: int) -> Topology:
    """Star: every PT one hop from the CT."""
    check_positive("num_pts", num_pts)
    graph = nx.Graph()
    ct = num_pts
    for pt in range(num_pts):
        graph.add_edge(pt, ct)
    return Topology("star", graph, list(range(num_pts)), ct)


def build_ring(num_pts: int) -> Topology:
    """Ring through all PTs and the CT."""
    check_positive("num_pts", num_pts)
    graph = nx.Graph()
    ct = num_pts
    order = list(range(num_pts)) + [ct]
    for i, node in enumerate(order):
        graph.add_edge(node, order[(i + 1) % len(order)])
    return Topology("ring", graph, list(range(num_pts)), ct)


def _tree_levels(num_pts: int) -> int:
    if num_pts == 1:
        return 0
    levels = int(math.ceil(math.log2(num_pts)))
    if 2**levels != num_pts:
        raise ConfigError(
            f"tree topologies require a power-of-two PT count, got {num_pts}"
        )
    return levels


def build_htree(num_pts: int, name: str = "htree") -> Topology:
    """MANNA's H-tree [33]: PTs at the leaves, CT at the root.

    Traffic between two leaves climbs to their lowest common ancestor and
    back down — the congestion bottleneck the paper identifies (worst
    case ``2*log2(num_pts)`` hops).
    """
    levels = _tree_levels(num_pts)
    graph = nx.Graph()
    # Level 0: leaves 0..num_pts-1 (the PTs).  Internal nodes numbered
    # upward; the single root is the CT.
    current = list(range(num_pts))
    next_id = num_pts
    level_nodes: List[List[int]] = [current]
    while len(current) > 1:
        parents = []
        for i in range(0, len(current), 2):
            parent = next_id
            next_id += 1
            graph.add_edge(current[i], parent)
            graph.add_edge(current[i + 1], parent)
            parents.append(parent)
        level_nodes.append(parents)
        current = parents
    ct = current[0] if num_pts > 1 else next_id
    if num_pts == 1:
        graph.add_edge(0, ct)
    topo = Topology(name, graph, list(range(num_pts)), ct)
    topo.positions = {}  # trees carry no grid geometry
    return topo


def build_bintree(num_pts: int) -> Topology:
    """MAERI-style binary tree [22]: an H-tree plus configurable links
    between adjacent sub-trees at each level."""
    topo = build_htree(num_pts, name="bintree")
    graph = topo.graph
    # Reconstruct levels: leaves, then parents in creation order.
    levels = _tree_levels(num_pts)
    current = list(range(num_pts))
    next_id = num_pts
    all_levels = [current]
    while len(current) > 1:
        parents = list(range(next_id, next_id + len(current) // 2))
        next_id += len(current) // 2
        all_levels.append(parents)
        current = parents
    # Adjacent sub-tree links: neighbours within each internal level.
    for level in all_levels[:-1]:
        for i in range(len(level) - 1):
            graph.add_edge(level[i], level[i + 1])
    return topo


TOPOLOGY_BUILDERS: Dict[str, Callable[[int], Topology]] = {
    "mesh": lambda n: build_mesh(n, diagonal=False),
    "hima": build_hima,
    "star": build_star,
    "ring": build_ring,
    "htree": build_htree,
    "bintree": build_bintree,
}


def build_topology(name: str, num_pts: int) -> Topology:
    """Build a topology by name (one of :data:`TOPOLOGY_BUILDERS`)."""
    if name not in TOPOLOGY_BUILDERS:
        raise ConfigError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGY_BUILDERS)}"
        )
    return TOPOLOGY_BUILDERS[name](num_pts)


__all__ = [
    "Topology",
    "build_topology",
    "build_mesh",
    "build_hima",
    "build_star",
    "build_ring",
    "build_htree",
    "build_bintree",
    "TOPOLOGY_BUILDERS",
]
