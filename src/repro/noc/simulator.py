"""Discrete-event, message-granular NoC simulation.

Model (matching the assumptions of the paper's Figure 5(d) study):

* deterministic shortest-path routes (:class:`~repro.noc.routing.RoutingTable`),
* link-level contention — a link carries one message at a time and a
  message of ``size`` flits occupies it for ``size`` cycles; blocked
  messages stall (ideal routers, no drops),
* single-cycle *feed-through* when a message finds its next link idle,
  otherwise the full router pipeline latency applies (paper Section 6),
* message dependencies (``depends_on``) for accumulation-style kernels.

Arbitration is deterministic: contenders are served in (request time,
message id) order, so results are exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.noc.packet import Message
from repro.noc.routing import RoutingTable
from repro.noc.topology import Topology


@dataclass
class SimulationResult:
    """Outcome of one :meth:`NoCSimulator.run` call."""

    delivery_times: Dict[int, int]
    makespan: int
    total_flit_hops: int
    link_busy_cycles: Dict[Tuple[int, int], int]

    @property
    def num_delivered(self) -> int:
        return len(self.delivery_times)

    def max_link_utilization(self) -> float:
        """Busiest link's busy fraction of the makespan."""
        if not self.link_busy_cycles or self.makespan == 0:
            return 0.0
        return max(self.link_busy_cycles.values()) / self.makespan


class NoCSimulator:
    """Simulates a batch of messages over one topology.

    Parameters
    ----------
    topology:
        The NoC to simulate.
    router_latency:
        Pipeline latency (cycles) through a congested router.
    feed_through_latency:
        Latency when the outgoing link is found idle (paper: single-cycle
        feed-through transfer).
    """

    def __init__(
        self,
        topology: Topology,
        router_latency: int = 3,
        feed_through_latency: int = 1,
    ):
        if feed_through_latency > router_latency:
            raise SimulationError(
                "feed_through_latency cannot exceed router_latency"
            )
        self.topology = topology
        self.routing = RoutingTable(topology)
        self.router_latency = router_latency
        self.feed_through_latency = feed_through_latency

    # ------------------------------------------------------------------
    def run(self, messages: Iterable[Message]) -> SimulationResult:
        """Deliver all ``messages``; returns timing and utilization stats."""
        messages = list(messages)
        by_id = {m.msg_id: m for m in messages}
        if len(by_id) != len(messages):
            raise SimulationError("duplicate message ids")
        routes = {m.msg_id: self.routing.links(m.src, m.dst) for m in messages}

        link_free_at: Dict[Tuple[int, int], int] = {}
        link_busy: Dict[Tuple[int, int], int] = {}
        delivered: Dict[int, int] = {}
        waiting_on: Dict[int, List[Message]] = {}
        total_flit_hops = 0

        # Event heap: (time, msg_id, hop_index).  hop_index is the next
        # link the message wants to cross.
        events: List[Tuple[int, int, int]] = []
        for m in messages:
            if m.depends_on is not None:
                if m.depends_on not in by_id:
                    raise SimulationError(
                        f"message {m.msg_id} depends on unknown id {m.depends_on}"
                    )
                waiting_on.setdefault(m.depends_on, []).append(m)
            else:
                heapq.heappush(events, (m.inject_cycle, m.msg_id, 0))

        while events:
            time, msg_id, hop = heapq.heappop(events)
            message = by_id[msg_id]
            route = routes[msg_id]
            if hop >= len(route):
                # Fully delivered.
                if msg_id not in delivered:
                    delivered[msg_id] = time
                    for dependant in waiting_on.pop(msg_id, ()):  # release deps
                        start = max(dependant.inject_cycle, time)
                        heapq.heappush(events, (start, dependant.msg_id, 0))
                continue

            link = route[hop]
            free_at = link_free_at.get(link, 0)
            if free_at > time:
                # Stall until the link frees; (time, msg_id) order keeps
                # arbitration deterministic and FIFO-fair.
                heapq.heappush(events, (free_at, msg_id, hop))
                continue

            # Feed-through when the link was already idle; a message that
            # waited for the link (acquires it exactly when it frees) pays
            # the full router pipeline (the router re-arbitrates).
            contended = link in link_free_at and free_at == time
            latency = self.router_latency if contended else self.feed_through_latency
            occupy_until = time + message.size
            link_free_at[link] = occupy_until
            link_busy[link] = link_busy.get(link, 0) + message.size
            total_flit_hops += message.size
            arrival = time + latency + message.size - 1
            heapq.heappush(events, (arrival, msg_id, hop + 1))

        if waiting_on:
            orphans = sorted(
                m.msg_id for deps in waiting_on.values() for m in deps
            )
            raise SimulationError(
                f"undeliverable messages (circular/missing deps): {orphans}"
            )

        makespan = max(delivered.values(), default=0)
        return SimulationResult(delivered, makespan, total_flit_hops, link_busy)

    # ------------------------------------------------------------------
    def latency(self, messages: Iterable[Message]) -> int:
        """Convenience: makespan of a message batch."""
        return self.run(messages).makespan


__all__ = ["NoCSimulator", "SimulationResult"]
