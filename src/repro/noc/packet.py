"""Message abstraction for the NoC simulator.

Simulation is message-granular: a message of ``size`` flits occupies each
link on its route for ``size`` cycles (serialization), so long transfers
create the congestion the paper's scalability study depends on.
``depends_on`` expresses computation chains (e.g. ring accumulation,
where partial sums hop tile to tile sequentially).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class Message:
    """One NoC transfer.

    Parameters
    ----------
    msg_id:
        Unique id (also the deterministic arbitration tie-breaker).
    src / dst:
        Topology node ids.
    size:
        Payload size in flits (>= 1); one flit crosses one link per cycle.
    inject_cycle:
        Earliest cycle the message may leave its source.
    depends_on:
        Optional id of a message that must be *delivered* before this one
        can be injected (models compute dependencies between transfers).
    """

    msg_id: int
    src: int
    dst: int
    size: int = 1
    inject_cycle: int = 0
    depends_on: Optional[int] = None

    def __post_init__(self):
        if self.size < 1:
            raise ConfigError(f"message size must be >= 1, got {self.size}")
        if self.src == self.dst:
            raise ConfigError(f"message {self.msg_id} has src == dst == {self.src}")


__all__ = ["Message"]
