"""Topology analysis: hop statistics and saturation sweeps.

Reproduces the hop-count claims of the paper's Figure 5(a)-(c): worst-case
8 hops for the 16-PT H-tree / binary tree, 4 hops for the 5x5 HiMA-NoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.noc.routing import RoutingTable
from repro.noc.topology import Topology


@dataclass
class HopStatistics:
    """PT-to-PT hop-count summary for one topology."""

    topology: str
    num_pts: int
    worst_case: int
    average: float
    ct_worst_case: int

    def __str__(self) -> str:
        return (
            f"{self.topology}(PTs={self.num_pts}): worst={self.worst_case} "
            f"avg={self.average:.2f} ct_worst={self.ct_worst_case}"
        )


def hop_statistics(topology: Topology) -> HopStatistics:
    """Hop counts over all PT pairs plus CT round-trips."""
    routing = RoutingTable(topology)
    pts = topology.pt_nodes
    pair_hops: List[int] = []
    for src in pts:
        for dst in pts:
            if src != dst:
                pair_hops.append(routing.hops(src, dst))
    ct_hops = [routing.hops(topology.ct_node, pt) for pt in pts]
    return HopStatistics(
        topology=topology.name,
        num_pts=topology.num_pts,
        worst_case=max(pair_hops) if pair_hops else 0,
        average=float(np.mean(pair_hops)) if pair_hops else 0.0,
        ct_worst_case=max(ct_hops) if ct_hops else 0,
    )


def worst_case_hops(topology: Topology) -> int:
    """Worst PT-to-PT hop count (the paper's headline metric)."""
    return hop_statistics(topology).worst_case


__all__ = ["HopStatistics", "hop_statistics", "worst_case_hops"]
