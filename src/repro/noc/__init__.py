"""Cycle-level network-on-chip simulator.

Implements every topology the paper compares (Figure 5):

* ``htree``   — MANNA's H-tree [33],
* ``bintree`` — MAERI-style binary tree with adjacent sub-tree links [22],
* ``mesh``    — 2-D mesh (XY-style deterministic shortest-path routing),
* ``star``    — all PTs directly attached to the CT,
* ``ring``    — PT ring through the CT,
* ``hima``    — the proposed mesh + diagonal-link multi-mode HiMA-NoC.

Messages are simulated with deterministic shortest-path routing,
link-level contention (stalling, as the paper assumes for its scalability
study), serialization proportional to message size, and single-cycle
feed-through on uncongested routers.
"""

from repro.noc.topology import Topology, build_topology, TOPOLOGY_BUILDERS
from repro.noc.routing import RoutingTable
from repro.noc.packet import Message
from repro.noc.simulator import NoCSimulator, SimulationResult
from repro.noc import traffic
from repro.noc.analysis import hop_statistics, worst_case_hops

__all__ = [
    "Topology",
    "build_topology",
    "TOPOLOGY_BUILDERS",
    "RoutingTable",
    "Message",
    "NoCSimulator",
    "SimulationResult",
    "traffic",
    "hop_statistics",
    "worst_case_hops",
]
