"""Deterministic shortest-path routing tables.

Routes are computed by breadth-first search with lexicographic
tie-breaking on node ids, so the same (topology, src, dst) always yields
the same path — a requirement for reproducible congestion results.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.errors import RoutingError
from repro.noc.topology import Topology


class RoutingTable:
    """All-pairs deterministic shortest paths for one topology."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._paths: Dict[Tuple[int, int], List[int]] = {}
        self._bfs_trees: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    def _parents_from(self, src: int) -> Dict[int, int]:
        """BFS parent map from ``src`` with sorted-neighbour determinism."""
        if src in self._bfs_trees:
            return self._bfs_trees[src]
        graph = self.topology.graph
        parents: Dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for neighbor in sorted(graph.neighbors(node)):
                if neighbor not in parents:
                    parents[neighbor] = node
                    queue.append(neighbor)
        self._bfs_trees[src] = parents
        return parents

    def path(self, src: int, dst: int) -> List[int]:
        """Node sequence from ``src`` to ``dst`` inclusive."""
        key = (src, dst)
        if key in self._paths:
            return self._paths[key]
        parents = self._parents_from(src)
        if dst not in parents:
            raise RoutingError(
                f"no route from {src} to {dst} in topology "
                f"{self.topology.name!r}"
            )
        route = [dst]
        while route[-1] != src:
            route.append(parents[route[-1]])
        route.reverse()
        self._paths[key] = route
        return route

    def links(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Directed link sequence of the route."""
        nodes = self.path(src, dst)
        return list(zip(nodes[:-1], nodes[1:]))

    def hops(self, src: int, dst: int) -> int:
        """Hop count between two nodes (0 when equal)."""
        if src == dst:
            return 0
        return len(self.path(src, dst)) - 1


__all__ = ["RoutingTable"]
