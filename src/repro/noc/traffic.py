"""Traffic-pattern generators for the DNC kernel mix.

Each generator returns a list of :class:`~repro.noc.packet.Message` for a
given topology.  These are the communication shapes the paper identifies
in Section 4.1:

* **broadcast / gather** — interface-vector distribution and read-vector
  collection (CT <-> PT; star-friendly),
* **ring accumulation** — partial-sum chains (psum reduction for
  similarity; ring-friendly),
* **transpose exchange** — submatrix swaps along grid diagonals
  (diagonal-friendly),
* **all-to-all** — matrix-vector multiply / vector outer product
  (full-mesh-friendly).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.noc.packet import Message
from repro.noc.topology import Topology
from repro.utils.rng import SeedLike, new_rng


class MessageFactory:
    """Allocates unique, consecutive message ids across patterns."""

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)

    def make(
        self,
        src: int,
        dst: int,
        size: int = 1,
        inject_cycle: int = 0,
        depends_on: Optional[int] = None,
    ) -> Message:
        return Message(
            msg_id=next(self._counter),
            src=src,
            dst=dst,
            size=size,
            inject_cycle=inject_cycle,
            depends_on=depends_on,
        )


def broadcast(
    topology: Topology, size: int = 1, factory: Optional[MessageFactory] = None
) -> List[Message]:
    """CT sends one ``size``-flit message to every PT (interface vectors)."""
    factory = factory or MessageFactory()
    ct = topology.ct_node
    return [factory.make(ct, pt, size=size) for pt in topology.pt_nodes]


def gather(
    topology: Topology, size: int = 1, factory: Optional[MessageFactory] = None
) -> List[Message]:
    """Every PT sends one message to the CT (read-vector collection)."""
    factory = factory or MessageFactory()
    ct = topology.ct_node
    return [factory.make(pt, ct, size=size) for pt in topology.pt_nodes]


def ring_accumulate(
    topology: Topology, size: int = 1, factory: Optional[MessageFactory] = None
) -> List[Message]:
    """Sequential partial-sum chain: PT0 -> PT1 -> ... -> CT.

    Each hop *depends* on the previous delivery (the tile must add its
    contribution before forwarding), modelling accumulation latency.
    """
    factory = factory or MessageFactory()
    nodes = list(topology.pt_nodes) + [topology.ct_node]
    messages: List[Message] = []
    previous: Optional[int] = None
    for src, dst in zip(nodes[:-1], nodes[1:]):
        msg = factory.make(src, dst, size=size, depends_on=previous)
        messages.append(msg)
        previous = msg.msg_id
    return messages


def all_to_all(
    topology: Topology, size: int = 1, factory: Optional[MessageFactory] = None
) -> List[Message]:
    """Every PT sends to every other PT (mat-vec / outer product)."""
    factory = factory or MessageFactory()
    messages = []
    for src in topology.pt_nodes:
        for dst in topology.pt_nodes:
            if src != dst:
                messages.append(factory.make(src, dst, size=size))
    return messages


def transpose_exchange(
    topology: Topology, size: int = 1, factory: Optional[MessageFactory] = None
) -> List[Message]:
    """Submatrix transpose: tile at grid ``(r, c)`` swaps with ``(c, r)``.

    Requires grid positions.  Topologies without geometry (trees, star,
    ring) fall back to a pairwise exchange between PT ``i`` and PT
    ``num_pts - 1 - i`` — the same volume, worst-case-distance pattern.
    """
    factory = factory or MessageFactory()
    messages: List[Message] = []
    if topology.positions:
        pos_to_node: Dict[Tuple[int, int], int] = {
            pos: node
            for node, pos in topology.positions.items()
            if node in set(topology.pt_nodes)
        }
        for node in topology.pt_nodes:
            r, c = topology.positions[node]
            partner = pos_to_node.get((c, r))
            if partner is not None and partner != node:
                messages.append(factory.make(node, partner, size=size))
        if messages:
            return messages
    n = topology.num_pts
    for i, src in enumerate(topology.pt_nodes):
        dst = topology.pt_nodes[n - 1 - i]
        if src != dst:
            messages.append(factory.make(src, dst, size=size))
    return messages


def random_uniform(
    topology: Topology,
    num_messages: int,
    size: int = 1,
    rng: SeedLike = None,
    factory: Optional[MessageFactory] = None,
) -> List[Message]:
    """Uniform-random PT-to-PT traffic (stress/benchmark pattern)."""
    if topology.num_pts < 2:
        raise ConfigError("random traffic needs at least two PTs")
    rng = new_rng(rng)
    factory = factory or MessageFactory()
    messages = []
    pts = topology.pt_nodes
    for _ in range(num_messages):
        src, dst = rng.choice(len(pts), size=2, replace=False)
        messages.append(factory.make(pts[int(src)], pts[int(dst)], size=size))
    return messages


__all__ = [
    "MessageFactory",
    "broadcast",
    "gather",
    "ring_accumulate",
    "all_to_all",
    "transpose_exchange",
    "random_uniform",
]
