"""Technology-node normalization.

The paper compares its 40 nm design against MANNA (15 nm) by normalizing
area "based on each design's process technology" (Section 7.4).  Area is
scaled by the square of the feature-size ratio, the standard first-order
model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS process node."""

    nm: float

    def __post_init__(self):
        check_positive("nm", self.nm)

    def area_scale_to(self, other: "TechnologyNode") -> float:
        """Multiplier converting area at this node to ``other``'s node."""
        return (other.nm / self.nm) ** 2


#: The paper's nodes.
NODE_40NM = TechnologyNode(40.0)
NODE_15NM = TechnologyNode(15.0)


def normalize_area(area_mm2: float, from_node: TechnologyNode, to_node: TechnologyNode) -> float:
    """Scale ``area_mm2`` measured at ``from_node`` to ``to_node``."""
    check_positive("area_mm2", area_mm2)
    return area_mm2 * from_node.area_scale_to(to_node)


__all__ = ["TechnologyNode", "normalize_area", "NODE_40NM", "NODE_15NM"]
