"""Matrix-matrix (M-M) engine: the PT compute fabric cycle model.

An array of :class:`~repro.hw.pe.PE` elements feeding a
:class:`~repro.hw.cpt.ConfigurableProcessingTree`.  The functional methods
compute real results (used in tests to cross-check numpy); the ``cycles_*``
methods provide the timing model used by
:class:`repro.core.perf_model.HiMAPerformanceModel`:

    ``cycles = ceil(ops / macs_per_cycle) + pipeline_depth``
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.hw.cpt import ConfigurableProcessingTree
from repro.hw.pe import PE, PEMode
from repro.utils.validation import check_positive, check_power_of_two


class MMEngine:
    """Per-tile compute engine.

    Parameters
    ----------
    macs_per_cycle:
        Peak multiply-accumulate throughput of the PE array (lanes x PEs).
    cpt_width:
        Width of the reduction tree (sets the pipeline depth).
    """

    def __init__(self, macs_per_cycle: int = 2048, cpt_width: int = 64):
        check_positive("macs_per_cycle", macs_per_cycle)
        self.macs_per_cycle = macs_per_cycle
        self.cpt = ConfigurableProcessingTree(cpt_width)
        self.pipeline_depth = self.cpt.depth + 2  # operand fetch + writeback

    # ------------------------------------------------------------------
    # Functional reference operations
    # ------------------------------------------------------------------
    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """``matrix @ vector`` (checked reference implementation)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        vector = np.asarray(vector, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != vector.shape[0]:
            raise ConfigError(
                f"matvec shape mismatch: {matrix.shape} @ {vector.shape}"
            )
        return matrix @ vector

    def outer(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        return np.outer(np.asarray(u, dtype=np.float64), np.asarray(v, dtype=np.float64))

    def elementwise(self, a: np.ndarray, b: np.ndarray, op: str) -> np.ndarray:
        ops_map = {
            "add": np.add,
            "sub": np.subtract,
            "mul": np.multiply,
        }
        if op not in ops_map:
            raise ConfigError(f"unsupported elementwise op {op!r}")
        return ops_map[op](np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64))

    # ------------------------------------------------------------------
    # Cycle model
    # ------------------------------------------------------------------
    def cycles_for_ops(self, num_ops: int) -> int:
        """Cycles for ``num_ops`` arithmetic operations on this engine."""
        if num_ops < 0:
            raise ConfigError("num_ops must be >= 0")
        if num_ops == 0:
            return 0
        return math.ceil(num_ops / self.macs_per_cycle) + self.pipeline_depth

    def cycles_matvec(self, rows: int, cols: int) -> int:
        """Matrix-vector multiply: ``rows * cols`` MACs."""
        return self.cycles_for_ops(rows * cols)

    def cycles_outer(self, rows: int, cols: int) -> int:
        return self.cycles_for_ops(rows * cols)

    def cycles_elementwise(self, elements: int, ops_per_element: int = 1) -> int:
        return self.cycles_for_ops(elements * ops_per_element)

    def __repr__(self) -> str:
        return (
            f"MMEngine(macs_per_cycle={self.macs_per_cycle}, "
            f"pipeline_depth={self.pipeline_depth})"
        )


__all__ = ["MMEngine"]
