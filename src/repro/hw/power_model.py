"""Energy/power model (40 nm, 500 MHz).

Power is derived from per-event energy constants applied to the workload
activity the performance model reports for one timestep:

    ``P_module = (energy per event x events per timestep) / timestep``

Constants are calibrated against the paper's Figure 11(d)/(f) module and
kernel power breakdowns for HiMA-DNC (Nt=16, N x W = 1024 x 64); the
DNC-D numbers then *follow* from its reduced activity, which is the
experiment the model must predict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.errors import ConfigError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event energies (pJ) and static powers (W), 40 nm / 32-bit."""

    pj_per_op: float = 1.05  # one 32-bit arithmetic op in the M-M engine
    pj_per_mem_access: float = 3.05  # one 32-bit SRAM access
    pj_per_hop_word: float = 30.0  # one 32-bit word across one router hop
    other_w_per_pt: float = 0.144  # control, buffer loaders, clock tree
    ct_pj_per_op: float = 0.30  # CT LSTM MAC (dense array)
    ct_static_w: float = 0.03


@dataclass
class WorkloadActivity:
    """Per-timestep event counts produced by the performance model."""

    pt_ops: float  # arithmetic ops across all PTs
    mem_accesses: float  # SRAM word accesses across all PTs
    noc_hop_words: float  # word-hops across the NoC
    lstm_ops: float  # controller (CT) arithmetic ops
    num_tiles: int
    timestep_cycles: float
    clock_hz: float = 500e6

    def timestep_seconds(self) -> float:
        if self.timestep_cycles <= 0:
            raise ConfigError("timestep_cycles must be positive")
        return self.timestep_cycles / self.clock_hz


@dataclass
class PowerBreakdown:
    """Module-level power report (W)."""

    modules: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.modules.values())

    def fraction(self, module: str) -> float:
        return self.modules[module] / self.total if self.total else 0.0


class PowerModel:
    """Maps :class:`WorkloadActivity` to module and kernel power."""

    MODULES = ("pt_mm_engine", "pt_memory", "pt_router", "pt_other", "ct")

    def __init__(self, constants: EnergyConstants = EnergyConstants()):
        self.constants = constants

    # ------------------------------------------------------------------
    def estimate(self, activity: WorkloadActivity) -> PowerBreakdown:
        """Module power for one steady-state workload."""
        c = self.constants
        seconds = activity.timestep_seconds()
        pj = 1e-12
        modules = {
            "pt_mm_engine": c.pj_per_op * activity.pt_ops * pj / seconds,
            "pt_memory": c.pj_per_mem_access * activity.mem_accesses * pj / seconds,
            "pt_router": c.pj_per_hop_word * activity.noc_hop_words * pj / seconds,
            "pt_other": c.other_w_per_pt * activity.num_tiles,
            "ct": c.ct_pj_per_op * activity.lstm_ops * pj / seconds + c.ct_static_w,
        }
        return PowerBreakdown(modules)

    # ------------------------------------------------------------------
    def kernel_power(
        self,
        kernel_activity: Mapping[str, WorkloadActivity],
        total_cycles: float,
        clock_hz: float = 500e6,
    ) -> Dict[str, float]:
        """Average power attributed to each kernel over a full timestep.

        ``kernel_activity`` maps kernel name to its event counts (with
        ``timestep_cycles`` set to the *kernel's own* duration); the
        returned powers are energy/total-time so they sum to the dynamic
        part of the timestep average.
        """
        check_positive("total_cycles", total_cycles)
        total_seconds = total_cycles / clock_hz
        c = self.constants
        pj = 1e-12
        result: Dict[str, float] = {}
        for kernel, act in kernel_activity.items():
            energy = (
                c.pj_per_op * act.pt_ops
                + c.pj_per_mem_access * act.mem_accesses
                + c.pj_per_hop_word * act.noc_hop_words
                + c.ct_pj_per_op * act.lstm_ops
            ) * pj
            result[kernel] = energy / total_seconds
        return result


__all__ = ["EnergyConstants", "WorkloadActivity", "PowerBreakdown", "PowerModel"]
